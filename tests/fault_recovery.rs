//! Property-style fault-recovery tests: whatever the seeded fault plan
//! does to the server, the fault-tolerant dispatcher must return every job
//! exactly once with results identical to a fault-free run.

use upmem_nw::datasets::mutate::{mutate, ErrorModel};
use upmem_nw::datasets::{random_seq, rng};
use upmem_nw::nw_core::seq::DnaSeq;
use upmem_nw::pim_host::recovery::{align_pairs_recovering, RecoveryConfig};
use upmem_nw::pim_sim::FaultPlan;
use upmem_nw::prelude::*;

fn noisy_pairs(n: usize, len: usize, seed: u64) -> Vec<(DnaSeq, DnaSeq)> {
    let mut r = rng(seed);
    let model = ErrorModel::uniform(0.05);
    (0..n)
        .map(|_| {
            let a = random_seq(&mut r, len);
            let (b, _) = mutate(&a, &model, &mut r);
            (a, b)
        })
        .collect()
}

fn dispatch(band: usize) -> DispatchConfig {
    let params = KernelParams {
        band,
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    DispatchConfig::new(NwKernel::paper_default(), params)
}

fn faulty_server(plan: FaultPlan, ranks: usize, dpus: usize) -> PimServer {
    let mut cfg = ServerConfig::with_ranks(ranks);
    cfg.dpus_per_rank = dpus;
    cfg.fault = plan;
    // Finite cycle budget so injected livelocks are reaped deterministically
    // in simulated time (no wall-clock involved).
    cfg.dpu.watchdog_cycles = 50_000_000;
    PimServer::new(cfg)
}

/// For a spread of random chaos plans: every job id comes back exactly
/// once, and scores/CIGARs equal the fault-free run of the same jobs.
#[test]
fn random_fault_plans_never_lose_or_corrupt_jobs() {
    let ranks = 2;
    let dpus = 4;
    let cfg = dispatch(64);
    let rcfg = RecoveryConfig {
        max_attempts: 3,
        quarantine_after: 2,
        cpu_threads: 2,
        audit: true,
        ..Default::default()
    };
    for seed in [3u64, 17, 99, 1234] {
        let pairs = noisy_pairs(18, 400, seed);

        // Fault-free reference run of the exact same batch.
        let mut clean = faulty_server(FaultPlan::default(), ranks, dpus);
        let (clean_report, clean_results) =
            align_pairs_recovering(&mut clean, &cfg, &rcfg, &pairs).unwrap();
        assert!(clean_report.fault.is_clean());
        assert_eq!(clean_results.len(), pairs.len());

        // Same batch under a seeded chaos plan (disabled DPUs, a dead
        // rank, launch faults, readback corruption, a straggler, tasklet
        // livelocks, silent CIGAR corruption).
        let plan = FaultPlan::chaos(seed, ranks, dpus, 2, 0.2, 0.15, 0.1, 0.1);
        let mut server = faulty_server(plan, ranks, dpus);
        let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &pairs).unwrap();

        assert_eq!(
            results.len(),
            pairs.len(),
            "seed {seed}: every job id exactly once"
        );
        assert_eq!(
            results,
            clean_results,
            "seed {seed}: results must be identical to the fault-free run ({})",
            report.fault.summary()
        );
        // The chaos plan on >1 rank always kills a rank, so recovery must
        // have observed and repaired something.
        assert!(
            !report.fault.is_clean(),
            "seed {seed}: expected injected faults"
        );
        assert!(report.fault.rank_failures >= 1, "seed {seed}");
        assert!(report.fault.retried_jobs >= 1, "seed {seed}");
    }
}

/// The empty plan must not change behavior at all: the recovering path and
/// the strict path agree, and the report is clean.
#[test]
fn empty_plan_is_zero_overhead_and_clean() {
    let pairs = noisy_pairs(12, 300, 7);
    let cfg = dispatch(64);
    let mut server = faulty_server(FaultPlan::default(), 2, 4);
    let (report, results) =
        align_pairs_recovering(&mut server, &cfg, &RecoveryConfig::default(), &pairs).unwrap();
    assert!(report.fault.is_clean(), "{}", report.fault.summary());

    let mut strict_server = faulty_server(FaultPlan::default(), 2, 4);
    let (strict_report, strict_results) =
        upmem_nw::pim_host::modes::align_pairs(&mut strict_server, &cfg, &pairs).unwrap();
    assert_eq!(results, strict_results);
    assert_eq!(report.alignments, strict_report.alignments);
    assert_eq!(report.stats.total, strict_report.stats.total);
    assert_eq!(report.transfer_in_bytes, strict_report.transfer_in_bytes);
}

/// Faults must drive jobs to completion through the CPU when the PiM side
/// is hopeless, with scores still matching the fault-free run.
#[test]
fn hopeless_server_still_completes_via_cpu() {
    let pairs = noisy_pairs(10, 300, 5);
    let cfg = dispatch(64);
    let plan = FaultPlan {
        seed: 11,
        dpu_fault_rate: 1.0,
        ..FaultPlan::default()
    };
    let mut server = faulty_server(plan, 1, 3);
    let rcfg = RecoveryConfig {
        max_attempts: 2,
        quarantine_after: 2,
        cpu_threads: 2,
        ..Default::default()
    };
    let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &pairs).unwrap();
    assert_eq!(report.fault.cpu_fallbacks, pairs.len());

    let mut clean = faulty_server(FaultPlan::default(), 1, 3);
    let (_, clean_results) = align_pairs_recovering(&mut clean, &cfg, &rcfg, &pairs).unwrap();
    assert_eq!(results, clean_results);
}
