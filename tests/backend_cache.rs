//! Backend-layer integration properties. Two contracts make the
//! heterogeneous router and the result cache safe to put in front of
//! everything:
//!
//! * **Router equivalence** — routing is purely a scheduling choice: the
//!   dynamic router must return results bit-identical (score AND cigar) to
//!   a pim-only run and a cpu-only run of the same workload.
//! * **Cache safety** — a cached result is indistinguishable from a fresh
//!   computation even when the backend underneath is running a seeded
//!   fault plan, and a result the audit would reject can never enter the
//!   cache (so it can never be served twice).

use datasets::mutate::{mutate, ErrorModel};
use datasets::{random_seq, rng};
use dpu_kernel::layout::{JobResult, JobStatus};
use dpu_kernel::{KernelParams, NwKernel};
use nw_core::adaptive::AdaptiveAligner;
use nw_core::cigar::Cigar;
use nw_core::seq::DnaSeq;
use nw_core::{job_key_seqs, ScoringScheme};
use pim_host::cache::{resolve, serve_hits};
use pim_host::dispatch::DispatchConfig;
use pim_host::{
    route_pairs, Backend, CpuPoolBackend, RecoveryConfig, ResultCache, RouterConfig, RouterOutcome,
    SimPimBackend,
};
use pim_sim::{FaultPlan, PimServer, ServerConfig};

const BAND: usize = 64;

fn noisy_pairs(n: usize, len: usize, seed: u64) -> Vec<(DnaSeq, DnaSeq)> {
    let mut r = rng(seed);
    let model = ErrorModel::uniform(0.05);
    (0..n)
        .map(|_| {
            let a = random_seq(&mut r, len);
            let (b, _) = mutate(&a, &model, &mut r);
            (a, b)
        })
        .collect()
}

fn dispatch() -> DispatchConfig {
    let params = KernelParams {
        band: BAND,
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    DispatchConfig::new(NwKernel::paper_default(), params)
}

fn server(plan: FaultPlan) -> PimServer {
    let mut cfg = ServerConfig::with_ranks(2);
    cfg.dpus_per_rank = 4;
    cfg.fault = plan;
    // Finite cycle budget so injected livelocks are reaped in simulated
    // time rather than stalling the test.
    cfg.dpu.watchdog_cycles = 50_000_000;
    PimServer::new(cfg)
}

fn recovery() -> RecoveryConfig {
    RecoveryConfig {
        max_attempts: 3,
        quarantine_after: 2,
        cpu_threads: 2,
        audit: true,
        ..Default::default()
    }
}

/// Which lanes to give the router for one run.
enum Lanes {
    Pim,
    Cpu,
    Both,
}

fn route(
    plan: FaultPlan,
    sel: Lanes,
    pairs: &[(DnaSeq, DnaSeq)],
    cache: Option<&mut ResultCache>,
) -> RouterOutcome {
    let mut srv = server(plan);
    let mut pim = None;
    let mut cpu = None;
    if matches!(sel, Lanes::Pim | Lanes::Both) {
        pim = Some(SimPimBackend::new(&mut srv, dispatch(), recovery()));
    }
    if matches!(sel, Lanes::Cpu | Lanes::Both) {
        cpu = Some(CpuPoolBackend::new(
            ScoringScheme::default(),
            BAND,
            false,
            2,
        ));
    }
    let mut lanes: Vec<&mut dyn Backend> = Vec::new();
    if let Some(p) = pim.as_mut() {
        lanes.push(p);
    }
    if let Some(c) = cpu.as_mut() {
        lanes.push(c);
    }
    let rcfg = RouterConfig::new(BAND, ScoringScheme::default(), false);
    route_pairs(&mut lanes, &rcfg, pairs, cache).expect("routed run completes")
}

/// The router is a pure scheduling choice: identical results (score AND
/// cigar) whether the work ran on PiM only, the CPU pool only, or was
/// dynamically split across both — and all of them match the host-side
/// adaptive aligner the kernels are contracted to reproduce.
#[test]
fn router_is_bit_identical_to_every_single_backend() {
    let pairs = noisy_pairs(24, 400, 11);
    let both = route(FaultPlan::default(), Lanes::Both, &pairs, None);
    let pim = route(FaultPlan::default(), Lanes::Pim, &pairs, None);
    let cpu = route(FaultPlan::default(), Lanes::Cpu, &pairs, None);
    assert_eq!(both.results.len(), pairs.len());
    assert_eq!(both.results, pim.results, "router vs pim-only");
    assert_eq!(both.results, cpu.results, "router vs cpu-only");

    let aligner = AdaptiveAligner::new(ScoringScheme::default(), BAND);
    for ((a, b), r) in pairs.iter().zip(&both.results) {
        let want = aligner.align(a, b).expect("reference aligns");
        assert_eq!(r.status, JobStatus::Ok);
        assert_eq!(r.score, want.score);
        assert_eq!(r.cigar, want.cigar);
    }
    // Both lanes actually participated (the workload is large enough that
    // starving one lane means the cost model broke).
    for lane in &both.report.lanes {
        assert!(lane.pairs > 0, "lane {} starved: {:?}", lane.name, lane);
    }
}

/// Cache-safety property under seeded fault plans: whatever the chaos plan
/// does underneath, a cached result is bit-identical to a fresh fault-free
/// computation — on the cold run (within-run duplicates), on the warm run
/// (cross-run hits), and for every entry resident in the cache afterwards.
#[test]
fn cached_results_match_fresh_computation_under_fault_plans() {
    for seed in [3u64, 17, 99] {
        let base = noisy_pairs(10, 350, seed);
        // 30 requests over 10 unique pairs: each unique appears 3x, so the
        // cold run already exercises the duplicate path.
        let pairs: Vec<(DnaSeq, DnaSeq)> = (0..30).map(|i| base[i % base.len()].clone()).collect();

        let reference = route(FaultPlan::default(), Lanes::Both, &pairs, None);

        let plan = || FaultPlan::chaos(seed, 2, 4, 1, 0.15, 0.1, 0.05, 0.1);
        let mut cache = ResultCache::new(256);
        let cold = route(plan(), Lanes::Both, &pairs, Some(&mut cache));
        let warm = route(plan(), Lanes::Both, &pairs, Some(&mut cache));

        assert_eq!(
            cold.results, reference.results,
            "seed {seed}: cold cached run diverged"
        );
        assert_eq!(
            warm.results, reference.results,
            "seed {seed}: warm cached run diverged"
        );
        assert!(cold.report.cache.conserved(), "seed {seed}");
        assert!(warm.report.cache.conserved(), "seed {seed}");
        // The cold run computes each unique once and serves the 20
        // duplicates through the cache; the warm run hits on everything.
        assert!(
            cold.report.cache.hits >= 20,
            "seed {seed}: {:?}",
            cold.report.cache
        );
        assert_eq!(
            warm.report.cache.hits, 30,
            "seed {seed}: {:?}",
            warm.report.cache
        );

        // Every resident entry equals the fault-free reference.
        let scheme = ScoringScheme::default();
        for ((a, b), want) in base.iter().zip(&reference.results) {
            let key = job_key_seqs(a, b, &scheme, BAND, false);
            let got = cache.lookup(&key).expect("unique pair stays resident");
            assert_eq!(&got, want, "seed {seed}: cache holds a divergent result");
        }
    }
}

/// The audit gate on insert: corrupted or failed results are returned to
/// the caller that computed them (recovery's problem) but can never enter
/// the cache, so they can never be served again.
#[test]
fn audit_rejected_results_never_enter_the_cache() {
    let scheme = ScoringScheme::default();
    let base = noisy_pairs(3, 200, 5);
    // Index 3 duplicates index 0 so the alias path runs too.
    let pairs = vec![
        base[0].clone(),
        base[1].clone(),
        base[2].clone(),
        base[0].clone(),
    ];
    let aligner = AdaptiveAligner::new(scheme, BAND);
    let good: Vec<JobResult> = base
        .iter()
        .map(|(a, b)| {
            let aln = aligner.align(a, b).unwrap();
            JobResult {
                status: JobStatus::Ok,
                score: aln.score,
                cigar: aln.cigar,
            }
        })
        .collect();

    let mut cache = ResultCache::new(64);
    let pre = serve_hits(Some(&mut cache), &pairs, &scheme, BAND, false);
    assert_eq!(pre.work, vec![0, 1, 2]);
    assert_eq!(pre.aliases, vec![(3, 0)]);

    // Pair 0 computes cleanly; pair 1 comes back silently corrupted
    // (score off by one — a checksum would still pass); pair 2 failed.
    let mut slots = pre.slots;
    slots[0] = Some(good[0].clone());
    let mut corrupt = good[1].clone();
    corrupt.score += 1;
    slots[1] = Some(corrupt.clone());
    slots[2] = Some(JobResult {
        status: JobStatus::OutOfBand,
        score: 0,
        cigar: Cigar::new(),
    });
    let results = resolve(
        Some(&mut cache),
        &pairs,
        &scheme,
        BAND,
        false,
        slots,
        &pre.keys,
        &pre.work,
        &pre.aliases,
    );

    // The caller gets back exactly what was computed (the corrupt result
    // is recovery's problem, not the cache's to rewrite) …
    assert_eq!(results[1], corrupt);
    // … and the alias of the clean pair was served.
    assert_eq!(results[3], good[0]);

    // But only the audited-clean result is resident.
    let key = |i: usize| job_key_seqs(&base[i].0, &base[i].1, &scheme, BAND, false);
    assert!(cache.lookup(&key(0)).is_some());
    assert!(cache.lookup(&key(1)).is_none(), "corrupt result was cached");
    assert!(cache.lookup(&key(2)).is_none(), "failed result was cached");
    let s = cache.stats();
    assert_eq!(s.rejected_inserts, 2, "{s:?}");
    assert_eq!(s.inserts, 1, "{s:?}");
    assert!(s.conserved(), "{s:?}");
}
