//! Cross-crate integration: the full simulated PiM pipeline must agree with
//! the host-side reference aligners on realistic data, end to end.

use upmem_nw::datasets::mutate::{mutate, ErrorModel};
use upmem_nw::datasets::{random_seq, rng};
use upmem_nw::nw_core::seq::DnaSeq;
use upmem_nw::pim_host::modes::{align_pairs, align_sets, all_vs_all};
use upmem_nw::prelude::*;

fn small_server(ranks: usize, dpus: usize) -> PimServer {
    let mut cfg = ServerConfig::with_ranks(ranks);
    cfg.dpus_per_rank = dpus;
    PimServer::new(cfg)
}

fn dispatch(band: usize, score_only: bool) -> DispatchConfig {
    let params = KernelParams {
        band,
        scheme: ScoringScheme::default(),
        score_only,
    };
    DispatchConfig::new(NwKernel::paper_default(), params)
}

fn noisy_pairs(n: usize, len: usize, seed: u64) -> Vec<(DnaSeq, DnaSeq)> {
    let mut r = rng(seed);
    let model = ErrorModel::uniform(0.05);
    (0..n)
        .map(|_| {
            let a = random_seq(&mut r, len);
            let (b, _) = mutate(&a, &model, &mut r);
            (a, b)
        })
        .collect()
}

#[test]
fn pim_pipeline_equals_host_adaptive_aligner() {
    let pairs = noisy_pairs(40, 600, 1);
    let mut server = small_server(2, 8);
    let cfg = dispatch(64, false);
    let (report, results) = align_pairs(&mut server, &cfg, &pairs).unwrap();
    assert_eq!(report.alignments, 40);
    let reference = AdaptiveAligner::new(ScoringScheme::default(), 64);
    for ((a, b), r) in pairs.iter().zip(&results) {
        let host = reference.align(a, b).unwrap();
        assert_eq!(r.score, host.score);
        assert_eq!(r.cigar, host.cigar);
        r.cigar.validate(a, b).unwrap();
    }
}

#[test]
fn pim_pipeline_matches_exact_dp_when_band_is_wide() {
    // With a band wider than any drift, the kernel must recover the optimum.
    let pairs = noisy_pairs(10, 300, 2);
    let mut server = small_server(1, 4);
    let cfg = dispatch(256, false);
    let (_, results) = align_pairs(&mut server, &cfg, &pairs).unwrap();
    let full = FullAligner::affine(ScoringScheme::default());
    for ((a, b), r) in pairs.iter().zip(&results) {
        assert_eq!(
            r.score,
            full.score(a, b),
            "band 256 on 5% error @300bp is exact"
        );
    }
}

#[test]
fn cpu_baseline_agrees_with_core_banded() {
    let pairs = noisy_pairs(25, 500, 3);
    let cpu = CpuBaseline::new(ScoringScheme::default(), 64, 4);
    let outcome = cpu.align_all(&pairs);
    let reference = BandedAligner::new(ScoringScheme::default(), 64);
    for ((a, b), r) in pairs.iter().zip(&outcome.results) {
        match (r, reference.align(a, b)) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.score, y.score);
                assert_eq!(x.cigar, y.cigar);
            }
            (Err(e1), Err(e2)) => assert_eq!(*e1, e2),
            (x, y) => panic!("divergence: {x:?} vs {y:?}"),
        }
    }
}

#[test]
fn score_only_mode_agrees_across_all_three_paths() {
    let seqs: Vec<DnaSeq> = {
        let mut r = rng(4);
        let root = random_seq(&mut r, 400);
        let model = ErrorModel::uniform(0.04);
        (0..8).map(|_| mutate(&root, &model, &mut r).0).collect()
    };
    let mut server = small_server(2, 4);
    let cfg = dispatch(64, true);
    let (_, results) = all_vs_all(&mut server, &cfg, &seqs).unwrap();
    let adaptive = AdaptiveAligner::new(ScoringScheme::default(), 64);
    let mut idx = 0;
    for i in 0..seqs.len() {
        for j in (i + 1)..seqs.len() {
            let host = adaptive.score(&seqs[i], &seqs[j]).unwrap();
            assert_eq!(results[idx].score, host, "pair ({i},{j})");
            idx += 1;
        }
    }
}

#[test]
fn sets_mode_preserves_set_structure_under_load_balancing() {
    let mut r = rng(5);
    let model = ErrorModel::uniform(0.08);
    let sets: Vec<Vec<DnaSeq>> = (0..5)
        .map(|k| {
            let region = random_seq(&mut r, 300 + 60 * k);
            (0..4 + k % 3)
                .map(|_| mutate(&region, &model, &mut r).0)
                .collect()
        })
        .collect();
    let mut server = small_server(2, 3);
    let cfg = dispatch(64, false);
    let (report, grouped) = align_sets(&mut server, &cfg, &sets).unwrap();
    assert_eq!(grouped.len(), sets.len());
    let mut total = 0;
    for (set, results) in sets.iter().zip(&grouped) {
        let expect = set.len() * (set.len() - 1) / 2;
        assert_eq!(results.len(), expect);
        total += expect;
        // Reads of the same region must align with high identity.
        for r in results {
            assert!(r.cigar.a_len() > 0);
        }
    }
    assert_eq!(report.alignments, total);
    assert_eq!(report.failed, 0);
}

#[test]
fn transfers_and_cycles_are_accounted() {
    let pairs = noisy_pairs(12, 400, 6);
    let mut server = small_server(2, 2);
    let cfg = dispatch(32, false);
    let (report, _) = align_pairs(&mut server, &cfg, &pairs).unwrap();
    assert!(report.transfer_in_bytes > 0);
    assert!(report.transfer_out_bytes > 0);
    assert!(report.stats.total.instructions > 0);
    assert!(report.stats.total.dma_transfers > 0);
    assert!(report.dpu_seconds > 0.0);
    assert!(report.total_seconds() >= report.dpu_seconds);
    // Workload follows eq. 6.
    let expect: u64 = pairs
        .iter()
        .map(|(a, b)| ((a.len() + b.len()) as u64) * 32)
        .sum();
    assert_eq!(report.workload, expect);
}

#[test]
fn rank_scaling_reduces_wall_time() {
    // One DPU per rank so each DPU runs many waves of its 6 pools — the
    // many-jobs-per-DPU regime where rank scaling is visible (the paper has
    // ~15k pairs per DPU).
    let pairs = noisy_pairs(96, 500, 7);
    let cfg = dispatch(32, false);
    let mut t = Vec::new();
    for ranks in [1usize, 2, 4] {
        let mut server = small_server(ranks, 1);
        let (report, _) = align_pairs(&mut server, &cfg, &pairs).unwrap();
        t.push(report.total_seconds());
    }
    assert!(t[1] < t[0], "2 ranks {} !< 1 rank {}", t[1], t[0]);
    assert!(t[2] < t[1], "4 ranks {} !< 2 ranks {}", t[2], t[1]);
    let ratio = t[0] / t[2];
    assert!(
        ratio > 2.0,
        "4x ranks should give >2x speedup, got {ratio:.2}"
    );
}
