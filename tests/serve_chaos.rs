//! Chaos-mode serving: the daemon under live traffic on a faulty server —
//! seeded hangs, launch faults, and silent result corruption — must answer
//! every request, deliver only reference-correct results (the audit is the
//! sole defense against silent corruption), and keep its accounting exact.

use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use nw_core::adaptive::AdaptiveAligner;
use nw_core::seq::DnaSeq;
use nw_core::ScoringScheme;
use pim_sim::FaultPlan;
use std::time::Duration;
use upmem_nw_service::{proto, run_serve, Client, Priority, ServeOptions};

#[test]
fn chaos_serve_audits_every_result_under_live_traffic() {
    let band = 64usize;
    let opts = ServeOptions {
        socket: std::env::temp_dir().join(format!(
            "upmem-nw-test-{}-serve-chaos.sock",
            std::process::id()
        )),
        ranks: 2,
        dpus: 4,
        band,
        max_open_tickets: 4,
        retries: 4,
        audit: true,
        // No watchdog budget: hung launches must be reaped by the host's
        // stall deadline instead (the slowest, most adversarial path).
        watchdog_cycles: 0,
        stall_deadline_seconds: 0.2,
        fault: FaultPlan {
            seed: 42,
            dpu_fault_rate: 0.05,
            hang_rate: 0.04,
            silent_corrupt_rate: 0.4,
            ..FaultPlan::default()
        },
        ..ServeOptions::default()
    };
    let daemon = {
        let opts = opts.clone();
        std::thread::spawn(move || run_serve(&opts).expect("daemon starts"))
    };
    let mut c =
        Client::connect_retry(&opts.socket, Duration::from_secs(10)).expect("daemon socket");

    let pairs = SyntheticParams::preset(SyntheticPreset::S1000, 99).generate(3);
    let ascii: Vec<(String, String)> = pairs
        .iter()
        .map(|(a, b)| {
            (
                String::from_utf8(a.to_ascii()).unwrap(),
                String::from_utf8(b.to_ascii()).unwrap(),
            )
        })
        .collect();
    let aligner = AdaptiveAligner::new(ScoringScheme::default(), band.next_multiple_of(16));
    let reference: Vec<_> = pairs
        .iter()
        .map(|(a, b)| aligner.align(a, b).expect("reference aligns"))
        .collect();

    // Three waves of live traffic so faults, quarantine state, and
    // retries span requests on the persistent engine.
    let waves = 3;
    let per_wave = 4;
    for wave in 0..waves {
        for k in 0..per_wave {
            c.send(&proto::align_line(
                &format!("w{wave}-r{k}"),
                Priority::Normal,
                None,
                &ascii,
            ))
            .unwrap();
        }
        for _ in 0..per_wave {
            let v = c.recv().unwrap().expect("result line");
            assert_eq!(v.get("type").unwrap().as_str(), Some("result"));
            assert_eq!(v.get("disposition").unwrap().as_str(), Some("ok"));
            let results = v.get("results").unwrap().as_arr().unwrap();
            assert_eq!(results.len(), pairs.len());
            // Every delivered result must match the fault-free CPU
            // reference bit-for-bit — score AND cigar, because silent
            // corruption can mutate the runs while the checksum passes.
            for (got, want) in results.iter().zip(&reference) {
                assert_eq!(got.get("status").unwrap().as_str(), Some("ok"));
                assert_eq!(
                    got.get("score").unwrap().as_f64(),
                    Some(want.score as f64),
                    "corrupt score escaped the audit"
                );
                assert_eq!(
                    got.get("cigar").unwrap().as_str(),
                    Some(want.cigar.to_string().as_str()),
                    "corrupt cigar escaped the audit"
                );
            }
        }
    }

    c.send("{\"op\":\"drain\"}").unwrap();
    while c.recv().unwrap().is_some() {}
    let rep = daemon.join().unwrap();

    assert!(rep.consistent(), "conservation law: {rep:?}");
    assert_eq!(rep.completed, waves * per_wave);
    assert_eq!(rep.deadline_missed, 0);
    assert!(rep.drained);
    assert!(rep.fault.audit_checked > 0, "audit must have run");
    // At a 40% silent-corruption rate across dozens of launches the plan
    // essentially always injects; every injection must have been caught.
    assert!(
        rep.fault.silent_corruptions > 0,
        "chaos plan injected nothing — test lost its teeth: {:?}",
        rep.fault
    );
    assert!(
        rep.fault.audit_failures > 0,
        "{} silent corruptions injected but the audit rejected nothing",
        rep.fault.silent_corruptions
    );
    // Recovery did real work and the service stayed up through it.
    assert!(rep.fault.retried_jobs > 0 || rep.fault.cpu_fallbacks > 0);

    // Check the DnaSeq round trip used above was faithful (guards the test
    // itself against an ascii/pack mismatch silently weakening it).
    assert_eq!(
        DnaSeq::from_ascii(ascii[0].0.as_bytes())
            .unwrap()
            .to_ascii(),
        pairs[0].0.to_ascii()
    );
}

/// The daemon's persistent result cache and the live `stats` op: repeated
/// requests for the same pairs are answered from the cache (bit-identical
/// to the engine-computed first answer), and `{"op":"stats"}` reports live
/// cache and per-backend telemetry without draining anything.
#[test]
fn serve_caches_repeats_and_reports_live_stats() {
    let band = 64usize;
    let opts = ServeOptions {
        socket: std::env::temp_dir().join(format!(
            "upmem-nw-test-{}-serve-stats.sock",
            std::process::id()
        )),
        ranks: 1,
        dpus: 4,
        band,
        ..ServeOptions::default()
    };
    let daemon = {
        let opts = opts.clone();
        std::thread::spawn(move || run_serve(&opts).expect("daemon starts"))
    };
    let mut c =
        Client::connect_retry(&opts.socket, Duration::from_secs(10)).expect("daemon socket");

    let pairs = SyntheticParams::preset(SyntheticPreset::S1000, 7).generate(4);
    let ascii: Vec<(String, String)> = pairs
        .iter()
        .map(|(a, b)| {
            (
                String::from_utf8(a.to_ascii()).unwrap(),
                String::from_utf8(b.to_ascii()).unwrap(),
            )
        })
        .collect();

    // Same pairs three times: the first request computes, the rest are
    // all-hit and must be answered without opening an engine ticket.
    let mut answers = Vec::new();
    for k in 0..3 {
        c.send(&proto::align_line(
            &format!("rep-{k}"),
            Priority::Normal,
            None,
            &ascii,
        ))
        .unwrap();
        let v = c.recv().unwrap().expect("result line");
        assert_eq!(v.get("type").unwrap().as_str(), Some("result"));
        assert_eq!(v.get("disposition").unwrap().as_str(), Some("ok"));
        let results = v.get("results").unwrap().as_arr().unwrap();
        let shape: Vec<(String, String)> = results
            .iter()
            .map(|r| {
                (
                    r.get("score").unwrap().as_f64().unwrap().to_string(),
                    r.get("cigar").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect();
        answers.push(shape);
    }
    assert_eq!(answers[0], answers[1], "cached answer diverged");
    assert_eq!(answers[0], answers[2], "cached answer diverged");

    // Live stats, no drain: the cache block shows the repeat hits and the
    // per-backend split accounts for every completed pair.
    c.send("{\"op\":\"stats\"}").unwrap();
    let v = c.recv().unwrap().expect("stats line");
    assert_eq!(v.get("type").unwrap().as_str(), Some("stats"));
    assert_eq!(v.get("draining").unwrap().as_bool(), Some(false));
    assert_eq!(v.get("completed").unwrap().as_u64(), Some(3));
    assert_eq!(
        v.get("pairs_completed").unwrap().as_u64(),
        Some(3 * pairs.len() as u64)
    );
    let cache = v.get("cache").unwrap();
    assert_eq!(
        cache.get("hits").unwrap().as_u64(),
        Some(2 * pairs.len() as u64)
    );
    assert_eq!(cache.get("len").unwrap().as_u64(), Some(pairs.len() as u64));
    let backends = v.get("backends").unwrap().as_arr().unwrap();
    let pair_count = |name: &str| {
        backends
            .iter()
            .find(|b| b.get("name").unwrap().as_str() == Some(name))
            .and_then(|b| b.get("pairs").unwrap().as_u64())
            .unwrap()
    };
    assert_eq!(pair_count("pim"), pairs.len() as u64);
    assert_eq!(pair_count("cache"), 2 * pairs.len() as u64);
    assert_eq!(pair_count("cpu-fallback"), 0);

    c.send("{\"op\":\"drain\"}").unwrap();
    while c.recv().unwrap().is_some() {}
    let rep = daemon.join().unwrap();
    assert!(rep.consistent(), "conservation law: {rep:?}");
    assert_eq!(rep.completed, 3);
    assert_eq!(rep.pairs_from_cache, 2 * pairs.len());
    assert!(rep.cache.conserved(), "{:?}", rep.cache);
    assert!(rep.pim_utilization >= 0.0 && rep.pim_utilization <= 1.0);
}
