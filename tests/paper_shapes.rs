//! Miniature versions of the paper's headline claims, asserted as shapes.
//! The full-size reproductions live in `crates/bench` (`repro all`); these
//! run in seconds and guard the properties the tables depend on.

use upmem_nw::datasets::mutate::{mutate, ErrorModel};
use upmem_nw::datasets::{random_seq, rng};
use upmem_nw::dpu_kernel::KernelVariant;
use upmem_nw::nw_core::accuracy::{measure, Heuristic};
use upmem_nw::nw_core::seq::DnaSeq;
use upmem_nw::pim_host::modes::align_pairs;
use upmem_nw::pim_sim::power::PowerModel;
use upmem_nw::prelude::*;

fn server(ranks: usize, dpus: usize) -> PimServer {
    let mut cfg = ServerConfig::with_ranks(ranks);
    cfg.dpus_per_rank = dpus;
    PimServer::new(cfg)
}

/// Pairs with occasional long gaps (PacBio-flavoured).
fn gapped_pairs(n: usize, len: usize, gap: usize, seed: u64) -> Vec<(DnaSeq, DnaSeq)> {
    let mut r = rng(seed);
    let model = ErrorModel::uniform(0.03);
    (0..n)
        .map(|k| {
            let a = random_seq(&mut r, len);
            let (mut b, _) = mutate(&a, &model, &mut r);
            if k % 2 == 0 {
                // Insert a long gap mid-sequence on half the pairs.
                let mut bases = b.as_slice().to_vec();
                for g in 0..gap {
                    bases.insert(
                        len / 2,
                        upmem_nw::nw_core::seq::Base::from_code((g % 4) as u8),
                    );
                }
                b = DnaSeq::from_bases(bases);
            }
            (a, b)
        })
        .collect()
}

#[test]
fn table1_shape_adaptive_matches_static_at_4x_band() {
    // The headline of §5.1: the adaptive band at w matches the static band
    // at ~4w on gap-rich data.
    let pairs = gapped_pairs(10, 400, 20, 11);
    let scheme = ScoringScheme::default();
    let adaptive_small = measure(scheme, Heuristic::Adaptive(32), &pairs);
    let static_small = measure(scheme, Heuristic::Static(32), &pairs);
    let static_big = measure(scheme, Heuristic::Static(128), &pairs);
    assert!(
        adaptive_small.percent() > static_small.percent(),
        "adaptive@32 {}% !> static@32 {}%",
        adaptive_small.percent(),
        static_small.percent()
    );
    assert!(
        adaptive_small.percent() + 10.0 >= static_big.percent(),
        "adaptive@32 {}% should approach static@128 {}%",
        adaptive_small.percent(),
        static_big.percent()
    );
}

#[test]
fn tables_2_to_4_shape_rank_scaling_is_near_linear() {
    let mut r = rng(12);
    let model = ErrorModel::uniform(0.02);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..128)
        .map(|_| {
            let a = random_seq(&mut r, 500);
            let (b, _) = mutate(&a, &model, &mut r);
            (a, b)
        })
        .collect();
    let params = KernelParams {
        band: 32,
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    let cfg = DispatchConfig::new(NwKernel::paper_default(), params);
    let mut times = Vec::new();
    // Thin 1-DPU ranks: 128 pairs give 64/32/16 pool-waves per DPU, the
    // many-jobs regime where the paper's near-linear scaling lives.
    for ranks in [2usize, 4, 8] {
        let mut srv = server(ranks, 1);
        let (report, _) = align_pairs(&mut srv, &cfg, &pairs).unwrap();
        times.push(report.total_seconds());
    }
    for pair in times.windows(2) {
        let ratio = pair[0] / pair[1];
        assert!(
            (1.5..=2.5).contains(&ratio),
            "rank doubling speedup {ratio:.2} outside near-linear band: {times:?}"
        );
    }
}

#[test]
fn table7_shape_asm_kernel_beats_pure_c() {
    let mut r = rng(13);
    let model = ErrorModel::uniform(0.02);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..24)
        .map(|_| {
            let a = random_seq(&mut r, 400);
            let (b, _) = mutate(&a, &model, &mut r);
            (a, b)
        })
        .collect();
    let time = |variant: KernelVariant| {
        let params = KernelParams {
            band: 32,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        let kernel = NwKernel::new(PoolConfig::default(), variant);
        let cfg = DispatchConfig::new(kernel, params);
        let mut srv = server(2, 4);
        let (report, _) = align_pairs(&mut srv, &cfg, &pairs).unwrap();
        report.dpu_seconds
    };
    let speedup = time(KernelVariant::PureC) / time(KernelVariant::Asm);
    assert!(
        (1.2..=2.1).contains(&speedup),
        "asm speedup {speedup:.2} outside the paper's 1.36-1.69 neighbourhood"
    );
}

#[test]
fn table8_shape_pim_wins_energy_despite_higher_power() {
    // If the PiM server is >2.5x faster, it wins energy even at 767 W vs
    // 307 W — the §5.6 arithmetic.
    let pim = PowerModel::upmem_pim();
    let xeon = PowerModel::intel_4215();
    let xeon_time = 1000.0;
    let pim_time = xeon_time / 9.3; // the paper's 16S speedup
    assert!(pim.energy_kj(pim_time) < xeon.energy_kj(xeon_time));
    // And the crossover is at 767/307 = 2.5x.
    let crossover = pim.watts / xeon.watts;
    assert!((2.4..2.6).contains(&crossover));
}

#[test]
fn host_overhead_shrinks_with_read_length() {
    // §5 text: 15% on S1000, <0.1% on S30000 — transfers amortize as reads
    // grow because compute is linear in (m+n) * w but so is data, yet the
    // constant per-job overheads and per-batch latencies do not grow.
    let mut r = rng(14);
    let model = ErrorModel::uniform(0.02);
    let mut overhead = Vec::new();
    for len in [200usize, 1600] {
        let pairs: Vec<(DnaSeq, DnaSeq)> = (0..32)
            .map(|_| {
                let a = random_seq(&mut r, len);
                let (b, _) = mutate(&a, &model, &mut r);
                (a, b)
            })
            .collect();
        let params = KernelParams {
            band: 32,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        let cfg = DispatchConfig::new(NwKernel::paper_default(), params);
        let mut srv = server(2, 4);
        let (report, _) = align_pairs(&mut srv, &cfg, &pairs).unwrap();
        overhead.push(report.host_overhead_fraction());
    }
    assert!(
        overhead[1] < overhead[0],
        "host overhead should shrink with read length: {overhead:?}"
    );
}
