//! Quickstart: align two reads three ways and watch them agree.
//!
//! 1. Exact full-matrix Gotoh (the ground truth).
//! 2. Host-side adaptive banded N&W (the paper's algorithm, CPU).
//! 3. The full simulated PiM pipeline: 2-bit encode, ship to a DPU's MRAM,
//!    run the P×T-pool kernel, read the CIGAR back.
//!
//! Run with: `cargo run --release --example quickstart`

use upmem_nw::nw_core::pretty::Rendering;
use upmem_nw::pim_host::modes::align_pairs;
use upmem_nw::prelude::*;

fn main() {
    // A read and a mutated copy: a mismatch, an insertion, a deletion.
    let a = DnaSeq::from_ascii(b"GATTACAGATTACAGATTACAGATTACA").unwrap();
    let b = DnaSeq::from_ascii(b"GATTACAGCTTACAGATTTACAGATACA").unwrap();
    let scheme = ScoringScheme::default();

    // --- 1. Exact DP ---
    let exact = FullAligner::affine(scheme).align(&a, &b).unwrap();
    println!("exact:    score {:>4}   {}", exact.score, exact.cigar);

    // --- 2. Adaptive banded (host) ---
    let adaptive = AdaptiveAligner::new(scheme, 16).align(&a, &b).unwrap();
    println!("adaptive: score {:>4}   {}", adaptive.score, adaptive.cigar);

    // --- 3. Simulated PiM pipeline ---
    let mut server = PimServer::new({
        let mut cfg = ServerConfig::with_ranks(1);
        cfg.dpus_per_rank = 1; // a single DPU is plenty for one pair
        cfg
    });
    let params = KernelParams {
        band: 16,
        scheme,
        score_only: false,
    };
    let dispatch = DispatchConfig::new(NwKernel::paper_default(), params);
    let (report, results) = align_pairs(&mut server, &dispatch, &[(a.clone(), b.clone())]).unwrap();
    let dpu = &results[0];
    println!("DPU:      score {:>4}   {}", dpu.score, dpu.cigar);
    assert_eq!(
        dpu.score, adaptive.score,
        "kernel and host agree bit-for-bit"
    );
    assert_eq!(dpu.cigar, adaptive.cigar);

    // Figure-1 style rendering.
    println!("\n{}", Rendering::new(&a, &b, &dpu.cigar).to_wrapped(60));
    println!("identity: {:.1}%", 100.0 * exact.identity());
    println!(
        "simulated DPU execution: {} cycles ({:.2} µs at 350 MHz), pipeline utilization {:.0}%",
        report.stats.max_cycles,
        report.dpu_seconds * 1e6,
        100.0 * report.pipeline_utilization()
    );
}
