//! The PacBio consensus workflow (§5.4): sets of noisy long reads of the
//! same region are aligned all-against-all on the simulated PiM server;
//! the CIGARs then drive a simple majority-vote consensus whose accuracy we
//! can check against the (normally hidden) template.
//!
//! Run with: `cargo run --release --example pacbio_consensus`

use upmem_nw::datasets::pacbio::PacbioParams;
use upmem_nw::datasets::{ErrorModel, Scale};
use upmem_nw::nw_core::cigar::CigarOp;
use upmem_nw::nw_core::seq::{Base, DnaSeq};
use upmem_nw::pim_host::modes::align_sets;
use upmem_nw::prelude::*;

fn main() {
    let _ = Scale::FULL; // full runs use datasets::Scale; this demo is tiny
    let params = PacbioParams {
        sets: 3,
        region_len: (600, 1000),
        reads_per_set: (6, 9),
        error: ErrorModel::pacbio_raw(),
        seed: 7,
    };
    let sets = params.generate();
    println!(
        "generated {} read sets ({} alignments)",
        sets.len(),
        PacbioParams::total_pairs(&sets)
    );

    let mut server = PimServer::new({
        let mut cfg = ServerConfig::with_ranks(2);
        cfg.dpus_per_rank = 4;
        cfg
    });
    let kp = KernelParams {
        band: 128,
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    let dispatch = DispatchConfig::new(NwKernel::paper_default(), kp);
    let read_sets: Vec<Vec<DnaSeq>> = sets.iter().map(|s| s.reads.clone()).collect();
    let (report, grouped) = align_sets(&mut server, &dispatch, &read_sets).unwrap();
    println!("{}", report.summary());

    for (s, set) in sets.iter().enumerate() {
        // Use read 0 as the backbone; project every other read onto it via
        // the pairwise CIGARs, then majority-vote per backbone column.
        let backbone = &set.reads[0];
        let mut votes: Vec<[u32; 4]> = vec![[0; 4]; backbone.len()];
        for (i, base) in backbone.as_slice().iter().enumerate() {
            votes[i][base.code() as usize] += 1;
        }
        // grouped[s] pairs are in (i, j), i < j order; pairs (0, j) come
        // first while i == 0.
        for (pair_idx, j) in (1..set.reads.len()).enumerate() {
            let result = &grouped[s][pair_idx];
            if result.cigar.runs().is_empty() {
                continue;
            }
            // Walk the CIGAR: backbone is sequence A, the other read is B.
            let (mut bi, mut ri) = (0usize, 0usize);
            for op in result.cigar.ops() {
                match op {
                    CigarOp::Match | CigarOp::Mismatch => {
                        votes[bi][set.reads[j].get(ri).code() as usize] += 1;
                        bi += 1;
                        ri += 1;
                    }
                    CigarOp::Insertion => bi += 1, // backbone-only base
                    CigarOp::Deletion => ri += 1,  // read-only base
                }
            }
        }
        let consensus: DnaSeq = votes
            .iter()
            .map(|v| {
                let best = (0..4).max_by_key(|&c| v[c]).unwrap();
                Base::from_code(best as u8)
            })
            .collect();

        // Score the consensus against the hidden template.
        let scheme = ScoringScheme::default();
        let full = FullAligner::affine(scheme);
        let raw_id = full.align(backbone, &set.template).unwrap().identity();
        let cons_id = full.align(&consensus, &set.template).unwrap().identity();
        println!(
            "set {s}: {} reads, backbone identity {:.2}% -> consensus identity {:.2}%",
            set.reads.len(),
            100.0 * raw_id,
            100.0 * cons_id
        );
        assert!(
            cons_id >= raw_id - 0.005,
            "consensus should not be worse than a raw read"
        );
    }
}
