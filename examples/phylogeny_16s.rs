//! The 16S phylogeny workflow (§5.3): all-against-all score-only comparison
//! of ribosomal RNA sequences on the simulated PiM server, then a
//! neighbour-joining-style sketch of the relationships from the score
//! matrix.
//!
//! Run with: `cargo run --release --example phylogeny_16s`

use upmem_nw::datasets::sixteen_s::SixteenSParams;
use upmem_nw::pim_host::modes::all_vs_all;
use upmem_nw::prelude::*;

fn main() {
    // A small bacterial-like population evolved along a random phylogeny.
    let params = SixteenSParams {
        count: 32,
        root_len: 800,
        branch_divergence: 0.012,
        seed: 42,
    };
    let seqs = params.generate();
    println!(
        "generated {} 16S-like sequences (~{} bp)",
        seqs.len(),
        seqs[0].len()
    );

    // Broadcast + static split on a 2-rank server, score-only.
    let mut server = PimServer::new({
        let mut cfg = ServerConfig::with_ranks(2);
        cfg.dpus_per_rank = 8;
        cfg
    });
    let kp = KernelParams {
        band: 64,
        scheme: ScoringScheme::default(),
        score_only: true,
    };
    let dispatch = DispatchConfig::new(NwKernel::paper_default(), kp);
    let (report, results) = all_vs_all(&mut server, &dispatch, &seqs).unwrap();
    println!("{}", report.summary());
    assert_eq!(results.len(), seqs.len() * (seqs.len() - 1) / 2);

    // Distance = 1 - score / perfect(min_len): a crude but monotone metric.
    let n = seqs.len();
    let scheme = ScoringScheme::default();
    let mut dist = vec![vec![0.0f64; n]; n];
    let mut idx = 0;
    for i in 0..n {
        for j in (i + 1)..n {
            let perfect = scheme.perfect(seqs[i].len().min(seqs[j].len())) as f64;
            let d = 1.0 - (results[idx].score as f64 / perfect).clamp(-1.0, 1.0);
            dist[i][j] = d;
            dist[j][i] = d;
            idx += 1;
        }
    }

    // Closest and farthest pairs.
    let mut pairs: Vec<(usize, usize)> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            pairs.push((i, j));
        }
    }
    pairs.sort_by(|&(a, b), &(c, d)| dist[a][b].partial_cmp(&dist[c][d]).unwrap());
    println!("\nclosest relatives:");
    for &(i, j) in pairs.iter().take(3) {
        println!("  seq{i:>3} ~ seq{j:<3}  distance {:.4}", dist[i][j]);
    }
    println!("most diverged:");
    for &(i, j) in pairs.iter().rev().take(3) {
        println!("  seq{i:>3} ~ seq{j:<3}  distance {:.4}", dist[i][j]);
    }

    // Single-linkage clustering sketch at a distance threshold.
    let threshold = pairs[pairs.len() / 3].0; // index only for determinism
    let _ = threshold;
    let cut = dist[pairs[pairs.len() / 3].0][pairs[pairs.len() / 3].1];
    let mut cluster: Vec<usize> = (0..n).collect();
    fn find(c: &mut Vec<usize>, x: usize) -> usize {
        if c[x] != x {
            let r = find(c, c[x]);
            c[x] = r;
        }
        c[x]
    }
    for &(i, j) in &pairs {
        if dist[i][j] <= cut {
            let (ri, rj) = (find(&mut cluster, i), find(&mut cluster, j));
            if ri != rj {
                cluster[ri] = rj;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for x in 0..n {
        let r = find(&mut cluster, x);
        groups.entry(r).or_default().push(x);
    }
    println!("\nsingle-linkage clusters at distance <= {cut:.4}:");
    for (k, members) in groups {
        println!("  cluster@{k}: {members:?}");
    }
}
