//! Figure 3 live: visualize how the adaptive window tracks a long gap that
//! a static band of the same width cannot reach.
//!
//! Run with: `cargo run --release --example band_visualizer`

use upmem_nw::nw_core::adaptive::Shift;
use upmem_nw::nw_core::banded::BandGeometry;
use upmem_nw::prelude::*;

fn main() {
    let band = 32;
    let unit = "ACGTGGTCATCGATTACAGGCT";
    let a = DnaSeq::from_ascii(unit.repeat(6).as_bytes()).unwrap();
    let mut btext = unit.repeat(6);
    btext.insert_str(66, &"G".repeat(24)); // a 24-base insertion
    let b = DnaSeq::from_ascii(btext.as_bytes()).unwrap();
    let scheme = ScoringScheme::default();

    let outcome = AdaptiveAligner::new(scheme, band)
        .align_traced(&a, &b)
        .unwrap();
    let optimal = FullAligner::affine(scheme).score(&a, &b);
    let geom = BandGeometry::new(a.len(), b.len(), band);

    println!(
        "matrix {}x{}, band {band}; static diagonals [{}, {}] (cannot reach |n-m| = {})",
        a.len(),
        b.len(),
        geom.d_lo,
        geom.d_hi,
        b.len() - a.len()
    );
    println!(
        "adaptive: score {} (optimal {}), {} down-shifts / {} steps, {} cells vs {} full-matrix cells\n",
        outcome.alignment.score,
        optimal,
        outcome.trace.downs(),
        outcome.trace.shifts.len(),
        outcome.cells,
        (a.len() + 1) * (b.len() + 1),
    );

    // Render the matrix: rows i, columns j; window cells '#', static band
    // ':', overlap '%'.
    let step = 4; // downsample
    for gi in 0..=(a.len() / step) {
        let i = (gi * step) as i64;
        let mut line = String::new();
        for gj in 0..=(b.len() / step) {
            let j = (gj * step) as i64;
            let t = (i + j) as usize;
            let in_static = geom.contains(i.max(0) as usize, j.max(0) as usize);
            let in_adaptive = outcome
                .trace
                .origins
                .get(t)
                .map(|&o| i >= o && i < o + band as i64)
                .unwrap_or(false);
            line.push(match (in_adaptive, in_static) {
                (true, true) => '%',
                (true, false) => '#',
                (false, true) => ':',
                (false, false) => '.',
            });
        }
        println!("{line}");
    }

    // Shift decision stream around the gap.
    let gap_region: String = outcome.trace.shifts[120..180.min(outcome.trace.shifts.len())]
        .iter()
        .map(|s| if *s == Shift::Down { 'D' } else { 'R' })
        .collect();
    println!("\nshift decisions through the gap region (t=120..180): {gap_region}");
    println!("(runs of R = the window sliding right along the insertion)");
}
