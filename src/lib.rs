#![warn(missing_docs)]

//! # upmem-nw — banded Needleman–Wunsch on a (simulated) UPMEM PiM server
//!
//! A from-scratch Rust reproduction of *"Parallelization of the Banded
//! Needleman & Wunsch Algorithm on UPMEM PiM Architecture for Long DNA
//! Sequence Alignment"* (Mognol, Lavenier, Legriel — ICPP 2024).
//!
//! This facade re-exports the workspace crates:
//!
//! * [`nw_core`] — the alignment algorithms: exact NW/Gotoh, static banded,
//!   adaptive banded (the paper's §3), CIGARs, the 4-bit traceback.
//! * [`pim_sim`] — the UPMEM PiM substrate simulator: DPUs with WRAM/MRAM,
//!   DMA rules, the tasklet pipeline timing model, ranks, the server, a
//!   mini DPU ISA with `cmpb4` and fused jumps, and the power model (§2).
//! * [`dpu_kernel`] — the DPU program: P×T tasklet pools computing adaptive
//!   banded N&W against the simulated memories (§4.2).
//! * [`pim_host`] — the host program: 2-bit encoding, eq.-6 workload
//!   estimation, LPT balancing, rank FIFO dispatch, experiment modes
//!   (§4.1, §5.2–5.4).
//! * [`cpu_baseline`] — the minimap2/KSW2-style CPU baseline with query
//!   profile and a multi-threaded driver (§5).
//! * [`datasets`] — seeded generators for the five evaluation datasets.
//!
//! ## Quickstart
//!
//! ```
//! use upmem_nw::prelude::*;
//!
//! // Host-side alignment with the paper's adaptive banded algorithm:
//! let a = DnaSeq::from_ascii(b"GATTACAGATTACA").unwrap();
//! let b = DnaSeq::from_ascii(b"GATTACAGATTACA").unwrap();
//! let aligner = AdaptiveAligner::new(ScoringScheme::default(), 16);
//! assert_eq!(aligner.align(&a, &b).unwrap().cigar.to_string(), "14=");
//! ```
//!
//! See `examples/` for the full pipeline (simulated PiM server end to end)
//! and `crates/bench` for the table/figure reproduction harness.

pub use cpu_baseline;
pub use datasets;
pub use dpu_kernel;
pub use nw_core;
pub use pim_host;
pub use pim_sim;

/// The most common imports in one place.
pub mod prelude {
    pub use cpu_baseline::{CpuBaseline, Ksw2Aligner};
    pub use dpu_kernel::{KernelParams, KernelVariant, NwKernel, PoolConfig};
    pub use nw_core::adaptive::AdaptiveAligner;
    pub use nw_core::banded::BandedAligner;
    pub use nw_core::full::FullAligner;
    pub use nw_core::seq::{Base, DnaSeq, PackedSeq};
    pub use nw_core::wfa::{Penalties, WfaAligner};
    pub use nw_core::{Alignment, Cigar, CigarOp, ScoringScheme};
    pub use pim_host::dispatch::DispatchConfig;
    pub use pim_host::modes::{align_pairs, align_sets, all_vs_all};
    pub use pim_sim::{DpuConfig, PimServer, ServerConfig};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_exposes_the_pipeline() {
        let a = DnaSeq::from_ascii(b"ACGTACGT").unwrap();
        let aligner = AdaptiveAligner::new(ScoringScheme::default(), 8);
        assert_eq!(aligner.align(&a, &a).unwrap().score, 16);
        let _ = NwKernel::paper_default();
        let _ = ServerConfig::with_ranks(1);
    }
}
