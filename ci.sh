#!/usr/bin/env bash
# CI gate: formatting, lints, tests, and the kernel static-analysis pass.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> upmem-nw lint"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- lint

echo "CI OK"
