#!/usr/bin/env bash
# CI gate: formatting, lints, tests, and the kernel static-analysis pass.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> upmem-nw lint"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- lint

# Machine-readable lint: every built-in kernel must verify clean, carry a
# finite symbolic WCET bound, and prove its cross-tasklet WRAM partition
# (the race-freedom fact that lets the fast path skip the sanitizer).
echo "==> upmem-nw lint --json"
LINT_JSON="$(mktemp -t LINT.XXXXXX.json)"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- lint --json true > "$LINT_JSON"
python3 - "$LINT_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    lint = json.load(f)

for key in ["kernels", "kernels_verified", "total_errors", "total_warnings", "ok"]:
    assert key in lint, f"missing top-level key {key!r}"
assert lint["ok"] is True and lint["total_errors"] == 0
assert lint["kernels_verified"] == 4, "expected pure_c/asm x score/traceback"
for k in lint["kernels"]:
    for key in ["kernel", "instructions", "errors", "warnings", "diagnostics",
                "sanitizer", "wcet", "race_free"]:
        assert key in k, f"missing kernel key {key!r}"
    assert k["errors"] == 0 and k["sanitizer"] == "clean"
    assert k["wcet"]["finite"] is True, f"{k['kernel']}: WCET bound not finite"
    assert k["wcet"]["eval_at_192_cells"] > 0
    assert k["race_free"] is True, f"{k['kernel']}: WRAM partition unproven"
print(f"LINT json OK: {lint['kernels_verified']} kernels, all bounds finite, "
      f"all partitions proven")
EOF
rm -f "$LINT_JSON"

# WCET soundness at smoke scale: random kernel shapes and band contents
# must never retire more instructions than the symbolic bound claims, and
# a watchdog budget derived from the bound must not reap healthy kernels.
echo "==> WCET soundness property tests (smoke scale)"
WCET_SMOKE_TRIALS=40 cargo test --release -q -p dpu-kernel --test wcet_soundness -- --nocapture

# Fault-injection smoke: a seeded chaos plan (dead rank, disabled DPUs,
# launch faults, corruption, tasklet livelocks reaped by the cycle-budget
# watchdog, and silent CIGAR corruption only the result audit can catch)
# must lose zero jobs and keep every score identical to the fault-free
# reference — the command exits nonzero otherwise, including when a silent
# corruption escapes the audit layer. The watchdog budget is the WCET
# auto-derived one, so a too-tight bound surfaces here as lost jobs.
echo "==> upmem-nw chaos --seed 42 --hang-faults 0.1 --corrupt-cigars 0.1"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- chaos --seed 42 \
    --hang-faults 0.1 --corrupt-cigars 0.1 --watchdog-cycles auto

# Dispatch-engine smoke: run the host-throughput benchmark at smoke scale
# (lockstep vs pipelined, with and without an injected straggler). The
# command itself fails if the engines disagree bit-for-bit; then check the
# emitted JSON has the shape downstream tooling consumes.
echo "==> upmem-nw bench --smoke true"
BENCH_JSON="$(mktemp -t BENCH_dispatch.XXXXXX.json)"
SIM_JSON="$(mktemp -t BENCH_sim.XXXXXX.json)"
trap 'rm -f "$BENCH_JSON" "$SIM_JSON"' EXIT
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- bench --smoke true --json "$BENCH_JSON"

echo "==> validate BENCH_dispatch.json"
python3 - "$BENCH_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)

for key in ["bench", "pairs", "ranks", "dpus_per_rank", "rounds", "fifo_depth",
            "seed", "straggler", "lockstep", "pipelined", "no_fault", "guard",
            "speedup_host_wall", "bit_identical"]:
    assert key in bench, f"missing top-level key {key!r}"
assert bench["bench"] == "dispatch"
assert bench["bit_identical"] is True, "engines must agree bit-for-bit"

# Robustness-guard overhead: the watchdog budget plus the per-result audit
# must be ~free on a clean run — under 3% of the unguarded best-of host
# wall, with a small absolute floor so timer noise on a fast smoke run
# cannot flake the gate.
guard = bench["guard"]
for key in ["watchdog_cycles", "audit", "reps", "clean_host_wall_seconds",
            "guarded_host_wall_seconds", "overhead_fraction", "audited",
            "bit_identical"]:
    assert key in guard, f"missing guard key {key!r}"
assert guard["audit"] is True and guard["watchdog_cycles"] > 0
assert guard["bit_identical"] is True, "guards must not change results"
assert guard["audited"] == bench["pairs"], "every result must be audited"
c = guard["clean_host_wall_seconds"]
g = guard["guarded_host_wall_seconds"]
assert (g - c) < max(0.03 * c, 0.002), \
    f"watchdog+audit overhead too high: clean {c:.4f}s vs guarded {g:.4f}s"
for run in [bench["lockstep"], bench["pipelined"],
            bench["no_fault"]["lockstep"], bench["no_fault"]["pipelined"]]:
    for key in ["host_wall_seconds", "simulated_seconds", "pairs_per_second"]:
        assert key in run, f"missing per-run key {key!r}"
        assert run[key] >= 0
assert "stall" in bench["pipelined"], "pipelined run must report stall metrics"
for key in ["per_rank_stall_seconds", "per_rank_busy_seconds", "max_fifo_occupancy",
            "plan_seconds", "decode_seconds", "encode_overlap_fraction",
            "buffers_reused", "buffers_allocated"]:
    assert key in bench["pipelined"]["stall"], f"missing stall key {key!r}"
print(f"BENCH_dispatch.json OK: straggler speedup {bench['speedup_host_wall']:.2f}x, "
      f"no-fault speedup {bench['no_fault']['speedup_host_wall']:.2f}x, "
      f"guard overhead {100.0 * guard['overhead_fraction']:.2f}%")
EOF

# Simulator-throughput smoke: interpreter checked-vs-fast plus rank-level
# sequential/parallel conditions. The command itself fails unless every
# condition is bit-identical to the sequential checked reference; then
# check the emitted JSON has the shape downstream tooling consumes.
echo "==> upmem-nw bench --sim true --smoke true"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- bench --sim true --smoke true --json "$SIM_JSON"

echo "==> validate BENCH_sim.json"
python3 - "$SIM_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)

for key in ["bench", "cells", "interp_passes", "dpus", "launches",
            "passes_per_launch", "sim_threads", "seed", "interp", "rank",
            "speedup_dpus_per_sec", "bit_identical"]:
    assert key in bench, f"missing top-level key {key!r}"
assert bench["bench"] == "sim"
assert bench["bit_identical"] is True, "fast/parallel paths must agree bit-for-bit"
assert len(bench["interp"]) == 4, "expected pure_c/asm x score/traceback"
for k in bench["interp"]:
    for key in ["kernel", "program_len", "dense_len", "fused_windows",
                "fast_eligible", "instructions", "checked_instr_per_sec",
                "fast_instr_per_sec", "speedup", "bit_identical",
                "wcet_instructions", "dynamic_static_ratio", "race_free"]:
        assert key in k, f"missing interp key {key!r}"
    assert k["fast_eligible"] is True and k["bit_identical"] is True
    assert 0 < k["dense_len"] <= k["program_len"]
    assert k["wcet_instructions"] > 0, f"{k['kernel']}: no finite WCET bound"
    assert 0 < k["dynamic_static_ratio"] <= 1.0, \
        f"{k['kernel']}: dynamic/static cycle ratio {k['dynamic_static_ratio']} " \
        f"violates WCET soundness"
    assert k["race_free"] is True, f"{k['kernel']}: sanitizer-skip fast path unproven"
for cond in ["sequential_checked", "sequential_fast",
             "parallel_checked", "parallel_fast"]:
    run = bench["rank"][cond]
    for key in ["wall_seconds", "instructions", "instr_per_sec", "dpus_per_sec"]:
        assert key in run, f"missing rank key {key!r} in {cond}"
        assert run[key] >= 0
    assert run["instructions"] == bench["rank"]["sequential_checked"]["instructions"]
print(f"BENCH_sim.json OK: parallel+fast over sequential+checked "
      f"{bench['speedup_dpus_per_sec']:.2f}x")
EOF

# Parallel-vs-sequential equivalence: the intra-rank pool must be
# bit-identical to the sequential launch, standalone and under the full
# dispatch stack with fault plans.
echo "==> intra-rank equivalence tests"
cargo test --release -q -p pim-sim parallel_launch_matches_sequential_bit_for_bit -- --nocapture
cargo test --release -q -p pim-host --test pipeline_equivalence parallel_intra_rank_is_bit_identical_under_fault_plans -- --nocapture

# Hang + silent-corruption equivalence: both recovery engines must deliver
# the fault-free answers under livelocks and checksum-valid CIGAR
# corruption, and the lockstep fault accounting must replay bit-identically.
echo "==> hang/silent-corruption recovery equivalence"
cargo test --release -q -p pim-host --test pipeline_equivalence engines_survive_hangs_and_silent_corruption_with_audited_results -- --nocapture

echo "CI OK"
