#!/usr/bin/env bash
# CI gate: formatting, lints, tests, and the kernel static-analysis pass.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> upmem-nw lint"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- lint

# Fault-injection smoke: a seeded chaos plan (dead rank, disabled DPUs,
# launch faults, corruption) must lose zero jobs and keep every score
# identical to the fault-free reference — the command exits nonzero otherwise.
echo "==> upmem-nw chaos --seed 42"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- chaos --seed 42

echo "CI OK"
