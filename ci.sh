#!/usr/bin/env bash
# CI gate: formatting, lints, tests, and the kernel static-analysis pass.
# Run from the repo root. Fails fast on the first broken step.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

echo "==> upmem-nw lint"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- lint

# Machine-readable lint: every built-in kernel must verify clean, carry a
# finite symbolic WCET bound, and prove its cross-tasklet WRAM partition
# (the race-freedom fact that lets the fast path skip the sanitizer).
echo "==> upmem-nw lint --json"
LINT_JSON="$(mktemp -t LINT.XXXXXX.json)"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- lint --json true > "$LINT_JSON"
python3 - "$LINT_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    lint = json.load(f)

for key in ["kernels", "kernels_verified", "total_errors", "total_warnings", "ok"]:
    assert key in lint, f"missing top-level key {key!r}"
assert lint["ok"] is True and lint["total_errors"] == 0
assert lint["kernels_verified"] == 4, "expected pure_c/asm x score/traceback"
for k in lint["kernels"]:
    for key in ["kernel", "instructions", "errors", "warnings", "diagnostics",
                "sanitizer", "wcet", "race_free"]:
        assert key in k, f"missing kernel key {key!r}"
    assert k["errors"] == 0 and k["sanitizer"] == "clean"
    assert k["wcet"]["finite"] is True, f"{k['kernel']}: WCET bound not finite"
    assert k["wcet"]["eval_at_192_cells"] > 0
    assert k["race_free"] is True, f"{k['kernel']}: WRAM partition unproven"
print(f"LINT json OK: {lint['kernels_verified']} kernels, all bounds finite, "
      f"all partitions proven")
EOF
rm -f "$LINT_JSON"

# WCET soundness at smoke scale: random kernel shapes and band contents
# must never retire more instructions than the symbolic bound claims, and
# a watchdog budget derived from the bound must not reap healthy kernels.
echo "==> WCET soundness property tests (smoke scale)"
WCET_SMOKE_TRIALS=40 cargo test --release -q -p dpu-kernel --test wcet_soundness -- --nocapture

# Three-tier equivalence at smoke scale: checked, fast, and jit must retire
# bit-identical registers, WRAM, stats, and faults — including under hangs,
# watchdog budgets, exhausted step budgets, and seeded fault plans.
echo "==> jit equivalence property tests (smoke scale)"
JIT_SMOKE_TRIALS=40 cargo test --release -q -p dpu-kernel --test jit_equivalence -- --nocapture

# std::simd CPU baseline: the lane-parallel first pass must be bit-identical
# to the scalar oracle (scores, CIGARs, and errors). The feature needs a
# nightly toolchain; without one, run the same suite scalar-vs-scalar so the
# oracle itself is still cross-checked against the reference aligner.
if rustup toolchain list 2>/dev/null | grep -q '^nightly'; then
    echo "==> cargo +nightly test -p cpu-baseline --features portable-simd"
    SIMD_SMOKE_TRIALS=60 cargo +nightly test -q -p cpu-baseline \
        --features portable-simd --test simd_equivalence -- --nocapture
else
    echo "==> simd equivalence (no nightly toolchain: scalar oracle only)"
    SIMD_SMOKE_TRIALS=60 cargo test -q -p cpu-baseline \
        --test simd_equivalence -- --nocapture
fi

# Fault-injection smoke: a seeded chaos plan (dead rank, disabled DPUs,
# launch faults, corruption, tasklet livelocks reaped by the cycle-budget
# watchdog, and silent CIGAR corruption only the result audit can catch)
# must lose zero jobs and keep every score identical to the fault-free
# reference — the command exits nonzero otherwise, including when a silent
# corruption escapes the audit layer. The watchdog budget is the WCET
# auto-derived one, so a too-tight bound surfaces here as lost jobs.
echo "==> upmem-nw chaos --seed 42 --hang-faults 0.1 --corrupt-cigars 0.1"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- chaos --seed 42 \
    --hang-faults 0.1 --corrupt-cigars 0.1 --watchdog-cycles auto

# Dispatch-engine smoke: run the host-throughput benchmark at smoke scale
# (lockstep vs pipelined, with and without an injected straggler). The
# command itself fails if the engines disagree bit-for-bit; then check the
# emitted JSON has the shape downstream tooling consumes.
echo "==> upmem-nw bench --smoke true"
BENCH_JSON="$(mktemp -t BENCH_dispatch.XXXXXX.json)"
SIM_JSON="$(mktemp -t BENCH_sim.XXXXXX.json)"
trap 'rm -f "$BENCH_JSON" "$SIM_JSON"' EXIT
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- bench --smoke true --json "$BENCH_JSON"

echo "==> validate BENCH_dispatch.json"
python3 - "$BENCH_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)

for key in ["bench", "schema_version", "pairs", "ranks", "dpus_per_rank",
            "rounds", "fifo_depth", "seed", "straggler", "lockstep",
            "pipelined", "no_fault", "guard", "speedup_host_wall",
            "bit_identical"]:
    assert key in bench, f"missing top-level key {key!r}"
assert bench["bench"] == "dispatch"
assert bench["schema_version"] == 1, "unexpected BENCH schema version"
assert bench["bit_identical"] is True, "engines must agree bit-for-bit"

# Robustness-guard overhead: the watchdog budget plus the per-result audit
# must be ~free on a clean run — under 3% of the unguarded best-of host
# wall, with a small absolute floor so timer noise on a fast smoke run
# cannot flake the gate.
guard = bench["guard"]
for key in ["watchdog_cycles", "audit", "reps", "clean_host_wall_seconds",
            "guarded_host_wall_seconds", "overhead_fraction", "audited",
            "bit_identical"]:
    assert key in guard, f"missing guard key {key!r}"
assert guard["audit"] is True and guard["watchdog_cycles"] > 0
assert guard["bit_identical"] is True, "guards must not change results"
assert guard["audited"] == bench["pairs"], "every result must be audited"
c = guard["clean_host_wall_seconds"]
g = guard["guarded_host_wall_seconds"]
assert (g - c) < max(0.03 * c, 0.002), \
    f"watchdog+audit overhead too high: clean {c:.4f}s vs guarded {g:.4f}s"
for run in [bench["lockstep"], bench["pipelined"],
            bench["no_fault"]["lockstep"], bench["no_fault"]["pipelined"]]:
    for key in ["host_wall_seconds", "simulated_seconds", "pairs_per_second"]:
        assert key in run, f"missing per-run key {key!r}"
        assert run[key] >= 0
assert "stall" in bench["pipelined"], "pipelined run must report stall metrics"
for key in ["per_rank_stall_seconds", "per_rank_busy_seconds", "max_fifo_occupancy",
            "plan_seconds", "decode_seconds", "encode_overlap_fraction",
            "buffers_reused", "buffers_allocated"]:
    assert key in bench["pipelined"]["stall"], f"missing stall key {key!r}"
print(f"BENCH_dispatch.json OK: straggler speedup {bench['speedup_host_wall']:.2f}x, "
      f"no-fault speedup {bench['no_fault']['speedup_host_wall']:.2f}x, "
      f"guard overhead {100.0 * guard['overhead_fraction']:.2f}%")
EOF

# Simulator-throughput smoke: all three interpreter tiers (checked, fast,
# jit) plus rank-level sequential/parallel conditions. The command itself
# fails unless every condition is bit-identical to the sequential checked
# reference; then check the emitted JSON has the shape downstream tooling
# consumes, and hard-fail on any digest divergence or a jit tier whose
# dynamic instruction count exceeds its static WCET bound.
echo "==> upmem-nw bench --sim true --smoke true"
cargo run --release -q -p upmem-nw-cli --bin upmem-nw -- bench --sim true --smoke true --json "$SIM_JSON"

echo "==> validate BENCH_sim.json"
python3 - "$SIM_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)

for key in ["bench", "schema_version", "cells", "interp_passes", "dpus",
            "launches", "passes_per_launch", "sim_threads", "seed", "interp",
            "rank", "speedup_dpus_per_sec", "speedup_jit_dpus_per_sec",
            "jit_speedup_vs_checked", "jit_speedup_vs_fast", "bit_identical"]:
    assert key in bench, f"missing top-level key {key!r}"
assert bench["bench"] == "sim"
assert bench["schema_version"] == 1, "unexpected BENCH schema version"
assert bench["bit_identical"] is True, "all tiers must agree bit-for-bit"
assert len(bench["interp"]) == 4, "expected pure_c/asm x score/traceback"
for k in bench["interp"]:
    for key in ["kernel", "program_len", "dense_len", "fused_windows",
                "fast_eligible", "jit_eligible", "jit_blocks", "instructions",
                "checked_instr_per_sec", "fast_instr_per_sec",
                "jit_instr_per_sec", "speedup", "jit_speedup",
                "jit_speedup_vs_fast", "bit_identical", "wcet_instructions",
                "dynamic_static_ratio", "jit_dynamic_static_ratio",
                "race_free"]:
        assert key in k, f"missing interp key {key!r}"
    assert k["fast_eligible"] is True and k["bit_identical"] is True
    assert k["jit_eligible"] is True, f"{k['kernel']}: jit gate rejected the kernel"
    assert k["jit_blocks"] > 0
    assert 0 < k["dense_len"] <= k["program_len"]
    assert k["wcet_instructions"] > 0, f"{k['kernel']}: no finite WCET bound"
    for ratio_key in ["dynamic_static_ratio", "jit_dynamic_static_ratio"]:
        assert 0 < k[ratio_key] <= 1.0, \
            f"{k['kernel']}: {ratio_key} {k[ratio_key]} violates WCET soundness"
    assert k["race_free"] is True, f"{k['kernel']}: sanitizer-skip fast path unproven"
for cond in ["sequential_checked", "sequential_fast", "sequential_jit",
             "parallel_checked", "parallel_fast", "parallel_jit"]:
    run = bench["rank"][cond]
    for key in ["wall_seconds", "instructions", "instr_per_sec", "dpus_per_sec"]:
        assert key in run, f"missing rank key {key!r} in {cond}"
        assert run[key] >= 0
    assert run["instructions"] == bench["rank"]["sequential_checked"]["instructions"]
print(f"BENCH_sim.json OK: parallel+fast over sequential+checked "
      f"{bench['speedup_dpus_per_sec']:.2f}x, jit over checked "
      f"{bench['jit_speedup_vs_checked']:.2f}x, jit over fast "
      f"{bench['jit_speedup_vs_fast']:.2f}x")
EOF

# Serving smoke: boot the persistent daemon with a deliberately tiny
# queue, drive it over its unix socket — two warm-up requests, a burst
# fired past queue capacity, an already-expired deadline, then a graceful
# drain — and audit the final report's conservation law: every request is
# answered exactly once (a result, an explicit rejection, or an explicit
# shed), accepted == completed + deadline_missed + shed and
# received == accepted + rejected, nothing silently lost.
echo "==> upmem-nw serve smoke"
SERVE_SOCK="$(mktemp -u -t upmem-nw-ci.XXXXXX.sock)"
SERVE_JSON="$(mktemp -t SERVE_report.XXXXXX.json)"
SERVE_BENCH_JSON="$(mktemp -t BENCH_serve.XXXXXX.json)"
trap 'rm -f "$BENCH_JSON" "$SIM_JSON" "$SERVE_JSON" "$SERVE_BENCH_JSON" "$SERVE_SOCK"' EXIT
cargo build --release -q -p upmem-nw-cli
./target/release/upmem-nw serve --socket "$SERVE_SOCK" --ranks 2 --dpus 4 \
    --band 64 --queue-requests 2 --queue-pairs 8 --max-open 2 \
    --json "$SERVE_JSON" &
SERVE_PID=$!
python3 - "$SERVE_SOCK" <<'EOF'
import json, socket, sys, time

BURST = 10
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
give_up = time.time() + 10
while True:
    try:
        s.connect(sys.argv[1])
        break
    except OSError:
        if time.time() > give_up:
            raise
        time.sleep(0.05)
f = s.makefile("rw")
def send(obj):
    f.write(json.dumps(obj) + "\n")
    f.flush()
def recv():
    return json.loads(f.readline())
seq = "ACGT" * 64

# Warm-up: two well-behaved requests complete with reference-shaped results.
send({"id": "a", "pairs": [[seq, seq], [seq, seq]]})
send({"id": "b", "priority": "interactive", "pairs": [[seq, seq]]})
answers = {v["id"]: v for v in (recv(), recv())}
assert answers["a"]["type"] == "result" and answers["a"]["disposition"] == "ok"
assert [r["status"] for r in answers["a"]["results"]] == ["ok", "ok"]
assert answers["b"]["disposition"] == "ok"

# Burst past queue capacity (2 open tickets + 2 queued < 10 in flight):
# every request must come back as a result or an explicit queue-full
# rejection with a retry hint — never silence.
for i in range(BURST):
    send({"id": f"burst-{i}", "priority": "batch", "pairs": [[seq, seq]]})
burst, rejected = {}, 0
for _ in range(BURST):
    v = recv()
    burst[v["id"]] = v
    if v["type"] == "reject":
        rejected += 1
        assert v["reason"] == "queue-full" and v["retry_after_ms"] >= 1, v
    else:
        assert v["type"] == "result" and v["disposition"] == "ok", v
assert len(burst) == BURST, f"burst answers lost: {sorted(burst)}"

# A request already expired on arrival is reaped, not dropped.
send({"id": "late", "deadline_ms": 0, "pairs": [[seq, seq]]})
v = recv()
assert v["id"] == "late" and v["disposition"] == "deadline-missed"
assert [r["status"] for r in v["results"]] == ["cancelled"]

send({"op": "drain"})
acks = 0
for line in f:
    assert json.loads(line).get("type") == "draining", line
    acks += 1
assert acks == 1, f"expected one drain ack, got {acks}"
print(f"serve client OK: warm-up + burst of {BURST} ({rejected} rejected) "
      f"+ expired deadline all answered, drained on request")
EOF
wait "$SERVE_PID"

echo "==> validate serve report"
python3 - "$SERVE_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    rep = json.load(f)
for key in ["schema_version", "report", "received", "invalid", "accepted",
            "rejected", "shed", "completed", "deadline_missed",
            "pairs_accepted", "pairs_completed", "jobs_cancelled",
            "max_queue_depth", "latency_p50_ms", "latency_p99_ms",
            "wall_seconds", "pairs_per_sec", "drained", "consistent", "fault"]:
    assert key in rep, f"missing report key {key!r}"
assert rep["schema_version"] == 1 and rep["report"] == "serve"
# Counter consistency: the daemon's own books must balance exactly.
assert rep["received"] == rep["accepted"] + rep["rejected"], rep
assert rep["accepted"] == rep["completed"] + rep["deadline_missed"] + rep["shed"], rep
assert rep["consistent"] is True
# 2 warm-up + 10 burst + 1 expired; the burst is same-priority so nothing
# sheds, and exactly the expired request misses its deadline.
assert rep["received"] == 13, rep
assert rep["deadline_missed"] == 1 and rep["shed"] == 0, rep
assert rep["completed"] == rep["accepted"] - 1, rep
assert rep["jobs_cancelled"] == 1 and rep["drained"] is True, rep
print(f"serve report OK: {rep['completed']} completed, {rep['rejected']} "
      f"rejected, {rep['deadline_missed']} deadline-missed, books balance")
EOF

# Service load benchmark at smoke scale: closed-loop capacity estimate,
# then open-loop Poisson phases at 0.5x/1x/2x capacity. No throughput or
# latency asserts (load phases are timing-sensitive and CI machines are
# noisy) — but the conservation law must hold in every phase: overload
# surfaces as explicit rejections, sheds, and deadline misses, never as
# lost requests.
echo "==> upmem-nw bench --serve true --smoke true"
./target/release/upmem-nw bench --serve true --smoke true --json "$SERVE_BENCH_JSON"

echo "==> validate BENCH_serve.json"
python3 - "$SERVE_BENCH_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
for key in ["bench", "schema_version", "ranks", "dpus_per_rank", "band",
            "seed", "pairs_per_request", "requests_per_phase", "open_tickets",
            "capacity_window", "queue_requests", "capacity_pairs_per_sec",
            "deadline_ms", "phases"]:
    assert key in bench, f"missing top-level key {key!r}"
assert bench["bench"] == "serve" and bench["schema_version"] == 1
assert bench["capacity_pairs_per_sec"] > 0
assert [p["offered_multiple"] for p in bench["phases"]] == [0.5, 1.0, 2.0]
n = bench["requests_per_phase"]
for p in bench["phases"]:
    for key in ["offered_pairs_per_sec", "received", "accepted", "rejected",
                "shed", "completed", "deadline_missed", "pairs_completed",
                "pairs_per_sec", "latency_p50_ms", "latency_p99_ms",
                "max_queue_depth", "consistent"]:
        assert key in p, f"missing phase key {key!r}"
    assert p["received"] == n, p
    assert p["received"] == p["accepted"] + p["rejected"], p
    assert p["accepted"] == p["completed"] + p["deadline_missed"] + p["shed"], p
    assert p["consistent"] is True
print(f"BENCH_serve.json OK: capacity "
      f"{bench['capacity_pairs_per_sec']:.0f} pairs/s, "
      f"books balance in all {len(bench['phases'])} phases")
EOF

# Crash-injection smoke: spawn the real daemon as a child against a
# durable state directory, SIGKILL it at seeded points mid-flight, restart
# it against the same state, and let the harness's internal contract
# checks gate the run — every answer bit-identical to a fault-free
# reference, the conservation law balanced across process lifetimes,
# recovery audit-gated (cold run: zero hits; final restart: recovered
# entries and warm hits), and the journaled-but-unanswered admission
# replayed. The second drill flips a byte in the persisted cache state and
# requires the recovery scan to skip the damaged record rather than serve
# or refuse it.
echo "==> upmem-nw chaos --crash true (kill injection, 3 seeded kill points)"
./target/release/upmem-nw chaos --crash true --seed 42 --kills 3
echo "==> upmem-nw chaos --crash true --corrupt-wal true (damaged-record drill)"
./target/release/upmem-nw chaos --crash true --seed 7 --kills 3 --corrupt-wal true

# Backend-router + result-cache properties: the dynamic router must be
# bit-identical to every single backend; cached results must be
# bit-identical to fresh computation under seeded fault plans; results the
# audit would reject must never enter the cache. The serve test drives the
# daemon's persistent cache and the live `stats` op over the unix socket.
echo "==> backend router + result cache tests"
cargo test --release -q --test backend_cache -- --nocapture
cargo test --release -q --test serve_chaos serve_caches_repeats_and_reports_live_stats -- --nocapture

# Backend benchmark at smoke scale: dynamic router vs pim-only vs cpu-only
# vs static split on one mixed workload, plus the result cache at 0/30/90%
# duplicate phases. The command itself fails unless every condition is
# bit-identical and the cache counters conserve; then check the JSON shape
# and the headline properties (lenient ratio — smoke runs are tiny and
# timing-noisy; the committed full-scale artifact is held to the strict
# bound below).
echo "==> upmem-nw bench --backend true --smoke true"
BACKEND_JSON="$(mktemp -t BENCH_backend.XXXXXX.json)"
trap 'rm -f "$BENCH_JSON" "$SIM_JSON" "$SERVE_JSON" "$SERVE_BENCH_JSON" "$SERVE_SOCK" "$BACKEND_JSON"' EXIT
./target/release/upmem-nw bench --backend true --smoke true --json "$BACKEND_JSON"

echo "==> validate BENCH_backend.json (smoke)"
python3 - "$BACKEND_JSON" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)

for key in ["bench", "schema_version", "pairs", "ranks", "dpus_per_rank",
            "band", "cpu_threads", "seed", "auto_modes", "routing",
            "cache_phases", "dup90_cold_speedup", "dup90_warm_speedup",
            "conserved", "bit_identical"]:
    assert key in bench, f"missing top-level key {key!r}"
assert bench["bench"] == "backend"
assert bench["schema_version"] == 1, "unexpected BENCH schema version"
assert bench["bit_identical"] is True, "all backends must agree bit-for-bit"
assert bench["conserved"] is True, "cache counters must conserve"

# The auto-tier calibration probe ran for all four kernels and picked a
# real tier each time.
assert len(bench["auto_modes"]) == 4, "expected pure_c/asm x score/traceback"
for kernel, tier in bench["auto_modes"].items():
    assert tier in ("checked", "fast", "jit"), f"{kernel}: bad tier {tier!r}"

routing = bench["routing"]
for cond in ["router", "pim_only", "cpu_only"]:
    run = routing[cond]
    assert run["wall_seconds"] > 0 and run["pairs_per_second"] > 0, cond
    assert len(run["lanes"]) >= 1, cond
    for lane in run["lanes"]:
        assert lane["pairs"] > 0, f"{cond}: lane {lane['name']} starved"
split = routing["static_split"]
assert split["pim_pairs"] + split["cpu_pairs"] == bench["pairs"], split
assert routing["bit_identical"] is True
# Smoke workloads are a handful of batches; allow generous timing noise.
assert routing["router_vs_best_single"] <= 1.30, \
    f"router {routing['router_vs_best_single']:.2f}x of best single backend"

assert [p["dup_fraction"] for p in bench["cache_phases"]] == [0.0, 0.3, 0.9]
for p in bench["cache_phases"]:
    for which in ["cold_cache", "warm_cache"]:
        c = p[which]
        assert c["hits"] + c["misses"] == c["lookups"], \
            f"dup {p['dup_fraction']}: {which} does not conserve: {c}"
        assert c["lookups"] == bench["pairs"], f"dup {p['dup_fraction']}: {which}"
    assert p["conserved"] is True and p["bit_identical"] is True, p
    assert p["warm_cache"]["hit_rate"] == 1.0, "warm run must hit on everything"
dup90 = bench["cache_phases"][-1]
assert dup90["cold_speedup"] >= 2.0, \
    f"90%-dup cold speedup only {dup90['cold_speedup']:.2f}x"
print(f"BENCH_backend.json (smoke) OK: router "
      f"{routing['router_vs_best_single']:.2f}x of best single, dup90 cold "
      f"{dup90['cold_speedup']:.2f}x / warm {dup90['warm_speedup']:.2f}x")
EOF

# The committed full-scale artifact carries the acceptance numbers: the
# dynamic router beats/ties the best single backend AND the static split
# on the mixed workload, and the 90%-duplicate phase clears 5x end to end.
# On a single-core host the two lanes cannot physically overlap, so the
# best the router can do there is a tie — the bound allows 5% timer noise
# around one.
echo "==> validate committed BENCH_backend.json (full scale)"
python3 - BENCH_backend.json <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    bench = json.load(f)
assert bench["bench"] == "backend" and bench["schema_version"] == 1
assert bench["bit_identical"] is True and bench["conserved"] is True
r = bench["routing"]
assert r["router_vs_best_single"] <= 1.05, \
    f"router must beat/tie the best single backend: {r['router_vs_best_single']:.3f}x"
assert r["router_vs_split"] <= 1.05, \
    f"router must beat/tie the static split: {r['router_vs_split']:.3f}x"
assert bench["dup90_cold_speedup"] >= 5.0, \
    f"90%-dup cold speedup only {bench['dup90_cold_speedup']:.2f}x"
assert bench["dup90_warm_speedup"] >= 5.0
print(f"committed BENCH_backend.json OK: router "
      f"{r['router_vs_best_single']:.2f}x of best single, "
      f"{r['router_vs_split']:.2f}x of static split, dup90 cold "
      f"{bench['dup90_cold_speedup']:.2f}x")
EOF

# Parallel-vs-sequential equivalence: the intra-rank pool must be
# bit-identical to the sequential launch, standalone and under the full
# dispatch stack with fault plans.
echo "==> intra-rank equivalence tests"
cargo test --release -q -p pim-sim parallel_launch_matches_sequential_bit_for_bit -- --nocapture
cargo test --release -q -p pim-host --test pipeline_equivalence parallel_intra_rank_is_bit_identical_under_fault_plans -- --nocapture

# Hang + silent-corruption equivalence: both recovery engines must deliver
# the fault-free answers under livelocks and checksum-valid CIGAR
# corruption, and the lockstep fault accounting must replay bit-identically.
echo "==> hang/silent-corruption recovery equivalence"
cargo test --release -q -p pim-host --test pipeline_equivalence engines_survive_hangs_and_silent_corruption_with_audited_results -- --nocapture

echo "CI OK"
