//! WFA-generator-style synthetic pair datasets: S1000, S10000, S30000.
//!
//! The paper generates these "using the data generator provided in the WFA
//! GitHub repository" (§5): independent random reads of a nominal length,
//! each paired with a mutated copy at a uniform error rate. The dataset is
//! *organized by pairs*, which makes it the most communication-heavy
//! workload (§5.2).

use crate::mutate::{mutate, ErrorModel};
use crate::{random_seq, rng, Scale};
use nw_core::seq::DnaSeq;

/// The three synthetic presets of §5.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyntheticPreset {
    /// ~1 000 bp reads, 10 M pairs at full scale.
    S1000,
    /// ~10 000 bp reads, 1 M pairs.
    S10000,
    /// ~30 000 bp reads, 500 k pairs.
    S30000,
}

impl SyntheticPreset {
    /// Nominal read length.
    pub fn read_len(self) -> usize {
        match self {
            SyntheticPreset::S1000 => 1_000,
            SyntheticPreset::S10000 => 10_000,
            SyntheticPreset::S30000 => 30_000,
        }
    }

    /// Pair count at full (paper) scale.
    pub fn full_pairs(self) -> u64 {
        match self {
            SyntheticPreset::S1000 => 10_000_000,
            SyntheticPreset::S10000 => 1_000_000,
            SyntheticPreset::S30000 => 500_000,
        }
    }

    /// Dataset label as used in the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            SyntheticPreset::S1000 => "S1000",
            SyntheticPreset::S10000 => "S10000",
            SyntheticPreset::S30000 => "S30000",
        }
    }

    /// All three presets.
    pub const ALL: [SyntheticPreset; 3] = [
        SyntheticPreset::S1000,
        SyntheticPreset::S10000,
        SyntheticPreset::S30000,
    ];
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticParams {
    /// Nominal read length.
    pub read_len: usize,
    /// +- jitter applied to each read's length (fraction of `read_len`).
    pub len_jitter: f64,
    /// Uniform error rate between the two reads of a pair (WFA's `-e`).
    pub error_rate: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticParams {
    /// Parameters for a preset (2 % divergence, the WFA generator default
    /// regime for "similar sequences").
    pub fn preset(p: SyntheticPreset, seed: u64) -> Self {
        Self {
            read_len: p.read_len(),
            len_jitter: 0.02,
            error_rate: 0.02,
            seed,
        }
    }

    /// Generate `count` pairs.
    pub fn generate(&self, count: usize) -> Vec<(DnaSeq, DnaSeq)> {
        let mut r = rng(self.seed);
        let model = ErrorModel::uniform(self.error_rate);
        (0..count)
            .map(|_| {
                let jitter = (self.read_len as f64 * self.len_jitter) as usize;
                let len = if jitter > 0 {
                    self.read_len - jitter + r.between(0, 2 * jitter as u64) as usize
                } else {
                    self.read_len
                };
                let a = random_seq(&mut r, len);
                let (b, _) = mutate(&a, &model, &mut r);
                (a, b)
            })
            .collect()
    }

    /// Generate a preset's pair list at the given scale.
    pub fn generate_scaled(
        preset: SyntheticPreset,
        scale: Scale,
        seed: u64,
    ) -> Vec<(DnaSeq, DnaSeq)> {
        let count = scale.apply(preset.full_pairs()) as usize;
        Self::preset(preset, seed).generate(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_the_paper() {
        assert_eq!(SyntheticPreset::S1000.read_len(), 1000);
        assert_eq!(SyntheticPreset::S1000.full_pairs(), 10_000_000);
        assert_eq!(SyntheticPreset::S10000.full_pairs(), 1_000_000);
        assert_eq!(SyntheticPreset::S30000.full_pairs(), 500_000);
        assert_eq!(SyntheticPreset::S30000.label(), "S30000");
    }

    #[test]
    fn pairs_are_similar_but_not_identical() {
        let pairs = SyntheticParams::preset(SyntheticPreset::S1000, 42).generate(5);
        assert_eq!(pairs.len(), 5);
        for (a, b) in &pairs {
            assert_ne!(a, b, "2% error must change something at 1 kb");
            let ratio = b.len() as f64 / a.len() as f64;
            assert!((0.9..1.1).contains(&ratio));
            // Lengths near the nominal 1000 +- 2%.
            assert!((950..=1050).contains(&a.len()), "{}", a.len());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let p = SyntheticParams::preset(SyntheticPreset::S1000, 7);
        assert_eq!(p.generate(3), p.generate(3));
        let q = SyntheticParams::preset(SyntheticPreset::S1000, 8);
        assert_ne!(p.generate(3), q.generate(3));
    }

    #[test]
    fn scaled_generation_divides_counts() {
        let pairs = SyntheticParams::generate_scaled(SyntheticPreset::S10000, Scale(100_000), 1);
        assert_eq!(pairs.len(), 10);
        assert!((9000..=11000).contains(&pairs[0].0.len()));
    }

    #[test]
    fn zero_jitter_is_exact_length() {
        let p = SyntheticParams {
            read_len: 500,
            len_jitter: 0.0,
            error_rate: 0.0,
            seed: 1,
        };
        let pairs = p.generate(2);
        assert_eq!(pairs[0].0.len(), 500);
        assert_eq!(pairs[0].0, pairs[0].1);
    }
}
