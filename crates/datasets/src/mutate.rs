//! The shared sequencing-error model.
//!
//! Reads derive from a template through three error classes:
//! substitutions, insertions and deletions. Indel lengths are geometric
//! (mostly 1–3 bp), plus an optional *structural* gap class producing the
//! >100 bp gaps the paper highlights in its PacBio sets (§5).

use nw_core::rng::SplitMix64;
use nw_core::seq::{Base, DnaSeq};

/// Error model parameters. Rates are per-base probabilities.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorModel {
    /// Substitution probability per base.
    pub substitution: f64,
    /// Insertion-event probability per base.
    pub insertion: f64,
    /// Deletion-event probability per base.
    pub deletion: f64,
    /// Mean geometric indel length (>= 1).
    pub mean_indel_len: f64,
    /// Probability per base of a long structural gap event.
    pub structural_gap: f64,
    /// Structural gap length range (inclusive).
    pub structural_len: (usize, usize),
}

impl ErrorModel {
    /// WFA-generator-style uniform error: `rate` split 1/3 substitutions,
    /// 1/3 insertions, 1/3 deletions, short indels.
    pub fn uniform(rate: f64) -> Self {
        Self {
            substitution: rate / 3.0,
            insertion: rate / 3.0,
            deletion: rate / 3.0,
            mean_indel_len: 1.5,
            structural_gap: 0.0,
            structural_len: (0, 0),
        }
    }

    /// PacBio-like raw reads: high error with occasional long gaps
    /// ("a high error rate and the presence of significant gaps (exceeding
    /// 100 bp)", §5).
    pub fn pacbio_raw() -> Self {
        Self {
            substitution: 0.04,
            insertion: 0.045,
            deletion: 0.045,
            mean_indel_len: 2.0,
            structural_gap: 0.00004,
            structural_len: (100, 400),
        }
    }

    /// Total per-base event probability (sanity checks).
    pub fn total_rate(&self) -> f64 {
        self.substitution + self.insertion + self.deletion + self.structural_gap
    }
}

/// What a mutation pass actually did (for asserting dataset statistics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MutationStats {
    /// Substituted bases.
    pub substitutions: usize,
    /// Inserted bases (sum of insertion lengths).
    pub inserted: usize,
    /// Deleted bases.
    pub deleted: usize,
    /// Structural gap events.
    pub structural_gaps: usize,
    /// Longest single gap produced.
    pub max_gap: usize,
}

fn geometric_len(rng: &mut SplitMix64, mean: f64) -> usize {
    // Geometric with success probability 1/mean, at least 1.
    let p = (1.0 / mean.max(1.0)).clamp(0.01, 1.0);
    let mut len = 1;
    while len < 64 && !rng.chance(p) {
        len += 1;
    }
    len
}

/// Apply the error model to `template`, returning the read and statistics.
pub fn mutate(
    template: &DnaSeq,
    model: &ErrorModel,
    rng: &mut SplitMix64,
) -> (DnaSeq, MutationStats) {
    let mut out: Vec<Base> = Vec::with_capacity(template.len() + 16);
    let mut stats = MutationStats::default();
    let mut i = 0usize;
    while i < template.len() {
        let roll: f64 = rng.next_f64();
        let mut acc = model.structural_gap;
        if roll < acc {
            // Structural event: long insertion or deletion, 50/50.
            let (lo, hi) = model.structural_len;
            let len = if hi > lo {
                rng.between(lo as u64, hi as u64) as usize
            } else {
                lo.max(1)
            };
            stats.structural_gaps += 1;
            stats.max_gap = stats.max_gap.max(len);
            if rng.chance(0.5) {
                for _ in 0..len {
                    out.push(Base::from_code(rng.below(4) as u8));
                }
                stats.inserted += len;
                // Template position unchanged; the copy continues below.
                out.push(template.get(i));
                i += 1;
            } else {
                let len = len.min(template.len() - i);
                stats.deleted += len;
                i += len;
            }
            continue;
        }
        acc += model.substitution;
        if roll < acc {
            let original = template.get(i);
            let replacement = loop {
                let b = Base::from_code(rng.below(4) as u8);
                if b != original {
                    break b;
                }
            };
            out.push(replacement);
            stats.substitutions += 1;
            i += 1;
            continue;
        }
        acc += model.insertion;
        if roll < acc {
            let len = geometric_len(rng, model.mean_indel_len);
            for _ in 0..len {
                out.push(Base::from_code(rng.below(4) as u8));
            }
            stats.inserted += len;
            stats.max_gap = stats.max_gap.max(len);
            out.push(template.get(i));
            i += 1;
            continue;
        }
        acc += model.deletion;
        if roll < acc {
            let len = geometric_len(rng, model.mean_indel_len).min(template.len() - i);
            stats.deleted += len;
            stats.max_gap = stats.max_gap.max(len);
            i += len;
            continue;
        }
        out.push(template.get(i));
        i += 1;
    }
    (DnaSeq::from_bases(out), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{random_seq, rng};

    #[test]
    fn zero_error_is_identity() {
        let mut r = rng(3);
        let t = random_seq(&mut r, 500);
        let (read, stats) = mutate(&t, &ErrorModel::uniform(0.0), &mut r);
        assert_eq!(read, t);
        assert_eq!(stats, MutationStats::default());
    }

    #[test]
    fn error_rate_is_roughly_respected() {
        let mut r = rng(11);
        let t = random_seq(&mut r, 50_000);
        let model = ErrorModel::uniform(0.06);
        let (read, stats) = mutate(&t, &model, &mut r);
        let events = stats.substitutions as f64;
        // Substitution rate = 2% of 50k = ~1000, allow wide tolerance.
        assert!(events > 600.0 && events < 1500.0, "{stats:?}");
        // Length roughly preserved (ins ~ del).
        let diff = read.len() as i64 - t.len() as i64;
        assert!(diff.unsigned_abs() < 1000, "length drift {diff}");
    }

    #[test]
    fn mutation_is_deterministic_per_seed() {
        let t = random_seq(&mut rng(5), 2000);
        let model = ErrorModel::uniform(0.05);
        let (a, sa) = mutate(&t, &model, &mut rng(99));
        let (b, sb) = mutate(&t, &model, &mut rng(99));
        assert_eq!(a, b);
        assert_eq!(sa, sb);
    }

    #[test]
    fn pacbio_model_produces_long_gaps() {
        let mut r = rng(21);
        let t = random_seq(&mut r, 60_000);
        let model = ErrorModel::pacbio_raw();
        let mut saw_structural = false;
        for _ in 0..10 {
            let (_, stats) = mutate(&t, &model, &mut r);
            if stats.structural_gaps > 0 {
                saw_structural = true;
                assert!(stats.max_gap >= 100, "{stats:?}");
            }
        }
        assert!(
            saw_structural,
            "expected at least one structural gap over 600 kb"
        );
    }

    #[test]
    fn substitutions_never_preserve_the_base() {
        let mut r = rng(8);
        let t = random_seq(&mut r, 5000);
        let model = ErrorModel {
            substitution: 1.0,
            insertion: 0.0,
            deletion: 0.0,
            mean_indel_len: 1.0,
            structural_gap: 0.0,
            structural_len: (0, 0),
        };
        let (read, stats) = mutate(&t, &model, &mut r);
        assert_eq!(stats.substitutions, t.len());
        for i in 0..t.len() {
            assert_ne!(read.get(i), t.get(i), "position {i}");
        }
    }

    #[test]
    fn geometric_lengths_have_sane_mean() {
        let mut r = rng(13);
        let lens: Vec<usize> = (0..2000).map(|_| geometric_len(&mut r, 2.0)).collect();
        let mean = lens.iter().sum::<usize>() as f64 / lens.len() as f64;
        assert!(mean > 1.4 && mean < 2.6, "mean {mean}");
        assert!(lens.iter().all(|&l| l >= 1));
    }

    #[test]
    fn total_rate_sums_components() {
        let m = ErrorModel::uniform(0.06);
        assert!((m.total_rate() - 0.06).abs() < 1e-12);
    }
}
