//! PacBio-like repeat-read sets for the consensus experiment (§5.4).
//!
//! The paper's second real dataset: "38,512 sets of PacBio raw reads. Each
//! set is composed of 10 to 30 repeated reads of the same region,
//! characterized by a high error rate and the presence of significant gaps
//! (exceeding 100 bp). Within each set, an all-against-all alignment is
//! performed." We reproduce the statistics: per set, one random template
//! region and 10–30 noisy reads of it under the [`ErrorModel::pacbio_raw`]
//! model.

use crate::mutate::{mutate, ErrorModel};
use crate::{random_seq, rng, Scale};
use nw_core::seq::DnaSeq;

/// One set of repeated reads over the same region.
#[derive(Debug, Clone, PartialEq)]
pub struct ReadSet {
    /// The (hidden) template region — kept for validation, never shipped to
    /// the aligners.
    pub template: DnaSeq,
    /// The noisy reads.
    pub reads: Vec<DnaSeq>,
}

impl ReadSet {
    /// All unordered read pairs of the set (the all-against-all alignment
    /// the consensus step performs).
    pub fn pairs(&self) -> Vec<(DnaSeq, DnaSeq)> {
        let mut out = Vec::with_capacity(self.reads.len() * (self.reads.len() - 1) / 2);
        for i in 0..self.reads.len() {
            for j in (i + 1)..self.reads.len() {
                out.push((self.reads[i].clone(), self.reads[j].clone()));
            }
        }
        out
    }

    /// Number of alignments the set induces.
    pub fn pair_count(&self) -> u64 {
        let n = self.reads.len() as u64;
        n * (n - 1) / 2
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PacbioParams {
    /// Number of sets (38 512 at full scale).
    pub sets: usize,
    /// Template region length range.
    pub region_len: (usize, usize),
    /// Reads per set range (paper: 10 to 30).
    pub reads_per_set: (usize, usize),
    /// Error model.
    pub error: ErrorModel,
    /// Seed.
    pub seed: u64,
}

impl PacbioParams {
    /// Full-scale set count used by the paper.
    pub const FULL_SETS: usize = 38_512;

    /// Paper-like parameters at a given scale. Region lengths follow the
    /// long-read regime the paper's workload implies (multi-kb).
    pub fn scaled(scale: Scale, seed: u64) -> Self {
        Self {
            sets: scale.apply(Self::FULL_SETS as u64) as usize,
            region_len: (3_000, 12_000),
            reads_per_set: (10, 30),
            error: ErrorModel::pacbio_raw(),
            seed,
        }
    }

    /// Generate the sets.
    pub fn generate(&self) -> Vec<ReadSet> {
        let mut r = rng(self.seed);
        (0..self.sets)
            .map(|_| {
                let len = r.between(self.region_len.0 as u64, self.region_len.1 as u64) as usize;
                let template = random_seq(&mut r, len);
                let n_reads =
                    r.between(self.reads_per_set.0 as u64, self.reads_per_set.1 as u64) as usize;
                let reads = (0..n_reads)
                    .map(|_| mutate(&template, &self.error, &mut r).0)
                    .collect();
                ReadSet { template, reads }
            })
            .collect()
    }

    /// Total alignments across all sets (quadratic per set — the property
    /// that makes this workload compute-heavy relative to its transfers,
    /// §5.2).
    pub fn total_pairs(sets: &[ReadSet]) -> u64 {
        sets.iter().map(|s| s.pair_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> PacbioParams {
        PacbioParams {
            sets: 4,
            region_len: (800, 1200),
            reads_per_set: (4, 8),
            error: ErrorModel::pacbio_raw(),
            seed: 17,
        }
    }

    #[test]
    fn set_shape_matches_parameters() {
        let sets = tiny().generate();
        assert_eq!(sets.len(), 4);
        for s in &sets {
            assert!((800..=1200).contains(&s.template.len()));
            assert!((4..=8).contains(&s.reads.len()));
            for read in &s.reads {
                // High error keeps reads near template length but not equal.
                let ratio = read.len() as f64 / s.template.len() as f64;
                assert!((0.7..1.3).contains(&ratio), "ratio {ratio}");
            }
        }
    }

    #[test]
    fn pairs_are_all_unordered_combinations() {
        let sets = tiny().generate();
        let s = &sets[0];
        let n = s.reads.len();
        assert_eq!(s.pairs().len(), n * (n - 1) / 2);
        assert_eq!(s.pair_count() as usize, s.pairs().len());
    }

    #[test]
    fn total_pairs_sums_sets() {
        let sets = tiny().generate();
        let expect: u64 = sets.iter().map(|s| s.pair_count()).sum();
        assert_eq!(PacbioParams::total_pairs(&sets), expect);
        assert!(expect > 0);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        assert_eq!(tiny().generate(), tiny().generate());
        let other = PacbioParams { seed: 18, ..tiny() };
        assert_ne!(tiny().generate(), other.generate());
    }

    #[test]
    fn scaled_counts() {
        let p = PacbioParams::scaled(Scale(1000), 3);
        assert_eq!(p.sets, 38);
        assert_eq!(PacbioParams::scaled(Scale::FULL, 3).sets, 38_512);
    }

    #[test]
    fn reads_differ_from_each_other() {
        let sets = tiny().generate();
        let reads = &sets[0].reads;
        for i in 0..reads.len() {
            for j in (i + 1)..reads.len() {
                assert_ne!(reads[i], reads[j], "independent noise must differ");
            }
        }
    }
}
