//! A 16S ribosomal RNA-like dataset for the phylogeny experiment (§5.3).
//!
//! The paper uses 9 557 curated complete 16S sequences from NCBI (August
//! 2022). 16S rRNA is ~1.5 kb, highly conserved, with species diverging a
//! few percent up to ~20 %. We reproduce that structure by evolving a root
//! sequence down a random binary phylogeny: each branch applies a small
//! amount of divergence, so pairwise distances accumulate with tree depth —
//! exactly the all-vs-all comparison profile the experiment measures.

use crate::mutate::{mutate, ErrorModel};
use crate::{random_seq, rng, Scale};
use nw_core::rng::SplitMix64;
use nw_core::seq::DnaSeq;

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SixteenSParams {
    /// Number of sequences (9 557 at full scale).
    pub count: usize,
    /// Root sequence length (16S is ~1 542 bp in E. coli).
    pub root_len: usize,
    /// Divergence applied per tree branch.
    pub branch_divergence: f64,
    /// Seed.
    pub seed: u64,
}

impl SixteenSParams {
    /// Full-scale count used by the paper.
    pub const FULL_COUNT: usize = 9_557;

    /// Paper-like parameters at a given scale.
    pub fn scaled(scale: Scale, seed: u64) -> Self {
        Self {
            count: scale.apply(Self::FULL_COUNT as u64) as usize,
            root_len: 1_542,
            branch_divergence: 0.02,
            seed,
        }
    }

    /// Generate the sequence set by splitting lineages until `count` leaves
    /// exist, then applying one final branch of divergence to each leaf.
    pub fn generate(&self) -> Vec<DnaSeq> {
        let mut r = rng(self.seed);
        let model = branch_model(self.branch_divergence);
        let root = random_seq(&mut r, self.root_len);
        let mut population = vec![root];
        while population.len() < self.count {
            // Pick a random lineage, split it into two diverged children.
            let idx = r.below(population.len() as u64) as usize;
            let parent = population.swap_remove(idx);
            population.push(evolve(&parent, &model, &mut r));
            population.push(evolve(&parent, &model, &mut r));
        }
        population.truncate(self.count);
        for seq in &mut population {
            *seq = evolve(seq, &model, &mut r);
        }
        population
    }

    /// Number of pairwise alignments in the all-vs-all comparison.
    pub fn all_vs_all_pairs(&self) -> u64 {
        let n = self.count as u64;
        n * (n - 1) / 2
    }
}

fn branch_model(divergence: f64) -> ErrorModel {
    // 16S divergence is mostly substitutions, but the nine hyper-variable
    // regions (V1-V9) insert and delete whole stretches between species —
    // that is what makes deep pairwise alignments drift off the diagonal
    // and is why the paper's static band needs 512 diagonals for 85%
    // accuracy. Model: frequent short indels plus rare variable-region
    // events of 20-80 bp per branch.
    ErrorModel {
        substitution: divergence * 0.80,
        insertion: divergence * 0.09,
        deletion: divergence * 0.09,
        mean_indel_len: 1.8,
        structural_gap: divergence * 0.008,
        structural_len: (15, 60),
    }
}

fn evolve(parent: &DnaSeq, model: &ErrorModel, rng: &mut SplitMix64) -> DnaSeq {
    mutate(parent, model, rng).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::full::FullAligner;
    use nw_core::ScoringScheme;

    fn tiny() -> SixteenSParams {
        SixteenSParams {
            count: 12,
            root_len: 400,
            branch_divergence: 0.012,
            seed: 5,
        }
    }

    #[test]
    fn generates_requested_count() {
        let seqs = tiny().generate();
        assert_eq!(seqs.len(), 12);
        for s in &seqs {
            // Lengths stay near the root length (indels are rare and short).
            assert!((280..=520).contains(&s.len()), "{}", s.len());
        }
    }

    #[test]
    fn sequences_are_related_but_distinct() {
        let seqs = tiny().generate();
        let full = FullAligner::affine(ScoringScheme::default());
        let mut identical = 0;
        for i in 0..seqs.len() {
            for j in (i + 1)..seqs.len() {
                if seqs[i] == seqs[j] {
                    identical += 1;
                }
                let aln = full.align(&seqs[i], &seqs[j]).unwrap();
                // Related: identity well above random (~25%).
                assert!(
                    aln.identity() > 0.5,
                    "pair ({i},{j}) identity {}",
                    aln.identity()
                );
            }
        }
        assert_eq!(identical, 0, "no two leaves should be byte-identical");
    }

    #[test]
    fn divergence_varies_across_pairs() {
        // A phylogeny produces a *spread* of distances, not a constant.
        let seqs = tiny().generate();
        let full = FullAligner::affine(ScoringScheme::default());
        let mut identities: Vec<f64> = Vec::new();
        for i in 0..seqs.len() {
            for j in (i + 1)..seqs.len() {
                identities.push(full.align(&seqs[i], &seqs[j]).unwrap().identity());
            }
        }
        let min = identities.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = identities.iter().cloned().fold(0.0, f64::max);
        assert!(max - min > 0.01, "spread {min}..{max} too narrow");
    }

    #[test]
    fn scaled_parameters() {
        let p = SixteenSParams::scaled(Scale(100), 1);
        assert_eq!(p.count, 95);
        assert_eq!(p.root_len, 1542);
        let full = SixteenSParams::scaled(Scale::FULL, 1);
        assert_eq!(full.count, 9557);
    }

    #[test]
    fn all_vs_all_pair_count() {
        let p = SixteenSParams {
            count: 10,
            ..tiny()
        };
        assert_eq!(p.all_vs_all_pairs(), 45);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(tiny().generate(), tiny().generate());
        let other = SixteenSParams { seed: 6, ..tiny() };
        assert_ne!(tiny().generate(), other.generate());
    }
}
