//! Minimal FASTA serialization: the interchange format of the paper's
//! pipeline ("each character of the DNA sequence is encoded on one byte
//! (ASCII character), as it comes from a human-readable text file on disk",
//! §4.1.1 — the host's 2-bit encoding starts from exactly this).

use nw_core::error::AlignError;
use nw_core::seq::{DnaSeq, NPolicy};
use std::io::{self, BufRead, Write};

/// A named FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Header line without the leading `>`.
    pub name: String,
    /// The sequence.
    pub seq: DnaSeq,
}

/// Errors from FASTA parsing.
#[derive(Debug)]
pub enum FastaError {
    /// Underlying IO failure.
    Io(io::Error),
    /// Sequence data before any `>` header.
    MissingHeader {
        /// 1-based line number.
        line: usize,
    },
    /// A sequence byte the alphabet (plus the `N` policy) rejects.
    BadSequence {
        /// Name of the offending record.
        record: String,
        /// The underlying alphabet error.
        source: AlignError,
    },
}

impl std::fmt::Display for FastaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FastaError::Io(e) => write!(f, "io error: {e}"),
            FastaError::MissingHeader { line } => {
                write!(f, "line {line}: sequence data before any '>' header")
            }
            FastaError::BadSequence { record, source } => {
                write!(f, "record {record:?}: {source}")
            }
        }
    }
}

impl std::error::Error for FastaError {}

impl From<io::Error> for FastaError {
    fn from(e: io::Error) -> Self {
        FastaError::Io(e)
    }
}

/// Parse FASTA from a reader. Lower-case bases are accepted; `N` handling
/// follows `policy`.
pub fn read<R: BufRead>(reader: R, policy: NPolicy) -> Result<Vec<Record>, FastaError> {
    let mut records: Vec<Record> = Vec::new();
    let mut current: Option<(String, Vec<u8>)> = None;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('>') {
            if let Some((name, bytes)) = current.take() {
                records.push(finish(name, &bytes, policy)?);
            }
            current = Some((name.trim().to_string(), Vec::new()));
        } else {
            match &mut current {
                Some((_, bytes)) => bytes.extend_from_slice(line.as_bytes()),
                None => return Err(FastaError::MissingHeader { line: lineno + 1 }),
            }
        }
    }
    if let Some((name, bytes)) = current.take() {
        records.push(finish(name, &bytes, policy)?);
    }
    Ok(records)
}

fn finish(name: String, bytes: &[u8], policy: NPolicy) -> Result<Record, FastaError> {
    match DnaSeq::from_ascii_with(bytes, policy) {
        Ok(seq) => Ok(Record { name, seq }),
        Err(source) => Err(FastaError::BadSequence {
            record: name,
            source,
        }),
    }
}

/// Write records as FASTA with 70-column wrapping.
pub fn write<W: Write>(mut writer: W, records: &[Record]) -> io::Result<()> {
    for r in records {
        writeln!(writer, ">{}", r.name)?;
        let ascii = r.seq.to_ascii();
        for chunk in ascii.chunks(70) {
            writer.write_all(chunk)?;
            writer.write_all(b"\n")?;
        }
    }
    Ok(())
}

/// Parse FASTA from a string.
pub fn read_str(text: &str, policy: NPolicy) -> Result<Vec<Record>, FastaError> {
    read(text.as_bytes(), policy)
}

/// Serialize records to a string.
pub fn write_string(records: &[Record]) -> String {
    let mut out = Vec::new();
    write(&mut out, records).expect("writing to a Vec cannot fail");
    String::from_utf8(out).expect("FASTA is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let records = vec![
            Record {
                name: "read1".into(),
                seq: DnaSeq::from_ascii(b"ACGTACGT").unwrap(),
            },
            Record {
                name: "read2 extra info".into(),
                seq: DnaSeq::from_ascii(&b"ACGT".repeat(40)).unwrap(),
            },
        ];
        let text = write_string(&records);
        assert!(text.starts_with(">read1\nACGTACGT\n"));
        let parsed = read_str(&text, NPolicy::Reject).unwrap();
        assert_eq!(parsed, records);
    }

    #[test]
    fn long_sequences_wrap_at_70() {
        let records = vec![Record {
            name: "long".into(),
            seq: DnaSeq::from_ascii(&b"A".repeat(150)).unwrap(),
        }];
        let text = write_string(&records);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4); // header + 70 + 70 + 10
        assert_eq!(lines[1].len(), 70);
        assert_eq!(lines[3].len(), 10);
    }

    #[test]
    fn multiline_records_are_joined() {
        let text = ">r\nACGT\nACGT\n\n>s\nTT\n";
        let parsed = read_str(text, NPolicy::Reject).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].seq.to_ascii(), b"ACGTACGT");
        assert_eq!(parsed[1].name, "s");
    }

    #[test]
    fn sequence_before_header_is_an_error() {
        let err = read_str("ACGT\n>r\nAC\n", NPolicy::Reject).unwrap_err();
        assert!(matches!(err, FastaError::MissingHeader { line: 1 }));
    }

    #[test]
    fn n_policy_is_applied() {
        let text = ">r\nACNGT\n";
        assert!(read_str(text, NPolicy::Reject).is_err());
        let parsed = read_str(text, NPolicy::RandomSubstitute { seed: 1 }).unwrap();
        assert_eq!(parsed[0].seq.len(), 5);
    }

    #[test]
    fn lowercase_accepted() {
        let parsed = read_str(">r\nacgt\n", NPolicy::Reject).unwrap();
        assert_eq!(parsed[0].seq.to_ascii(), b"ACGT");
    }

    #[test]
    fn bad_bytes_name_the_record() {
        let err = read_str(">weird\nACGQ\n", NPolicy::Reject).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("weird"), "{msg}");
    }
}
