#![warn(missing_docs)]

//! # datasets — workload generators and sequence IO
//!
//! The paper evaluates on five datasets (§5). Three are synthetic and two
//! are real; we do not have the real ones (NCBI 16S dump from August 2022,
//! proprietary PacBio runs), so seeded generators reproduce their
//! *documented statistics* — lengths, divergence, gap structure, set sizes:
//!
//! * [`synthetic`] — WFA-generator-style pairs: S1000 / S10000 / S30000
//!   (10 M / 1 M / 500 k pairs of ~1 kb / 10 kb / 30 kb reads).
//! * [`sixteen_s`] — 16S rRNA-like sequences (~1.5 kb) evolved along a
//!   random phylogeny, for the all-vs-all comparison of §5.3.
//! * [`pacbio`] — sets of 10–30 noisy long reads of one genomic region with
//!   occasional structural gaps > 100 bp, for the consensus step of §5.4.
//! * [`mutate`] — the shared error model (substitutions + indels with
//!   geometric lengths + rare long structural gaps).
//! * [`fasta`] — FASTA serialization so datasets can be exported/imported.
//!
//! Every generator takes an explicit seed: equal seeds, equal datasets.

pub mod fasta;
pub mod mutate;
pub mod pacbio;
pub mod sixteen_s;
pub mod synthetic;

use nw_core::rng::SplitMix64;
use nw_core::seq::{Base, DnaSeq};

pub use mutate::{ErrorModel, MutationStats};
pub use pacbio::{PacbioParams, ReadSet};
pub use sixteen_s::SixteenSParams;
pub use synthetic::{SyntheticParams, SyntheticPreset};

/// A uniformly random DNA sequence of length `len`.
pub fn random_seq(rng: &mut SplitMix64, len: usize) -> DnaSeq {
    (0..len)
        .map(|_| Base::from_code(rng.below(4) as u8))
        .collect()
}

/// Deterministic RNG from a seed (the in-tree SplitMix64 — no external
/// dependency, same stream on every platform).
pub fn rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// Scale factor applied to dataset sizes: the paper's full datasets (10 M
/// pairs of reads and the like) are divided by this for tractable runs;
/// totals are extrapolated back linearly (documented in EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale(pub u64);

impl Scale {
    /// The paper's full size.
    pub const FULL: Scale = Scale(1);

    /// Scale a count, keeping at least 1.
    pub fn apply(&self, count: u64) -> u64 {
        (count / self.0).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_seq_is_seed_deterministic() {
        let a = random_seq(&mut rng(7), 100);
        let b = random_seq(&mut rng(7), 100);
        assert_eq!(a, b);
        let c = random_seq(&mut rng(8), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn random_seq_uses_all_bases() {
        let s = random_seq(&mut rng(1), 1000);
        let mut seen = [false; 4];
        for b in s.as_slice() {
            seen[b.code() as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn scale_divides_and_floors_at_one() {
        assert_eq!(Scale(1000).apply(10_000_000), 10_000);
        assert_eq!(Scale(1000).apply(500), 1);
        assert_eq!(Scale::FULL.apply(42), 42);
    }
}
