//! Randomized tests for the mini DPU ISA: assembler/interpreter agreement,
//! determinism, and semantic identities the Table-7 measurement relies on.
//!
//! Each test draws many cases from a seeded [`SplitMix64`] stream, so runs
//! are reproducible and need no external property-testing dependency.

use nw_core::rng::SplitMix64;
use pim_sim::isa::{assemble, AluOp, FuseCond, Inst, Machine, Operand, Reg};

fn reg(i: u8) -> Reg {
    Reg::new(i).expect("valid register")
}

const ALU_OPS: [AluOp; 11] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Lsl,
    AluOp::Lsr,
    AluOp::Asr,
    AluOp::Max,
    AluOp::Cmpb4,
    AluOp::Move,
];

fn random_ops(rng: &mut SplitMix64, max_len: u64) -> Vec<(AluOp, u8, u8, i32)> {
    let n = rng.below(max_len) as usize;
    (0..n)
        .map(|_| {
            let op = ALU_OPS[rng.below(ALU_OPS.len() as u64) as usize];
            let rd = rng.below(24) as u8;
            let ra = rng.below(24) as u8;
            let imm = rng.between(0, 2000) as i32 - 1000;
            (op, rd, ra, imm)
        })
        .collect()
}

/// Run a straight-line ALU program built from `(op, rd, ra, imm)` tuples.
fn run_straight_line(ops: &[(AluOp, u8, u8, i32)], init: &[u32]) -> [u32; 24] {
    let mut prog: Vec<Inst> = ops
        .iter()
        .map(|&(op, rd, ra, imm)| Inst::Alu {
            op,
            rd: reg(rd),
            ra: reg(ra),
            b: Operand::Imm(imm),
            fuse: None,
        })
        .collect();
    prog.push(Inst::Halt);
    let mut m = Machine::new();
    m.regs[..init.len().min(24)].copy_from_slice(&init[..init.len().min(24)]);
    m.run(&prog, &mut [], 10_000)
        .expect("straight line cannot fault");
    m.regs
}

#[test]
fn interpreter_is_deterministic() {
    let mut rng = SplitMix64::new(0xA11CE);
    for _ in 0..200 {
        let ops = random_ops(&mut rng, 40);
        let init: Vec<u32> = (0..24).map(|_| rng.next_u64() as u32).collect();
        let a = run_straight_line(&ops, &init);
        let b = run_straight_line(&ops, &init);
        assert_eq!(a, b);
    }
}

#[test]
fn instruction_count_equals_program_length_for_straight_line() {
    let mut rng = SplitMix64::new(0xB0B);
    for _ in 0..200 {
        let ops = random_ops(&mut rng, 60);
        let mut prog: Vec<Inst> = ops
            .iter()
            .map(|&(op, rd, ra, imm)| Inst::Alu {
                op,
                rd: reg(rd),
                ra: reg(ra),
                b: Operand::Imm(imm),
                fuse: None,
            })
            .collect();
        prog.push(Inst::Halt);
        let mut m = Machine::new();
        let stats = m.run(&prog, &mut [], 10_000).unwrap();
        assert_eq!(stats.instructions, prog.len() as u64);
        assert_eq!(stats.taken_jumps, 0);
    }
}

#[test]
fn cmpb4_matches_bytewise_equality() {
    let mut rng = SplitMix64::new(0xC4);
    for trial in 0..300 {
        // Mix fully random pairs with near-equal pairs so matching bytes
        // actually occur.
        let a = rng.next_u64() as u32;
        let b = if trial % 2 == 0 {
            rng.next_u64() as u32
        } else {
            a ^ (1 << rng.below(32))
        };
        let prog = [
            Inst::Alu {
                op: AluOp::Move,
                rd: reg(1),
                ra: reg(0),
                b: Operand::Imm(a as i32),
                fuse: None,
            },
            Inst::Alu {
                op: AluOp::Move,
                rd: reg(2),
                ra: reg(0),
                b: Operand::Imm(b as i32),
                fuse: None,
            },
            Inst::Alu {
                op: AluOp::Cmpb4,
                rd: reg(3),
                ra: reg(1),
                b: Operand::Reg(reg(2)),
                fuse: None,
            },
            Inst::Halt,
        ];
        let mut m = Machine::new();
        m.run(&prog, &mut [], 10).unwrap();
        let result = m.regs[3].to_le_bytes();
        for (i, (&x, &y)) in a
            .to_le_bytes()
            .iter()
            .zip(b.to_le_bytes().iter())
            .enumerate()
        {
            assert_eq!(result[i], u8::from(x == y), "byte {i} of {a:#x} vs {b:#x}");
        }
    }
}

#[test]
fn fused_jump_equals_unfused_pair() {
    let mut rng = SplitMix64::new(0xF00D);
    for _ in 0..100 {
        // A fused-decrement loop and its unfused compare-and-branch twin
        // must compute the same final register value.
        let dec = rng.between(1, 9) as i64;
        let v = rng.between(0, 99) as i64 + dec; // ensure positive start
        let fused = assemble(&format!(
            "move r1, {v}\nloop:\n  sub r1, r1, {dec}, jgez loop\nhalt"
        ))
        .unwrap();
        let unfused = assemble(&format!(
            "move r1, {v}\nloop:\n  sub r1, r1, {dec}\n  jge r1, 0, loop\nhalt"
        ))
        .unwrap();
        let mut m1 = Machine::new();
        let s1 = m1.run(&fused, &mut [], 100_000).unwrap();
        let mut m2 = Machine::new();
        let s2 = m2.run(&unfused, &mut [], 100_000).unwrap();
        assert_eq!(m1.regs[1], m2.regs[1]);
        // And fusion saves exactly one instruction per taken iteration.
        assert!(s1.instructions < s2.instructions);
    }
}

#[test]
fn memory_round_trip_via_isa() {
    let mut rng = SplitMix64::new(0x3E3);
    for _ in 0..50 {
        let vals: Vec<u32> = (0..rng.between(1, 15))
            .map(|_| rng.next_u64() as u32)
            .collect();
        // Store all values then load them back, through the interpreter.
        let mut src = String::new();
        for (i, v) in vals.iter().enumerate() {
            src.push_str(&format!("move r1, {}\nsw r1, r0, {}\n", *v as i32, i * 4));
        }
        for (i, _) in vals.iter().enumerate() {
            src.push_str(&format!("lw r{}, r0, {}\n", 2 + i % 20, i * 4));
        }
        src.push_str("halt\n");
        let prog = assemble(&src).unwrap();
        let mut wram = vec![0u8; vals.len() * 4 + 8];
        let mut m = Machine::new();
        m.run(&prog, &mut wram, 100_000).unwrap();
        for (i, v) in vals.iter().enumerate() {
            let got = u32::from_le_bytes(wram[i * 4..i * 4 + 4].try_into().unwrap());
            assert_eq!(got, *v);
        }
    }
}

#[test]
fn assembler_rejects_unknown_registers() {
    for idx in 24u8..60 {
        let src = format!("move r{idx}, 1\nhalt");
        assert!(assemble(&src).is_err(), "r{idx} must be rejected");
    }
}

#[test]
fn fuse_conditions_partition() {
    let mut rng = SplitMix64::new(0x9);
    for _ in 0..500 {
        let v = rng.next_u64() as u32;
        assert_ne!(FuseCond::Z.holds(v), FuseCond::Nz.holds(v));
        assert_ne!(FuseCond::Ltz.holds(v), FuseCond::Gez.holds(v));
        assert_ne!(FuseCond::Even.holds(v), FuseCond::Odd.holds(v));
    }
}
