//! Property tests for the mini DPU ISA: assembler/interpreter agreement,
//! determinism, and semantic identities the Table-7 measurement relies on.

use pim_sim::isa::{assemble, AluOp, FuseCond, Inst, Machine, Operand, Reg};
use proptest::prelude::*;

fn reg(i: u8) -> Reg {
    Reg::new(i).expect("valid register")
}

/// Run a straight-line ALU program built from `(op, rd, ra, imm)` tuples.
fn run_straight_line(ops: &[(AluOp, u8, u8, i32)], init: &[u32]) -> [u32; 24] {
    let mut prog: Vec<Inst> = ops
        .iter()
        .map(|&(op, rd, ra, imm)| Inst::Alu {
            op,
            rd: reg(rd),
            ra: reg(ra),
            b: Operand::Imm(imm),
            fuse: None,
        })
        .collect();
    prog.push(Inst::Halt);
    let mut m = Machine::new();
    m.regs[..init.len().min(24)].copy_from_slice(&init[..init.len().min(24)]);
    m.run(&prog, &mut [], 10_000).expect("straight line cannot fault");
    m.regs
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Lsl,
        AluOp::Lsr,
        AluOp::Asr,
        AluOp::Max,
        AluOp::Cmpb4,
        AluOp::Move,
    ])
}

proptest! {
    #[test]
    fn interpreter_is_deterministic(
        ops in prop::collection::vec((arb_alu_op(), 0u8..24, 0u8..24, -1000i32..1000), 0..40),
        init in prop::collection::vec(any::<u32>(), 24),
    ) {
        let a = run_straight_line(&ops, &init);
        let b = run_straight_line(&ops, &init);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn instruction_count_equals_program_length_for_straight_line(
        ops in prop::collection::vec((arb_alu_op(), 0u8..24, 0u8..24, -50i32..50), 0..60),
    ) {
        let mut prog: Vec<Inst> = ops
            .iter()
            .map(|&(op, rd, ra, imm)| Inst::Alu {
                op,
                rd: reg(rd),
                ra: reg(ra),
                b: Operand::Imm(imm),
                fuse: None,
            })
            .collect();
        prog.push(Inst::Halt);
        let mut m = Machine::new();
        let stats = m.run(&prog, &mut [], 10_000).unwrap();
        prop_assert_eq!(stats.instructions, prog.len() as u64);
        prop_assert_eq!(stats.taken_jumps, 0);
    }

    #[test]
    fn cmpb4_matches_bytewise_equality(a in any::<u32>(), b in any::<u32>()) {
        let prog = [
            Inst::Alu { op: AluOp::Move, rd: reg(1), ra: reg(0), b: Operand::Imm(a as i32), fuse: None },
            Inst::Alu { op: AluOp::Move, rd: reg(2), ra: reg(0), b: Operand::Imm(b as i32), fuse: None },
            Inst::Alu { op: AluOp::Cmpb4, rd: reg(3), ra: reg(1), b: Operand::Reg(reg(2)), fuse: None },
            Inst::Halt,
        ];
        let mut m = Machine::new();
        m.run(&prog, &mut [], 10).unwrap();
        let result = m.regs[3].to_le_bytes();
        for (i, (&x, &y)) in a.to_le_bytes().iter().zip(b.to_le_bytes().iter()).enumerate() {
            prop_assert_eq!(result[i], u8::from(x == y), "byte {}", i);
        }
    }

    #[test]
    fn fused_jump_equals_unfused_pair(v in -100i64..100, dec in 1i64..10) {
        // A fused-decrement loop and its unfused compare-and-branch twin
        // must compute the same final register value.
        let v = v.unsigned_abs() as i64 + dec; // ensure positive start
        let fused = assemble(&format!(
            "move r1, {v}\nloop:\n  sub r1, r1, {dec}, jgez loop\nhalt"
        )).unwrap();
        let unfused = assemble(&format!(
            "move r1, {v}\nloop:\n  sub r1, r1, {dec}\n  jge r1, 0, loop\nhalt"
        )).unwrap();
        let mut m1 = Machine::new();
        let s1 = m1.run(&fused, &mut [], 100_000).unwrap();
        let mut m2 = Machine::new();
        let s2 = m2.run(&unfused, &mut [], 100_000).unwrap();
        prop_assert_eq!(m1.regs[1], m2.regs[1]);
        // And fusion saves exactly one instruction per taken iteration.
        prop_assert!(s1.instructions < s2.instructions);
    }

    #[test]
    fn memory_round_trip_via_isa(vals in prop::collection::vec(any::<u32>(), 1..16)) {
        // Store all values then load them back, through the interpreter.
        let mut src = String::new();
        for (i, v) in vals.iter().enumerate() {
            src.push_str(&format!("move r1, {}\nsw r1, r0, {}\n", *v as i32, i * 4));
        }
        for (i, _) in vals.iter().enumerate() {
            src.push_str(&format!("lw r{}, r0, {}\n", 2 + i % 20, i * 4));
        }
        src.push_str("halt\n");
        let prog = assemble(&src).unwrap();
        let mut wram = vec![0u8; vals.len() * 4 + 8];
        let mut m = Machine::new();
        m.run(&prog, &mut wram, 100_000).unwrap();
        for (i, v) in vals.iter().enumerate() {
            let got = u32::from_le_bytes(wram[i * 4..i * 4 + 4].try_into().unwrap());
            prop_assert_eq!(got, *v);
        }
    }

    #[test]
    fn assembler_rejects_unknown_registers(idx in 24u8..60) {
        let src = format!("move r{idx}, 1\nhalt");
        prop_assert!(assemble(&src).is_err());
    }

    #[test]
    fn fuse_conditions_partition(v in any::<u32>()) {
        prop_assert_ne!(FuseCond::Z.holds(v), FuseCond::Nz.holds(v));
        prop_assert_ne!(FuseCond::Ltz.holds(v), FuseCond::Gez.holds(v));
        prop_assert_ne!(FuseCond::Even.holds(v), FuseCond::Odd.holds(v));
    }
}
