//! The power/energy model of §5.6, following the methodology of Falevoz &
//! Legriel: sum component power from specifications (CPU, DIMMs, chassis,
//! fans, PSU) and multiply by execution time.

/// Power envelope of a machine, in watts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Total system power during execution (W).
    pub watts: f64,
    /// Human-readable label for reports.
    pub label: &'static str,
}

impl PowerModel {
    /// The paper's Intel Xeon 4215 (32c) server: 307 W.
    pub fn intel_4215() -> Self {
        Self {
            watts: 307.0,
            label: "Intel 4215",
        }
    }

    /// The paper's Intel Xeon 4216 (64c) server: 337 W.
    pub fn intel_4216() -> Self {
        Self {
            watts: 337.0,
            label: "Intel 4216",
        }
    }

    /// The UPMEM PiM server: the 4215 host plus 20 PiM DIMMs at an
    /// additional 460 W -> 767 W.
    pub fn upmem_pim() -> Self {
        Self {
            watts: 767.0,
            label: "UPMEM PiM",
        }
    }

    /// The additional power of the 20 PiM DIMMs alone (460 W, i.e. 23 W per
    /// DIMM).
    pub fn pim_dimms_only() -> Self {
        Self {
            watts: 460.0,
            label: "20 PiM DIMMs",
        }
    }

    /// Energy for an execution of `seconds`, in kilojoules — the unit of
    /// Table 8.
    pub fn energy_kj(&self, seconds: f64) -> f64 {
        self.watts * seconds / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_wattages() {
        assert_eq!(PowerModel::intel_4215().watts, 307.0);
        assert_eq!(PowerModel::intel_4216().watts, 337.0);
        assert_eq!(PowerModel::upmem_pim().watts, 767.0);
        // PiM = 4215 host + DIMMs.
        assert_eq!(
            PowerModel::intel_4215().watts + PowerModel::pim_dimms_only().watts,
            PowerModel::upmem_pim().watts
        );
    }

    #[test]
    fn table8_reference_point() {
        // Table 8: Intel 4215 on 16S runs 5882 s at 307 W = 1805 kJ.
        let kj = PowerModel::intel_4215().energy_kj(5882.0);
        assert!((kj - 1805.8).abs() < 1.0);
        // UPMEM PiM on 16S: 632 s at 767 W = 484 kJ.
        let kj = PowerModel::upmem_pim().energy_kj(632.0);
        assert!((kj - 484.7).abs() < 1.0);
    }

    #[test]
    fn energy_is_linear_in_time() {
        let p = PowerModel::upmem_pim();
        assert_eq!(p.energy_kj(0.0), 0.0);
        assert!((p.energy_kj(10.0) - 2.0 * p.energy_kj(5.0)).abs() < 1e-12);
    }
}
