//! Static verification of assembled ISA programs.
//!
//! [`verify`] runs a set of analyses over a resolved `Vec<Inst>` and returns
//! structured [`Diagnostic`]s instead of letting the interpreter fault at
//! runtime (or worse, silently read garbage):
//!
//! * **Control flow** — every jump/fuse target must land inside the program;
//!   a reachable instruction must not fall off the end; unreachable code is
//!   reported; back-edges are classified (provably terminating via a
//!   strictly-decreasing counter, provably infinite when the natural loop
//!   has no exit edge, or unknown).
//! * **Register def-use** — a forward dataflow pass tracks which registers
//!   are definitely/possibly initialized on every path from entry; reading a
//!   register that no path ever writes (and that the [`VerifySpec`] does not
//!   declare as an input) is an error, a read that only *some* paths
//!   initialize is a warning. `move`'s unused `ra` field is not a read.
//! * **Address abstract interpretation** — an interval + congruence domain
//!   over the address-forming arithmetic proves WRAM accesses aligned and
//!   inside the declared frame where possible. Only *provable* violations
//!   are errors; accesses the analysis cannot bound are summarized in one
//!   info diagnostic (the interpreter still checks them at runtime).
//!
//! The congruence half (value ≡ rem mod 2^k) survives interval widening, so
//! loop-carried pointers that grow unboundedly still carry their alignment
//! facts — that is what lets the built-in kernels verify with zero errors
//! while deliberately misaligned programs are still caught.

use super::inst::{alu_eval, AluOp, FuseCond, Inst, JumpCond, Operand, Reg, NUM_REGS};
use std::fmt;

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a fact the analysis established (or gave up on).
    Info,
    /// Suspicious but not provably wrong.
    Warning,
    /// Provably wrong: the program faults or reads garbage on some input.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// Which analysis produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// A jump or fused-jump target outside the program.
    JumpOutOfRange,
    /// A reachable instruction whose fallthrough runs past the last
    /// instruction (the interpreter faults with `BadTarget`).
    FallsOffEnd,
    /// Instructions no path from entry can reach.
    UnreachableCode,
    /// Read of a register that is not written on (some or any) path.
    UninitRead,
    /// WRAM access provably outside the declared frame.
    WramOutOfFrame,
    /// Word access at a provably non-4-byte-aligned address.
    WramMisaligned,
    /// Back-edge classification (terminating / infinite / unknown).
    LoopTermination,
}

impl Rule {
    /// Stable lowercase name, for reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::JumpOutOfRange => "jump-out-of-range",
            Rule::FallsOffEnd => "falls-off-end",
            Rule::UnreachableCode => "unreachable-code",
            Rule::UninitRead => "uninit-read",
            Rule::WramOutOfFrame => "wram-out-of-frame",
            Rule::WramMisaligned => "wram-misaligned",
            Rule::LoopTermination => "loop-termination",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// One finding, anchored to an instruction index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity.
    pub severity: Severity,
    /// Instruction index the finding anchors to.
    pub pc: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Is this a hard error?
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.rule, self.pc, self.message
        )
    }
}

/// Count the errors in a diagnostic list.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags.iter().filter(|d| d.is_error()).count()
}

/// What the verifier may assume about the execution environment.
#[derive(Debug, Clone, Default)]
pub struct VerifySpec {
    /// Per-register entry state: `None` = not an input (reading it before a
    /// write is a defect), `Some(None)` = input with unknown value,
    /// `Some(Some(v))` = input with a known constant value.
    inputs: [Option<Option<u32>>; NUM_REGS],
    /// Per-register divisibility guarantee: a nonzero entry `m` declares
    /// the input a *positive multiple* of `m` (see [`Self::input_multiple`]).
    multiples: [u32; NUM_REGS],
    /// Accessible WRAM bytes (the tasklet's frame), when declared.
    wram_frame: Option<usize>,
}

impl VerifySpec {
    /// A spec with no inputs and no frame. `r0` is always treated as an
    /// input holding zero (the zero-register convention of the kernels).
    pub fn new() -> Self {
        let mut s = Self::default();
        s.inputs[0] = Some(Some(0));
        s
    }

    /// Declare `r` initialized at entry with an unknown value.
    pub fn input(mut self, r: Reg) -> Self {
        self.inputs[r.0 as usize] = Some(None);
        self
    }

    /// Declare `r` initialized at entry with a known constant.
    pub fn input_value(mut self, r: Reg, v: u32) -> Self {
        self.inputs[r.0 as usize] = Some(Some(v));
        self
    }

    /// Declare `r` initialized at entry with an unknown value the caller
    /// guarantees to be a *positive multiple* of `m` (`m ≥ 1`). Strengthens
    /// the entry interval+congruence state (`value ≥ m`, `value ≡ 0 mod
    /// 2-power-part(m)`), and is the contract that lets the loop-termination
    /// pass and the WCET analysis prove counters stepped by `m` with a fused
    /// `jnz` back edge: a positive multiple decremented by a divisor hits
    /// exactly zero without wrapping.
    pub fn input_multiple(mut self, r: Reg, m: u32) -> Self {
        self.inputs[r.0 as usize] = Some(None);
        self.multiples[r.0 as usize] = m.max(1);
        self
    }

    /// The declared positive-multiple guarantee for `r` (1 when undeclared).
    pub fn input_stride(&self, r: Reg) -> u32 {
        self.multiples[r.0 as usize].max(1)
    }

    /// Raw entry declaration for `r`: `None` = not an input, `Some(None)` =
    /// input with unknown value, `Some(Some(v))` = input pinned to `v`.
    pub(super) fn input_slot(&self, r: Reg) -> Option<Option<u32>> {
        self.inputs[r.0 as usize]
    }

    /// Abstract entry value of register index `i` under this spec.
    pub(super) fn entry_abs(&self, i: usize) -> AbsVal {
        match self.inputs[i] {
            Some(Some(v)) => AbsVal::constant(v as i64),
            Some(None) if self.multiples[i] > 1 => {
                // A declared positive multiple of m: value ≥ m, and the
                // residue mod the 2-power part of m survives 2^32 wraps.
                let m = self.multiples[i] as i64;
                let p2 = (m & m.wrapping_neg()).min(MOD_CAP);
                AbsVal {
                    lo: m,
                    hi: BOUND,
                    modulus: p2.max(1),
                    rem: 0,
                }
            }
            _ => AbsVal::TOP,
        }
    }

    /// Declare the WRAM frame size in bytes.
    pub fn frame(mut self, len: usize) -> Self {
        self.wram_frame = Some(len);
        self
    }

    /// The declared WRAM frame size in bytes, if any.
    pub fn wram_frame(&self) -> Option<usize> {
        self.wram_frame
    }

    /// Registers declared as inputs with a *known constant* value, as
    /// `(register, value)` pairs in register order. The fast path
    /// ([`crate::isa::Prepared`]) re-checks these at entry: the verifier's
    /// address proofs assume them, so a run that starts from different
    /// constants must take the checked interpreter instead.
    pub fn known_inputs(&self) -> Vec<(Reg, u32)> {
        self.inputs
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(Some(v)) => Some((Reg(i as u8), *v)),
                _ => None,
            })
            .collect()
    }

    fn input_mask(&self) -> u32 {
        let mut m = 0u32;
        for (i, slot) in self.inputs.iter().enumerate() {
            if slot.is_some() {
                m |= 1 << i;
            }
        }
        m
    }
}

// ---------------------------------------------------------------------------
// CFG helpers
// ---------------------------------------------------------------------------

/// In-range successors of `pc`. Out-of-range targets are *not* included (the
/// target check reports them separately).
pub(super) fn successors(program: &[Inst], pc: usize) -> Vec<usize> {
    let len = program.len();
    let mut out = Vec::with_capacity(2);
    let fall = |out: &mut Vec<usize>| {
        if pc + 1 < len {
            out.push(pc + 1);
        }
    };
    match program[pc] {
        Inst::Halt => {}
        Inst::Jmp { target } => {
            if target < len {
                out.push(target);
            }
        }
        Inst::Jcc { target, .. } => {
            fall(&mut out);
            if target < len {
                out.push(target);
            }
        }
        Inst::Alu { fuse, .. } => {
            fall(&mut out);
            if let Some((_, target)) = fuse {
                if target < len && !out.contains(&target) {
                    out.push(target);
                }
            }
        }
        Inst::Lw { .. } | Inst::Sw { .. } | Inst::Lbu { .. } | Inst::Sb { .. } => fall(&mut out),
    }
    out
}

/// Registers an instruction reads. `move` does not read its dummy `ra`.
pub(super) fn reads(inst: &Inst) -> Vec<Reg> {
    let mut out = Vec::with_capacity(2);
    let operand = |out: &mut Vec<Reg>, b: Operand| {
        if let Operand::Reg(r) = b {
            out.push(r);
        }
    };
    match *inst {
        Inst::Alu { op, ra, b, .. } => {
            if op != AluOp::Move {
                out.push(ra);
            }
            operand(&mut out, b);
        }
        Inst::Lw { base, .. } | Inst::Lbu { base, .. } => out.push(base),
        Inst::Sw { rs, base, .. } | Inst::Sb { rs, base, .. } => {
            out.push(rs);
            out.push(base);
        }
        Inst::Jcc { ra, b, .. } => {
            out.push(ra);
            operand(&mut out, b);
        }
        Inst::Jmp { .. } | Inst::Halt => {}
    }
    out
}

/// Register an instruction defines, if any.
pub(super) fn def(inst: &Inst) -> Option<Reg> {
    match *inst {
        Inst::Alu { rd, .. } | Inst::Lw { rd, .. } | Inst::Lbu { rd, .. } => Some(rd),
        _ => None,
    }
}

/// Does the instruction have a fallthrough edge (as opposed to always
/// jumping or halting)?
pub(super) fn falls_through(inst: &Inst) -> bool {
    !matches!(inst, Inst::Halt | Inst::Jmp { .. })
}

// ---------------------------------------------------------------------------
// Abstract values: interval + congruence (value ≡ rem mod modulus)
// ---------------------------------------------------------------------------

/// Bound sentinel beyond any 32-bit value.
pub(super) const BOUND: i64 = 1 << 33;
/// Congruence modulus cap (a power of two, so residues survive 2^32 wraps).
const MOD_CAP: i64 = 1 << 16;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) struct AbsVal {
    pub(super) lo: i64,
    pub(super) hi: i64,
    /// Power-of-two modulus (≥ 1, divides `MOD_CAP`).
    pub(super) modulus: i64,
    /// Residue in `[0, modulus)`.
    pub(super) rem: i64,
}

impl AbsVal {
    const TOP: AbsVal = AbsVal {
        lo: -BOUND,
        hi: BOUND,
        modulus: 1,
        rem: 0,
    };

    pub(super) fn constant(c: i64) -> Self {
        AbsVal {
            lo: c,
            hi: c,
            modulus: MOD_CAP,
            rem: c.rem_euclid(MOD_CAP),
        }
    }

    pub(super) fn is_const(&self) -> bool {
        self.lo == self.hi
    }

    /// The u32 bit pattern, when the value is a constant in 32-bit range.
    fn const_bits(&self) -> Option<u32> {
        if self.is_const() && self.lo >= i32::MIN as i64 && self.lo <= u32::MAX as i64 {
            Some(self.lo as u32)
        } else {
            None
        }
    }

    fn in_i32(&self) -> bool {
        self.lo >= i32::MIN as i64 && self.hi <= i32::MAX as i64
    }

    /// Clamp results that may wrap at runtime to unbounded intervals. The
    /// congruence part survives: every modulus divides 2^32, and wrapping
    /// adds a multiple of 2^32.
    fn clamp_wrap(mut self) -> Self {
        if self.lo < i32::MIN as i64 || self.hi > u32::MAX as i64 {
            self.lo = -BOUND;
            self.hi = BOUND;
        }
        self
    }

    pub(super) fn join(a: AbsVal, b: AbsVal) -> AbsVal {
        let modulus = gcd(gcd(a.modulus, b.modulus), (a.rem - b.rem).abs()).max(1);
        AbsVal {
            lo: a.lo.min(b.lo),
            hi: a.hi.max(b.hi),
            modulus,
            rem: a.rem.rem_euclid(modulus),
        }
    }

    /// Widen: bounds that grew since `old` go to the sentinel; the modulus
    /// join already converges (a divisor chain).
    fn widen(old: AbsVal, new: AbsVal) -> AbsVal {
        let mut w = new;
        if new.lo < old.lo {
            w.lo = -BOUND;
        }
        if new.hi > old.hi {
            w.hi = BOUND;
        }
        w
    }
}

fn gcd(a: i64, b: i64) -> i64 {
    let (mut a, mut b) = (a.abs(), b.abs());
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Smallest all-ones mask covering `v` (for bitwise-or bounds).
fn mask_up(v: i64) -> i64 {
    let mut m = 1i64;
    while m - 1 < v && m < BOUND {
        m <<= 1;
    }
    m - 1
}

pub(super) fn abs_alu(op: AluOp, a: AbsVal, b: AbsVal) -> AbsVal {
    // Constant folding through the real ALU semantics where the bit
    // patterns are known exactly.
    if let (Some(ab), Some(bb)) = (a.const_bits(), b.const_bits()) {
        let r = alu_eval(op, ab, bb);
        // Interpret the result pattern in the signedness its consumers use.
        let math = match op {
            AluOp::Asr | AluOp::Max => r as i32 as i64,
            _ => r as i64,
        };
        // Add/Sub may have wrapped; recompute exactly in i64 for those.
        let math = match op {
            AluOp::Add => a.lo + b.lo,
            AluOp::Sub => a.lo - b.lo,
            _ => math,
        };
        return AbsVal::constant(math).clamp_wrap();
    }
    match op {
        AluOp::Move => b,
        AluOp::Add => AbsVal {
            lo: a.lo + b.lo,
            hi: a.hi + b.hi,
            modulus: gcd(a.modulus, b.modulus).max(1),
            rem: (a.rem + b.rem).rem_euclid(gcd(a.modulus, b.modulus).max(1)),
        }
        .clamp_wrap(),
        AluOp::Sub => AbsVal {
            lo: a.lo - b.hi,
            hi: a.hi - b.lo,
            modulus: gcd(a.modulus, b.modulus).max(1),
            rem: (a.rem - b.rem).rem_euclid(gcd(a.modulus, b.modulus).max(1)),
        }
        .clamp_wrap(),
        AluOp::Max => {
            if a.in_i32() && b.in_i32() {
                AbsVal {
                    lo: a.lo.max(b.lo),
                    hi: a.hi.max(b.hi),
                    ..AbsVal::join(a, b)
                }
            } else {
                AbsVal::TOP
            }
        }
        AluOp::And => match b.const_bits() {
            // Non-negative mask: the result cannot exceed it.
            Some(m) if (m as i32) >= 0 => AbsVal {
                lo: 0,
                hi: m as i64,
                modulus: 1,
                rem: 0,
            },
            _ => AbsVal::TOP,
        },
        AluOp::Or | AluOp::Xor => {
            if a.lo >= 0 && b.lo >= 0 && a.hi < BOUND && b.hi < BOUND {
                AbsVal {
                    lo: 0,
                    hi: mask_up(a.hi) | mask_up(b.hi),
                    modulus: 1,
                    rem: 0,
                }
            } else {
                AbsVal::TOP
            }
        }
        AluOp::Lsl => match b.const_bits() {
            Some(k) if k < 32 && a.lo >= 0 => AbsVal {
                lo: a.lo << k.min(33),
                hi: a.hi << k.min(33),
                modulus: gcd(MOD_CAP, a.modulus << k.min(16)).max(1),
                rem: (a.rem << k.min(16)).rem_euclid(gcd(MOD_CAP, a.modulus << k.min(16)).max(1)),
            }
            .clamp_wrap(),
            _ => AbsVal::TOP,
        },
        AluOp::Lsr | AluOp::Asr => match b.const_bits() {
            Some(k) if k < 32 && a.lo >= 0 && a.hi <= u32::MAX as i64 => AbsVal {
                lo: a.lo >> k,
                hi: a.hi >> k,
                modulus: 1,
                rem: 0,
            },
            _ => AbsVal::TOP,
        },
        AluOp::Cmpb4 => AbsVal {
            lo: 0,
            hi: 0x0101_0101,
            modulus: 1,
            rem: 0,
        },
    }
}

// ---------------------------------------------------------------------------
// The verifier
// ---------------------------------------------------------------------------

/// Verify `program` under `spec`; returns diagnostics sorted by pc.
pub fn verify(program: &[Inst], spec: &VerifySpec) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if program.is_empty() {
        diags.push(Diagnostic {
            severity: Severity::Error,
            pc: 0,
            rule: Rule::FallsOffEnd,
            message: "empty program: execution immediately runs past the end".into(),
        });
        return diags;
    }

    check_targets(program, &mut diags);
    let reachable = reachability(program, &mut diags);
    check_fallthrough(program, &reachable, &mut diags);
    check_def_use(program, &reachable, spec, &mut diags);
    check_addresses(program, &reachable, spec, &mut diags);
    check_loops(program, &reachable, spec, &mut diags);

    diags.sort_by_key(|d| (d.pc, std::cmp::Reverse(d.severity)));
    diags
}

/// Every jump/fuse target must be a valid instruction index. (The assembler
/// enforces this too; instruction streams built by hand may not.)
fn check_targets(program: &[Inst], diags: &mut Vec<Diagnostic>) {
    for (pc, inst) in program.iter().enumerate() {
        let target = match inst {
            Inst::Alu {
                fuse: Some((_, t)), ..
            } => Some(*t),
            Inst::Jmp { target } => Some(*target),
            Inst::Jcc { target, .. } => Some(*target),
            _ => None,
        };
        if let Some(t) = target {
            if t >= program.len() {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    pc,
                    rule: Rule::JumpOutOfRange,
                    message: format!(
                        "jump target {t} outside program of {} instructions",
                        program.len()
                    ),
                });
            }
        }
    }
}

/// BFS from entry; unreachable ranges are reported as warnings.
fn reachability(program: &[Inst], diags: &mut Vec<Diagnostic>) -> Vec<bool> {
    let mut reachable = vec![false; program.len()];
    let mut stack = vec![0usize];
    while let Some(pc) = stack.pop() {
        if std::mem::replace(&mut reachable[pc], true) {
            continue;
        }
        stack.extend(successors(program, pc));
    }
    let mut pc = 0;
    while pc < program.len() {
        if reachable[pc] {
            pc += 1;
            continue;
        }
        let start = pc;
        while pc < program.len() && !reachable[pc] {
            pc += 1;
        }
        diags.push(Diagnostic {
            severity: Severity::Warning,
            pc: start,
            rule: Rule::UnreachableCode,
            message: if pc - start == 1 {
                format!("instruction {start} is unreachable")
            } else {
                format!("instructions {start}..{} are unreachable", pc - 1)
            },
        });
    }
    reachable
}

/// A reachable instruction whose fallthrough leaves the program is a fault
/// waiting to happen (the interpreter raises `BadTarget` at `pc == len`).
fn check_fallthrough(program: &[Inst], reachable: &[bool], diags: &mut Vec<Diagnostic>) {
    let last = program.len() - 1;
    if reachable[last] && falls_through(&program[last]) {
        diags.push(Diagnostic {
            severity: Severity::Error,
            pc: last,
            rule: Rule::FallsOffEnd,
            message: format!(
                "execution can fall through instruction {last} past the end of the program \
                 (no halt or unconditional jump)"
            ),
        });
    }
}

/// Forward dataflow: definitely-initialized (intersection over predecessors)
/// and possibly-initialized (union) register sets, checked at every read.
fn check_def_use(
    program: &[Inst],
    reachable: &[bool],
    spec: &VerifySpec,
    diags: &mut Vec<Diagnostic>,
) {
    let entry = spec.input_mask();
    let full: u32 = (1u32 << NUM_REGS) - 1;
    let n = program.len();
    // IN sets per pc. must: start from "everything" and shrink; may: start
    // from "nothing" and grow. Entry starts at the declared inputs.
    let mut must_in = vec![full; n];
    let mut may_in = vec![0u32; n];
    must_in[0] = entry;
    may_in[0] = entry;
    let mut work: Vec<usize> = (0..n).filter(|&pc| reachable[pc]).collect();
    while let Some(pc) = work.pop() {
        let def_bit = def(&program[pc]).map_or(0, |r| 1u32 << r.0);
        let must_out = must_in[pc] | def_bit;
        let may_out = may_in[pc] | def_bit;
        for succ in successors(program, pc) {
            let new_must = if succ == 0 {
                entry
            } else {
                must_in[succ] & must_out
            };
            let new_may = if succ == 0 {
                may_in[succ] | may_out | entry
            } else {
                may_in[succ] | may_out
            };
            if new_must != must_in[succ] || new_may != may_in[succ] {
                must_in[succ] = new_must;
                may_in[succ] = new_may;
                work.push(succ);
            }
        }
    }
    let mut seen: Vec<(usize, u8)> = Vec::new();
    for (pc, inst) in program.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        for r in reads(inst) {
            let bit = 1u32 << r.0;
            if must_in[pc] & bit != 0 || seen.contains(&(pc, r.0)) {
                continue;
            }
            seen.push((pc, r.0));
            if may_in[pc] & bit == 0 {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    pc,
                    rule: Rule::UninitRead,
                    message: format!(
                        "{r} is read but never written on any path from entry \
                         (declare it as an input if the caller sets it)"
                    ),
                });
            } else {
                diags.push(Diagnostic {
                    severity: Severity::Warning,
                    pc,
                    rule: Rule::UninitRead,
                    message: format!("{r} may be uninitialized on some path from entry"),
                });
            }
        }
    }
}

/// The fixed point of the interval+congruence abstract interpretation: the
/// per-pc register state on entry to each instruction (`None` = the pass
/// never reached it). Shared by [`check_addresses`] and the WCET analysis
/// ([`super::wcet`]), which layers loop-linear pointer progressions on top.
pub(super) fn abstract_states(
    program: &[Inst],
    spec: &VerifySpec,
) -> Vec<Option<[AbsVal; NUM_REGS]>> {
    let n = program.len();
    let entry_state: [AbsVal; NUM_REGS] = std::array::from_fn(|i| spec.entry_abs(i));
    let mut states: Vec<Option<[AbsVal; NUM_REGS]>> = vec![None; n];
    if n == 0 {
        return states;
    }
    states[0] = Some(entry_state);
    let mut visits = vec![0u32; n];
    const WIDEN_AFTER: u32 = 4;

    let mut work = vec![0usize];
    while let Some(pc) = work.pop() {
        let Some(state) = states[pc] else { continue };
        let mut out = state;
        match program[pc] {
            Inst::Alu { op, rd, ra, b, .. } => {
                let bv = match b {
                    Operand::Reg(r) => state[r.0 as usize],
                    Operand::Imm(i) => AbsVal::constant(i as i64),
                };
                // `move` ignores ra; feed it the b value so constant moves
                // stay constant.
                let av = if op == AluOp::Move {
                    bv
                } else {
                    state[ra.0 as usize]
                };
                out[rd.0 as usize] = abs_alu(op, av, bv);
            }
            Inst::Lw { rd, .. } => {
                out[rd.0 as usize] = AbsVal {
                    lo: i32::MIN as i64,
                    hi: u32::MAX as i64,
                    modulus: 1,
                    rem: 0,
                }
            }
            Inst::Lbu { rd, .. } => {
                out[rd.0 as usize] = AbsVal {
                    lo: 0,
                    hi: 255,
                    modulus: 1,
                    rem: 0,
                }
            }
            _ => {}
        }
        for succ in successors(program, pc) {
            let joined = match states[succ] {
                None => out,
                Some(prev) => {
                    let mut j = prev;
                    for i in 0..NUM_REGS {
                        j[i] = AbsVal::join(prev[i], out[i]);
                        if visits[succ] >= WIDEN_AFTER {
                            j[i] = AbsVal::widen(prev[i], j[i]);
                        }
                    }
                    j
                }
            };
            if states[succ] != Some(joined) {
                states[succ] = Some(joined);
                visits[succ] += 1;
                work.push(succ);
            }
        }
    }
    states
}

/// Abstract interpretation of address-forming arithmetic; flags provable
/// frame escapes and misaligned word accesses.
fn check_addresses(
    program: &[Inst],
    reachable: &[bool],
    spec: &VerifySpec,
    diags: &mut Vec<Diagnostic>,
) {
    let states = abstract_states(program, spec);
    let frame = spec.wram_frame;
    let mut unproven = 0usize;
    let mut total = 0usize;
    let mut first_unproven = 0usize;
    for (pc, inst) in program.iter().enumerate() {
        if !reachable[pc] {
            continue;
        }
        let (base, off, width) = match *inst {
            Inst::Lw { base, off, .. } | Inst::Sw { base, off, .. } => (base, off, 4usize),
            Inst::Lbu { base, off, .. } | Inst::Sb { base, off, .. } => (base, off, 1usize),
            _ => continue,
        };
        total += 1;
        let Some(state) = states[pc] else { continue };
        let addr = abs_alu(
            AluOp::Add,
            state[base.0 as usize],
            AbsVal::constant(off as i64),
        );
        let mut proven_in_frame = false;
        if let Some(f) = frame {
            let f = f as i64;
            if addr.lo >= 0 && addr.hi + width as i64 <= f {
                proven_in_frame = true;
            } else if addr.lo + width as i64 > f || addr.hi < 0 {
                // Every possible address escapes the frame. (A negative
                // value wraps to ≥ 2^31 at runtime, far beyond any frame.)
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    pc,
                    rule: Rule::WramOutOfFrame,
                    message: format!(
                        "{width}-byte access at {} is outside the {f}-byte frame",
                        describe(addr)
                    ),
                });
                proven_in_frame = true; // already reported; not "unproven"
            }
        }
        if width == 4 && addr.modulus % 4 == 0 && addr.rem % 4 != 0 {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pc,
                rule: Rule::WramMisaligned,
                message: format!(
                    "word access at {} is never 4-byte aligned (address ≡ {} mod {})",
                    describe(addr),
                    addr.rem,
                    addr.modulus
                ),
            });
        }
        if frame.is_some() && !proven_in_frame {
            if unproven == 0 {
                first_unproven = pc;
            }
            unproven += 1;
        }
    }
    if unproven > 0 {
        diags.push(Diagnostic {
            severity: Severity::Info,
            pc: first_unproven,
            rule: Rule::WramOutOfFrame,
            message: format!(
                "{unproven} of {total} WRAM accesses could not be statically proven inside \
                 the {}-byte frame (checked at runtime)",
                frame.unwrap_or(0)
            ),
        });
    }
}

fn describe(v: AbsVal) -> String {
    if v.is_const() {
        format!("address {}", v.lo)
    } else if v.lo <= -BOUND || v.hi >= BOUND {
        "an unbounded address".to_string()
    } else {
        format!("addresses {}..={}", v.lo, v.hi)
    }
}

/// Natural loop of back-edge `u -> v`: `v` plus everything that reaches `u`
/// without passing through `v`.
pub(super) fn natural_loop(
    program: &[Inst],
    preds: &[Vec<usize>],
    u: usize,
    v: usize,
) -> Vec<bool> {
    let mut in_loop = vec![false; program.len()];
    in_loop[v] = true;
    let mut work = vec![u];
    while let Some(x) = work.pop() {
        if std::mem::replace(&mut in_loop[x], true) {
            continue;
        }
        work.extend(preds[x].iter().copied());
    }
    in_loop
}

/// Is the fused-`jnz` countdown at back-edge source `u` provably exact?
/// Requires: the counter is decremented by `k` at `u` and written nowhere
/// else in the program, and declared via [`VerifySpec::input_multiple`]
/// with a stride `k` divides — a positive multiple of `k` stepped by `k`
/// hits exactly zero without wrapping, in `initial / k` iterations.
/// Shared with the WCET trip-count derivation.
pub(super) fn nz_countdown_proven(
    program: &[Inst],
    spec: &VerifySpec,
    u: usize,
    r: Reg,
    k: i32,
) -> bool {
    k > 0
        && spec.input_stride(r) > 1
        && spec.input_stride(r).is_multiple_of(k as u32)
        && spec.inputs[r.0 as usize] == Some(None)
        && (0..program.len())
            .filter(|&x| x != u)
            .all(|x| def(&program[x]) != Some(r))
}

/// How a back-edge's branch consumes its loop counter.
#[derive(Clone, Copy, PartialEq, Eq)]
pub(super) enum CounterKind {
    /// `sub r, r, k` fused with `jgez`: runs until `r` goes negative.
    FusedGez,
    /// `sub r, r, k` fused with `jnz`: runs until `r` hits exactly zero.
    FusedNz,
    /// A separate `jgt`/`jge` conditional branch on the counter.
    Jcc,
}

/// Classify back-edges: provably terminating counters, provably infinite
/// loops (no exit edge in the natural loop), or unknown.
fn check_loops(
    program: &[Inst],
    reachable: &[bool],
    spec: &VerifySpec,
    diags: &mut Vec<Diagnostic>,
) {
    // DFS to find back-edges (edge u -> v with v on the DFS stack).
    let n = program.len();
    let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
    let mut back_edges: Vec<(usize, usize)> = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = 1;
    while let Some(&mut (pc, ref mut idx)) = stack.last_mut() {
        let succs = successors(program, pc);
        if *idx < succs.len() {
            let s = succs[*idx];
            *idx += 1;
            match color[s] {
                0 => {
                    color[s] = 1;
                    stack.push((s, 0));
                }
                1 => back_edges.push((pc, s)),
                _ => {}
            }
        } else {
            color[pc] = 2;
            stack.pop();
        }
    }

    // Predecessor map for natural-loop bodies.
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (pc, _) in reachable.iter().enumerate().filter(|(_, &r)| r) {
        for s in successors(program, pc) {
            preds[s].push(pc);
        }
    }

    for (u, v) in back_edges {
        let in_loop = natural_loop(program, &preds, u, v);
        let has_exit = (0..n).filter(|&x| in_loop[x]).any(|x| {
            matches!(program[x], Inst::Halt) || successors(program, x).iter().any(|s| !in_loop[*s])
        });
        if !has_exit {
            diags.push(Diagnostic {
                severity: Severity::Error,
                pc: u,
                rule: Rule::LoopTermination,
                message: format!("loop {v}..{u} has no exit edge: it can never terminate"),
            });
            continue;
        }
        // Provably terminating pattern: the branch register strictly
        // decreases by a positive constant and nothing else writes it.
        let counter = match program[u] {
            Inst::Alu {
                op: AluOp::Sub,
                rd,
                ra,
                b: Operand::Imm(k),
                fuse: Some((FuseCond::Gez, t)),
            } if t == v && rd == ra && k > 0 => {
                // The decrement *is* the branch: r goes negative eventually.
                Some((rd, k, CounterKind::FusedGez))
            }
            Inst::Alu {
                op: AluOp::Sub,
                rd,
                ra,
                b: Operand::Imm(k),
                fuse: Some((FuseCond::Nz, t)),
            } if t == v && rd == ra && k > 0 => {
                // Countdown to exactly zero: only sound when the initial
                // value is a declared positive multiple of the step.
                Some((rd, k, CounterKind::FusedNz))
            }
            Inst::Jcc {
                cond: JumpCond::Gt | JumpCond::Ge,
                ra,
                b: Operand::Imm(_),
                target,
            } if target == v => Some((ra, 0, CounterKind::Jcc)),
            _ => None,
        };
        let proven = match counter {
            Some((r, _, CounterKind::FusedGez)) => {
                // No other write to the counter inside the loop.
                (0..n)
                    .filter(|&x| in_loop[x] && x != u)
                    .all(|x| def(&program[x]) != Some(r))
            }
            Some((r, k, CounterKind::FusedNz)) => nz_countdown_proven(program, spec, u, r, k),
            Some((r, _, CounterKind::Jcc)) => {
                // Every write to the counter inside the loop is a strict
                // decrease by a positive constant, and at least one exists.
                let defs: Vec<usize> = (0..n)
                    .filter(|&x| in_loop[x] && def(&program[x]) == Some(r))
                    .collect();
                !defs.is_empty()
                    && defs.iter().all(|&x| {
                        matches!(
                            program[x],
                            Inst::Alu { op: AluOp::Sub, rd, ra, b: Operand::Imm(k), .. }
                                if rd == ra && k > 0
                        )
                    })
            }
            None => false,
        };
        let msg = if proven {
            format!(
                "back-edge {u} -> {v} provably terminates ({} strictly decreases)",
                counter.map(|(r, ..)| r.to_string()).unwrap_or_default()
            )
        } else {
            format!("cannot prove termination of back-edge {u} -> {v}")
        };
        diags.push(Diagnostic {
            severity: Severity::Info,
            pc: u,
            rule: Rule::LoopTermination,
            message: msg,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::assemble;

    fn spec() -> VerifySpec {
        VerifySpec::new()
    }

    fn errors(diags: &[Diagnostic]) -> Vec<&Diagnostic> {
        diags.iter().filter(|d| d.is_error()).collect()
    }

    #[test]
    fn clean_program_verifies() {
        let prog = assemble(
            "
            move r1, 10
            loop:
              sub r1, r1, 1, jgez loop
            halt
            ",
        )
        .unwrap();
        let diags = verify(&prog, &spec().frame(64));
        assert_eq!(error_count(&diags), 0, "{diags:?}");
        // And the back-edge is classified as provably terminating.
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::LoopTermination && d.message.contains("provably")));
    }

    #[test]
    fn bad_jump_target_is_an_error() {
        let prog = [Inst::Jmp { target: 7 }, Inst::Halt];
        let diags = verify(&prog, &spec());
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::JumpOutOfRange && d.is_error()));
    }

    #[test]
    fn target_one_past_end_is_an_error() {
        // The off-by-one the interpreter faults on: target == len.
        let prog = [
            Inst::Alu {
                op: AluOp::Sub,
                rd: Reg(1),
                ra: Reg(1),
                b: Operand::Imm(1),
                fuse: Some((FuseCond::Nz, 2)),
            },
            Inst::Halt,
        ];
        let diags = verify(&prog, &spec().input(Reg(1)));
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::JumpOutOfRange && d.is_error()));
    }

    #[test]
    fn falls_off_end_is_an_error() {
        let prog = assemble("move r1, 1\nmove r2, 2").unwrap();
        let diags = verify(&prog, &spec());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::FallsOffEnd && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn empty_program_is_an_error() {
        let diags = verify(&[], &spec());
        assert_eq!(error_count(&diags), 1);
    }

    #[test]
    fn unreachable_code_is_a_warning() {
        let prog = assemble("jmp end\nmove r1, 1\nmove r2, 2\nend: halt").unwrap();
        let diags = verify(&prog, &spec());
        let unreach: Vec<_> = diags
            .iter()
            .filter(|d| d.rule == Rule::UnreachableCode)
            .collect();
        assert_eq!(unreach.len(), 1);
        assert_eq!(unreach[0].severity, Severity::Warning);
        assert!(unreach[0].message.contains("1..2"));
        assert_eq!(error_count(&diags), 0);
    }

    #[test]
    fn uninitialized_read_is_an_error() {
        let prog = assemble("add r1, r2, 1\nhalt").unwrap();
        let diags = verify(&prog, &spec());
        let e = errors(&diags);
        assert_eq!(e.len(), 1, "{diags:?}");
        assert_eq!(e[0].rule, Rule::UninitRead);
        assert!(e[0].message.contains("r2"));
        // Declaring the register as an input silences it.
        let diags = verify(&prog, &spec().input(Reg(2)));
        assert_eq!(error_count(&diags), 0);
    }

    #[test]
    fn maybe_uninitialized_read_is_a_warning() {
        // r2 is written on one branch only; the join cannot guarantee it.
        let prog = assemble(
            "
            jeq r1, 0, skip
            move r2, 5
            skip:
            add r3, r2, 1
            halt
            ",
        )
        .unwrap();
        let diags = verify(&prog, &spec().input(Reg(1)));
        assert!(
            diags.iter().any(|d| d.rule == Rule::UninitRead
                && d.severity == Severity::Warning
                && d.message.contains("r2")),
            "{diags:?}"
        );
        assert_eq!(error_count(&diags), 0);
    }

    #[test]
    fn move_does_not_read_its_dummy_ra() {
        // `move` parses with ra = r0's slot but reads only the operand.
        let prog = assemble("move r1, 3\nhalt").unwrap();
        let diags = verify(&prog, &VerifySpec::default()); // not even r0 declared
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn provably_misaligned_word_access_is_an_error() {
        let prog = assemble("move r1, 6\nlw r2, r1, 0\nhalt").unwrap();
        let diags = verify(&prog, &spec().frame(64));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::WramMisaligned && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn alignment_survives_loop_widening() {
        // A pointer bumped by 8 per iteration stays 4-aligned even though
        // its interval widens to unbounded.
        let prog = assemble(
            "
            move r1, 10
            move r2, 0
            loop:
              lw r3, r2, 0
              add r2, r2, 8
              sub r1, r1, 1, jgez loop
            halt
            ",
        )
        .unwrap();
        let diags = verify(&prog, &spec().frame(1 << 16));
        assert_eq!(error_count(&diags), 0, "{diags:?}");
        // And a misaligned bump is still caught.
        let prog = assemble(
            "
            move r1, 10
            move r2, 2
            loop:
              lw r3, r2, 0
              add r2, r2, 8
              sub r1, r1, 1, jgez loop
            halt
            ",
        )
        .unwrap();
        let diags = verify(&prog, &spec().frame(1 << 16));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::WramMisaligned && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn out_of_frame_access_is_an_error() {
        let prog = assemble("lw r1, r0, 0x200\nhalt").unwrap();
        let diags = verify(&prog, &spec().frame(0x100));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::WramOutOfFrame && d.is_error()),
            "{diags:?}"
        );
        // The same access inside a big enough frame is fine.
        let diags = verify(&prog, &spec().frame(0x300));
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn negative_address_is_out_of_frame() {
        let prog = assemble("move r1, 4\nlw r2, r1, -32\nhalt").unwrap();
        let diags = verify(&prog, &spec().frame(1 << 16));
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::WramOutOfFrame && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn infinite_loop_is_an_error() {
        let prog = assemble("loop: jmp loop").unwrap();
        let diags = verify(&prog, &spec());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::LoopTermination && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_termination_is_only_info() {
        // jnz on a counter: wraps past zero if not a multiple, so not provable.
        let prog = assemble("move r1, 10\nloop: sub r1, r1, 3, jnz loop\nhalt").unwrap();
        let diags = verify(&prog, &spec());
        assert_eq!(error_count(&diags), 0);
        assert!(diags.iter().any(|d| d.rule == Rule::LoopTermination
            && d.severity == Severity::Info
            && d.message.contains("cannot prove")));
    }

    #[test]
    fn jcc_counter_loop_is_provably_terminating() {
        // The PureC loop pattern: separate decrement and jgt branch.
        let prog = assemble(
            "
            move r1, 100
            loop:
              sub r1, r1, 1
              jgt r1, 0, loop
            halt
            ",
        )
        .unwrap();
        let diags = verify(&prog, &spec());
        assert!(diags
            .iter()
            .any(|d| d.rule == Rule::LoopTermination && d.message.contains("provably")));
    }

    #[test]
    fn unproven_accesses_are_summarized_as_info() {
        // A pointer read from memory: nothing provable about it.
        let prog = assemble("lw r1, r0, 0\nlw r2, r1, 0\nhalt").unwrap();
        let diags = verify(&prog, &spec().frame(64));
        assert_eq!(error_count(&diags), 0, "{diags:?}");
        assert!(diags.iter().any(|d| d.severity == Severity::Info
            && d.rule == Rule::WramOutOfFrame
            && d.message.contains("1 of 2")));
    }

    #[test]
    fn diagnostics_render_readably() {
        let d = Diagnostic {
            severity: Severity::Error,
            pc: 3,
            rule: Rule::UninitRead,
            message: "r5 is read but never written".into(),
        };
        let s = d.to_string();
        assert!(s.contains("error"));
        assert!(s.contains("uninit-read"));
        assert!(s.contains('3'));
    }
}
