//! The block-translating JIT tier: verifier-clean programs lowered
//! block-by-block into native executor calls over pre-resolved operands.
//!
//! This is the third interpreter tier, above [`super::interp`] (the checked
//! oracle) and [`super::fastpath`] (the fused micro-op fast path). Where
//! the fast path still *interprets* — one jump-table dispatch per micro-op,
//! a `last`-result side channel for fused branches, packed skip spans — the
//! jit *translates* at prepare time:
//!
//! * **Blocks, not micro-ops, are the unit of dispatch.** Each basic block
//!   (the same extended-basic-block windows the fast path derives — the
//!   jit re-runs [`super::fastpath::predecode`] with superinstruction
//!   pairing disabled, so block boundaries, fault pcs and `max_steps`
//!   check points are identical) is lowered once into a flat array of
//!   [`JitOp`]s and executed by a native block function; the top-level
//!   loop is a computed dispatch over block indices.
//! * **Fused branches are compiled into their ALU op.** The checked
//!   interpreter's ALU-with-fused-jump becomes a single `F*` op that
//!   computes, writes the destination slot, and branches on the result it
//!   just produced — no pseudo-op, no `last` tracking.
//! * **Operands are pre-resolved.** Register numbers are direct slot
//!   indices into a 32-slot working file (masked, so the compiler drops
//!   every bounds check); the register-vs-immediate shape is folded into
//!   the op kind; skip spans and retired-instruction weights are plain
//!   `u16` fields instead of bit-packed immediates.
//! * **WRAM accesses are base+offset loads against the pre-validated
//!   frame** with exactly one backstop bounds check per access (bounds
//!   first, then alignment — the same order, and therefore the same
//!   [`IsaError`] at the same original pc, as the checked interpreter).
//!   After the check passes the access itself is direct.
//! * **Self-loop blocks run their iterations natively.** A block ending in
//!   a fused back-edge to itself — the shape of every band inner loop —
//!   re-enters its block function without returning to the dispatch loop,
//!   re-checking the step budget once per iteration exactly where the fast
//!   path re-checks it per window.
//!
//! The gate is the same as the fast path's: zero verifier errors, a
//! declared WRAM frame, and matching entry state. Programs that fail it
//! fall back to the checked interpreter. Completed runs are bit-identical
//! to the checked tier — registers, WRAM, halt pc and [`RunStats`] — and
//! the retired-instruction accounting is exact, so the WCET
//! `dynamic_static_ratio <= 1.0` gate holds unchanged. The documented
//! divergence is shared with the fast path: `max_steps` is re-checked per
//! block, so a runaway program may retire up to one block's worth of extra
//! ops before the same [`IsaError::MaxSteps`] fires.

use super::fastpath::{
    predecode, AluSpec, DenseOp, EntryGate, LoadSpec, Micro, MicroKind, SeqTerm,
};
use super::inst::{alu_eval, AluOp, FuseCond, Inst, JumpCond, Operand, NUM_REGS};
use super::interp::{watchdog_steps, IsaError, Machine, RunStats};
use super::verify::{error_count, verify, VerifySpec};

/// Translated-op discriminant: the ALU opcode, the register-vs-immediate
/// operand shape, and (for `F*` kinds) the presence of a fused in-block
/// branch are all folded into one tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JitKind {
    AddRI,
    AddRR,
    SubRI,
    SubRR,
    AndRI,
    AndRR,
    OrRI,
    OrRR,
    XorRI,
    XorRR,
    LslRI,
    LslRR,
    LsrRI,
    LsrRR,
    AsrRI,
    AsrRR,
    MaxRI,
    MaxRR,
    Cmpb4RI,
    Cmpb4RR,
    MoveRI,
    MoveRR,
    /// ALU with a fused in-block branch on its own result (`aux` holds the
    /// [`FuseCond`] code, `skip`/`weight` the span).
    FAddRI,
    FAddRR,
    FSubRI,
    FSubRR,
    FAndRI,
    FAndRR,
    FOrRI,
    FOrRR,
    FXorRI,
    FXorRR,
    FLslRI,
    FLslRR,
    FLsrRI,
    FLsrRR,
    FAsrRI,
    FAsrRR,
    FMaxRI,
    FMaxRR,
    FCmpb4RI,
    FCmpb4RR,
    FMoveRI,
    FMoveRR,
    /// Memory ops: `rd` data slot, `ra` base slot, `imm` offset, `aux` the
    /// instruction's offset from the block start (the fault pc).
    Lw,
    Sw,
    Lbu,
    Sb,
    /// Unconditional short forward hop inside the block.
    JmpF,
    /// In-block conditional skips (`ra` vs `imm` or `ra` vs `rb`).
    SkipEqRI,
    SkipEqRR,
    SkipNeRI,
    SkipNeRR,
    SkipLtRI,
    SkipLtRR,
    SkipLeRI,
    SkipLeRR,
    SkipGtRI,
    SkipGtRR,
    SkipGeRI,
    SkipGeRR,
    /// Multi-op templates ([`template_window`]): the head slot's kind is
    /// rewritten, member slots keep their original single-op kinds (so a
    /// skip landing mid-template executes the members standalone), and the
    /// executor reads member operands from the neighbouring slots. The
    /// `TSel`/`TDia`/`TMask` forms compile the ISA's compare-and-select
    /// idiom — a fused branch over a move diamond — into straight-line
    /// conditional moves: no dispatch per member, no data-dependent branch.
    ///
    /// `[FSubRR(c, skip=1), MoveRR]` — two-way select.
    TSelSubRR,
    /// `[FSubRR(c, skip=2), MoveRR, MoveRI]` — select plus flag constant.
    TSel2SubRR,
    /// `[FSubRR(c, skip=1), JmpF(skip=1), MoveRR]` — if/else diamond.
    TDia1SubRR,
    /// `[FSubRR(c, skip=2), OrRI, JmpF(skip=1), MoveRR]` — diamond whose
    /// else-arm also accumulates a flag bit.
    TDia2SubRR,
    /// `[FAndRI(c, skip=3), MoveRI, MoveRI, JmpF(skip=2), MoveRI, MoveRI]`
    /// with matching destinations — the mask-test diamond that selects two
    /// constants (the `cmpb4`-consumer idiom).
    TMaskAndRI,
    /// Adjacent-op pairs (one dispatch, two ops).
    TLwLw,
    TLwAddRI,
    TSwLw,
    TLbuLbu,
    TOrRRSb,
    TAddRIAddRI,
    TAddRIMoveRI,
    /// Level-2 triples over the level-1 stream (loop headers and tails):
    /// three loads, `cmpb4` plus two pointer bumps, two bumps plus the
    /// counter decrement.
    T3Lw,
    TCmp4Add2,
    TAdd2Sub,
    /// Whole-cell superop: the banded-NW compare-and-select cell idiom
    /// (mask-test score select, D/I gap selects with flag bits, H max
    /// select, three stores and a traceback byte — 34 slots). Matched
    /// against the level-1 template stream by [`match_cell`], which pins
    /// the complete register dataflow so the executor can keep D/I/H and
    /// the flag byte in locals while committing every architectural write
    /// eagerly (faults observe exact intermediate state).
    TCellNw,
}

/// One translated operation. 16 bytes, stored contiguously per block.
/// Every operand is pre-resolved: register numbers are direct slot
/// indices, spans/weights are unpacked fields.
#[derive(Debug, Clone, Copy)]
struct JitOp {
    kind: JitKind,
    rd: u8,
    ra: u8,
    rb: u8,
    imm: i32,
    /// Ops to skip when a fused branch / skip is taken.
    skip: u16,
    /// Retired-instruction weight of the skipped span.
    weight: u16,
    /// Fuse condition code (`F*` kinds) or fault-pc offset (memory kinds).
    aux: u8,
}

/// How a translated block hands control back to the dispatch loop.
#[derive(Debug, Clone, Copy)]
enum JTerm {
    /// Fall through to the next block.
    Fall,
    /// The program halts (charges the halt's issue slot).
    Halt,
    /// Unconditional jump (a single-`Jmp` block).
    Jmp { target: u32 },
    /// The block's final op is an ALU whose fused branch leaves the block;
    /// `rr` is that ALU's destination slot — the result to branch on.
    Fuse { cond: FuseCond, rr: u8, target: u32 },
    /// One trailing compare-and-branch (charged as its own issue slot).
    Jcc {
        cond: JumpCond,
        ra: u8,
        b: Operand,
        target: u32,
    },
}

/// Exit status of one block execution.
enum BlockExit {
    /// Ran to the terminator; `skipped` retired-instruction weight was
    /// jumped over by taken in-block branches.
    Done { skipped: u64 },
    /// A memory op faulted `woff` instructions into the block.
    Fault { woff: usize, err: IsaError },
}

/// One translated basic block: a slice of the shared op pool plus its bulk
/// accounting and terminator.
#[derive(Debug, Clone, Copy)]
struct Block {
    start: u32,
    len: u16,
    /// Original instructions covered (bulk-charged minus skipped weight).
    ilen: u16,
    /// Memory ops (bulk-charged; skips never span memory ops).
    mem: u16,
    term: JTerm,
}

/// Working register file: 32 slots indexed with `reg & 31` so every access
/// compiles without a bounds check (real registers are `< NUM_REGS = 24`).
type JitRegs = [u32; 32];

#[inline(always)]
fn rget(regs: &JitRegs, r: u8) -> u32 {
    regs[(r & 31) as usize]
}

#[inline(always)]
fn opval(regs: &JitRegs, b: Operand) -> u32 {
    match b {
        Operand::Reg(r) => rget(regs, r.0),
        Operand::Imm(i) => i as u32,
    }
}

#[inline(always)]
fn fuse_holds(code: u8, v: u32) -> bool {
    match code {
        0 => v == 0,
        1 => v != 0,
        2 => (v as i32) < 0,
        3 => (v as i32) >= 0,
        4 => v.is_multiple_of(2),
        _ => v % 2 == 1,
    }
}

/// Load a word with the single backstop bounds check (bounds first, then
/// alignment — the checked interpreter's error order). After the check the
/// access is direct.
#[inline(always)]
fn lw_at(wram: &[u8], base: u32, off: i32) -> Result<u32, IsaError> {
    let size = wram.len();
    let addr = (i64::from(base) + i64::from(off)) as usize;
    if size < 4 || addr > size - 4 {
        return Err(IsaError::MemOutOfBounds { addr, len: 4, size });
    }
    if !addr.is_multiple_of(4) {
        return Err(IsaError::Misaligned { addr });
    }
    // SAFETY: `addr + 4 <= size` established by the backstop check above.
    let v = unsafe { wram.as_ptr().add(addr).cast::<[u8; 4]>().read() };
    Ok(u32::from_le_bytes(v))
}

#[inline(always)]
fn sw_at(wram: &mut [u8], base: u32, off: i32, v: u32) -> Result<(), IsaError> {
    let size = wram.len();
    let addr = (i64::from(base) + i64::from(off)) as usize;
    if size < 4 || addr > size - 4 {
        return Err(IsaError::MemOutOfBounds { addr, len: 4, size });
    }
    if !addr.is_multiple_of(4) {
        return Err(IsaError::Misaligned { addr });
    }
    // SAFETY: `addr + 4 <= size` established by the backstop check above.
    unsafe {
        wram.as_mut_ptr()
            .add(addr)
            .cast::<[u8; 4]>()
            .write(v.to_le_bytes());
    }
    Ok(())
}

#[inline(always)]
fn lbu_at(wram: &[u8], base: u32, off: i32) -> Result<u32, IsaError> {
    let size = wram.len();
    let addr = (i64::from(base) + i64::from(off)) as usize;
    if addr >= size {
        return Err(IsaError::MemOutOfBounds { addr, len: 1, size });
    }
    // SAFETY: `addr < size` established by the backstop check above.
    Ok(u32::from(unsafe { *wram.get_unchecked(addr) }))
}

#[inline(always)]
fn sb_at(wram: &mut [u8], base: u32, off: i32, v: u32) -> Result<(), IsaError> {
    let size = wram.len();
    let addr = (i64::from(base) + i64::from(off)) as usize;
    if addr >= size {
        return Err(IsaError::MemOutOfBounds { addr, len: 1, size });
    }
    // SAFETY: `addr < size` established by the backstop check above.
    unsafe {
        *wram.get_unchecked_mut(addr) = v as u8;
    }
    Ok(())
}

#[inline(always)]
fn j_lw(regs: &mut JitRegs, wram: &[u8], o: JitOp) -> Result<(), IsaError> {
    let v = lw_at(wram, rget(regs, o.ra), o.imm)?;
    regs[(o.rd & 31) as usize] = v;
    Ok(())
}

#[inline(always)]
fn j_sw(regs: &JitRegs, wram: &mut [u8], o: JitOp) -> Result<(), IsaError> {
    sw_at(wram, rget(regs, o.ra), o.imm, rget(regs, o.rd))
}

#[inline(always)]
fn j_lbu(regs: &mut JitRegs, wram: &[u8], o: JitOp) -> Result<(), IsaError> {
    let v = lbu_at(wram, rget(regs, o.ra), o.imm)?;
    regs[(o.rd & 31) as usize] = v;
    Ok(())
}

#[inline(always)]
fn j_sb(regs: &JitRegs, wram: &mut [u8], o: JitOp) -> Result<(), IsaError> {
    sb_at(wram, rget(regs, o.ra), o.imm, rget(regs, o.rd))
}

/// Pre-extracted operands of one [`JitKind::TCellNw`] superop: everything
/// the executor needs, unpacked from the 34 member slots at translation
/// time into two cache lines. The head slot's `imm` indexes into the
/// [`Jit`]'s `CellOp` table. `woff_*` fields are the member instructions'
/// fault-pc offsets from the block start.
#[derive(Debug, Clone, Copy)]
struct CellOp {
    // Mask diamond: z = mr & mask, then score/traceback constants.
    mask: i32,
    mcond: u8,
    z: u8,
    sc_rd: u8,
    bt_rd: u8,
    sc_mis: i32,
    sc_mat: i32,
    bt_mis: i32,
    bt_mat: i32,
    // D: load + gap-extend bump vs. gap-open rival, flag select.
    x: u8,
    woff_d: u8,
    off_d: i32,
    d_rd: u8,
    ge: i32,
    h_src: u8,
    t_rd: u8,
    goge: i32,
    fl_rd: u8,
    f_ext: i32,
    c_d: u8,
    f_open: i32,
    woff_dc: u8,
    off_dc: i32,
    // I: loads, bumps, diamond with flag accumulation.
    woff_i: u8,
    off_i: i32,
    i_rd: u8,
    woff_hn: u8,
    off_hn: i32,
    hn_rd: u8,
    ge2: i32,
    t2_rd: u8,
    goge2: i32,
    c_i: u8,
    f_iext: i32,
    woff_ic: u8,
    off_ic: i32,
    // H: diag + score, two selects with traceback codes.
    woff_h2: u8,
    off_h2: i32,
    g_rd: u8,
    c_h1: u8,
    bt_d: i32,
    c_h2: u8,
    bt_i: i32,
    woff_hc: u8,
    off_hc: i32,
    // Traceback byte store.
    p: u8,
    off_p: i32,
    woff_p: u8,
}

/// The general block executor. Per op: one jump-table dispatch over fully
/// pre-resolved fields; fused branches and conditional skips advance the
/// op index directly with precomputed spans.
fn exec_general(
    ops: &[JitOp],
    cells: &[CellOp],
    regs: &mut JitRegs,
    wram: &mut [u8],
    stats: &mut RunStats,
) -> BlockExit {
    use JitKind as K;
    // Branch outcomes accumulate in locals and fold into `stats` once per
    // block — no per-op memory traffic on the counters.
    let mut skipped = 0u64;
    let mut jumps = 0u64;
    let mut i = 0usize;
    while i < ops.len() {
        let o = ops[i];
        // Plain ALU: compute and store.
        macro_rules! alu {
            ($v:expr) => {{
                regs[(o.rd & 31) as usize] = $v;
            }};
        }
        // ALU with compiled-in fused branch: compute, store, branch on the
        // result just produced (no `last` side channel).
        macro_rules! falu {
            ($v:expr) => {{
                let r = $v;
                regs[(o.rd & 31) as usize] = r;
                if fuse_holds(o.aux, r) {
                    jumps += 1;
                    skipped += u64::from(o.weight);
                    i += usize::from(o.skip);
                }
            }};
        }
        macro_rules! skip {
            ($cond:expr) => {{
                if $cond {
                    jumps += 1;
                    skipped += u64::from(o.weight);
                    i += usize::from(o.skip);
                }
            }};
        }
        macro_rules! mem {
            ($op:expr, $res:expr) => {
                if let Err(err) = $res {
                    stats.taken_jumps += jumps;
                    return BlockExit::Fault {
                        woff: usize::from($op.aux),
                        err,
                    };
                }
            };
        }
        // Member slot of a multi-op template. SAFETY: the template matcher
        // only rewrites a head slot when all its members fit the window.
        macro_rules! member {
            ($k:expr) => {
                unsafe { *ops.get_unchecked(i + $k) }
            };
        }
        let a = rget(regs, o.ra);
        match o.kind {
            K::AddRI => alu!(a.wrapping_add(o.imm as u32)),
            K::AddRR => alu!(a.wrapping_add(rget(regs, o.rb))),
            K::SubRI => alu!(a.wrapping_sub(o.imm as u32)),
            K::SubRR => alu!(a.wrapping_sub(rget(regs, o.rb))),
            K::AndRI => alu!(a & o.imm as u32),
            K::AndRR => alu!(a & rget(regs, o.rb)),
            K::OrRI => alu!(a | o.imm as u32),
            K::OrRR => alu!(a | rget(regs, o.rb)),
            K::XorRI => alu!(a ^ o.imm as u32),
            K::XorRR => alu!(a ^ rget(regs, o.rb)),
            K::LslRI => alu!(a.wrapping_shl(o.imm as u32 & 31)),
            K::LslRR => alu!(a.wrapping_shl(rget(regs, o.rb) & 31)),
            K::LsrRI => alu!(a.wrapping_shr(o.imm as u32 & 31)),
            K::LsrRR => alu!(a.wrapping_shr(rget(regs, o.rb) & 31)),
            K::AsrRI => alu!((a as i32).wrapping_shr(o.imm as u32 & 31) as u32),
            K::AsrRR => alu!((a as i32).wrapping_shr(rget(regs, o.rb) & 31) as u32),
            K::MaxRI => alu!((a as i32).max(o.imm) as u32),
            K::MaxRR => alu!((a as i32).max(rget(regs, o.rb) as i32) as u32),
            K::Cmpb4RI => alu!(alu_eval(AluOp::Cmpb4, a, o.imm as u32)),
            K::Cmpb4RR => alu!(alu_eval(AluOp::Cmpb4, a, rget(regs, o.rb))),
            K::MoveRI => alu!(o.imm as u32),
            K::MoveRR => alu!(rget(regs, o.rb)),
            K::FAddRI => falu!(a.wrapping_add(o.imm as u32)),
            K::FAddRR => falu!(a.wrapping_add(rget(regs, o.rb))),
            K::FSubRI => falu!(a.wrapping_sub(o.imm as u32)),
            K::FSubRR => falu!(a.wrapping_sub(rget(regs, o.rb))),
            K::FAndRI => falu!(a & o.imm as u32),
            K::FAndRR => falu!(a & rget(regs, o.rb)),
            K::FOrRI => falu!(a | o.imm as u32),
            K::FOrRR => falu!(a | rget(regs, o.rb)),
            K::FXorRI => falu!(a ^ o.imm as u32),
            K::FXorRR => falu!(a ^ rget(regs, o.rb)),
            K::FLslRI => falu!(a.wrapping_shl(o.imm as u32 & 31)),
            K::FLslRR => falu!(a.wrapping_shl(rget(regs, o.rb) & 31)),
            K::FLsrRI => falu!(a.wrapping_shr(o.imm as u32 & 31)),
            K::FLsrRR => falu!(a.wrapping_shr(rget(regs, o.rb) & 31)),
            K::FAsrRI => falu!((a as i32).wrapping_shr(o.imm as u32 & 31) as u32),
            K::FAsrRR => falu!((a as i32).wrapping_shr(rget(regs, o.rb) & 31) as u32),
            K::FMaxRI => falu!((a as i32).max(o.imm) as u32),
            K::FMaxRR => falu!((a as i32).max(rget(regs, o.rb) as i32) as u32),
            K::FCmpb4RI => falu!(alu_eval(AluOp::Cmpb4, a, o.imm as u32)),
            K::FCmpb4RR => falu!(alu_eval(AluOp::Cmpb4, a, rget(regs, o.rb))),
            K::FMoveRI => falu!(o.imm as u32),
            K::FMoveRR => falu!(rget(regs, o.rb)),
            K::Lw => mem!(o, j_lw(regs, wram, o)),
            K::Sw => mem!(o, j_sw(regs, wram, o)),
            K::Lbu => mem!(o, j_lbu(regs, wram, o)),
            K::Sb => mem!(o, j_sb(regs, wram, o)),
            K::JmpF => {
                jumps += 1;
                skipped += u64::from(o.weight);
                i += usize::from(o.skip);
            }
            K::SkipEqRI => skip!((a as i32) == o.imm),
            K::SkipEqRR => skip!((a as i32) == rget(regs, o.rb) as i32),
            K::SkipNeRI => skip!((a as i32) != o.imm),
            K::SkipNeRR => skip!((a as i32) != rget(regs, o.rb) as i32),
            K::SkipLtRI => skip!((a as i32) < o.imm),
            K::SkipLtRR => skip!((a as i32) < rget(regs, o.rb) as i32),
            K::SkipLeRI => skip!((a as i32) <= o.imm),
            K::SkipLeRR => skip!((a as i32) <= rget(regs, o.rb) as i32),
            K::SkipGtRI => skip!((a as i32) > o.imm),
            K::SkipGtRR => skip!((a as i32) > rget(regs, o.rb) as i32),
            K::SkipGeRI => skip!((a as i32) >= o.imm),
            K::SkipGeRR => skip!((a as i32) >= rget(regs, o.rb) as i32),
            K::TSelSubRR => {
                // [FSubRR cond, MoveRR x,y]: taken fuse skips the move.
                let r = a.wrapping_sub(rget(regs, o.rb));
                regs[(o.rd & 31) as usize] = r;
                let m = member!(1);
                let t = fuse_holds(o.aux, r);
                jumps += u64::from(t);
                skipped += u64::from(t) * u64::from(o.weight);
                regs[(m.rd & 31) as usize] = if t {
                    rget(regs, m.rd)
                } else {
                    rget(regs, m.rb)
                };
                i += 1;
            }
            K::TSel2SubRR => {
                // [FSubRR cond, MoveRR x,y, MoveRI z,k]: taken skips both.
                let r = a.wrapping_sub(rget(regs, o.rb));
                regs[(o.rd & 31) as usize] = r;
                let m1 = member!(1);
                let m2 = member!(2);
                let t = fuse_holds(o.aux, r);
                jumps += u64::from(t);
                skipped += u64::from(t) * u64::from(o.weight);
                regs[(m1.rd & 31) as usize] = if t {
                    rget(regs, m1.rd)
                } else {
                    rget(regs, m1.rb)
                };
                regs[(m2.rd & 31) as usize] = if t { rget(regs, m2.rd) } else { m2.imm as u32 };
                i += 2;
            }
            K::TDia1SubRR => {
                // [FSubRR cond, JmpF, MoveRR x,y]: one arm executes the
                // move, the other the forward hop — a jump either way.
                let r = a.wrapping_sub(rget(regs, o.rb));
                regs[(o.rd & 31) as usize] = r;
                let j = member!(1);
                let m = member!(2);
                let t = fuse_holds(o.aux, r);
                jumps += 1;
                skipped += u64::from(if t { o.weight } else { j.weight });
                regs[(m.rd & 31) as usize] = if t {
                    rget(regs, m.rb)
                } else {
                    rget(regs, m.rd)
                };
                i += 2;
            }
            K::TDia2SubRR => {
                // [FSubRR cond, OrRI f, JmpF, MoveRR x,y]: the else-arm
                // accumulates a flag bit before hopping over the move.
                let r = a.wrapping_sub(rget(regs, o.rb));
                regs[(o.rd & 31) as usize] = r;
                let f = member!(1);
                let j = member!(2);
                let m = member!(3);
                let t = fuse_holds(o.aux, r);
                jumps += 1;
                skipped += u64::from(if t { o.weight } else { j.weight });
                regs[(f.rd & 31) as usize] = if t {
                    rget(regs, f.rd)
                } else {
                    rget(regs, f.ra) | f.imm as u32
                };
                regs[(m.rd & 31) as usize] = if t {
                    rget(regs, m.rb)
                } else {
                    rget(regs, m.rd)
                };
                i += 3;
            }
            K::TMaskAndRI => {
                // [FAndRI cond, MoveRI d1,k1, MoveRI d2,k2, JmpF,
                //  MoveRI d1,k3, MoveRI d2,k4]: two constants selected by
                // the mask test (matcher checked the destinations line up).
                let r = a & o.imm as u32;
                regs[(o.rd & 31) as usize] = r;
                let m1 = member!(1);
                let m2 = member!(2);
                let j = member!(3);
                let m4 = member!(4);
                let m5 = member!(5);
                let t = fuse_holds(o.aux, r);
                jumps += 1;
                skipped += u64::from(if t { o.weight } else { j.weight });
                regs[(m1.rd & 31) as usize] = (if t { m4.imm } else { m1.imm }) as u32;
                regs[(m2.rd & 31) as usize] = (if t { m5.imm } else { m2.imm }) as u32;
                i += 5;
            }
            K::TLwLw => {
                mem!(o, j_lw(regs, wram, o));
                let m = member!(1);
                mem!(m, j_lw(regs, wram, m));
                i += 1;
            }
            K::TLwAddRI => {
                mem!(o, j_lw(regs, wram, o));
                let m = member!(1);
                let v = rget(regs, m.ra).wrapping_add(m.imm as u32);
                regs[(m.rd & 31) as usize] = v;
                i += 1;
            }
            K::TSwLw => {
                mem!(o, j_sw(regs, wram, o));
                let m = member!(1);
                mem!(m, j_lw(regs, wram, m));
                i += 1;
            }
            K::TLbuLbu => {
                mem!(o, j_lbu(regs, wram, o));
                let m = member!(1);
                mem!(m, j_lbu(regs, wram, m));
                i += 1;
            }
            K::TOrRRSb => {
                regs[(o.rd & 31) as usize] = a | rget(regs, o.rb);
                let m = member!(1);
                mem!(m, j_sb(regs, wram, m));
                i += 1;
            }
            K::TAddRIAddRI => {
                regs[(o.rd & 31) as usize] = a.wrapping_add(o.imm as u32);
                let m = member!(1);
                let v = rget(regs, m.ra).wrapping_add(m.imm as u32);
                regs[(m.rd & 31) as usize] = v;
                i += 1;
            }
            K::TAddRIMoveRI => {
                regs[(o.rd & 31) as usize] = a.wrapping_add(o.imm as u32);
                let m = member!(1);
                regs[(m.rd & 31) as usize] = m.imm as u32;
                i += 1;
            }
            K::T3Lw => {
                mem!(o, j_lw(regs, wram, o));
                let m1 = member!(1);
                mem!(m1, j_lw(regs, wram, m1));
                let m2 = member!(2);
                mem!(m2, j_lw(regs, wram, m2));
                i += 2;
            }
            K::TCmp4Add2 => {
                regs[(o.rd & 31) as usize] = alu_eval(AluOp::Cmpb4, a, rget(regs, o.rb));
                let m1 = member!(1);
                regs[(m1.rd & 31) as usize] = rget(regs, m1.ra).wrapping_add(m1.imm as u32);
                let m2 = member!(2);
                regs[(m2.rd & 31) as usize] = rget(regs, m2.ra).wrapping_add(m2.imm as u32);
                i += 2;
            }
            K::TAdd2Sub => {
                regs[(o.rd & 31) as usize] = a.wrapping_add(o.imm as u32);
                let m1 = member!(1);
                regs[(m1.rd & 31) as usize] = rget(regs, m1.ra).wrapping_add(m1.imm as u32);
                let m2 = member!(2);
                regs[(m2.rd & 31) as usize] = rget(regs, m2.ra).wrapping_sub(m2.imm as u32);
                i += 2;
            }
            K::TCellNw => {
                // One banded-NW cell (34 slots, see `match_cell`). All
                // operands come pre-extracted from the side table — no
                // member-slot reads on the hot path. D/I/H, the score and
                // the flag/traceback bytes live in locals; `regs` commits
                // are batched at the fault boundaries (the stores), in
                // program write order, so a faulting access observes
                // exactly the checked interpreter's intermediate state.
                // The branch weights (3/2/2/2/1/2/2) are pinned by the
                // level-1 matchers, so the accounting uses them directly.
                // SAFETY: `imm` was set to the table index at match time.
                let c = unsafe { cells.get_unchecked(o.imm as usize) };
                macro_rules! cmem {
                    ($woff:expr, $res:expr) => {
                        match $res {
                            Ok(v) => v,
                            Err(err) => {
                                stats.taken_jumps += jumps;
                                return BlockExit::Fault {
                                    woff: usize::from($woff),
                                    err,
                                };
                            }
                        }
                    };
                }
                // Mask diamond: select substitution score + traceback seed.
                let r = a & c.mask as u32;
                let t0 = fuse_holds(c.mcond, r);
                jumps += 1;
                skipped += if t0 { 3 } else { 2 };
                let sc = (if t0 { c.sc_mat } else { c.sc_mis }) as u32;
                let mut bt = (if t0 { c.bt_mat } else { c.bt_mis }) as u32;
                regs[(c.z & 31) as usize] = r;
                regs[(c.sc_rd & 31) as usize] = sc;
                regs[(c.bt_rd & 31) as usize] = bt;
                // The shared row base is pinned never-written inside the
                // cell, so one read serves every access.
                let xv = rget(regs, c.x);
                // D candidate: gap-extend load + bump, gap-open rival.
                let mut d = cmem!(c.woff_d, lw_at(wram, xv, c.off_d)).wrapping_add(c.ge as u32);
                // Commit the pre-select D before the rival reads its
                // source — the carrier may alias it.
                regs[(c.d_rd & 31) as usize] = d;
                let t = rget(regs, c.h_src).wrapping_add(c.goge as u32);
                let z1 = d.wrapping_sub(t);
                let t1 = fuse_holds(c.c_d, z1);
                jumps += u64::from(t1);
                skipped += u64::from(t1) * 2;
                let mut fl = (if t1 { c.f_ext } else { c.f_open }) as u32;
                if !t1 {
                    d = t;
                }
                regs[(c.d_rd & 31) as usize] = d;
                regs[(c.t_rd & 31) as usize] = t;
                regs[(c.fl_rd & 31) as usize] = fl;
                regs[(c.z & 31) as usize] = z1;
                // Store D, load I row and next H-prev carrier.
                cmem!(c.woff_dc, sw_at(wram, xv, c.off_dc, d));
                let iraw = cmem!(c.woff_i, lw_at(wram, xv, c.off_i));
                // A fault at the very next load observes the raw I value.
                regs[(c.i_rd & 31) as usize] = iraw;
                let hn = cmem!(c.woff_hn, lw_at(wram, xv, c.off_hn));
                let mut iv = iraw.wrapping_add(c.ge2 as u32);
                let t2 = hn.wrapping_add(c.goge2 as u32);
                // I diamond: rival wins or the flag accumulates a bit.
                let z2 = iv.wrapping_sub(t2);
                let tc = fuse_holds(c.c_i, z2);
                jumps += 1;
                skipped += if tc { 2 } else { 1 };
                if tc {
                    iv = t2;
                } else {
                    fl |= c.f_iext as u32;
                }
                regs[(c.hn_rd & 31) as usize] = hn;
                regs[(c.i_rd & 31) as usize] = iv;
                regs[(c.t2_rd & 31) as usize] = t2;
                regs[(c.fl_rd & 31) as usize] = fl;
                regs[(c.z & 31) as usize] = z2;
                // Store I, then H = max(diag + score, D, I) with traceback.
                cmem!(c.woff_ic, sw_at(wram, xv, c.off_ic, iv));
                let mut g = cmem!(c.woff_h2, lw_at(wram, xv, c.off_h2)).wrapping_add(sc);
                let z3 = g.wrapping_sub(d);
                let t3 = fuse_holds(c.c_h1, z3);
                jumps += u64::from(t3);
                skipped += u64::from(t3) * 2;
                if !t3 {
                    g = d;
                    bt = c.bt_d as u32;
                }
                let z4 = g.wrapping_sub(iv);
                let t4 = fuse_holds(c.c_h2, z4);
                jumps += u64::from(t4);
                skipped += u64::from(t4) * 2;
                if !t4 {
                    g = iv;
                    bt = c.bt_i as u32;
                }
                regs[(c.g_rd & 31) as usize] = g;
                regs[(c.bt_rd & 31) as usize] = bt;
                regs[(c.z & 31) as usize] = z4;
                cmem!(c.woff_hc, sw_at(wram, xv, c.off_hc, g));
                bt |= fl;
                regs[(c.bt_rd & 31) as usize] = bt;
                cmem!(c.woff_p, sb_at(wram, rget(regs, c.p), c.off_p, bt));
                i += 33;
            }
        }
        i += 1;
    }
    stats.taken_jumps += jumps;
    BlockExit::Done { skipped }
}

/// Lower one micro-op (unpaired) to its translated form. Spans are patched
/// by the caller once the slot mapping is final.
fn base_op(m: Micro) -> JitOp {
    use JitKind as J;
    use MicroKind as K;
    let kind = match m.kind {
        K::AddRI => J::AddRI,
        K::AddRR => J::AddRR,
        K::SubRI => J::SubRI,
        K::SubRR => J::SubRR,
        K::AndRI => J::AndRI,
        K::AndRR => J::AndRR,
        K::OrRI => J::OrRI,
        K::OrRR => J::OrRR,
        K::XorRI => J::XorRI,
        K::XorRR => J::XorRR,
        K::LslRI => J::LslRI,
        K::LslRR => J::LslRR,
        K::LsrRI => J::LsrRI,
        K::LsrRR => J::LsrRR,
        K::AsrRI => J::AsrRI,
        K::AsrRR => J::AsrRR,
        K::MaxRI => J::MaxRI,
        K::MaxRR => J::MaxRR,
        K::Cmpb4RI => J::Cmpb4RI,
        K::Cmpb4RR => J::Cmpb4RR,
        K::MoveRI => J::MoveRI,
        K::MoveRR => J::MoveRR,
        K::Lw => J::Lw,
        K::Sw => J::Sw,
        K::Lbu => J::Lbu,
        K::Sb => J::Sb,
        K::JmpFwd => J::JmpF,
        K::SkipEqRI => J::SkipEqRI,
        K::SkipEqRR => J::SkipEqRR,
        K::SkipNeRI => J::SkipNeRI,
        K::SkipNeRR => J::SkipNeRR,
        K::SkipLtRI => J::SkipLtRI,
        K::SkipLtRR => J::SkipLtRR,
        K::SkipLeRI => J::SkipLeRI,
        K::SkipLeRR => J::SkipLeRR,
        K::SkipGtRI => J::SkipGtRI,
        K::SkipGtRR => J::SkipGtRR,
        K::SkipGeRI => J::SkipGeRI,
        K::SkipGeRR => J::SkipGeRR,
        // Fuse pseudo-ops are merged into their ALU; pair/triple kinds
        // never appear (pairing is disabled for the jit's predecode).
        _ => unreachable!("unexpected micro kind in jit translation: {:?}", m.kind),
    };
    let (rd, ra, rb, imm, aux) = match m.kind {
        // Memory micro-ops carry the fault-pc offset in `rb`.
        K::Lw | K::Sw | K::Lbu | K::Sb => (m.rd, m.ra, 0, m.imm, m.rb),
        _ => (m.rd, m.ra, m.rb, m.imm, 0),
    };
    JitOp {
        kind,
        rd,
        ra,
        rb,
        imm,
        skip: 0,
        weight: 0,
        aux,
    }
}

/// Translate one fused window's micro-ops (unpaired) into the op pool.
/// Fuse pseudo-ops are merged into their preceding ALU; skip spans are
/// re-expressed in translated-slot units via the slot map.
fn translate_window(w: &[Micro], pool: &mut Vec<JitOp>, cells: &mut Vec<CellOp>) {
    use MicroKind as K;
    let start = pool.len();
    // Micro slot -> translated slot (merged fuses map to their ALU).
    let mut jmap = vec![0u32; w.len() + 1];
    for (s, &m) in w.iter().enumerate() {
        match m.kind {
            K::FuseZ | K::FuseNz | K::FuseLtz | K::FuseGez | K::FuseEven | K::FuseOdd => {
                let j = pool.len() - 1 - start;
                jmap[s] = j as u32;
                let cond = match m.kind {
                    K::FuseZ => 0,
                    K::FuseNz => 1,
                    K::FuseLtz => 2,
                    K::FuseGez => 3,
                    K::FuseEven => 4,
                    _ => 5,
                };
                let prev = &mut pool[start + j];
                prev.kind = fuse_kind(prev.kind);
                prev.aux = cond;
            }
            _ => {
                jmap[s] = (pool.len() - start) as u32;
                pool.push(base_op(m));
            }
        }
    }
    jmap[w.len()] = (pool.len() - start) as u32;
    // Patch spans: a skip at micro slot `s` jumping over `span` micro slots
    // lands at micro slot `s + 1 + span`; in translated units the distance
    // runs from the op *after* the branch-carrying op to the landing slot.
    for (s, &m) in w.iter().enumerate() {
        let (span, weight) = match m.kind {
            K::JmpFwd
            | K::FuseZ
            | K::FuseNz
            | K::FuseLtz
            | K::FuseGez
            | K::FuseEven
            | K::FuseOdd
            | K::SkipEqRI
            | K::SkipNeRI
            | K::SkipLtRI
            | K::SkipLeRI
            | K::SkipGtRI
            | K::SkipGeRI => (usize::from(m.rb), u32::from(m.rd)),
            K::SkipEqRR | K::SkipNeRR | K::SkipLtRR | K::SkipLeRR | K::SkipGtRR | K::SkipGeRR => {
                let packed = m.imm as u32;
                ((packed & 0xFFFF) as usize, packed >> 16)
            }
            _ => continue,
        };
        let land = jmap[s + 1 + span] as usize;
        let at = jmap[s] as usize;
        let op = &mut pool[start + at];
        op.skip = (land - (at + 1)) as u16;
        op.weight = weight as u16;
    }
    template_window(&mut pool[start..], cells);
}

/// Greedy left-to-right template formation over a translated window. Pure
/// kind rewriting at the head slot — members keep their single-op kinds
/// and operands, so skip spans, fault offsets and mid-template entry all
/// stay valid; the head's executor arm reads the member slots directly.
fn template_window(w: &mut [JitOp], cells: &mut Vec<CellOp>) {
    use JitKind as K;
    let mut i = 0;
    while i < w.len() {
        let o = w[i];
        let k1 = w.get(i + 1).map(|m| m.kind);
        let adv = match o.kind {
            K::FSubRR if o.skip == 1 && o.weight == 1 => match k1 {
                Some(K::MoveRR) => {
                    w[i].kind = K::TSelSubRR;
                    2
                }
                Some(K::JmpF)
                    if w[i + 1].skip == 1
                        && w[i + 1].weight == 1
                        && w.get(i + 2).map(|m| m.kind) == Some(K::MoveRR) =>
                {
                    w[i].kind = K::TDia1SubRR;
                    3
                }
                _ => 1,
            },
            K::FSubRR if o.skip == 2 && o.weight == 2 => {
                if k1 == Some(K::MoveRR) && w.get(i + 2).map(|m| m.kind) == Some(K::MoveRI) {
                    w[i].kind = K::TSel2SubRR;
                    3
                } else if k1 == Some(K::OrRI)
                    && w.get(i + 2)
                        .is_some_and(|m| m.kind == K::JmpF && m.skip == 1 && m.weight == 1)
                    && w.get(i + 3).map(|m| m.kind) == Some(K::MoveRR)
                {
                    w[i].kind = K::TDia2SubRR;
                    4
                } else {
                    1
                }
            }
            K::FAndRI if o.skip == 3 && o.weight == 3 => {
                let shape = k1 == Some(K::MoveRI)
                    && w.get(i + 2).map(|m| m.kind) == Some(K::MoveRI)
                    && w.get(i + 3).is_some_and(|m| {
                        m.kind == K::JmpF && m.skip == 2 && m.weight == 2
                    })
                    && w.get(i + 4).map(|m| m.kind) == Some(K::MoveRI)
                    && w.get(i + 5).map(|m| m.kind) == Some(K::MoveRI)
                    // The branchless form needs both arms to target the
                    // same destination pair.
                    && w[i + 1].rd == w[i + 4].rd
                    && w[i + 2].rd == w[i + 5].rd;
                if shape {
                    w[i].kind = K::TMaskAndRI;
                    6
                } else {
                    1
                }
            }
            K::Lw => match k1 {
                Some(K::Lw) => {
                    w[i].kind = K::TLwLw;
                    2
                }
                Some(K::AddRI) => {
                    w[i].kind = K::TLwAddRI;
                    2
                }
                _ => 1,
            },
            K::Sw if k1 == Some(K::Lw) => {
                w[i].kind = K::TSwLw;
                2
            }
            K::Lbu if k1 == Some(K::Lbu) => {
                w[i].kind = K::TLbuLbu;
                2
            }
            K::OrRR if k1 == Some(K::Sb) => {
                w[i].kind = K::TOrRRSb;
                2
            }
            K::AddRI => match k1 {
                Some(K::AddRI) => {
                    w[i].kind = K::TAddRIAddRI;
                    2
                }
                Some(K::MoveRI) => {
                    w[i].kind = K::TAddRIMoveRI;
                    2
                }
                _ => 1,
            },
            _ => 1,
        };
        i += adv;
    }
    // Second pass over the level-1 heads: collapse whole compare-and-select
    // cells, then the shorter header/tail runs around them.
    let mut i = 0;
    while i < w.len() {
        let adv = match w[i].kind {
            K::TMaskAndRI if i + 34 <= w.len() && match_cell(w, i) => {
                // The head's `imm` becomes the side-table index; its other
                // fields are dead once the kind is `TCellNw`.
                let c = extract_cell(w, i);
                w[i].kind = K::TCellNw;
                w[i].imm = cells.len() as i32;
                cells.push(c);
                34
            }
            K::TLwLw if w.get(i + 2).map(|m| m.kind) == Some(K::Lw) => {
                w[i].kind = K::T3Lw;
                3
            }
            K::Cmpb4RR if w.get(i + 1).map(|m| m.kind) == Some(K::TAddRIAddRI) => {
                w[i].kind = K::TCmp4Add2;
                3
            }
            K::TAddRIAddRI if w.get(i + 2).map(|m| m.kind) == Some(K::SubRI) => {
                w[i].kind = K::TAdd2Sub;
                3
            }
            _ => 1,
        };
        i += adv;
    }
}

/// Does a banded-NW cell start at `w[i]`? Checks the level-1 head-kind
/// sequence, then pins the register dataflow the [`JitKind::TCellNw`]
/// executor relies on: every chained operand field equality, plus
/// disjointness of each cached local's register from everything written
/// inside its live range (roles with disjoint ranges may share a
/// register — the scratch slot legitimately serves as three different
/// temporaries). Any mismatch just leaves the level-1 templates in place.
fn match_cell(w: &[JitOp], i: usize) -> bool {
    use JitKind as K;
    let k = |o: usize| w[i + o];
    let kinds = k(6).kind == K::TLwAddRI
        && k(8).kind == K::TAddRIMoveRI
        && k(10).kind == K::TSel2SubRR
        && k(13).kind == K::TSwLw
        && k(15).kind == K::TLwAddRI
        && k(17).kind == K::AddRI
        && k(18).kind == K::TDia2SubRR
        && k(22).kind == K::TSwLw
        && k(24).kind == K::AddRR
        && k(25).kind == K::TSel2SubRR
        && k(28).kind == K::TSel2SubRR
        && k(31).kind == K::Sw
        && k(32).kind == K::TOrRRSb;
    if !kinds {
        return false;
    }
    let (sc, bt) = (k(1).rd, k(2).rd);
    let d = k(6).rd;
    let t = k(8).rd;
    let fl = k(9).rd;
    let iv = k(14).rd;
    let hn = k(15).rd;
    let t2 = k(17).rd;
    let g = k(23).rd;
    let x = k(6).ra;
    // Chained-operand pins: each local substitutes for exactly these reads.
    let pins = k(7).ra == d
        && k(7).rd == d
        && k(10).ra == d
        && k(10).rb == t
        && k(11).rd == d
        && k(11).rb == t
        && k(12).rd == fl
        && k(13).rd == d
        && k(16).ra == iv
        && k(16).rd == iv
        && k(17).ra == hn
        && k(18).ra == iv
        && k(18).rb == t2
        && k(19).ra == fl
        && k(19).rd == fl
        && k(21).rd == iv
        && k(21).rb == t2
        && k(22).rd == iv
        && k(24).ra == g
        && k(24).rd == g
        && k(24).rb == sc
        && k(25).ra == g
        && k(25).rb == d
        && k(26).rd == g
        && k(26).rb == d
        && k(27).rd == bt
        && k(28).ra == g
        && k(28).rb == iv
        && k(29).rd == g
        && k(29).rb == iv
        && k(30).rd == bt
        && k(31).rd == g
        && k(32).ra == bt
        && k(32).rd == bt
        && k(32).rb == fl
        && k(33).rd == bt
        // Every row access goes through the same base register, read once.
        && k(13).ra == x
        && k(14).ra == x
        && k(15).ra == x
        && k(22).ra == x
        && k(23).ra == x
        && k(31).ra == x
        // The compare scratch serves every diamond, so one commit per
        // fault boundary covers all of them.
        && k(10).rd == k(0).rd
        && k(18).rd == k(0).rd
        && k(25).rd == k(0).rd
        && k(28).rd == k(0).rd;
    if !pins {
        return false;
    }
    // Live-range disjointness: a cached local is valid only if nothing in
    // its range writes its register through another role. The row base
    // must survive the whole cell untouched.
    let distinct = |r: u8, others: &[u8]| others.iter().all(|&o| o != r);
    let z = k(0).rd;
    distinct(z, &[sc, bt, d, t, fl, iv, hn, t2, g])
        && distinct(x, &[z, sc, bt, d, t, fl, iv, hn, t2, g])
        && distinct(d, &[sc, bt, t, fl, iv, hn, t2, g])
        && distinct(sc, &[bt, t, fl, iv, hn, t2, g])
        && distinct(bt, &[t, fl, iv, hn, t2, g])
        && distinct(fl, &[t, iv, hn, t2, g])
        && distinct(iv, &[hn, t2, g])
}

/// Unpack the member slots of a matched cell into its [`CellOp`]. Runs
/// once at translation time, only on spans [`match_cell`] accepted.
fn extract_cell(w: &[JitOp], i: usize) -> CellOp {
    let k = |o: usize| w[i + o];
    CellOp {
        mask: k(0).imm,
        mcond: k(0).aux,
        z: k(0).rd,
        sc_rd: k(1).rd,
        bt_rd: k(2).rd,
        sc_mis: k(1).imm,
        sc_mat: k(4).imm,
        bt_mis: k(2).imm,
        bt_mat: k(5).imm,
        x: k(6).ra,
        woff_d: k(6).aux,
        off_d: k(6).imm,
        d_rd: k(6).rd,
        ge: k(7).imm,
        h_src: k(8).ra,
        t_rd: k(8).rd,
        goge: k(8).imm,
        fl_rd: k(9).rd,
        f_ext: k(9).imm,
        c_d: k(10).aux,
        f_open: k(12).imm,
        woff_dc: k(13).aux,
        off_dc: k(13).imm,
        woff_i: k(14).aux,
        off_i: k(14).imm,
        i_rd: k(14).rd,
        woff_hn: k(15).aux,
        off_hn: k(15).imm,
        hn_rd: k(15).rd,
        ge2: k(16).imm,
        t2_rd: k(17).rd,
        goge2: k(17).imm,
        c_i: k(18).aux,
        f_iext: k(19).imm,
        woff_ic: k(22).aux,
        off_ic: k(22).imm,
        woff_h2: k(23).aux,
        off_h2: k(23).imm,
        g_rd: k(23).rd,
        c_h1: k(25).aux,
        bt_d: k(27).imm,
        c_h2: k(28).aux,
        bt_i: k(30).imm,
        woff_hc: k(31).aux,
        off_hc: k(31).imm,
        p: k(33).ra,
        off_p: k(33).imm,
        woff_p: k(33).aux,
    }
}

/// An ALU kind's fused-branch counterpart.
fn fuse_kind(k: JitKind) -> JitKind {
    use JitKind as J;
    match k {
        J::AddRI => J::FAddRI,
        J::AddRR => J::FAddRR,
        J::SubRI => J::FSubRI,
        J::SubRR => J::FSubRR,
        J::AndRI => J::FAndRI,
        J::AndRR => J::FAndRR,
        J::OrRI => J::FOrRI,
        J::OrRR => J::FOrRR,
        J::XorRI => J::FXorRI,
        J::XorRR => J::FXorRR,
        J::LslRI => J::FLslRI,
        J::LslRR => J::FLslRR,
        J::LsrRI => J::FLsrRI,
        J::LsrRR => J::FLsrRR,
        J::AsrRI => J::FAsrRI,
        J::AsrRR => J::FAsrRR,
        J::MaxRI => J::FMaxRI,
        J::MaxRR => J::FMaxRR,
        J::Cmpb4RI => J::FCmpb4RI,
        J::Cmpb4RR => J::FCmpb4RR,
        J::MoveRI => J::FMoveRI,
        J::MoveRR => J::FMoveRR,
        _ => unreachable!("fuse pseudo-op must follow an ALU micro-op"),
    }
}

fn alu_single(a: AluSpec) -> JitOp {
    let m = match a.b {
        Operand::Imm(v) => Micro {
            kind: ri_kind(a.op),
            rd: a.rd,
            ra: a.ra,
            rb: 0,
            imm: v,
        },
        Operand::Reg(r) => Micro {
            kind: rr_kind(a.op),
            rd: a.rd,
            ra: a.ra,
            rb: r.0,
            imm: 0,
        },
    };
    base_op(m)
}

fn ri_kind(op: AluOp) -> MicroKind {
    use MicroKind as K;
    match op {
        AluOp::Add => K::AddRI,
        AluOp::Sub => K::SubRI,
        AluOp::And => K::AndRI,
        AluOp::Or => K::OrRI,
        AluOp::Xor => K::XorRI,
        AluOp::Lsl => K::LslRI,
        AluOp::Lsr => K::LsrRI,
        AluOp::Asr => K::AsrRI,
        AluOp::Max => K::MaxRI,
        AluOp::Cmpb4 => K::Cmpb4RI,
        AluOp::Move => K::MoveRI,
    }
}

fn rr_kind(op: AluOp) -> MicroKind {
    use MicroKind as K;
    match op {
        AluOp::Add => K::AddRR,
        AluOp::Sub => K::SubRR,
        AluOp::And => K::AndRR,
        AluOp::Or => K::OrRR,
        AluOp::Xor => K::XorRR,
        AluOp::Lsl => K::LslRR,
        AluOp::Lsr => K::LsrRR,
        AluOp::Asr => K::AsrRR,
        AluOp::Max => K::MaxRR,
        AluOp::Cmpb4 => K::Cmpb4RR,
        AluOp::Move => K::MoveRR,
    }
}

fn mem_single(kind: JitKind, r: u8, base: u8, off: i32) -> JitOp {
    JitOp {
        kind,
        rd: r,
        ra: base,
        rb: 0,
        imm: off,
        skip: 0,
        weight: 0,
        aux: 0,
    }
}

/// Translate the whole program: re-derive the fast path's window layout
/// (pairing off) and lower each dense op to a block.
#[allow(clippy::type_complexity)]
fn translate(program: &[Inst]) -> Option<(Vec<Block>, Vec<JitOp>, Vec<CellOp>, Vec<u32>)> {
    use JitKind as J;
    let (dense, orig_pc, micro, _fused) = predecode(program, false)?;
    let mut pool: Vec<JitOp> = Vec::with_capacity(micro.len());
    let mut cells: Vec<CellOp> = Vec::new();
    let mut blocks: Vec<Block> = Vec::with_capacity(dense.len());
    for d in &dense {
        let start = pool.len() as u32;
        let (ilen, mem, term) = match *d {
            DenseOp::Alu { a, fuse } => {
                pool.push(alu_single(a));
                let term = match fuse {
                    None => JTerm::Fall,
                    Some((cond, target)) => JTerm::Fuse {
                        cond,
                        rr: a.rd,
                        target,
                    },
                };
                (1u16, 0u16, term)
            }
            DenseOp::Lw(LoadSpec { rd, base, off }) => {
                pool.push(mem_single(J::Lw, rd, base, off));
                (1, 1, JTerm::Fall)
            }
            DenseOp::Sw { rs, base, off } => {
                pool.push(mem_single(J::Sw, rs, base, off));
                (1, 1, JTerm::Fall)
            }
            DenseOp::Lbu(LoadSpec { rd, base, off }) => {
                pool.push(mem_single(J::Lbu, rd, base, off));
                (1, 1, JTerm::Fall)
            }
            DenseOp::Sb { rs, base, off } => {
                pool.push(mem_single(J::Sb, rs, base, off));
                (1, 1, JTerm::Fall)
            }
            DenseOp::Jmp { target } => (0, 0, JTerm::Jmp { target }),
            DenseOp::Jcc {
                cond,
                ra,
                b,
                target,
            } => (
                0,
                0,
                JTerm::Jcc {
                    cond,
                    ra,
                    b,
                    target,
                },
            ),
            DenseOp::Halt => (0, 0, JTerm::Halt),
            DenseOp::Seq {
                start: mstart,
                len,
                ilen,
                mem,
                term,
            } => {
                let w = &micro[mstart as usize..mstart as usize + usize::from(len)];
                translate_window(w, &mut pool, &mut cells);
                let term = match term {
                    SeqTerm::Fall => JTerm::Fall,
                    SeqTerm::Fuse { cond, target } => JTerm::Fuse {
                        cond,
                        // The window's final micro-op is the fused ALU; its
                        // destination slot holds the result to branch on.
                        rr: w.last().expect("fused window is non-empty").rd,
                        target,
                    },
                    SeqTerm::Jcc {
                        cond,
                        ra,
                        b,
                        target,
                    } => JTerm::Jcc {
                        cond,
                        ra,
                        b,
                        target,
                    },
                };
                (ilen, mem, term)
            }
        };
        blocks.push(Block {
            start,
            len: (pool.len() - start as usize) as u16,
            ilen,
            mem,
            term,
        });
    }
    Some((blocks, pool, cells, orig_pc))
}

/// A program translated for the jit tier. Construction runs the static
/// verifier once — build a `Jit` per kernel and reuse it across launches
/// (see `dpu-kernel::isa_loops::jitted`), not per launch.
#[derive(Debug, Clone)]
pub struct Jit {
    program: Vec<Inst>,
    blocks: Vec<Block>,
    ops: Vec<JitOp>,
    cells: Vec<CellOp>,
    orig_pc: Vec<u32>,
    ready: bool,
    frame: usize,
    entry: Vec<(u8, u32)>,
}

impl Jit {
    /// Verify `program` against `spec` and, on a clean verdict with a
    /// declared WRAM frame, translate it block-by-block. A rejected
    /// program still yields a usable `Jit` — it just always runs the
    /// checked interpreter.
    pub fn new(program: Vec<Inst>, spec: &VerifySpec) -> Self {
        let verified = error_count(&verify(&program, spec)) == 0;
        let frame = spec.wram_frame();
        let entry: Vec<(u8, u32)> = spec
            .known_inputs()
            .into_iter()
            .map(|(r, v)| (r.0, v))
            .collect();
        let mut j = Self {
            program,
            blocks: Vec::new(),
            ops: Vec::new(),
            cells: Vec::new(),
            orig_pc: Vec::new(),
            ready: false,
            frame: frame.unwrap_or(0),
            entry,
        };
        if verified && frame.is_some() {
            if let Some((blocks, ops, cells, orig_pc)) = translate(&j.program) {
                j.blocks = blocks;
                j.ops = ops;
                j.cells = cells;
                j.orig_pc = orig_pc;
                j.ready = true;
            }
        }
        j
    }

    /// The original program (what the checked fallback executes).
    pub fn program(&self) -> &[Inst] {
        &self.program
    }

    /// Did the program pass the verifier gate (with a WRAM frame) and
    /// translate — i.e. is the jit tier available at all?
    pub fn jit_eligible(&self) -> bool {
        self.ready
    }

    /// Would [`Machine::run_jit`] take the translated path from this
    /// machine state and WRAM size? Same gate as the fast path's.
    pub fn jit_active(&self, m: &Machine, wram_len: usize) -> bool {
        self.ready
            && m.pc == 0
            && wram_len >= self.frame
            && self.entry.iter().all(|&(r, v)| m.regs[r as usize] == v)
    }

    /// Evaluate the launch-entry check once and cache the verdict — the
    /// jit counterpart of [`super::fastpath::Prepared::entry_gate`].
    pub fn entry_gate(&self, m: &Machine, wram_len: usize) -> EntryGate {
        EntryGate {
            fast: self.jit_active(m, wram_len),
        }
    }

    /// Debug dump of the translated stream: one line per block with the
    /// op-kind sequence and terminator. For diagnosing template coverage.
    #[doc(hidden)]
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (i, b) in self.blocks.iter().enumerate() {
            let ops = &self.ops[b.start as usize..b.start as usize + b.len as usize];
            let _ = writeln!(s, "block {i}: ilen={} term={:?}", b.ilen, b.term);
            for (k, o) in ops.iter().enumerate() {
                let _ = writeln!(
                    s,
                    "  [{k:3}] {:<12?} rd={} ra={} rb={} imm={:#x} skip={} w={} aux={}",
                    o.kind, o.rd, o.ra, o.rb, o.imm, o.skip, o.weight, o.aux
                );
            }
        }
        s
    }

    /// Number of translated blocks (`program().len()` dispatches collapse
    /// to this many block calls when the jit path is active).
    pub fn block_count(&self) -> usize {
        if self.ready {
            self.blocks.len()
        } else {
            self.program.len()
        }
    }
}

impl Machine {
    /// Run a [`Jit`]-translated program: the translated path when
    /// [`Jit::jit_active`] holds, the checked interpreter otherwise.
    /// Completed runs are bit-identical on both paths — registers, WRAM,
    /// halt pc and [`RunStats`].
    pub fn run_jit(
        &mut self,
        jit: &Jit,
        wram: &mut [u8],
        max_steps: u64,
    ) -> Result<RunStats, IsaError> {
        if jit.jit_active(self, wram.len()) {
            self.run_blocks(jit, wram, max_steps)
        } else {
            self.run(&jit.program, wram, max_steps)
        }
    }

    /// [`Machine::run_jit`] under a DPU watchdog budget (`0` falls back to
    /// the [`super::interp::DEFAULT_MAX_STEPS`] backstop). The budget is
    /// re-checked per translated block — the same documented divergence
    /// granularity as the fast path's per-window check.
    pub fn run_jit_budgeted(
        &mut self,
        jit: &Jit,
        wram: &mut [u8],
        watchdog_cycles: u64,
    ) -> Result<RunStats, IsaError> {
        self.run_jit(jit, wram, watchdog_steps(watchdog_cycles))
    }

    /// [`Machine::run_jit`] with the entry check hoisted to prepare time
    /// (see [`Jit::entry_gate`]); debug builds re-verify the gate.
    pub fn run_jit_gated(
        &mut self,
        jit: &Jit,
        gate: EntryGate,
        wram: &mut [u8],
        max_steps: u64,
    ) -> Result<RunStats, IsaError> {
        if gate.fast {
            debug_assert!(
                jit.jit_active(self, wram.len()),
                "stale EntryGate: launch entry state no longer matches"
            );
            self.run_blocks(jit, wram, max_steps)
        } else {
            self.run(&jit.program, wram, max_steps)
        }
    }

    /// The computed-dispatch loop over translated blocks.
    fn run_blocks(
        &mut self,
        jit: &Jit,
        wram: &mut [u8],
        max_steps: u64,
    ) -> Result<RunStats, IsaError> {
        let blocks = jit.blocks.as_slice();
        let pool = jit.ops.as_slice();
        let cells = jit.cells.as_slice();
        let orig = jit.orig_pc.as_slice();
        let plen = jit.program.len();
        let mut regs: JitRegs = [0; 32];
        regs[..NUM_REGS].copy_from_slice(&self.regs);
        let mut stats = RunStats::default();
        let mut pc = 0usize;
        // Every exit — halt, fault, exhausted budget — syncs the working
        // register file back to the machine. On a fault inside a block the
        // restored pc is the *original* pc of the faulting instruction.
        macro_rules! leave {
            ($off:expr, $ret:expr) => {{
                self.regs.copy_from_slice(&regs[..NUM_REGS]);
                self.pc = orig[pc] as usize + $off;
                return $ret;
            }};
        }
        loop {
            let Some(b) = blocks.get(pc) else {
                // Fell off the end: the original pc is the program length.
                self.regs.copy_from_slice(&regs[..NUM_REGS]);
                self.pc = plen;
                return Err(IsaError::BadTarget {
                    target: plen,
                    len: plen,
                });
            };
            if stats.instructions >= max_steps {
                leave!(0, Err(IsaError::MaxSteps { limit: max_steps }));
            }
            let ops = &pool[b.start as usize..b.start as usize + usize::from(b.len)];
            if let JTerm::Fuse { cond, rr, target } = b.term {
                if target as usize == pc {
                    // Hot self-loop: the band inner loops' shape. Iterate
                    // natively, re-checking the step budget once per
                    // iteration (the same points the per-block check hits).
                    loop {
                        match exec_general(ops, cells, &mut regs, wram, &mut stats) {
                            BlockExit::Fault { woff, err } => leave!(woff, Err(err)),
                            BlockExit::Done { skipped } => {
                                stats.instructions += u64::from(b.ilen) - skipped;
                                stats.mem_ops += u64::from(b.mem);
                            }
                        }
                        if cond.holds(rget(&regs, rr)) {
                            stats.taken_jumps += 1;
                            if stats.instructions >= max_steps {
                                leave!(0, Err(IsaError::MaxSteps { limit: max_steps }));
                            }
                        } else {
                            pc += 1;
                            break;
                        }
                    }
                    continue;
                }
            }
            match exec_general(ops, cells, &mut regs, wram, &mut stats) {
                BlockExit::Fault { woff, err } => leave!(woff, Err(err)),
                BlockExit::Done { skipped } => {
                    stats.instructions += u64::from(b.ilen) - skipped;
                    stats.mem_ops += u64::from(b.mem);
                }
            }
            match b.term {
                JTerm::Fall => pc += 1,
                JTerm::Halt => {
                    stats.instructions += 1;
                    leave!(0, Ok(stats));
                }
                JTerm::Jmp { target } => {
                    stats.instructions += 1;
                    stats.taken_jumps += 1;
                    pc = target as usize;
                }
                JTerm::Fuse { cond, rr, target } => {
                    if cond.holds(rget(&regs, rr)) {
                        stats.taken_jumps += 1;
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
                JTerm::Jcc {
                    cond,
                    ra,
                    b: bop,
                    target,
                } => {
                    stats.instructions += 1;
                    let av = rget(&regs, ra) as i32;
                    let bv = opval(&regs, bop) as i32;
                    if cond.holds(av, bv) {
                        stats.taken_jumps += 1;
                        pc = target as usize;
                    } else {
                        pc += 1;
                    }
                }
            }
        }
    }
}
