//! A small assembler for the mini DPU ISA, so the Table-7 kernels can be
//! written as readable assembly text instead of instruction literals.
//!
//! Syntax, one instruction per line (`;` or `//` start a comment):
//!
//! ```text
//! label:
//!   move r1, 10            ; rd, imm|reg
//!   add  r1, r1, -1, jnz label   ; triadic + optional fused jump
//!   cmpb4 r2, r3, r4
//!   lsr  r2, r2, 8, jeven skip
//!   lw   r5, r6, 12        ; rd, base, offset
//!   sb   r5, r6, 3
//!   jmp  label
//!   jlt  r1, r2, label     ; compare-and-jump
//!   halt
//! ```
//!
//! Fused jump suffixes: `jz jnz jltz jgez jeven jodd`.

use super::inst::{AluOp, FuseCond, Inst, JumpCond, Operand, Reg};
use std::collections::HashMap;
use std::fmt;

/// Assembly errors, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

/// Assemble a program; labels may be used before definition.
pub fn assemble(source: &str) -> Result<Vec<Inst>, AsmError> {
    // Pass 1: collect labels and raw instruction lines.
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut lines: Vec<(usize, String)> = Vec::new();
    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut text = raw;
        if let Some(i) = text.find(';') {
            text = &text[..i];
        }
        if let Some(i) = text.find("//") {
            text = &text[..i];
        }
        let mut text = text.trim();
        // Possibly "label:" or "label: inst".
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty() || !label.chars().all(|c| c.is_alphanumeric() || c == '_') {
                return Err(err(lineno, format!("bad label {label:?}")));
            }
            if labels.insert(label.to_string(), lines.len()).is_some() {
                return Err(err(lineno, format!("duplicate label {label:?}")));
            }
            text = rest[1..].trim();
        }
        if !text.is_empty() {
            lines.push((lineno, text.to_string()));
        }
    }

    // Pass 2: parse instructions.
    let lookup = |line: usize, name: &str| -> Result<usize, AsmError> {
        labels
            .get(name)
            .copied()
            .ok_or_else(|| err(line, format!("unknown label {name:?}")))
    };
    let mut program = Vec::with_capacity(lines.len());
    for (lineno, text) in &lines {
        let lineno = *lineno;
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text.as_str(), ""),
        };
        let args: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let inst = parse_inst(lineno, mnemonic, &args, &lookup)?;
        program.push(inst);
    }
    // Validate fused/jump targets now that program length is known.
    for (idx, inst) in program.iter().enumerate() {
        let target = match inst {
            Inst::Alu {
                fuse: Some((_, t)), ..
            } => Some(*t),
            Inst::Jmp { target } => Some(*target),
            Inst::Jcc { target, .. } => Some(*target),
            _ => None,
        };
        if let Some(t) = target {
            // `>=`: a label on the line *after* the last instruction resolves
            // to `program.len()`, which the interpreter faults on.
            if t >= program.len() {
                return Err(err(lines[idx].0, format!("target {t} beyond program end")));
            }
        }
    }
    Ok(program)
}

fn parse_reg(line: usize, s: &str) -> Result<Reg, AsmError> {
    let rest = s
        .strip_prefix('r')
        .ok_or_else(|| err(line, format!("expected register, got {s:?}")))?;
    let idx: u8 = rest
        .parse()
        .map_err(|_| err(line, format!("bad register {s:?}")))?;
    Reg::new(idx).ok_or_else(|| err(line, format!("register {s:?} out of range")))
}

fn parse_operand(line: usize, s: &str) -> Result<Operand, AsmError> {
    if s.starts_with('r') && s[1..].chars().all(|c| c.is_ascii_digit()) {
        return Ok(Operand::Reg(parse_reg(line, s)?));
    }
    let v = if let Some(hex) = s.strip_prefix("0x") {
        i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate {s:?}")))?
    } else if let Some(hex) = s.strip_prefix("-0x") {
        -i64::from_str_radix(hex, 16).map_err(|_| err(line, format!("bad immediate {s:?}")))?
    } else {
        s.parse::<i64>()
            .map_err(|_| err(line, format!("bad immediate {s:?}")))?
    };
    if v < i32::MIN as i64 || v > u32::MAX as i64 {
        return Err(err(line, format!("immediate {s} out of 32-bit range")));
    }
    Ok(Operand::Imm(v as i32))
}

fn parse_imm(line: usize, s: &str) -> Result<i32, AsmError> {
    match parse_operand(line, s)? {
        Operand::Imm(i) => Ok(i),
        Operand::Reg(_) => Err(err(line, format!("expected immediate, got register {s:?}"))),
    }
}

fn parse_fuse(line: usize, s: &str) -> Result<FuseCond, AsmError> {
    match s {
        "jz" => Ok(FuseCond::Z),
        "jnz" => Ok(FuseCond::Nz),
        "jltz" => Ok(FuseCond::Ltz),
        "jgez" => Ok(FuseCond::Gez),
        "jeven" => Ok(FuseCond::Even),
        "jodd" => Ok(FuseCond::Odd),
        _ => Err(err(line, format!("unknown fused condition {s:?}"))),
    }
}

fn alu_op(mnemonic: &str) -> Option<AluOp> {
    Some(match mnemonic {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "lsl" => AluOp::Lsl,
        "lsr" => AluOp::Lsr,
        "asr" => AluOp::Asr,
        "max" => AluOp::Max,
        "cmpb4" => AluOp::Cmpb4,
        _ => return None,
    })
}

fn parse_inst(
    line: usize,
    mnemonic: &str,
    args: &[&str],
    lookup: &dyn Fn(usize, &str) -> Result<usize, AsmError>,
) -> Result<Inst, AsmError> {
    let need = |n: usize, also: usize| -> Result<(), AsmError> {
        if args.len() == n || args.len() == also {
            Ok(())
        } else {
            Err(err(
                line,
                format!(
                    "{mnemonic}: expected {n} (or {also}) operands, got {}",
                    args.len()
                ),
            ))
        }
    };
    // A fused jump is written as a final "<cond> <label>" operand, e.g.
    // `add r1, r1, -1, jnz loop`.
    let parse_fuse_arg = |s: &str| -> Result<(FuseCond, usize), AsmError> {
        let (cond, label) = s
            .split_once(char::is_whitespace)
            .ok_or_else(|| err(line, "fused jump needs both condition and label"))?;
        Ok((parse_fuse(line, cond)?, lookup(line, label.trim())?))
    };
    if let Some(op) = alu_op(mnemonic) {
        need(3, 4)?;
        let rd = parse_reg(line, args[0])?;
        let ra = parse_reg(line, args[1])?;
        let b = parse_operand(line, args[2])?;
        let fuse = if args.len() == 4 {
            Some(parse_fuse_arg(args[3])?)
        } else {
            None
        };
        return Ok(Inst::Alu {
            op,
            rd,
            ra,
            b,
            fuse,
        });
    }
    match mnemonic {
        "move" => {
            need(2, 3)?;
            let rd = parse_reg(line, args[0])?;
            let b = parse_operand(line, args[1])?;
            let fuse = if args.len() == 3 {
                Some(parse_fuse_arg(args[2])?)
            } else {
                None
            };
            Ok(Inst::Alu {
                op: AluOp::Move,
                rd,
                ra: Reg(0),
                b,
                fuse,
            })
        }
        "lw" | "lbu" => {
            need(3, 3)?;
            let rd = parse_reg(line, args[0])?;
            let base = parse_reg(line, args[1])?;
            let off = parse_imm(line, args[2])?;
            Ok(if mnemonic == "lw" {
                Inst::Lw { rd, base, off }
            } else {
                Inst::Lbu { rd, base, off }
            })
        }
        "sw" | "sb" => {
            need(3, 3)?;
            let rs = parse_reg(line, args[0])?;
            let base = parse_reg(line, args[1])?;
            let off = parse_imm(line, args[2])?;
            Ok(if mnemonic == "sw" {
                Inst::Sw { rs, base, off }
            } else {
                Inst::Sb { rs, base, off }
            })
        }
        "jmp" => {
            need(1, 1)?;
            Ok(Inst::Jmp {
                target: lookup(line, args[0])?,
            })
        }
        "jeq" | "jne" | "jlt" | "jle" | "jgt" | "jge" => {
            need(3, 3)?;
            let cond = match mnemonic {
                "jeq" => JumpCond::Eq,
                "jne" => JumpCond::Ne,
                "jlt" => JumpCond::Lt,
                "jle" => JumpCond::Le,
                "jgt" => JumpCond::Gt,
                _ => JumpCond::Ge,
            };
            let ra = parse_reg(line, args[0])?;
            let b = parse_operand(line, args[1])?;
            Ok(Inst::Jcc {
                cond,
                ra,
                b,
                target: lookup(line, args[2])?,
            })
        }
        "halt" => {
            need(0, 0)?;
            Ok(Inst::Halt)
        }
        _ => Err(err(line, format!("unknown mnemonic {mnemonic:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::interp::Machine;

    #[test]
    fn assembles_and_runs_a_countdown() {
        let prog = assemble(
            "
            move r1, 5
            loop:
              sub r1, r1, 1, jnz loop
            halt
            ",
        )
        .unwrap();
        let mut m = Machine::new();
        let stats = m.run(&prog, &mut [], 100).unwrap();
        assert_eq!(m.regs[1], 0);
        assert_eq!(stats.instructions, 1 + 5 + 1);
    }

    #[test]
    fn labels_can_be_forward_references() {
        let prog = assemble(
            "
            jmp end
            move r1, 99
            end: halt
            ",
        )
        .unwrap();
        let mut m = Machine::new();
        m.run(&prog, &mut [], 10).unwrap();
        assert_eq!(m.regs[1], 0, "move skipped");
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let prog = assemble(
            "
            ; full-line comment
            move r2, 3   // trailing comment
            halt
            ",
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
    }

    #[test]
    fn memory_and_compare_jumps() {
        let prog = assemble(
            "
            move r1, 8
            move r2, 0xAB
            sb r2, r1, 0
            lbu r3, r1, 0
            jeq r3, 0xAB, good
            move r4, 1
            good: halt
            ",
        )
        .unwrap();
        let mut wram = vec![0u8; 16];
        let mut m = Machine::new();
        m.run(&prog, &mut wram, 100).unwrap();
        assert_eq!(wram[8], 0xAB);
        assert_eq!(m.regs[4], 0, "jeq taken");
    }

    #[test]
    fn error_reporting_has_line_numbers() {
        let e = assemble("move r99, 1").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("r99"));

        let e = assemble("\nbogus r1, r2").unwrap_err();
        assert_eq!(e.line, 2);

        let e = assemble("jmp nowhere").unwrap_err();
        assert!(e.message.contains("nowhere"));

        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.message.contains("expected 3"));

        let e = assemble("x: halt\nx: halt").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn negative_and_hex_immediates() {
        let prog = assemble("move r1, -2\nmove r2, 0x10\nhalt").unwrap();
        let mut m = Machine::new();
        m.run(&prog, &mut [], 10).unwrap();
        assert_eq!(m.regs[1] as i32, -2);
        assert_eq!(m.regs[2], 16);
    }

    #[test]
    fn cmpb4_assembles() {
        let prog = assemble(
            "
            move r1, 0x41424344
            move r2, 0x41004300
            cmpb4 r3, r1, r2
            halt
            ",
        )
        .unwrap();
        let mut m = Machine::new();
        m.run(&prog, &mut [], 10).unwrap();
        // bytes (LE): 44vs00, 43vs43, 42vs00, 41vs41 -> 0x01000100
        assert_eq!(m.regs[3], 0x0100_0100);
    }

    #[test]
    fn label_on_same_line_as_instruction() {
        let prog = assemble("start: move r1, 1\njmp start").unwrap();
        assert_eq!(prog.len(), 2);
        // Runaway by construction; just checking the label resolved to 0.
        assert!(matches!(prog[1], Inst::Jmp { target: 0 }));
    }
}
