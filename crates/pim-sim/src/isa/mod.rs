//! A miniature model of the DPU's proprietary triadic ISA (§2.1, §4.2.4).
//!
//! The two features the paper's hand optimization exploits are modeled
//! faithfully:
//!
//! * **`cmpb4`** — the ISA's only SIMD instruction: compares 4 bytes of two
//!   registers in one cycle, used to compare 4 DNA base pairs at once.
//! * **Fused jumps** — any ALU instruction can branch on its own result in
//!   the same cycle (the pipeline's re-entry restriction makes this free),
//!   including the "right shift fused with a jump on parity" the paper uses
//!   to consume `cmpb4` results.
//!
//! The interpreter executes programs against a WRAM buffer and counts
//! instructions. `dpu-kernel` uses it to *measure* instructions/cell for
//! the compiler-style and hand-optimized inner loops (Table 7) rather than
//! hard-coding a speedup factor.

mod asm;
mod fastpath;
mod inst;
mod interp;
mod jit;
pub mod verify;
pub mod wcet;

pub use asm::{assemble, AsmError};
pub use fastpath::{EntryGate, Prepared};
pub use inst::{AluOp, FuseCond, Inst, JumpCond, Operand, Reg, NUM_REGS};
pub use interp::{watchdog_steps, IsaError, Machine, RunStats, WramWatch, DEFAULT_MAX_STEPS};
pub use jit::Jit;
pub use verify::{error_count, verify as verify_program, Diagnostic, Rule, Severity, VerifySpec};
pub use wcet::{Expr, KernelParams, WcetBound};

/// Which interpreter tier executes a kernel program. The three tiers are
/// bit-identical on completed runs — registers, WRAM, halt pc and
/// [`RunStats`] — and report the same [`IsaError`] at the same original pc
/// on faults; they differ only in speed and in the granularity of the
/// `max_steps` backstop (checked per instruction, per superinstruction
/// window, or per translated block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InterpMode {
    /// The reference interpreter: per-fetch pc validation, checked address
    /// arithmetic, WRAM watch hooks. The differential-testing oracle.
    Checked,
    /// The verifier-gated dense fast path ([`Prepared`]): pre-decoded
    /// superinstruction windows over a micro-op pool.
    Fast,
    /// The verifier-gated block-translating tier ([`Jit`]): basic blocks
    /// lowered to native executor calls over pre-resolved operands.
    #[default]
    Jit,
}

impl InterpMode {
    /// Stable lowercase label (CLI flags, JSON fields).
    pub fn label(self) -> &'static str {
        match self {
            InterpMode::Checked => "checked",
            InterpMode::Fast => "fast",
            InterpMode::Jit => "jit",
        }
    }
}
