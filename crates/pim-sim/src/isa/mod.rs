//! A miniature model of the DPU's proprietary triadic ISA (§2.1, §4.2.4).
//!
//! The two features the paper's hand optimization exploits are modeled
//! faithfully:
//!
//! * **`cmpb4`** — the ISA's only SIMD instruction: compares 4 bytes of two
//!   registers in one cycle, used to compare 4 DNA base pairs at once.
//! * **Fused jumps** — any ALU instruction can branch on its own result in
//!   the same cycle (the pipeline's re-entry restriction makes this free),
//!   including the "right shift fused with a jump on parity" the paper uses
//!   to consume `cmpb4` results.
//!
//! The interpreter executes programs against a WRAM buffer and counts
//! instructions. `dpu-kernel` uses it to *measure* instructions/cell for
//! the compiler-style and hand-optimized inner loops (Table 7) rather than
//! hard-coding a speedup factor.

mod asm;
mod fastpath;
mod inst;
mod interp;
pub mod verify;
pub mod wcet;

pub use asm::{assemble, AsmError};
pub use fastpath::Prepared;
pub use inst::{AluOp, FuseCond, Inst, JumpCond, Operand, Reg, NUM_REGS};
pub use interp::{watchdog_steps, IsaError, Machine, RunStats, WramWatch, DEFAULT_MAX_STEPS};
pub use verify::{error_count, verify as verify_program, Diagnostic, Rule, Severity, VerifySpec};
pub use wcet::{Expr, KernelParams, WcetBound};
