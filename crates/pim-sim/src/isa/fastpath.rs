//! The verified fast path of the interpreter: dense pre-decode +
//! superinstruction fusion, gated on the static verifier.
//!
//! [`Prepared::new`] runs [`super::verify::verify`] once, and — only when
//! the program verifies clean with a declared WRAM frame — pre-decodes it
//! into a dense internal form in which every maximal straight-line run
//! (a basic block: no interior jump target, ended by a fused back-edge,
//! a conditional jump, or a control/halt instruction) is collapsed into a
//! single-dispatch [`DenseOp::Seq`] superinstruction over a shared
//! micro-op pool, so the band inner loop's hot sequences from
//! `dpu-kernel::isa_loops` retire with one dispatch per block.
//! [`Machine::run_prepared`] then executes the dense form, skipping the
//! per-step machinery of the checked interpreter: the per-fetch pc
//! validation, the [`super::interp::WramWatch`] indirection, and the
//! per-access checked-arithmetic/alignment re-derivation (reduced to one
//! backstop compare per access so an unsound verification can never
//! corrupt host memory — a guard hit raises the *identical*
//! [`IsaError`] the checked path would).
//!
//! The contract (DESIGN.md §7e):
//!
//! * A program the verifier rejects never runs dense —
//!   [`Machine::run_prepared`] silently falls back to the checked
//!   [`Machine::run`].
//! * The verifier's proofs assume the spec's entry state, so the fast
//!   path also re-checks it at entry: `pc == 0`, the WRAM buffer covers
//!   the declared frame, and every known-constant input register holds
//!   its declared value. Any mismatch → checked path.
//! * The sanitizer always uses the checked path:
//!   [`Machine::run_sanitized`] drives `run_watched` directly and no
//!   watch hook exists on the dense form.
//! * A fused window executes its instructions in original order against
//!   the same register/WRAM state, and charges the same issue slots,
//!   memory ops and taken jumps — completed runs are bit-identical to
//!   the checked interpreter. (Sole documented divergence: the
//!   `max_steps` budget is re-checked per *window*, so a runaway program
//!   aborts with the same [`IsaError::MaxSteps`] but may retire up to a
//!   window's worth of extra instructions first.)
//! * Fusion never spans a *window boundary* target: window boundaries
//!   are the targets of every backward or far branch, so those transfers
//!   always land on a window start. Short forward branches (a fused
//!   select, a `jcc` guard, a diamond's `jmp` — at most [`LOCAL_SPAN`]
//!   instructions, spanning only ALU/branch instructions) are instead
//!   executed *inside* the window as skip micro-ops: the branch retires
//!   with its checked-path issue-slot/jump accounting and transfers
//!   control by skipping the covered micro-ops, so their landing pads
//!   need no boundary and the band inner loop fuses end to end.

use super::inst::{alu_eval, AluOp, FuseCond, Inst, JumpCond, Operand, NUM_REGS};
use super::interp::{IsaError, Machine, RunStats};
use super::verify::{error_count, verify, VerifySpec};

/// A pre-decoded load: destination, base register, byte offset.
#[derive(Debug, Clone, Copy)]
pub(super) struct LoadSpec {
    pub(super) rd: u8,
    pub(super) base: u8,
    pub(super) off: i32,
}

/// A pre-decoded ALU operation (fuse handled by the enclosing op).
#[derive(Debug, Clone, Copy)]
pub(super) struct AluSpec {
    pub(super) op: AluOp,
    pub(super) rd: u8,
    pub(super) ra: u8,
    pub(super) b: Operand,
}

/// Fully-flattened micro-operation discriminant: the ALU opcode and the
/// register-vs-immediate shape of the second operand are folded into one
/// tag, so executing a micro-op is a single jump-table dispatch with no
/// nested `AluOp`/`Operand` matches. `Skip*`/`JmpFwd`/`Fuse*` encode
/// short forward branches *inside* a window: a taken branch charges its
/// checked-path issue slot and taken jump, then skips the micro-ops its
/// span covers — which lets windows run straight through the
/// max()/flag-select chains and if/else diamonds of the band inner loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum MicroKind {
    AddRI,
    AddRR,
    SubRI,
    SubRR,
    AndRI,
    AndRR,
    OrRI,
    OrRR,
    XorRI,
    XorRR,
    LslRI,
    LslRR,
    LsrRI,
    LsrRR,
    AsrRI,
    AsrRR,
    MaxRI,
    MaxRR,
    Cmpb4RI,
    Cmpb4RR,
    MoveRI,
    MoveRR,
    Lw,
    Sw,
    Lbu,
    Sb,
    /// Unconditional short forward jump inside the window: skip the next
    /// `rb` micro-ops (`rd` retired-instruction equivalents).
    JmpFwd,
    /// Fused-branch pseudo-op: follows its ALU micro-op and tests `last`
    /// (the ALU result). Taken: skip `rb` micro-ops / `rd` instructions
    /// and charge one taken jump. Charges no issue slot of its own — the
    /// jump rides the ALU, like the checked interpreter's fused branch.
    FuseZ,
    FuseNz,
    FuseLtz,
    FuseGez,
    FuseEven,
    FuseOdd,
    SkipEqRI,
    SkipEqRR,
    SkipNeRI,
    SkipNeRR,
    SkipLtRI,
    SkipLtRR,
    SkipLeRI,
    SkipLeRR,
    SkipGtRI,
    SkipGtRR,
    SkipGeRI,
    SkipGeRR,
    /// Superinstruction pairs: two adjacent micro-ops retired in one
    /// dispatch (the hot adjacencies of the `isa_loops` kernels — fused
    /// selects, conditional moves, load/bump and store/load chains). The
    /// pair kind replaces the *first* slot only; the second slot keeps its
    /// own kind and fields, so a skip landing between the two still
    /// executes the second micro-op standalone and every span stays valid.
    PairSubRRFuseGez,
    PairSubRRFuseLtz,
    PairAndRIFuseNz,
    PairSkipGeRRMoveRR,
    PairSkipGeRRMoveRI,
    PairSkipLtRRMoveRI,
    PairAddRIAddRI,
    PairLwLw,
    PairLwAddRI,
    PairLwAddRR,
    PairMoveRIMoveRI,
    PairMoveRRMoveRI,
    PairSwLw,
    PairMoveRRSw,
    PairOrRRSb,
    PairLbuLbu,
    PairSkipEqRRMoveRI,
    PairMoveRIJmpFwd,
    PairOrRIJmpFwd,
    PairMoveRRSkipGeRR,
    PairMoveRISkipLtRR,
    PairOrRRSkipGeRR,
    PairAddRISubRI,
    PairAddRIMoveRI,
    TriMoveRIMoveRIJmpFwd,
    TriMoveRRMoveRISw,
}

/// The superinstruction formed by two adjacent micro-op kinds, if the pair
/// table covers them. Applied greedily left-to-right inside each window.
fn pair_kind(a: MicroKind, b: MicroKind) -> Option<MicroKind> {
    use MicroKind as K;
    Some(match (a, b) {
        (K::SubRR, K::FuseGez) => K::PairSubRRFuseGez,
        (K::SubRR, K::FuseLtz) => K::PairSubRRFuseLtz,
        (K::AndRI, K::FuseNz) => K::PairAndRIFuseNz,
        (K::SkipGeRR, K::MoveRR) => K::PairSkipGeRRMoveRR,
        (K::SkipGeRR, K::MoveRI) => K::PairSkipGeRRMoveRI,
        (K::SkipLtRR, K::MoveRI) => K::PairSkipLtRRMoveRI,
        (K::AddRI, K::AddRI) => K::PairAddRIAddRI,
        (K::Lw, K::Lw) => K::PairLwLw,
        (K::Lw, K::AddRI) => K::PairLwAddRI,
        (K::Lw, K::AddRR) => K::PairLwAddRR,
        (K::MoveRI, K::MoveRI) => K::PairMoveRIMoveRI,
        (K::MoveRR, K::MoveRI) => K::PairMoveRRMoveRI,
        (K::Sw, K::Lw) => K::PairSwLw,
        (K::MoveRR, K::Sw) => K::PairMoveRRSw,
        (K::OrRR, K::Sb) => K::PairOrRRSb,
        (K::Lbu, K::Lbu) => K::PairLbuLbu,
        (K::SkipEqRR, K::MoveRI) => K::PairSkipEqRRMoveRI,
        (K::MoveRI, K::JmpFwd) => K::PairMoveRIJmpFwd,
        (K::OrRI, K::JmpFwd) => K::PairOrRIJmpFwd,
        (K::MoveRR, K::SkipGeRR) => K::PairMoveRRSkipGeRR,
        (K::MoveRI, K::SkipLtRR) => K::PairMoveRISkipLtRR,
        (K::OrRR, K::SkipGeRR) => K::PairOrRRSkipGeRR,
        (K::AddRI, K::SubRI) => K::PairAddRISubRI,
        (K::AddRI, K::MoveRI) => K::PairAddRIMoveRI,
        _ => return None,
    })
}

fn triple_kind(a: MicroKind, b: MicroKind, c: MicroKind) -> Option<MicroKind> {
    use MicroKind as K;
    Some(match (a, b, c) {
        (K::MoveRI, K::MoveRI, K::JmpFwd) => K::TriMoveRIMoveRIJmpFwd,
        (K::MoveRR, K::MoveRI, K::Sw) => K::TriMoveRRMoveRISw,
        _ => return None,
    })
}

/// Rewrite a window's micro-ops with pair/triple superinstructions.
/// Pure kind rewriting — no slot moves, so skip spans and fault offsets
/// are untouched, and a skip landing mid-group executes the member
/// standalone under its original kind.
fn pair_window(w: &mut [Micro]) {
    let mut i = 0;
    while i + 1 < w.len() {
        if i + 2 < w.len() {
            if let Some(t) = triple_kind(w[i].kind, w[i + 1].kind, w[i + 2].kind) {
                w[i].kind = t;
                i += 3;
                continue;
            }
        }
        if let Some(p) = pair_kind(w[i].kind, w[i + 1].kind) {
            w[i].kind = p;
            i += 2;
        } else {
            i += 1;
        }
    }
}

/// A micro-operation inside a fused window: pure compute, one WRAM
/// access, or a short forward skip — never an outward jump. 8 bytes,
/// stored contiguously in the shared pool for cache-friendly decode.
/// Field use by kind: ALU — `rd`/`ra` registers, `rb` (RR) or `imm` (RI)
/// second operand; memory — `rd` data register, `ra` base, `imm` offset,
/// `rb` the instruction's offset from the window start (fault pc);
/// skip (RI) — `ra`/`imm` operands, `rb` micro-ops skipped, `rd` retired
/// instructions skipped; skip (RR) — `ra`/`rb` operands, `imm` packs
/// `skip | weight << 16`; `JmpFwd`/`Fuse*` — `rb` skip, `rd` weight.
#[derive(Debug, Clone, Copy)]
pub(super) struct Micro {
    pub(super) kind: MicroKind,
    pub(super) rd: u8,
    pub(super) ra: u8,
    pub(super) rb: u8,
    pub(super) imm: i32,
}

fn alu_micro(op: AluOp, rd: u8, ra: u8, b: Operand) -> Micro {
    use MicroKind as K;
    let (ri, rr) = match op {
        AluOp::Add => (K::AddRI, K::AddRR),
        AluOp::Sub => (K::SubRI, K::SubRR),
        AluOp::And => (K::AndRI, K::AndRR),
        AluOp::Or => (K::OrRI, K::OrRR),
        AluOp::Xor => (K::XorRI, K::XorRR),
        AluOp::Lsl => (K::LslRI, K::LslRR),
        AluOp::Lsr => (K::LsrRI, K::LsrRR),
        AluOp::Asr => (K::AsrRI, K::AsrRR),
        AluOp::Max => (K::MaxRI, K::MaxRR),
        AluOp::Cmpb4 => (K::Cmpb4RI, K::Cmpb4RR),
        AluOp::Move => (K::MoveRI, K::MoveRR),
    };
    match b {
        Operand::Imm(v) => Micro {
            kind: ri,
            rd,
            ra,
            rb: 0,
            imm: v,
        },
        Operand::Reg(r) => Micro {
            kind: rr,
            rd,
            ra,
            rb: r.0,
            imm: 0,
        },
    }
}

fn skip_micro(cond: JumpCond, ra: u8, b: Operand) -> Micro {
    use MicroKind as K;
    let (ri, rr) = match cond {
        JumpCond::Eq => (K::SkipEqRI, K::SkipEqRR),
        JumpCond::Ne => (K::SkipNeRI, K::SkipNeRR),
        JumpCond::Lt => (K::SkipLtRI, K::SkipLtRR),
        JumpCond::Le => (K::SkipLeRI, K::SkipLeRR),
        JumpCond::Gt => (K::SkipGtRI, K::SkipGtRR),
        JumpCond::Ge => (K::SkipGeRI, K::SkipGeRR),
    };
    match b {
        Operand::Imm(v) => Micro {
            kind: ri,
            rd: 0,
            ra,
            rb: 0,
            imm: v,
        },
        Operand::Reg(r) => Micro {
            kind: rr,
            rd: 0,
            ra,
            rb: r.0,
            imm: 0,
        },
    }
}

/// `woff` is the instruction's offset from its window start — the only
/// per-micro-op provenance a window needs, since memory accesses are the
/// only faulting micro-ops and a fault must restore the exact original pc.
fn mem_micro(kind: MicroKind, r: u8, base: u8, off: i32, woff: u8) -> Micro {
    Micro {
        kind,
        rd: r,
        ra: base,
        rb: woff,
        imm: off,
    }
}

fn fuse_micro(cond: FuseCond) -> Micro {
    use MicroKind as K;
    let kind = match cond {
        FuseCond::Z => K::FuseZ,
        FuseCond::Nz => K::FuseNz,
        FuseCond::Ltz => K::FuseLtz,
        FuseCond::Gez => K::FuseGez,
        FuseCond::Even => K::FuseEven,
        FuseCond::Odd => K::FuseOdd,
    };
    Micro {
        kind,
        rd: 0,
        ra: 0,
        rb: 0,
        imm: 0,
    }
}

/// Longest forward branch (in skipped instructions) that may run as an
/// in-window skip micro-op. The kernels' selects and diamonds span 1-3.
const LOCAL_SPAN: usize = 8;

/// Window cap, so a memory micro-op's window offset fits its `u8` field.
/// Also bounds the documented `max_steps` divergence (checked per window).
const MAX_WINDOW: usize = 250;

/// May the branch at `s` targeting `t` run as an in-window skip? Only a
/// short forward hop over pure ALU/branch instructions qualifies: skipped
/// memory ops would corrupt the window's bulk `mem_ops` accounting and a
/// skipped `halt` its termination. `forced` pins branches whose span a
/// window boundary turned out to cut (see [`predecode`]'s retry loop).
fn local_ok(program: &[Inst], s: usize, t: usize, forced: &[bool]) -> bool {
    t > s
        && t <= s + LOCAL_SPAN + 1
        && !forced[s]
        && program[s + 1..t]
            .iter()
            .all(|x| matches!(x, Inst::Alu { .. } | Inst::Jmp { .. } | Inst::Jcc { .. }))
}

/// How a fused straight-line window ends.
#[derive(Debug, Clone, Copy)]
pub(super) enum SeqTerm {
    /// Fall through to the next window.
    Fall,
    /// The window's last micro-op is an ALU carrying a fused branch on its
    /// own result (the loop back-edge / `cmpb4`-consumer idiom).
    Fuse { cond: FuseCond, target: u32 },
    /// One trailing compare-and-branch (charged as its own issue slot).
    Jcc {
        cond: JumpCond,
        ra: u8,
        b: Operand,
        target: u32,
    },
}

/// One dense dispatch: either a single decoded instruction or a fused
/// superinstruction window. Jump targets are dense indices (remapped after
/// windowing).
#[derive(Debug, Clone, Copy)]
pub(super) enum DenseOp {
    Alu {
        a: AluSpec,
        fuse: Option<(FuseCond, u32)>,
    },
    Lw(LoadSpec),
    Sw {
        rs: u8,
        base: u8,
        off: i32,
    },
    Lbu(LoadSpec),
    Sb {
        rs: u8,
        base: u8,
        off: i32,
    },
    Jmp {
        target: u32,
    },
    Jcc {
        cond: JumpCond,
        ra: u8,
        b: Operand,
        target: u32,
    },
    Halt,
    /// A whole fused window — `len` micro-ops from `start` in the shared
    /// pool, covering `ilen` original instructions (skip/fuse pseudo-ops
    /// make the counts differ): an extended basic block including its
    /// conditional selects, guard skips and if/else diamonds, ending in a
    /// fused back-edge, a trailing compare-and-branch, or fall-through.
    /// One dispatch; issue slots (`ilen` minus dynamically skipped) and
    /// `mem` memory ops are bulk-charged.
    Seq {
        start: u32,
        len: u16,
        ilen: u16,
        mem: u16,
        term: SeqTerm,
    },
}

fn aspec(op: AluOp, rd: super::inst::Reg, ra: super::inst::Reg, b: Operand) -> AluSpec {
    AluSpec {
        op,
        rd: rd.0,
        ra: ra.0,
        b,
    }
}

fn lspec(rd: super::inst::Reg, base: super::inst::Reg, off: i32) -> LoadSpec {
    LoadSpec {
        rd: rd.0,
        base: base.0,
        off,
    }
}

/// The branch target of an instruction, if any.
fn branch_target(inst: &Inst) -> Option<usize> {
    match *inst {
        Inst::Jmp { target } => Some(target),
        Inst::Jcc { target, .. } => Some(target),
        Inst::Alu {
            fuse: Some((_, target)),
            ..
        } => Some(target),
        _ => None,
    }
}

/// Validate that every branch target is in range. An out-of-range target
/// means the program has no dense form (the verifier rejects it anyway).
fn targets_in_range(program: &[Inst]) -> bool {
    program
        .iter()
        .filter_map(branch_target)
        .all(|t| t < program.len())
}

/// An in-window skip micro-op awaiting its span: patched once the window's
/// micro-op layout is final. `slot` is window-relative.
struct Fix {
    slot: usize,
    src: usize,
    tgt: usize,
}

/// Decode the window starting at `pc`: the maximal extended-basic-block
/// run (micro-ops appended to `micro`), or the single instruction. A
/// window never extends across a `boundary` position (the landing pad of
/// some backward/far branch), but it runs straight through short forward
/// branches — fused selects, `jcc` guards, diamond `jmp`s — as skip
/// micro-ops. Targets in the returned op are still *original* pcs
/// (remapped by the caller). `Err(src)` reports a branch whose span this
/// window cannot cover after all; the caller pins it and retries.
fn window(
    program: &[Inst],
    pc: usize,
    boundary: &[bool],
    forced: &[bool],
    micro: &mut Vec<Micro>,
    pair: bool,
) -> Result<(DenseOp, usize), usize> {
    // Maximal run: ALU / load / store / skip micro-ops, stopped by an
    // interior boundary, outward control flow, or the window cap. An ALU's
    // non-local fused branch ends the run from inside; one trailing
    // compare-and-branch is absorbed as the terminator.
    let start = micro.len();
    let mut i = pc;
    let mut mem = 0u16;
    let mut term = SeqTerm::Fall;
    let mut fixes: Vec<Fix> = Vec::new();
    // Window-relative micro-op index of each covered instruction — skip
    // spans land on original positions, pseudo-ops shift the micro layout.
    let mut pos2micro: Vec<u32> = Vec::new();
    while i < program.len() && (i == pc || !boundary[i]) && (i - pc) < MAX_WINDOW {
        let slot = micro.len() - start;
        match program[i] {
            Inst::Alu {
                op,
                rd,
                ra,
                b,
                fuse,
            } => {
                pos2micro.push(slot as u32);
                micro.push(alu_micro(op, rd.0, ra.0, b));
                i += 1;
                match fuse {
                    None => {}
                    Some((c, t)) if local_ok(program, i - 1, t, forced) => {
                        fixes.push(Fix {
                            slot: slot + 1,
                            src: i - 1,
                            tgt: t,
                        });
                        micro.push(fuse_micro(c));
                    }
                    Some((c, t)) => {
                        term = SeqTerm::Fuse {
                            cond: c,
                            target: t as u32,
                        };
                        break;
                    }
                }
            }
            Inst::Lw { rd, base, off } => {
                pos2micro.push(slot as u32);
                micro.push(mem_micro(MicroKind::Lw, rd.0, base.0, off, (i - pc) as u8));
                mem += 1;
                i += 1;
            }
            Inst::Lbu { rd, base, off } => {
                pos2micro.push(slot as u32);
                micro.push(mem_micro(MicroKind::Lbu, rd.0, base.0, off, (i - pc) as u8));
                mem += 1;
                i += 1;
            }
            Inst::Sw { rs, base, off } => {
                pos2micro.push(slot as u32);
                micro.push(mem_micro(MicroKind::Sw, rs.0, base.0, off, (i - pc) as u8));
                mem += 1;
                i += 1;
            }
            Inst::Sb { rs, base, off } => {
                pos2micro.push(slot as u32);
                micro.push(mem_micro(MicroKind::Sb, rs.0, base.0, off, (i - pc) as u8));
                mem += 1;
                i += 1;
            }
            Inst::Jmp { target } if local_ok(program, i, target, forced) => {
                pos2micro.push(slot as u32);
                fixes.push(Fix {
                    slot,
                    src: i,
                    tgt: target,
                });
                micro.push(Micro {
                    kind: MicroKind::JmpFwd,
                    rd: 0,
                    ra: 0,
                    rb: 0,
                    imm: 0,
                });
                i += 1;
            }
            Inst::Jcc {
                cond,
                ra,
                b,
                target,
            } if local_ok(program, i, target, forced) => {
                pos2micro.push(slot as u32);
                fixes.push(Fix {
                    slot,
                    src: i,
                    tgt: target,
                });
                micro.push(skip_micro(cond, ra.0, b));
                i += 1;
            }
            _ => break,
        }
    }
    let scanned = i - pc;
    let mut covered = scanned;
    if matches!(term, SeqTerm::Fall) && i > pc && i < program.len() && !boundary[i] {
        if let Inst::Jcc {
            cond,
            ra,
            b,
            target,
        } = program[i]
        {
            term = SeqTerm::Jcc {
                cond,
                ra: ra.0,
                b,
                target: target as u32,
            };
            covered += 1;
        }
    }
    // Patch each skip with its span: micro-ops skipped and instructions
    // retired-equivalent. A span the scan did not fully cover (cut by a
    // boundary, a terminator, or the cap) cannot be a skip — report it so
    // predecode pins the branch as a window break and relays out.
    let micro_len = micro.len() - start;
    for f in &fixes {
        let rel = f.tgt - pc;
        let tm = if rel < pos2micro.len() {
            pos2micro[rel] as usize
        } else if rel == scanned && matches!(term, SeqTerm::Fall) {
            // Lands exactly past the window: skip to the end, fall through.
            micro_len
        } else {
            micro.truncate(start);
            return Err(f.src);
        };
        let skip = tm - (f.slot + 1);
        let weight = f.tgt - f.src - 1;
        let m = &mut micro[start + f.slot];
        match m.kind {
            MicroKind::SkipEqRR
            | MicroKind::SkipNeRR
            | MicroKind::SkipLtRR
            | MicroKind::SkipLeRR
            | MicroKind::SkipGtRR
            | MicroKind::SkipGeRR => m.imm = (skip as i32) | ((weight as i32) << 16),
            _ => {
                m.rb = skip as u8;
                m.rd = weight as u8;
            }
        }
    }
    if covered >= 2 {
        if pair {
            pair_window(&mut micro[start..]);
        }
        return Ok((
            DenseOp::Seq {
                start: start as u32,
                len: micro_len as u16,
                ilen: scanned as u16,
                mem,
                term,
            },
            covered,
        ));
    }
    // Single-instruction window: drop any staged micro-op. A local branch
    // decoded single can only target the immediately following window
    // start (a longer span resolves above or errors out), so its `map`
    // lookup stays valid.
    micro.truncate(start);
    let single = match program[pc] {
        Inst::Alu {
            op,
            rd,
            ra,
            b,
            fuse,
        } => DenseOp::Alu {
            a: aspec(op, rd, ra, b),
            fuse: fuse.map(|(c, t)| (c, t as u32)),
        },
        Inst::Lw { rd, base, off } => DenseOp::Lw(lspec(rd, base, off)),
        Inst::Sw { rs, base, off } => DenseOp::Sw {
            rs: rs.0,
            base: base.0,
            off,
        },
        Inst::Lbu { rd, base, off } => DenseOp::Lbu(lspec(rd, base, off)),
        Inst::Sb { rs, base, off } => DenseOp::Sb {
            rs: rs.0,
            base: base.0,
            off,
        },
        Inst::Jmp { target } => DenseOp::Jmp {
            target: target as u32,
        },
        Inst::Jcc {
            cond,
            ra,
            b,
            target,
        } => DenseOp::Jcc {
            cond,
            ra: ra.0,
            b,
            target: target as u32,
        },
        Inst::Halt => DenseOp::Halt,
    };
    Ok((single, 1))
}

/// Pre-decode the whole program. Returns `(dense ops, original pc of each
/// window start, micro-op pool, fused-window count)`, or `None` when the
/// program has an out-of-range jump target. `pair` rewrites windows with
/// the pair/triple superinstruction tables (the fast path wants them; the
/// jit translator consumes raw micro-op kinds and derives the same window
/// layout with `pair = false`, which keeps its block boundaries — and so
/// its fault pcs and `max_steps` check points — identical to the fast
/// path's).
#[allow(clippy::type_complexity)]
pub(super) fn predecode(
    program: &[Inst],
    pair: bool,
) -> Option<(Vec<DenseOp>, Vec<u32>, Vec<Micro>, usize)> {
    if !targets_in_range(program) {
        return None;
    }
    let len = program.len();
    let mut forced = vec![false; len];
    'retry: loop {
        // Window boundaries: the landing pads of every branch that cannot
        // run as an in-window skip — backward, far, over memory/halt, or
        // pinned by a failed attempt below. Local forward branches leave
        // their landing pads unmarked, so windows extend straight across
        // the selects and diamonds of the band inner loop. Every remapped
        // jump's target is marked here, so it stays a window start and the
        // `map` lookup in the second pass is valid.
        let mut boundary = vec![false; len];
        for (s, inst) in program.iter().enumerate() {
            if let Some(t) = branch_target(inst) {
                if !local_ok(program, s, t, &forced) {
                    boundary[t] = true;
                }
            }
        }
        let mut dense = Vec::with_capacity(len);
        let mut orig_pc = Vec::with_capacity(len);
        let mut micro = Vec::with_capacity(len);
        let mut map = vec![0u32; len];
        let mut fused = 0usize;
        let mut pc = 0usize;
        while pc < len {
            map[pc] = dense.len() as u32;
            match window(program, pc, &boundary, &forced, &mut micro, pair) {
                Ok((op, w)) => {
                    if w > 1 {
                        fused += 1;
                    }
                    dense.push(op);
                    orig_pc.push(pc as u32);
                    pc += w;
                }
                Err(src) => {
                    // The branch at `src` looked local but its span was cut
                    // (an interior boundary, a terminator, the window cap).
                    // Pin it as a window break and re-derive the layout —
                    // each retry pins one more branch, so this terminates.
                    forced[src] = true;
                    continue 'retry;
                }
            }
        }
        // Second pass: original targets → dense indices.
        for op in &mut dense {
            match op {
                DenseOp::Jmp { target } | DenseOp::Jcc { target, .. } => {
                    *target = map[*target as usize]
                }
                DenseOp::Alu {
                    fuse: Some((_, target)),
                    ..
                } => *target = map[*target as usize],
                DenseOp::Seq { term, .. } => match term {
                    SeqTerm::Fuse { target, .. } | SeqTerm::Jcc { target, .. } => {
                        *target = map[*target as usize]
                    }
                    SeqTerm::Fall => {}
                },
                _ => {}
            }
        }
        return Some((dense, orig_pc, micro, fused));
    }
}

/// A program pre-decoded for the verified fast path. Construction runs the
/// static verifier once — build a `Prepared` per kernel and reuse it (see
/// `dpu-kernel::isa_loops::prepared`), not per launch.
#[derive(Debug, Clone)]
pub struct Prepared {
    program: Vec<Inst>,
    dense: Vec<DenseOp>,
    orig_pc: Vec<u32>,
    micro: Vec<Micro>,
    fast: bool,
    frame: usize,
    entry: Vec<(u8, u32)>,
    fused: usize,
    race_free: bool,
}

impl Prepared {
    /// Verify `program` against `spec` and, on a clean verdict with a
    /// declared WRAM frame, pre-decode it for the fast path. A rejected
    /// program still yields a usable `Prepared` — it just always runs the
    /// checked interpreter.
    pub fn new(program: Vec<Inst>, spec: &VerifySpec) -> Self {
        let verified = error_count(&verify(&program, spec)) == 0;
        let frame = spec.wram_frame();
        let entry: Vec<(u8, u32)> = spec
            .known_inputs()
            .into_iter()
            .map(|(r, v)| (r.0, v))
            .collect();
        let mut p = Self {
            program,
            dense: Vec::new(),
            orig_pc: Vec::new(),
            micro: Vec::new(),
            fast: false,
            frame: frame.unwrap_or(0),
            entry,
            fused: 0,
            race_free: false,
        };
        if verified && frame.is_some() {
            if let Some((dense, orig_pc, micro, fused)) = predecode(&p.program, true) {
                p.dense = dense;
                p.orig_pc = orig_pc;
                p.micro = micro;
                p.fused = fused;
                p.fast = true;
            }
        }
        p
    }

    /// The original program (what the checked fallback executes).
    pub fn program(&self) -> &[Inst] {
        &self.program
    }

    /// Did the program pass verification (with a WRAM frame) and
    /// pre-decode — i.e. is the dense fast path available at all?
    pub fn fast_eligible(&self) -> bool {
        self.fast
    }

    /// Would [`Machine::run_prepared`] take the fast path from this
    /// machine state and WRAM size?
    pub fn fast_path_active(&self, m: &Machine, wram_len: usize) -> bool {
        self.fast
            && m.pc == 0
            && wram_len >= self.frame
            && self.entry.iter().all(|&(r, v)| m.regs[r as usize] == v)
    }

    /// Evaluate the launch-entry check once and cache the verdict. The
    /// program image — and with it the declared WRAM frame and the entry
    /// constants the verifier assumed — is immutable per rank plan, so a
    /// dispatcher that launches the same kernel with the same entry state
    /// (pc 0, the spec's known input registers, a WRAM buffer of at least
    /// `wram_len` bytes) need not re-scan the entry constants on every
    /// launch: compute the gate at prepare time and pass it to
    /// [`Machine::run_prepared_gated`]. The gate is only valid for launches
    /// whose entry state matches the one it was computed from (debug builds
    /// assert this).
    pub fn entry_gate(&self, m: &Machine, wram_len: usize) -> EntryGate {
        EntryGate {
            fast: self.fast_path_active(m, wram_len),
        }
    }

    /// Record that [`crate::isa::wcet::prove_partition`] succeeded for the
    /// tasklet layout this kernel ships with: its WRAM accesses are
    /// statically race-free, so production launches may run without the
    /// runtime WRAM sanitizer (CI keeps sanitized runs as the differential
    /// oracle).
    pub fn mark_statically_race_free(&mut self) {
        self.race_free = true;
    }

    /// Has a cross-tasklet WRAM partition proof been recorded?
    pub fn statically_race_free(&self) -> bool {
        self.race_free
    }

    /// Number of fused superinstruction windows in the dense form.
    pub fn fused_windows(&self) -> usize {
        self.fused
    }

    /// Dispatches the dense form needs for one pass over the program
    /// (`program().len()` when the fast path is unavailable).
    pub fn dense_len(&self) -> usize {
        if self.fast {
            self.dense.len()
        } else {
            self.program.len()
        }
    }
}

/// A cached launch-entry verdict from [`Prepared::entry_gate`] or
/// [`crate::isa::Jit::entry_gate`]: whether launches with the entry state
/// it was computed from may take the dense/translated path. Hoisting the
/// per-launch entry-constant scan to prepare time is safe because the
/// program image is immutable per rank plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryGate {
    pub(super) fast: bool,
}

impl EntryGate {
    /// Does the gated launch take the dense/translated path (vs the
    /// checked fallback)?
    pub fn fast(self) -> bool {
        self.fast
    }
}

/// The dense path's working register file is a 32-slot array indexed with
/// `reg & 31`: every real register index is `< NUM_REGS = 24`, so the mask
/// never changes semantics, but it lets the compiler drop the bounds check
/// on every access. Copied from/to `Machine::regs` at entry and every exit.
type FastRegs = [u32; 32];

#[inline(always)]
fn rget(regs: &FastRegs, r: u8) -> u32 {
    regs[(r & 31) as usize]
}

#[inline(always)]
fn opval(regs: &FastRegs, b: Operand) -> u32 {
    match b {
        Operand::Reg(r) => rget(regs, r.0),
        Operand::Imm(i) => i as u32,
    }
}

#[inline(always)]
fn alu(regs: &mut FastRegs, a: &AluSpec) -> u32 {
    let r = alu_eval(a.op, rget(regs, a.ra), opval(regs, a.b));
    regs[(a.rd & 31) as usize] = r;
    r
}

/// Word address with the single backstop compare. Errors match the checked
/// interpreter's bit for bit: bounds first, then alignment.
#[inline(always)]
fn waddr(regs: &FastRegs, base: u8, off: i32, size: usize) -> Result<usize, IsaError> {
    let addr = (rget(regs, base) as i64 + off as i64) as usize;
    if size < 4 || addr > size - 4 {
        return Err(IsaError::MemOutOfBounds { addr, len: 4, size });
    }
    if !addr.is_multiple_of(4) {
        return Err(IsaError::Misaligned { addr });
    }
    Ok(addr)
}

#[inline(always)]
fn baddr(regs: &FastRegs, base: u8, off: i32, size: usize) -> Result<usize, IsaError> {
    let addr = (rget(regs, base) as i64 + off as i64) as usize;
    if addr >= size {
        return Err(IsaError::MemOutOfBounds { addr, len: 1, size });
    }
    Ok(addr)
}

#[inline(always)]
fn lw(regs: &mut FastRegs, wram: &[u8], l: &LoadSpec) -> Result<(), IsaError> {
    let a = waddr(regs, l.base, l.off, wram.len())?;
    regs[(l.rd & 31) as usize] = u32::from_le_bytes(wram[a..a + 4].try_into().expect("4 bytes"));
    Ok(())
}

#[inline(always)]
fn lbu(regs: &mut FastRegs, wram: &[u8], l: &LoadSpec) -> Result<(), IsaError> {
    let a = baddr(regs, l.base, l.off, wram.len())?;
    regs[(l.rd & 31) as usize] = wram[a] as u32;
    Ok(())
}

/// Checked micro-op memory accesses, shared by the plain and paired `Seq`
/// arms. Errors match the checked interpreter's bit for bit: bounds first,
/// then alignment.
#[inline(always)]
fn m_lw(regs: &mut FastRegs, wram: &[u8], m: Micro) -> Result<(), IsaError> {
    let size = wram.len();
    let addr = (rget(regs, m.ra) as i64 + i64::from(m.imm)) as usize;
    if size < 4 || addr > size - 4 {
        return Err(IsaError::MemOutOfBounds { addr, len: 4, size });
    }
    if !addr.is_multiple_of(4) {
        return Err(IsaError::Misaligned { addr });
    }
    regs[(m.rd & 31) as usize] =
        u32::from_le_bytes(wram[addr..addr + 4].try_into().expect("4 bytes"));
    Ok(())
}

#[inline(always)]
fn m_sw(regs: &FastRegs, wram: &mut [u8], m: Micro) -> Result<(), IsaError> {
    let size = wram.len();
    let addr = (rget(regs, m.ra) as i64 + i64::from(m.imm)) as usize;
    if size < 4 || addr > size - 4 {
        return Err(IsaError::MemOutOfBounds { addr, len: 4, size });
    }
    if !addr.is_multiple_of(4) {
        return Err(IsaError::Misaligned { addr });
    }
    wram[addr..addr + 4].copy_from_slice(&rget(regs, m.rd).to_le_bytes());
    Ok(())
}

#[inline(always)]
fn m_lbu(regs: &mut FastRegs, wram: &[u8], m: Micro) -> Result<(), IsaError> {
    let size = wram.len();
    let addr = (rget(regs, m.ra) as i64 + i64::from(m.imm)) as usize;
    if addr >= size {
        return Err(IsaError::MemOutOfBounds { addr, len: 1, size });
    }
    regs[(m.rd & 31) as usize] = u32::from(wram[addr]);
    Ok(())
}

#[inline(always)]
fn m_sb(regs: &FastRegs, wram: &mut [u8], m: Micro) -> Result<(), IsaError> {
    let size = wram.len();
    let addr = (rget(regs, m.ra) as i64 + i64::from(m.imm)) as usize;
    if addr >= size {
        return Err(IsaError::MemOutOfBounds { addr, len: 1, size });
    }
    wram[addr] = rget(regs, m.rd) as u8;
    Ok(())
}

impl Machine {
    /// Run a [`Prepared`] program: the dense fast path when
    /// [`Prepared::fast_path_active`] holds, the checked interpreter
    /// ([`Machine::run`]) otherwise. Completed runs are bit-identical on
    /// both paths — registers, WRAM, halt pc and [`RunStats`].
    pub fn run_prepared(
        &mut self,
        prep: &Prepared,
        wram: &mut [u8],
        max_steps: u64,
    ) -> Result<RunStats, IsaError> {
        if prep.fast_path_active(self, wram.len()) {
            self.run_dense(prep, wram, max_steps)
        } else {
            self.run(&prep.program, wram, max_steps)
        }
    }

    /// [`Machine::run_prepared`] with the entry check hoisted: `gate` is a
    /// verdict cached by [`Prepared::entry_gate`] for this launch's entry
    /// state. The caller attests the state matches (same pc 0, entry
    /// registers, and a WRAM buffer no smaller than the gate was computed
    /// for); debug builds re-verify.
    pub fn run_prepared_gated(
        &mut self,
        prep: &Prepared,
        gate: EntryGate,
        wram: &mut [u8],
        max_steps: u64,
    ) -> Result<RunStats, IsaError> {
        if gate.fast {
            debug_assert!(
                prep.fast_path_active(self, wram.len()),
                "stale EntryGate: launch entry state no longer matches"
            );
            self.run_dense(prep, wram, max_steps)
        } else {
            self.run(&prep.program, wram, max_steps)
        }
    }

    /// [`Machine::run_prepared`] under a DPU watchdog budget — the dense
    /// path's counterpart of [`Machine::run_budgeted`]. `0` falls back to
    /// the [`super::interp::DEFAULT_MAX_STEPS`] backstop. Note the
    /// documented fast-path divergence: the budget is re-checked per
    /// superinstruction *window*, so a runaway program may retire up to a
    /// window's worth of extra micro-ops before the same
    /// [`IsaError::MaxSteps`] fires.
    pub fn run_prepared_budgeted(
        &mut self,
        prep: &Prepared,
        wram: &mut [u8],
        watchdog_cycles: u64,
    ) -> Result<RunStats, IsaError> {
        self.run_prepared(prep, wram, super::interp::watchdog_steps(watchdog_cycles))
    }

    fn run_dense(
        &mut self,
        prep: &Prepared,
        wram: &mut [u8],
        max_steps: u64,
    ) -> Result<RunStats, IsaError> {
        use MicroKind as K;
        let dense = prep.dense.as_slice();
        let orig = prep.orig_pc.as_slice();
        let plen = prep.program.len();
        let wlen = wram.len();
        let mut regs: FastRegs = [0; 32];
        regs[..NUM_REGS].copy_from_slice(&self.regs);
        let mut stats = RunStats::default();
        let mut pc = 0usize;
        // Every exit — halt, fault, exhausted budget — syncs the working
        // register file back to the machine. On a fault inside a window the
        // restored pc is the *original* pc of the faulting instruction
        // (window start + micro index), like the checked interpreter's.
        macro_rules! leave {
            ($off:expr, $ret:expr) => {{
                self.regs.copy_from_slice(&regs[..NUM_REGS]);
                self.pc = orig[pc] as usize + $off;
                return $ret;
            }};
        }
        macro_rules! step {
            ($res:expr, $off:expr) => {
                match $res {
                    Ok(v) => v,
                    Err(e) => leave!($off, Err(e)),
                }
            };
        }
        loop {
            let Some(op) = dense.get(pc) else {
                // Fell off the end: the original pc is the program length.
                self.regs.copy_from_slice(&regs[..NUM_REGS]);
                self.pc = plen;
                return Err(IsaError::BadTarget {
                    target: plen,
                    len: plen,
                });
            };
            if stats.instructions >= max_steps {
                leave!(0, Err(IsaError::MaxSteps { limit: max_steps }));
            }
            match op {
                DenseOp::Halt => {
                    stats.instructions += 1;
                    leave!(0, Ok(stats));
                }
                DenseOp::Alu { a, fuse } => {
                    stats.instructions += 1;
                    let r = alu(&mut regs, a);
                    match fuse {
                        Some((cond, t)) if cond.holds(r) => {
                            stats.taken_jumps += 1;
                            pc = *t as usize;
                        }
                        _ => pc += 1,
                    }
                }
                DenseOp::Lw(l) => {
                    stats.instructions += 1;
                    stats.mem_ops += 1;
                    step!(lw(&mut regs, wram, l), 0);
                    pc += 1;
                }
                DenseOp::Sw { rs, base, off } => {
                    stats.instructions += 1;
                    stats.mem_ops += 1;
                    let a = step!(waddr(&regs, *base, *off, wlen), 0);
                    wram[a..a + 4].copy_from_slice(&rget(&regs, *rs).to_le_bytes());
                    pc += 1;
                }
                DenseOp::Lbu(l) => {
                    stats.instructions += 1;
                    stats.mem_ops += 1;
                    step!(lbu(&mut regs, wram, l), 0);
                    pc += 1;
                }
                DenseOp::Sb { rs, base, off } => {
                    stats.instructions += 1;
                    stats.mem_ops += 1;
                    let a = step!(baddr(&regs, *base, *off, wlen), 0);
                    wram[a] = rget(&regs, *rs) as u8;
                    pc += 1;
                }
                DenseOp::Jmp { target } => {
                    stats.instructions += 1;
                    stats.taken_jumps += 1;
                    pc = *target as usize;
                }
                DenseOp::Jcc {
                    cond,
                    ra,
                    b,
                    target,
                } => {
                    stats.instructions += 1;
                    let av = rget(&regs, *ra) as i32;
                    let bv = opval(&regs, *b) as i32;
                    if cond.holds(av, bv) {
                        stats.taken_jumps += 1;
                        pc = *target as usize;
                    } else {
                        pc += 1;
                    }
                }
                DenseOp::Seq {
                    start,
                    len,
                    ilen,
                    mem,
                    term,
                } => {
                    let ops = &prep.micro[*start as usize..*start as usize + usize::from(*len)];
                    let mut last = 0u32;
                    let mut skipped = 0u64;
                    let mut i = 0usize;
                    while let Some(&m) = ops.get(i) {
                        // `a` is the left/base register for every kind.
                        let a = rget(&regs, m.ra);
                        macro_rules! set {
                            ($v:expr) => {{
                                last = $v;
                                regs[(m.rd & 31) as usize] = last;
                            }};
                        }
                        // Taken skip: the branch's own slot/jump plus the
                        // span's micro-ops (`rb`) and retired-instruction
                        // weight (`rd`) it jumps over.
                        macro_rules! skip_ri {
                            ($cond:expr) => {
                                if $cond {
                                    stats.taken_jumps += 1;
                                    skipped += u64::from(m.rd);
                                    i += usize::from(m.rb);
                                }
                            };
                        }
                        // RR skips carry the operand register in `rb`, so
                        // their span lives packed in `imm`.
                        macro_rules! skip_rr {
                            ($cond:expr) => {
                                if $cond {
                                    stats.taken_jumps += 1;
                                    let packed = m.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                }
                            };
                        }
                        match m.kind {
                            K::AddRI => set!(a.wrapping_add(m.imm as u32)),
                            K::AddRR => set!(a.wrapping_add(rget(&regs, m.rb))),
                            K::SubRI => set!(a.wrapping_sub(m.imm as u32)),
                            K::SubRR => set!(a.wrapping_sub(rget(&regs, m.rb))),
                            K::AndRI => set!(a & m.imm as u32),
                            K::AndRR => set!(a & rget(&regs, m.rb)),
                            K::OrRI => set!(a | m.imm as u32),
                            K::OrRR => set!(a | rget(&regs, m.rb)),
                            K::XorRI => set!(a ^ m.imm as u32),
                            K::XorRR => set!(a ^ rget(&regs, m.rb)),
                            K::LslRI => set!(a.wrapping_shl(m.imm as u32 & 31)),
                            K::LslRR => set!(a.wrapping_shl(rget(&regs, m.rb) & 31)),
                            K::LsrRI => set!(a.wrapping_shr(m.imm as u32 & 31)),
                            K::LsrRR => set!(a.wrapping_shr(rget(&regs, m.rb) & 31)),
                            K::AsrRI => set!((a as i32).wrapping_shr(m.imm as u32 & 31) as u32),
                            K::AsrRR => {
                                set!((a as i32).wrapping_shr(rget(&regs, m.rb) & 31) as u32)
                            }
                            K::MaxRI => set!((a as i32).max(m.imm) as u32),
                            K::MaxRR => set!((a as i32).max(rget(&regs, m.rb) as i32) as u32),
                            K::Cmpb4RI => set!(alu_eval(AluOp::Cmpb4, a, m.imm as u32)),
                            K::Cmpb4RR => set!(alu_eval(AluOp::Cmpb4, a, rget(&regs, m.rb))),
                            K::MoveRI => set!(m.imm as u32),
                            K::MoveRR => set!(rget(&regs, m.rb)),
                            K::Lw => step!(m_lw(&mut regs, wram, m), usize::from(m.rb)),
                            K::Sw => step!(m_sw(&regs, wram, m), usize::from(m.rb)),
                            K::Lbu => step!(m_lbu(&mut regs, wram, m), usize::from(m.rb)),
                            K::Sb => step!(m_sb(&regs, wram, m), usize::from(m.rb)),
                            // An unconditional diamond hop: retires itself
                            // (counted in `ilen`), never its span.
                            K::JmpFwd => {
                                stats.taken_jumps += 1;
                                skipped += u64::from(m.rd);
                                i += usize::from(m.rb);
                            }
                            // Fused-branch pseudo-ops ride the preceding
                            // ALU's result; they charge no slot themselves.
                            K::FuseZ => skip_ri!(last == 0),
                            K::FuseNz => skip_ri!(last != 0),
                            K::FuseLtz => skip_ri!((last as i32) < 0),
                            K::FuseGez => skip_ri!((last as i32) >= 0),
                            K::FuseEven => skip_ri!(last.is_multiple_of(2)),
                            K::FuseOdd => skip_ri!(last % 2 == 1),
                            K::SkipEqRI => skip_ri!((a as i32) == m.imm),
                            K::SkipEqRR => skip_rr!((a as i32) == rget(&regs, m.rb) as i32),
                            K::SkipNeRI => skip_ri!((a as i32) != m.imm),
                            K::SkipNeRR => skip_rr!((a as i32) != rget(&regs, m.rb) as i32),
                            K::SkipLtRI => skip_ri!((a as i32) < m.imm),
                            K::SkipLtRR => skip_rr!((a as i32) < rget(&regs, m.rb) as i32),
                            K::SkipLeRI => skip_ri!((a as i32) <= m.imm),
                            K::SkipLeRR => skip_rr!((a as i32) <= rget(&regs, m.rb) as i32),
                            K::SkipGtRI => skip_ri!((a as i32) > m.imm),
                            K::SkipGtRR => skip_rr!((a as i32) > rget(&regs, m.rb) as i32),
                            K::SkipGeRI => skip_ri!((a as i32) >= m.imm),
                            K::SkipGeRR => skip_rr!((a as i32) >= rget(&regs, m.rb) as i32),
                            // Pair superinstructions: the second member's
                            // fields live in the next slot (`n`); net
                            // advance is two slots (one here, one below).
                            K::PairSubRRFuseGez => {
                                set!(a.wrapping_sub(rget(&regs, m.rb)));
                                let n = ops[i + 1];
                                i += 1;
                                if (last as i32) >= 0 {
                                    stats.taken_jumps += 1;
                                    skipped += u64::from(n.rd);
                                    i += usize::from(n.rb);
                                }
                            }
                            K::PairSubRRFuseLtz => {
                                set!(a.wrapping_sub(rget(&regs, m.rb)));
                                let n = ops[i + 1];
                                i += 1;
                                if (last as i32) < 0 {
                                    stats.taken_jumps += 1;
                                    skipped += u64::from(n.rd);
                                    i += usize::from(n.rb);
                                }
                            }
                            K::PairAndRIFuseNz => {
                                set!(a & m.imm as u32);
                                let n = ops[i + 1];
                                i += 1;
                                if last != 0 {
                                    stats.taken_jumps += 1;
                                    skipped += u64::from(n.rd);
                                    i += usize::from(n.rb);
                                }
                            }
                            // Conditional moves: a skip whose span starts
                            // with the move in the next slot. Taken — jump
                            // over the span; untaken — do the move inline.
                            K::PairSkipGeRRMoveRR => {
                                if (a as i32) >= rget(&regs, m.rb) as i32 {
                                    stats.taken_jumps += 1;
                                    let packed = m.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                } else {
                                    let n = ops[i + 1];
                                    last = rget(&regs, n.rb);
                                    regs[(n.rd & 31) as usize] = last;
                                    i += 1;
                                }
                            }
                            K::PairSkipGeRRMoveRI => {
                                if (a as i32) >= rget(&regs, m.rb) as i32 {
                                    stats.taken_jumps += 1;
                                    let packed = m.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                } else {
                                    let n = ops[i + 1];
                                    last = n.imm as u32;
                                    regs[(n.rd & 31) as usize] = last;
                                    i += 1;
                                }
                            }
                            K::PairSkipLtRRMoveRI => {
                                if (a as i32) < rget(&regs, m.rb) as i32 {
                                    stats.taken_jumps += 1;
                                    let packed = m.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                } else {
                                    let n = ops[i + 1];
                                    last = n.imm as u32;
                                    regs[(n.rd & 31) as usize] = last;
                                    i += 1;
                                }
                            }
                            K::PairAddRIAddRI => {
                                set!(a.wrapping_add(m.imm as u32));
                                let n = ops[i + 1];
                                last = rget(&regs, n.ra).wrapping_add(n.imm as u32);
                                regs[(n.rd & 31) as usize] = last;
                                i += 1;
                            }
                            K::PairLwLw => {
                                step!(m_lw(&mut regs, wram, m), usize::from(m.rb));
                                let n = ops[i + 1];
                                step!(m_lw(&mut regs, wram, n), usize::from(n.rb));
                                i += 1;
                            }
                            K::PairLwAddRI => {
                                step!(m_lw(&mut regs, wram, m), usize::from(m.rb));
                                let n = ops[i + 1];
                                last = rget(&regs, n.ra).wrapping_add(n.imm as u32);
                                regs[(n.rd & 31) as usize] = last;
                                i += 1;
                            }
                            K::PairLwAddRR => {
                                step!(m_lw(&mut regs, wram, m), usize::from(m.rb));
                                let n = ops[i + 1];
                                last = rget(&regs, n.ra).wrapping_add(rget(&regs, n.rb));
                                regs[(n.rd & 31) as usize] = last;
                                i += 1;
                            }
                            K::PairMoveRIMoveRI => {
                                set!(m.imm as u32);
                                let n = ops[i + 1];
                                last = n.imm as u32;
                                regs[(n.rd & 31) as usize] = last;
                                i += 1;
                            }
                            K::PairMoveRRMoveRI => {
                                set!(rget(&regs, m.rb));
                                let n = ops[i + 1];
                                last = n.imm as u32;
                                regs[(n.rd & 31) as usize] = last;
                                i += 1;
                            }
                            K::PairSwLw => {
                                step!(m_sw(&regs, wram, m), usize::from(m.rb));
                                let n = ops[i + 1];
                                step!(m_lw(&mut regs, wram, n), usize::from(n.rb));
                                i += 1;
                            }
                            K::PairMoveRRSw => {
                                set!(rget(&regs, m.rb));
                                let n = ops[i + 1];
                                step!(m_sw(&regs, wram, n), usize::from(n.rb));
                                i += 1;
                            }
                            K::PairOrRRSb => {
                                set!(a | rget(&regs, m.rb));
                                let n = ops[i + 1];
                                step!(m_sb(&regs, wram, n), usize::from(n.rb));
                                i += 1;
                            }
                            K::PairLbuLbu => {
                                step!(m_lbu(&mut regs, wram, m), usize::from(m.rb));
                                let n = ops[i + 1];
                                step!(m_lbu(&mut regs, wram, n), usize::from(n.rb));
                                i += 1;
                            }
                            K::PairSkipEqRRMoveRI => {
                                if (a as i32) == rget(&regs, m.rb) as i32 {
                                    stats.taken_jumps += 1;
                                    let packed = m.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                } else {
                                    let n = ops[i + 1];
                                    last = n.imm as u32;
                                    regs[(n.rd & 31) as usize] = last;
                                    i += 1;
                                }
                            }
                            // A value op whose successor is control: run the
                            // op, then take the follower's hop or skip with
                            // the follower's own fields.
                            K::PairMoveRIJmpFwd => {
                                set!(m.imm as u32);
                                let n = ops[i + 1];
                                stats.taken_jumps += 1;
                                skipped += u64::from(n.rd);
                                i += 1 + usize::from(n.rb);
                            }
                            K::PairOrRIJmpFwd => {
                                set!(a | m.imm as u32);
                                let n = ops[i + 1];
                                stats.taken_jumps += 1;
                                skipped += u64::from(n.rd);
                                i += 1 + usize::from(n.rb);
                            }
                            K::PairMoveRRSkipGeRR => {
                                set!(rget(&regs, m.rb));
                                let n = ops[i + 1];
                                i += 1;
                                if (rget(&regs, n.ra) as i32) >= rget(&regs, n.rb) as i32 {
                                    stats.taken_jumps += 1;
                                    let packed = n.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                }
                            }
                            K::PairMoveRISkipLtRR => {
                                set!(m.imm as u32);
                                let n = ops[i + 1];
                                i += 1;
                                if (rget(&regs, n.ra) as i32) < rget(&regs, n.rb) as i32 {
                                    stats.taken_jumps += 1;
                                    let packed = n.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                }
                            }
                            K::PairOrRRSkipGeRR => {
                                set!(a | rget(&regs, m.rb));
                                let n = ops[i + 1];
                                i += 1;
                                if (rget(&regs, n.ra) as i32) >= rget(&regs, n.rb) as i32 {
                                    stats.taken_jumps += 1;
                                    let packed = n.imm as u32;
                                    skipped += u64::from(packed >> 16);
                                    i += (packed & 0xFFFF) as usize;
                                }
                            }
                            K::PairAddRISubRI => {
                                set!(a.wrapping_add(m.imm as u32));
                                let n = ops[i + 1];
                                last = rget(&regs, n.ra).wrapping_sub(n.imm as u32);
                                regs[(n.rd & 31) as usize] = last;
                                i += 1;
                            }
                            K::PairAddRIMoveRI => {
                                set!(a.wrapping_add(m.imm as u32));
                                let n = ops[i + 1];
                                last = n.imm as u32;
                                regs[(n.rd & 31) as usize] = last;
                                i += 1;
                            }
                            // Triple superinstructions: two value ops plus a
                            // third member; net advance is three slots.
                            K::TriMoveRIMoveRIJmpFwd => {
                                set!(m.imm as u32);
                                let n = ops[i + 1];
                                last = n.imm as u32;
                                regs[(n.rd & 31) as usize] = last;
                                let o = ops[i + 2];
                                stats.taken_jumps += 1;
                                skipped += u64::from(o.rd);
                                i += 2 + usize::from(o.rb);
                            }
                            K::TriMoveRRMoveRISw => {
                                set!(rget(&regs, m.rb));
                                let n = ops[i + 1];
                                last = n.imm as u32;
                                regs[(n.rd & 31) as usize] = last;
                                let o = ops[i + 2];
                                step!(m_sw(&regs, wram, o), usize::from(o.rb));
                                i += 2;
                            }
                        }
                        i += 1;
                    }
                    stats.instructions += u64::from(*ilen) - skipped;
                    stats.mem_ops += u64::from(*mem);
                    match *term {
                        SeqTerm::Fall => pc += 1,
                        SeqTerm::Fuse { cond, target } => {
                            if cond.holds(last) {
                                stats.taken_jumps += 1;
                                pc = target as usize;
                            } else {
                                pc += 1;
                            }
                        }
                        SeqTerm::Jcc {
                            cond,
                            ra,
                            b,
                            target,
                        } => {
                            stats.instructions += 1;
                            let av = rget(&regs, ra) as i32;
                            let bv = opval(&regs, b) as i32;
                            if cond.holds(av, bv) {
                                stats.taken_jumps += 1;
                                pc = target as usize;
                            } else {
                                pc += 1;
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::asm::assemble;
    use super::super::inst::Reg;
    use super::*;

    /// Force the dense path regardless of verification, for pattern-level
    /// equivalence tests on arbitrary snippets.
    fn prepared_forced(program: Vec<Inst>) -> Prepared {
        let (dense, orig_pc, micro, fused) =
            predecode(&program, true).expect("program pre-decodes");
        Prepared {
            program,
            dense,
            orig_pc,
            micro,
            fast: true,
            frame: 0,
            entry: Vec::new(),
            fused,
            race_free: false,
        }
    }

    /// Run `src` through the checked interpreter and the dense path from
    /// identical machine/WRAM state; assert registers, WRAM, halt pc and
    /// issue-slot counts all match. Returns (stats, fused windows).
    fn check_equivalence(src: &str, wram_len: usize, regs: &[(u8, u32)]) -> (RunStats, usize) {
        let prog = assemble(src).unwrap();
        let prep = prepared_forced(prog.clone());
        let mut wram_a = vec![0u8; wram_len];
        for (i, byte) in wram_a.iter_mut().enumerate() {
            *byte = (i as u8).wrapping_mul(31).wrapping_add(7);
        }
        let mut wram_b = wram_a.clone();
        let mut ma = Machine::new();
        let mut mb = Machine::new();
        for &(r, v) in regs {
            ma.regs[r as usize] = v;
            mb.regs[r as usize] = v;
        }
        let sa = ma.run(&prog, &mut wram_a, 100_000).unwrap();
        let sb = mb.run_dense(&prep, &mut wram_b, 100_000).unwrap();
        assert_eq!(sa, sb, "issue-slot / mem-op / jump counts must match");
        assert_eq!(ma.regs, mb.regs, "registers must match");
        assert_eq!(wram_a, wram_b, "WRAM must match");
        assert_eq!(ma.pc, mb.pc, "halt pc must match");
        (sa, prep.fused_windows())
    }

    #[test]
    fn lbu_lbu_jcc_fuses_and_matches() {
        // Both branch directions: equal bytes at off 0/0, unequal at 1/2.
        for (o1, o2) in [(0, 0), (1, 2)] {
            let (stats, fused) = check_equivalence(
                &format!(
                    "
                    move r9, 8
                    lbu r12, r9, {o1}
                    lbu r13, r9, {o2}
                    jeq r12, r13, done
                    add r14, r14, 1
                    done: halt
                    "
                ),
                64,
                &[],
            );
            assert!(fused >= 1, "lbu;lbu;jcc must fuse");
            assert_eq!(stats.mem_ops, 2);
        }
    }

    #[test]
    fn lw2_alu2_fuses_and_matches() {
        let (stats, fused) = check_equivalence(
            "
            move r2, 8
            move r4, 16
            lw r15, r4, 0
            lw r16, r2, 0
            add r15, r15, -2
            add r16, r16, -6
            halt
            ",
            64,
            &[],
        );
        assert!(fused >= 1, "lw;lw;add;add must fuse");
        assert_eq!(stats.mem_ops, 2);
        assert_eq!(stats.instructions, 7);
    }

    #[test]
    fn lw_alu_and_alu_store_fuse_and_match() {
        let (stats, fused) = check_equivalence(
            "
            move r2, 8
            move r7, 20
            lw r15, r2, 0
            add r15, r15, 3
            move r17, r15
            sw r17, r7, 0
            xor r5, r15, r17
            sb r5, r7, 5
            halt
            ",
            64,
            &[],
        );
        assert!(
            fused >= 1,
            "a straight-line load/alu/store block must fuse into a window"
        );
        assert_eq!(stats.mem_ops, 3);
        assert_eq!(stats.instructions, 9);
    }

    #[test]
    fn alu_jcc_and_fused_backedge_match() {
        // A countdown via explicit compare-jump (AluJcc window) and one via
        // a fused back-edge riding an Alu2 window.
        let (_, fused) = check_equivalence(
            "
            move r1, 7
            loop:
            sub r1, r1, 1
            jgt r1, 0, loop
            halt
            ",
            0,
            &[],
        );
        assert!(fused >= 1, "alu;jcc must fuse");
        let (_, fused) = check_equivalence(
            "
            move r1, 7
            move r2, 0
            loop:
            add r2, r2, 3
            sub r1, r1, 1, jnz loop
            halt
            ",
            0,
            &[],
        );
        assert!(fused >= 1, "alu;alu-with-fused-backedge must fuse");
    }

    #[test]
    fn jcc_skip_alu_matches_both_directions() {
        // max(r2, r3) via the skip idiom; both branch directions.
        for (a, b) in [(5u32, 9u32), (9, 5)] {
            let (stats, fused) = check_equivalence(
                "
                jge r2, r3, keep
                move r2, r3
                keep: halt
                ",
                0,
                &[(2, a), (3, b)],
            );
            assert!(fused >= 1, "jcc-skip-alu must fuse");
            assert_eq!(stats.mem_ops, 0);
        }
    }

    #[test]
    fn fusion_skipped_when_jump_targets_window_interior() {
        // The jcc back-edge targets the *second* lbu — fusing the
        // lbu;lbu;jcc window would make that pc unreachable. The window
        // must not form, and semantics must still match.
        let src = "
            move r9, 8
            move r1, 3
            lbu r12, r9, 0
            mid: lbu r13, r9, 1
            jeq r12, r13, out
            out: sub r1, r1, 1
            jgt r1, 0, mid
            halt
            ";
        let prog = assemble(src).unwrap();
        let prep = prepared_forced(prog);
        // Window starts must include the targeted `mid` instruction (pc 3).
        assert!(
            prep.orig_pc.contains(&3),
            "jump target must stay a window start: {:?}",
            prep.orig_pc
        );
        check_equivalence(src, 64, &[]);
    }

    #[test]
    fn dense_path_reproduces_checked_faults() {
        // Out-of-bounds store inside a fused alu;sw window: same error,
        // same faulting pc.
        let prog = assemble(
            "
            move r7, 60
            add r5, r7, 2
            sw r5, r7, 0
            halt
            ",
        )
        .unwrap();
        let prep = prepared_forced(prog.clone());
        let mut ma = Machine::new();
        let mut mb = Machine::new();
        let ea = ma.run(&prog, &mut [0u8; 32], 100).unwrap_err();
        let eb = mb.run_dense(&prep, &mut [0u8; 32], 100).unwrap_err();
        assert_eq!(ea, eb);
        assert_eq!(ma.pc, mb.pc, "faulting pc must match");

        // Misaligned word access through a fused lw;alu window.
        let prog = assemble(
            "
            move r2, 2
            lw r3, r2, 0
            add r3, r3, 1
            halt
            ",
        )
        .unwrap();
        let prep = prepared_forced(prog.clone());
        let mut ma = Machine::new();
        let mut mb = Machine::new();
        let ea = ma.run(&prog, &mut [0u8; 32], 100).unwrap_err();
        let eb = mb.run_dense(&prep, &mut [0u8; 32], 100).unwrap_err();
        assert_eq!(ea, eb);
        assert_eq!(ma.pc, mb.pc);
    }

    #[test]
    fn unverified_program_refuses_the_fast_path() {
        // Reads r5, never written and not declared an input: the verifier
        // rejects it, so Prepared must fall back to the checked path.
        let prog = assemble("add r1, r5, 1\nhalt").unwrap();
        let prep = Prepared::new(prog.clone(), &VerifySpec::new().frame(16));
        assert!(!prep.fast_eligible());
        assert!(!prep.fast_path_active(&Machine::new(), 16));
        let mut ma = Machine::new();
        let mut mb = Machine::new();
        let sa = ma.run(&prog, &mut [0u8; 16], 100).unwrap();
        let sb = mb
            .run_prepared(&prep, &mut [0u8; 16], 100)
            .expect("checked fallback still runs");
        assert_eq!(sa, sb);
        assert_eq!(ma.regs, mb.regs);
    }

    #[test]
    fn missing_frame_or_entry_mismatch_forces_checked_path() {
        let src = "
            move r1, 4
            loop: sub r1, r1, 1, jnz loop
            halt
            ";
        // No declared frame: never fast, even though the program verifies.
        let no_frame = Prepared::new(assemble(src).unwrap(), &VerifySpec::new());
        assert!(!no_frame.fast_eligible());

        // Known-constant input r9 = 8: fast only when the machine agrees.
        let spec = VerifySpec::new().frame(64).input_value(Reg(9), 8);
        let prep = Prepared::new(assemble(src).unwrap(), &spec);
        assert!(prep.fast_eligible());
        let mut m = Machine::new();
        m.regs[9] = 8;
        assert!(prep.fast_path_active(&m, 64));
        m.regs[9] = 12;
        assert!(!prep.fast_path_active(&m, 64), "entry constant mismatch");
        m.regs[9] = 8;
        assert!(!prep.fast_path_active(&m, 32), "WRAM below the frame");
        m.pc = 1;
        assert!(!prep.fast_path_active(&m, 64), "pc must be 0");

        // The checked fallback on an entry mismatch still runs correctly.
        let mut mb = Machine::new();
        mb.regs[9] = 12;
        let stats = mb.run_prepared(&prep, &mut [0u8; 64], 100).unwrap();
        assert_eq!(mb.regs[1], 0);
        assert_eq!(stats.instructions, 1 + 4 + 1);
    }

    #[test]
    fn max_steps_still_aborts_dense_runs() {
        let prog = assemble(
            "
            loop: add r1, r1, 1
            sub r2, r2, 0, jz loop
            halt
            ",
        )
        .unwrap();
        let prep = prepared_forced(prog);
        let mut m = Machine::new();
        assert!(matches!(
            m.run_dense(&prep, &mut [], 1000),
            Err(IsaError::MaxSteps { limit: 1000 })
        ));
    }
}
