//! The ISA interpreter: executes a resolved program against a WRAM buffer,
//! counting instructions. One instruction = one issue slot; converting issue
//! slots to wall cycles is the pipeline model's job ([`crate::pipeline`]).

use super::inst::{alu_eval, Inst, Operand, Reg, NUM_REGS};
use std::fmt;

/// Faults the interpreter can hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// Memory access outside the provided WRAM buffer.
    MemOutOfBounds {
        /// Byte address of the access.
        addr: usize,
        /// Access width in bytes.
        len: usize,
        /// WRAM buffer size.
        size: usize,
    },
    /// Unaligned word access.
    Misaligned {
        /// The misaligned address.
        addr: usize,
    },
    /// Jump target outside the program.
    BadTarget {
        /// The offending instruction index.
        target: usize,
        /// Program length.
        len: usize,
    },
    /// The step budget was exhausted (runaway loop).
    MaxSteps {
        /// The configured limit.
        limit: u64,
    },
    /// Sanitizer: a load touched WRAM bytes nothing ever wrote.
    UninitializedRead {
        /// Byte address of the access.
        addr: usize,
        /// Access width in bytes.
        len: usize,
    },
    /// Sanitizer: two tasklets touched the same WRAM byte with no barrier
    /// between them (an unsynchronized cross-tasklet access).
    DataRace {
        /// The racing byte address.
        addr: usize,
        /// Tasklet performing this access.
        tasklet: u8,
        /// Tasklet that owned the byte.
        owner: u8,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::MemOutOfBounds { addr, len, size } => {
                write!(
                    f,
                    "memory access [{addr}, {addr}+{len}) outside {size}-byte WRAM"
                )
            }
            IsaError::Misaligned { addr } => write!(f, "unaligned word access at {addr}"),
            IsaError::BadTarget { target, len } => {
                write!(
                    f,
                    "jump target {target} outside program of {len} instructions"
                )
            }
            IsaError::MaxSteps { limit } => write!(f, "exceeded step limit {limit}"),
            IsaError::UninitializedRead { addr, len } => {
                write!(
                    f,
                    "sanitizer: read of uninitialized WRAM [{addr}, {addr}+{len})"
                )
            }
            IsaError::DataRace {
                addr,
                tasklet,
                owner,
            } => {
                write!(
                    f,
                    "sanitizer: tasklet {tasklet} touched WRAM byte {addr} owned by \
                     tasklet {owner} with no barrier in between"
                )
            }
        }
    }
}

impl std::error::Error for IsaError {}

/// The historical hard step cap used when no watchdog budget is in force.
pub const DEFAULT_MAX_STEPS: u64 = 10_000_000;

/// Translate a DPU watchdog cycle budget into an interpreter step budget.
/// One retired instruction occupies at least one cycle (11 under the
/// pipeline reentry rule), so capping steps at the cycle budget is a sound
/// over-approximation: a program inside its cycle budget is never reaped.
/// `0` (watchdog disabled) keeps the [`DEFAULT_MAX_STEPS`] backstop — a
/// runaway interpreter loop must still terminate.
pub fn watchdog_steps(watchdog_cycles: u64) -> u64 {
    if watchdog_cycles == 0 {
        DEFAULT_MAX_STEPS
    } else {
        watchdog_cycles
    }
}

/// Observer for WRAM traffic during interpretation. The sanitizer implements
/// this to track byte-level initialization and per-tasklet ownership; the
/// no-op `()` impl keeps the plain [`Machine::run`] path free of overhead
/// (both are monomorphized).
pub trait WramWatch {
    /// Called before a load of `len` bytes at `addr` (bounds already checked).
    fn on_read(&mut self, addr: usize, len: usize) -> Result<(), IsaError>;
    /// Called before a store of `len` bytes at `addr` (bounds already checked).
    fn on_write(&mut self, addr: usize, len: usize) -> Result<(), IsaError>;
}

impl WramWatch for () {
    #[inline]
    fn on_read(&mut self, _addr: usize, _len: usize) -> Result<(), IsaError> {
        Ok(())
    }
    #[inline]
    fn on_write(&mut self, _addr: usize, _len: usize) -> Result<(), IsaError> {
        Ok(())
    }
}

/// Execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Of which loads/stores (WRAM traffic, for sanity checks).
    pub mem_ops: u64,
    /// Of which taken jumps (fused or explicit).
    pub taken_jumps: u64,
}

/// Machine state: 24 registers and a program counter.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Register file.
    pub regs: [u32; NUM_REGS],
    /// Program counter (instruction index).
    pub pc: usize,
}

impl Default for Machine {
    fn default() -> Self {
        Self::new()
    }
}

impl Machine {
    /// Zeroed machine.
    pub fn new() -> Self {
        Self {
            regs: [0; NUM_REGS],
            pc: 0,
        }
    }

    /// Read register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.0 as usize]
    }

    /// Write register.
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r.0 as usize] = v;
    }

    fn operand(&self, b: Operand) -> u32 {
        match b {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(i) => i as u32,
        }
    }

    /// Run `program` until `Halt` (or fault), with `wram` as data memory.
    /// `max_steps` bounds runaway loops.
    pub fn run(
        &mut self,
        program: &[Inst],
        wram: &mut [u8],
        max_steps: u64,
    ) -> Result<RunStats, IsaError> {
        self.run_watched(program, wram, max_steps, &mut ())
    }

    /// [`Machine::run`] under a DPU watchdog budget: `watchdog_cycles = 0`
    /// (watchdog disabled) falls back to [`DEFAULT_MAX_STEPS`]. Each
    /// retired instruction occupies at least one cycle, so bounding steps
    /// by the cycle budget never reaps a program the hardware watchdog
    /// would have let finish. A budget overrun still surfaces as
    /// [`IsaError::MaxSteps`]; [`crate::Rank::launch_threads`] converts it
    /// into the recoverable [`crate::SimError::WatchdogExpired`] on the
    /// launch path.
    pub fn run_budgeted(
        &mut self,
        program: &[Inst],
        wram: &mut [u8],
        watchdog_cycles: u64,
    ) -> Result<RunStats, IsaError> {
        self.run(program, wram, watchdog_steps(watchdog_cycles))
    }

    /// Like [`Machine::run`], but reports every WRAM access to `watch`
    /// before performing it. A watch error aborts execution at the faulting
    /// instruction. This is the entry point the runtime sanitizer uses.
    pub fn run_watched<W: WramWatch>(
        &mut self,
        program: &[Inst],
        wram: &mut [u8],
        max_steps: u64,
        watch: &mut W,
    ) -> Result<RunStats, IsaError> {
        let mut stats = RunStats::default();
        let check_target = |t: usize| -> Result<usize, IsaError> {
            if t >= program.len() {
                Err(IsaError::BadTarget {
                    target: t,
                    len: program.len(),
                })
            } else {
                Ok(t)
            }
        };
        loop {
            if stats.instructions >= max_steps {
                return Err(IsaError::MaxSteps { limit: max_steps });
            }
            let inst = *program.get(self.pc).ok_or(IsaError::BadTarget {
                target: self.pc,
                len: program.len(),
            })?;
            stats.instructions += 1;
            match inst {
                Inst::Halt => return Ok(stats),
                Inst::Alu {
                    op,
                    rd,
                    ra,
                    b,
                    fuse,
                } => {
                    let result = alu_eval(op, self.reg(ra), self.operand(b));
                    self.set_reg(rd, result);
                    match fuse {
                        Some((cond, target)) if cond.holds(result) => {
                            stats.taken_jumps += 1;
                            self.pc = check_target(target)?;
                        }
                        _ => self.pc += 1,
                    }
                }
                Inst::Lw { rd, base, off } => {
                    let addr = self.addr(base, off, 4, wram.len())?;
                    if addr % 4 != 0 {
                        return Err(IsaError::Misaligned { addr });
                    }
                    watch.on_read(addr, 4)?;
                    let v = u32::from_le_bytes(wram[addr..addr + 4].try_into().expect("4 bytes"));
                    self.set_reg(rd, v);
                    stats.mem_ops += 1;
                    self.pc += 1;
                }
                Inst::Sw { rs, base, off } => {
                    let addr = self.addr(base, off, 4, wram.len())?;
                    if addr % 4 != 0 {
                        return Err(IsaError::Misaligned { addr });
                    }
                    watch.on_write(addr, 4)?;
                    wram[addr..addr + 4].copy_from_slice(&self.reg(rs).to_le_bytes());
                    stats.mem_ops += 1;
                    self.pc += 1;
                }
                Inst::Lbu { rd, base, off } => {
                    let addr = self.addr(base, off, 1, wram.len())?;
                    watch.on_read(addr, 1)?;
                    self.set_reg(rd, wram[addr] as u32);
                    stats.mem_ops += 1;
                    self.pc += 1;
                }
                Inst::Sb { rs, base, off } => {
                    let addr = self.addr(base, off, 1, wram.len())?;
                    watch.on_write(addr, 1)?;
                    wram[addr] = self.reg(rs) as u8;
                    stats.mem_ops += 1;
                    self.pc += 1;
                }
                Inst::Jmp { target } => {
                    stats.taken_jumps += 1;
                    self.pc = check_target(target)?;
                }
                Inst::Jcc {
                    cond,
                    ra,
                    b,
                    target,
                } => {
                    let a = self.reg(ra) as i32;
                    let bv = self.operand(b) as i32;
                    if cond.holds(a, bv) {
                        stats.taken_jumps += 1;
                        self.pc = check_target(target)?;
                    } else {
                        self.pc += 1;
                    }
                }
            }
        }
    }

    fn addr(&self, base: Reg, off: i32, len: usize, size: usize) -> Result<usize, IsaError> {
        let addr = (self.reg(base) as i64 + off as i64) as usize;
        if addr.checked_add(len).is_none_or(|end| end > size) {
            return Err(IsaError::MemOutOfBounds { addr, len, size });
        }
        Ok(addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::inst::{AluOp, FuseCond, JumpCond};

    fn r(i: u8) -> Reg {
        Reg::new(i).unwrap()
    }

    #[test]
    fn straight_line_add() {
        let prog = [
            Inst::Alu {
                op: AluOp::Move,
                rd: r(1),
                ra: r(0),
                b: Operand::Imm(40),
                fuse: None,
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: r(1),
                ra: r(1),
                b: Operand::Imm(2),
                fuse: None,
            },
            Inst::Halt,
        ];
        let mut m = Machine::new();
        let stats = m.run(&prog, &mut [], 100).unwrap();
        assert_eq!(m.reg(r(1)), 42);
        assert_eq!(stats.instructions, 3);
        assert_eq!(stats.taken_jumps, 0);
    }

    #[test]
    fn fused_loop_counts_once_per_iteration() {
        // r1 = 10; loop { r1 -= 1 } while r1 != 0; — 1 instruction per
        // iteration thanks to the fused jump.
        let prog = [
            Inst::Alu {
                op: AluOp::Move,
                rd: r(1),
                ra: r(0),
                b: Operand::Imm(10),
                fuse: None,
            },
            Inst::Alu {
                op: AluOp::Sub,
                rd: r(1),
                ra: r(1),
                b: Operand::Imm(1),
                fuse: Some((FuseCond::Nz, 1)),
            },
            Inst::Halt,
        ];
        let mut m = Machine::new();
        let stats = m.run(&prog, &mut [], 100).unwrap();
        assert_eq!(m.reg(r(1)), 0);
        // 1 move + 10 subs + 1 halt.
        assert_eq!(stats.instructions, 12);
        assert_eq!(stats.taken_jumps, 9);
    }

    #[test]
    fn unfused_loop_needs_an_extra_compare() {
        // Same loop without fusion: sub + jcc per iteration.
        let prog = [
            Inst::Alu {
                op: AluOp::Move,
                rd: r(1),
                ra: r(0),
                b: Operand::Imm(10),
                fuse: None,
            },
            Inst::Alu {
                op: AluOp::Sub,
                rd: r(1),
                ra: r(1),
                b: Operand::Imm(1),
                fuse: None,
            },
            Inst::Jcc {
                cond: JumpCond::Ne,
                ra: r(1),
                b: Operand::Imm(0),
                target: 1,
            },
            Inst::Halt,
        ];
        let mut m = Machine::new();
        let stats = m.run(&prog, &mut [], 100).unwrap();
        // 1 move + 10 * (sub + jcc) + halt = 22: fusion saves ~45% here,
        // the mechanism behind Table 7.
        assert_eq!(stats.instructions, 22);
    }

    #[test]
    fn memory_round_trip() {
        let prog = [
            Inst::Alu {
                op: AluOp::Move,
                rd: r(2),
                ra: r(0),
                b: Operand::Imm(0x1234),
                fuse: None,
            },
            Inst::Sw {
                rs: r(2),
                base: r(0),
                off: 8,
            },
            Inst::Lw {
                rd: r(3),
                base: r(0),
                off: 8,
            },
            Inst::Lbu {
                rd: r(4),
                base: r(0),
                off: 8,
            },
            Inst::Halt,
        ];
        let mut wram = vec![0u8; 16];
        let mut m = Machine::new();
        let stats = m.run(&prog, &mut wram, 100).unwrap();
        assert_eq!(m.reg(r(3)), 0x1234);
        assert_eq!(m.reg(r(4)), 0x34);
        assert_eq!(stats.mem_ops, 3);
    }

    #[test]
    fn faults_are_reported() {
        let mut m = Machine::new();
        // Out-of-bounds store.
        let prog = [
            Inst::Sw {
                rs: r(0),
                base: r(0),
                off: 100,
            },
            Inst::Halt,
        ];
        assert!(matches!(
            m.run(&prog, &mut [0u8; 8], 10),
            Err(IsaError::MemOutOfBounds { .. })
        ));
        // Misaligned word.
        let mut m = Machine::new();
        let prog = [
            Inst::Lw {
                rd: r(1),
                base: r(0),
                off: 2,
            },
            Inst::Halt,
        ];
        assert!(matches!(
            m.run(&prog, &mut [0u8; 8], 10),
            Err(IsaError::Misaligned { addr: 2 })
        ));
        // Runaway loop.
        let mut m = Machine::new();
        let prog = [Inst::Jmp { target: 0 }];
        assert!(matches!(
            m.run(&prog, &mut [], 1000),
            Err(IsaError::MaxSteps { limit: 1000 })
        ));
        // Bad target.
        let mut m = Machine::new();
        let prog = [Inst::Jmp { target: 7 }];
        assert!(matches!(
            m.run(&prog, &mut [], 10),
            Err(IsaError::BadTarget { .. })
        ));
    }

    #[test]
    fn watchdog_budget_maps_to_step_cap() {
        assert_eq!(watchdog_steps(0), DEFAULT_MAX_STEPS);
        assert_eq!(watchdog_steps(5000), 5000);
        // A runaway loop under a watchdog budget reports the budget as its
        // limit — what the launch path converts into WatchdogExpired.
        let mut m = Machine::new();
        let prog = [Inst::Jmp { target: 0 }];
        assert!(matches!(
            m.run_budgeted(&prog, &mut [], 500),
            Err(IsaError::MaxSteps { limit: 500 })
        ));
        // Budget 0 falls back to the default backstop, not infinity.
        let mut m = Machine::new();
        assert!(matches!(
            m.run_budgeted(&prog, &mut [], 0),
            Err(IsaError::MaxSteps {
                limit: DEFAULT_MAX_STEPS
            })
        ));
    }

    #[test]
    fn cmpb4_plus_parity_walk() {
        // The paper's trick: cmpb4 then shift+jump-on-odd to test each byte.
        // Compare "ACGT" with "ACCT" -> bytes equal at 0,1,3.
        let a = u32::from_le_bytes(*b"ACGT");
        let b = u32::from_le_bytes(*b"ACCT");
        let prog = [
            // r1 = cmpb4(a, b)
            Inst::Alu {
                op: AluOp::Move,
                rd: r(2),
                ra: r(0),
                b: Operand::Imm(a as i32),
                fuse: None,
            },
            Inst::Alu {
                op: AluOp::Cmpb4,
                rd: r(1),
                ra: r(2),
                b: Operand::Imm(b as i32),
                fuse: None,
            },
            // count matches in r3 by shifting out bytes, fused parity jumps.
            // byte 0
            Inst::Alu {
                op: AluOp::And,
                rd: r(4),
                ra: r(1),
                b: Operand::Imm(1),
                fuse: Some((FuseCond::Z, 4)),
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: r(3),
                ra: r(3),
                b: Operand::Imm(1),
                fuse: None,
            },
            // byte 1
            Inst::Alu {
                op: AluOp::Lsr,
                rd: r(1),
                ra: r(1),
                b: Operand::Imm(8),
                fuse: Some((FuseCond::Even, 6)),
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: r(3),
                ra: r(3),
                b: Operand::Imm(1),
                fuse: None,
            },
            // byte 2
            Inst::Alu {
                op: AluOp::Lsr,
                rd: r(1),
                ra: r(1),
                b: Operand::Imm(8),
                fuse: Some((FuseCond::Even, 8)),
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: r(3),
                ra: r(3),
                b: Operand::Imm(1),
                fuse: None,
            },
            // byte 3
            Inst::Alu {
                op: AluOp::Lsr,
                rd: r(1),
                ra: r(1),
                b: Operand::Imm(8),
                fuse: Some((FuseCond::Even, 10)),
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: r(3),
                ra: r(3),
                b: Operand::Imm(1),
                fuse: None,
            },
            Inst::Halt,
        ];
        let mut m = Machine::new();
        m.run(&prog, &mut [], 100).unwrap();
        assert_eq!(m.reg(r(3)), 3, "three of four bases match");
    }
}
