//! Instruction definitions for the mini DPU ISA.

/// Number of general-purpose 32-bit registers (the DPU has 24).
pub const NUM_REGS: usize = 24;

/// A register index `r0..r23`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reg(pub u8);

impl Reg {
    /// Validate the index.
    pub fn new(idx: u8) -> Option<Reg> {
        ((idx as usize) < NUM_REGS).then_some(Reg(idx))
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Second ALU operand: register or immediate (the triadic formats rri/rrr).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// Register operand.
    Reg(Reg),
    /// Immediate operand.
    Imm(i32),
}

/// ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by `b & 31`).
    Lsl,
    /// Logical shift right.
    Lsr,
    /// Arithmetic shift right.
    Asr,
    /// Signed maximum — the DPU compiles `max` to a compare+select; we give
    /// it one slot, which both kernel variants use equally.
    Max,
    /// SIMD byte compare: result byte `i` is `0x01` when byte `i` of the two
    /// operands are equal, else `0x00` (the `cmpb4` instruction).
    Cmpb4,
    /// Copy of the `b` operand (`move`).
    Move,
}

/// Condition for a *fused* jump: evaluated on the ALU result in the same
/// cycle (§2.1 "cycle-free jumps before or after most instructions").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuseCond {
    /// Result is zero.
    Z,
    /// Result is non-zero.
    Nz,
    /// Result is negative (as i32).
    Ltz,
    /// Result is non-negative.
    Gez,
    /// Low bit clear — "jump on parity", pairs with `lsr` to walk `cmpb4`
    /// result bytes.
    Even,
    /// Low bit set.
    Odd,
}

impl FuseCond {
    /// Evaluate against an ALU result.
    pub fn holds(self, result: u32) -> bool {
        match self {
            FuseCond::Z => result == 0,
            FuseCond::Nz => result != 0,
            FuseCond::Ltz => (result as i32) < 0,
            FuseCond::Gez => (result as i32) >= 0,
            FuseCond::Even => result & 1 == 0,
            FuseCond::Odd => result & 1 == 1,
        }
    }
}

/// Condition for a compare-and-jump instruction (also single-cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JumpCond {
    /// `a == b`.
    Eq,
    /// `a != b`.
    Ne,
    /// `a < b` signed.
    Lt,
    /// `a <= b` signed.
    Le,
    /// `a > b` signed.
    Gt,
    /// `a >= b` signed.
    Ge,
}

impl JumpCond {
    /// Evaluate on signed values.
    pub fn holds(self, a: i32, b: i32) -> bool {
        match self {
            JumpCond::Eq => a == b,
            JumpCond::Ne => a != b,
            JumpCond::Lt => a < b,
            JumpCond::Le => a <= b,
            JumpCond::Gt => a > b,
            JumpCond::Ge => a >= b,
        }
    }
}

/// One instruction. `Label`s are already resolved to instruction indices by
/// the assembler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Triadic ALU op with an optional fused jump on the result.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source.
        ra: Reg,
        /// Second source.
        b: Operand,
        /// Fused jump: `(condition, target)`.
        fuse: Option<(FuseCond, usize)>,
    },
    /// Load 32-bit word from WRAM at `base + off`.
    Lw {
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Store 32-bit word.
    Sw {
        /// Source register.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Load unsigned byte.
    Lbu {
        /// Destination.
        rd: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Store byte.
    Sb {
        /// Source register.
        rs: Reg,
        /// Base register.
        base: Reg,
        /// Byte offset.
        off: i32,
    },
    /// Unconditional jump.
    Jmp {
        /// Target instruction index.
        target: usize,
    },
    /// Compare-and-jump.
    Jcc {
        /// Condition.
        cond: JumpCond,
        /// Left operand register.
        ra: Reg,
        /// Right operand.
        b: Operand,
        /// Target instruction index.
        target: usize,
    },
    /// Stop execution.
    Halt,
}

/// ALU semantics shared by the interpreter and tests.
pub fn alu_eval(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Lsl => a.wrapping_shl(b & 31),
        AluOp::Lsr => a.wrapping_shr(b & 31),
        AluOp::Asr => ((a as i32).wrapping_shr(b & 31)) as u32,
        AluOp::Max => (a as i32).max(b as i32) as u32,
        AluOp::Cmpb4 => {
            let mut r = 0u32;
            for byte in 0..4 {
                let sh = byte * 8;
                if (a >> sh) & 0xFF == (b >> sh) & 0xFF {
                    r |= 0x01 << sh;
                }
            }
            r
        }
        AluOp::Move => b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_validation() {
        assert!(Reg::new(0).is_some());
        assert!(Reg::new(23).is_some());
        assert!(Reg::new(24).is_none());
        assert_eq!(Reg(5).to_string(), "r5");
    }

    #[test]
    fn alu_basics() {
        assert_eq!(alu_eval(AluOp::Add, 2, 3), 5);
        assert_eq!(alu_eval(AluOp::Add, u32::MAX, 1), 0);
        assert_eq!(alu_eval(AluOp::Sub, 2, 3), u32::MAX);
        assert_eq!(alu_eval(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu_eval(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu_eval(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(alu_eval(AluOp::Move, 7, 9), 9);
    }

    #[test]
    fn shifts() {
        assert_eq!(alu_eval(AluOp::Lsl, 1, 4), 16);
        assert_eq!(alu_eval(AluOp::Lsr, 0x8000_0000, 31), 1);
        assert_eq!(alu_eval(AluOp::Asr, (-8i32) as u32, 2), (-2i32) as u32);
        // Shift amounts wrap at 32 like the hardware.
        assert_eq!(alu_eval(AluOp::Lsl, 1, 33), 2);
    }

    #[test]
    fn max_is_signed() {
        assert_eq!(alu_eval(AluOp::Max, (-5i32) as u32, 3), 3);
        assert_eq!(
            alu_eval(AluOp::Max, (-5i32) as u32, (-9i32) as u32),
            (-5i32) as u32
        );
    }

    #[test]
    fn cmpb4_compares_each_byte() {
        let a = u32::from_le_bytes([1, 2, 3, 4]);
        let b = u32::from_le_bytes([1, 9, 3, 7]);
        let r = alu_eval(AluOp::Cmpb4, a, b);
        assert_eq!(r.to_le_bytes(), [1, 0, 1, 0]);
        assert_eq!(
            alu_eval(AluOp::Cmpb4, a, a),
            u32::from_le_bytes([1, 1, 1, 1])
        );
        assert_eq!(alu_eval(AluOp::Cmpb4, a, !a), 0);
    }

    #[test]
    fn fuse_conditions() {
        assert!(FuseCond::Z.holds(0));
        assert!(!FuseCond::Z.holds(1));
        assert!(FuseCond::Nz.holds(2));
        assert!(FuseCond::Ltz.holds((-1i32) as u32));
        assert!(FuseCond::Gez.holds(0));
        assert!(FuseCond::Even.holds(4));
        assert!(FuseCond::Odd.holds(5));
    }

    #[test]
    fn jump_conditions() {
        assert!(JumpCond::Eq.holds(3, 3));
        assert!(JumpCond::Ne.holds(3, 4));
        assert!(JumpCond::Lt.holds(-2, 0));
        assert!(JumpCond::Le.holds(0, 0));
        assert!(JumpCond::Gt.holds(5, -5));
        assert!(JumpCond::Ge.holds(5, 5));
    }
}
