//! Symbolic worst-case execution analysis over verified ISA programs.
//!
//! Layered on the verifier's CFG helpers and interval+congruence domain
//! ([`super::verify`]), this module derives three static facts the runtime
//! otherwise has to guess at:
//!
//! * **Trip-count bounds** — each natural loop whose back edge matches one
//!   of the loop-termination pass's strictly-decreasing counter patterns
//!   yields a *symbolic* bound on its body executions, in terms of the
//!   [`VerifySpec`] input registers (the registers carrying `m`, `n`, and
//!   the band width at launch).
//! * **A closed-form cycle bound** — per-instruction costs (one issue slot
//!   per retired instruction, the same unit [`crate::stats::DpuStats`]
//!   accumulates) are composed up the CFG: loops collapse innermost-first
//!   into `trips × longest-body-path` super-nodes, and the residual DAG's
//!   longest path from entry is the program's worst case. The result is a
//!   [`WcetBound`]: a small expression AST evaluable against concrete
//!   [`KernelParams`], e.g. `7 + 51*(r1/4)`.
//! * **A WRAM partition proof** — per-tasklet read/write byte intervals
//!   ([`wram_footprint`]), computed from loop-linear pointer progressions
//!   (`base += const` per iteration × proven trip count). When every
//!   tasklet's writes are disjoint from every other tasklet's reads and
//!   writes ([`prove_partition`]), the kernel is statically race-free for
//!   the phase (barrier-to-barrier region) the program models, and the
//!   fast-path interpreter may skip the runtime WRAM sanitizer.
//!
//! Everything here is a *sound upper bound*: `Unbounded` means "could not
//! prove", never "proven infinite" (the verifier reports provably infinite
//! loops separately). The soundness property test in `dpu-kernel` checks
//! retired instruction counts never exceed the static bound.

use super::inst::{AluOp, FuseCond, Inst, JumpCond, Operand, Reg, NUM_REGS};
use super::verify::{
    abs_alu, abstract_states, def, natural_loop, nz_countdown_proven, successors, AbsVal,
    VerifySpec, BOUND,
};
use std::fmt;

// ---------------------------------------------------------------------------
// Expression AST
// ---------------------------------------------------------------------------

/// A symbolic, non-negative integer expression over kernel input registers.
///
/// Constructed via the folding smart constructors ([`Expr::add`],
/// [`Expr::mul`], ...) so constant subterms collapse and display stays
/// readable (`12 + 51*(r1/4)` rather than a deep tree).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// A known constant.
    Const(u64),
    /// The launch-time value of an input register (register index).
    Input(u8),
    /// Sum of terms.
    Sum(Vec<Expr>),
    /// Product of factors.
    Prod(Vec<Expr>),
    /// Floor division by a positive constant.
    Div(Box<Expr>, u64),
    /// Saturating subtraction of a constant (`max(0, e - k)`).
    SatSub(Box<Expr>, u64),
    /// Maximum of alternatives.
    Max(Vec<Expr>),
}

impl Expr {
    /// Zero.
    pub const ZERO: Expr = Expr::Const(0);

    /// `a + b`, folding constants and flattening nested sums.
    #[allow(clippy::should_implement_trait)] // smart constructor, not `self + rhs`
    pub fn add(a: Expr, b: Expr) -> Expr {
        let mut terms: Vec<Expr> = Vec::new();
        let mut konst: u64 = 0;
        for e in [a, b] {
            match e {
                Expr::Const(c) => konst = konst.saturating_add(c),
                Expr::Sum(ts) => {
                    for t in ts {
                        match t {
                            Expr::Const(c) => konst = konst.saturating_add(c),
                            other => terms.push(other),
                        }
                    }
                }
                other => terms.push(other),
            }
        }
        if terms.is_empty() {
            return Expr::Const(konst);
        }
        if konst > 0 {
            terms.insert(0, Expr::Const(konst));
        }
        if terms.len() == 1 {
            terms.pop().unwrap()
        } else {
            Expr::Sum(terms)
        }
    }

    /// `a * b`, folding constants, dropping unit factors, and distributing
    /// a constant factor over a sum (keeps bounds in `c0 + c1*X` shape).
    #[allow(clippy::should_implement_trait)] // smart constructor, not `self * rhs`
    pub fn mul(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.saturating_mul(y)),
            (Expr::Const(0), _) | (_, Expr::Const(0)) => Expr::Const(0),
            (Expr::Const(1), e) | (e, Expr::Const(1)) => e,
            (Expr::Const(c), Expr::Sum(ts)) | (Expr::Sum(ts), Expr::Const(c)) => {
                ts.into_iter().fold(Expr::ZERO, |acc, t| {
                    Expr::add(acc, Expr::mul(Expr::Const(c), t))
                })
            }
            (Expr::Prod(mut fs), e) | (e, Expr::Prod(mut fs)) => {
                fs.push(e);
                Expr::Prod(fs)
            }
            (x, y) => Expr::Prod(vec![x, y]),
        }
    }

    /// `floor(e / k)` for `k ≥ 1`.
    pub fn div_floor(e: Expr, k: u64) -> Expr {
        let k = k.max(1);
        if k == 1 {
            return e;
        }
        match e {
            Expr::Const(c) => Expr::Const(c / k),
            other => Expr::Div(Box::new(other), k),
        }
    }

    /// `max(0, e - k)`.
    pub fn sat_sub(e: Expr, k: u64) -> Expr {
        if k == 0 {
            return e;
        }
        match e {
            Expr::Const(c) => Expr::Const(c.saturating_sub(k)),
            other => Expr::SatSub(Box::new(other), k),
        }
    }

    /// `max(a, b)`, folding constants.
    pub fn max(a: Expr, b: Expr) -> Expr {
        match (a, b) {
            (Expr::Const(x), Expr::Const(y)) => Expr::Const(x.max(y)),
            (x, y) if x == y => x,
            (Expr::Max(mut xs), y) => {
                if !xs.contains(&y) {
                    xs.push(y);
                }
                Expr::Max(xs)
            }
            (x, y) => Expr::Max(vec![x, y]),
        }
    }

    /// Evaluate against concrete parameters (saturating arithmetic).
    /// `None` when the expression references an input the params omit.
    pub fn eval(&self, params: &KernelParams) -> Option<u64> {
        match self {
            Expr::Const(c) => Some(*c),
            Expr::Input(r) => params.get(Reg(*r)),
            Expr::Sum(ts) => ts
                .iter()
                .try_fold(0u64, |acc, t| Some(acc.saturating_add(t.eval(params)?))),
            Expr::Prod(fs) => fs
                .iter()
                .try_fold(1u64, |acc, f| Some(acc.saturating_mul(f.eval(params)?))),
            Expr::Div(e, k) => Some(e.eval(params)? / k.max(&1)),
            Expr::SatSub(e, k) => Some(e.eval(params)?.saturating_sub(*k)),
            Expr::Max(xs) => xs
                .iter()
                .map(|x| x.eval(params))
                .try_fold(0u64, |acc, v| v.map(|v| acc.max(v))),
        }
    }

    /// Input registers the expression depends on, ascending and deduped.
    pub fn inputs(&self) -> Vec<Reg> {
        fn walk(e: &Expr, out: &mut Vec<u8>) {
            match e {
                Expr::Const(_) => {}
                Expr::Input(r) => {
                    if !out.contains(r) {
                        out.push(*r);
                    }
                }
                Expr::Sum(v) | Expr::Prod(v) | Expr::Max(v) => v.iter().for_each(|t| walk(t, out)),
                Expr::Div(b, _) | Expr::SatSub(b, _) => walk(b, out),
            }
        }
        let mut out = Vec::new();
        walk(self, &mut out);
        out.sort_unstable();
        out.into_iter().map(Reg).collect()
    }

    fn fmt_factor(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Sum(_) | Expr::Div(..) => write!(f, "({self})"),
            _ => write!(f, "{self}"),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Input(r) => write!(f, "{}", Reg(*r)),
            Expr::Sum(ts) => {
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{t}")?;
                }
                Ok(())
            }
            Expr::Prod(fs) => {
                for (i, x) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    x.fmt_factor(f)?;
                }
                Ok(())
            }
            Expr::Div(e, k) => {
                e.fmt_factor(f)?;
                write!(f, "/{k}")
            }
            Expr::SatSub(e, k) => write!(f, "max(0, {e} - {k})"),
            Expr::Max(xs) => {
                write!(f, "max(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Kernel parameters and bounds
// ---------------------------------------------------------------------------

/// Concrete launch-time values for the input registers a [`WcetBound`]
/// references.
#[derive(Debug, Clone, Default)]
pub struct KernelParams {
    vals: [Option<u64>; NUM_REGS],
}

impl KernelParams {
    /// No parameters bound.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind register `r` to `v` (builder-style).
    pub fn set(mut self, r: Reg, v: u64) -> Self {
        self.vals[r.0 as usize] = Some(v);
        self
    }

    /// The value bound to `r`, if any.
    pub fn get(&self, r: Reg) -> Option<u64> {
        self.vals[r.0 as usize]
    }

    /// Parameters carrying every constant input a spec pins
    /// ([`VerifySpec::input_value`] declarations).
    pub fn from_spec(spec: &VerifySpec) -> Self {
        let mut p = Self::new();
        for (r, v) in spec.known_inputs() {
            p.vals[r.0 as usize] = Some(v as u64);
        }
        p
    }
}

/// The result of [`analyze`]: a closed-form worst-case cycle bound, or the
/// reason no bound could be proven.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WcetBound {
    /// Proven: the program retires at most `expr(params)` instructions
    /// (= issue-slot cycles) on any run matching the spec.
    Finite(Expr),
    /// No bound provable; the payload says which construct blocked it.
    Unbounded(String),
}

impl WcetBound {
    /// Is a bound proven?
    pub fn is_finite(&self) -> bool {
        matches!(self, WcetBound::Finite(_))
    }

    /// Worst-case retired instructions for concrete parameters. `None` for
    /// unbounded programs or when a referenced input is missing.
    pub fn eval(&self, params: &KernelParams) -> Option<u64> {
        match self {
            WcetBound::Finite(e) => e.eval(params),
            WcetBound::Unbounded(_) => None,
        }
    }

    /// The symbolic expression, when finite.
    pub fn expr(&self) -> Option<&Expr> {
        match self {
            WcetBound::Finite(e) => Some(e),
            WcetBound::Unbounded(_) => None,
        }
    }
}

impl fmt::Display for WcetBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WcetBound::Finite(e) => write!(f, "{e}"),
            WcetBound::Unbounded(why) => write!(f, "unbounded ({why})"),
        }
    }
}

// ---------------------------------------------------------------------------
// CFG scaffolding shared by the cycle bound and the footprint analysis
// ---------------------------------------------------------------------------

/// Reachability from entry (BFS over in-range successors).
fn reach(program: &[Inst]) -> Vec<bool> {
    let mut reachable = vec![false; program.len()];
    if program.is_empty() {
        return reachable;
    }
    let mut work = vec![0usize];
    reachable[0] = true;
    while let Some(pc) = work.pop() {
        for s in successors(program, pc) {
            if !std::mem::replace(&mut reachable[s], true) {
                work.push(s);
            }
        }
    }
    reachable
}

/// Predecessor lists over reachable instructions.
fn pred_map(program: &[Inst], reachable: &[bool]) -> Vec<Vec<usize>> {
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); program.len()];
    for pc in (0..program.len()).filter(|&pc| reachable[pc]) {
        for s in successors(program, pc) {
            preds[s].push(pc);
        }
    }
    preds
}

/// Back edges `(u, v)` (DFS edge to an on-stack node), reachable code only.
fn back_edges(program: &[Inst]) -> Vec<(usize, usize)> {
    let n = program.len();
    if n == 0 {
        return Vec::new();
    }
    let mut color = vec![0u8; n]; // 0 white, 1 on stack, 2 done
    let mut edges = Vec::new();
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    color[0] = 1;
    while let Some(&mut (pc, ref mut idx)) = stack.last_mut() {
        let succs = successors(program, pc);
        if *idx < succs.len() {
            let s = succs[*idx];
            *idx += 1;
            match color[s] {
                0 => {
                    color[s] = 1;
                    stack.push((s, 0));
                }
                1 => edges.push((pc, s)),
                _ => {}
            }
        } else {
            color[pc] = 2;
            stack.pop();
        }
    }
    edges
}

/// One natural loop with a proven trip-count bound.
struct LoopInfo {
    /// Header (back-edge target).
    v: usize,
    /// Body membership (header included).
    body: Vec<bool>,
    /// Bound on body executions.
    trips: Expr,
}

/// The register value *after* executing `pc` from entry state `state`.
fn out_val(program: &[Inst], state: &[AbsVal; NUM_REGS], pc: usize, r: Reg) -> AbsVal {
    match program[pc] {
        Inst::Alu { op, rd, ra, b, .. } if rd == r => {
            let bv = match b {
                Operand::Reg(x) => state[x.0 as usize],
                Operand::Imm(i) => AbsVal::constant(i as i64),
            };
            let av = if op == AluOp::Move {
                bv
            } else {
                state[ra.0 as usize]
            };
            abs_alu(op, av, bv)
        }
        Inst::Lw { rd, .. } if rd == r => AbsVal {
            lo: i32::MIN as i64,
            hi: u32::MAX as i64,
            modulus: 1,
            rem: 0,
        },
        Inst::Lbu { rd, .. } if rd == r => AbsVal {
            lo: 0,
            hi: 255,
            modulus: 1,
            rem: 0,
        },
        _ => state[r.0 as usize],
    }
}

/// The counter's value when control first enters the loop at header `v`.
enum Init {
    /// Symbolic: the declared input register, unmodified since entry.
    Sym(Reg),
    /// A finite abstract interval joined over all loop-entry edges.
    Abs(AbsVal),
    /// Could not be resolved.
    Unknown,
}

#[allow(clippy::too_many_arguments)] // CFG analysis context threaded as-is
fn resolve_init(
    program: &[Inst],
    spec: &VerifySpec,
    states: &[Option<[AbsVal; NUM_REGS]>],
    reachable: &[bool],
    preds: &[Vec<usize>],
    body: &[bool],
    v: usize,
    r: Reg,
) -> Init {
    // Preferred: the register still holds its launch value at loop entry.
    let defined_outside =
        (0..program.len()).any(|x| reachable[x] && !body[x] && def(&program[x]) == Some(r));
    if !defined_outside {
        match spec.input_slot(r) {
            Some(Some(c)) => return Init::Abs(AbsVal::constant(c as i64)),
            Some(None) => return Init::Sym(r),
            None => {}
        }
    }
    // Fallback: join the abstract value over every loop-entry edge.
    let mut joined: Option<AbsVal> = None;
    if v == 0 {
        joined = Some(spec.entry_abs(r.0 as usize));
    }
    for &p in preds[v].iter().filter(|&&p| !body[p] && reachable[p]) {
        let Some(state) = &states[p] else {
            return Init::Unknown;
        };
        let ov = out_val(program, state, p, r);
        joined = Some(match joined {
            None => ov,
            Some(j) => AbsVal::join(j, ov),
        });
    }
    match joined {
        Some(a) if a.hi < BOUND => Init::Abs(a),
        _ => Init::Unknown,
    }
}

/// Bound on body executions of the loop at back-edge `(u, v)`, mirroring the
/// loop-termination pass's counter patterns. `Err` explains the blocker.
#[allow(clippy::too_many_arguments)] // CFG analysis context threaded as-is
fn trip_bound(
    program: &[Inst],
    spec: &VerifySpec,
    states: &[Option<[AbsVal; NUM_REGS]>],
    reachable: &[bool],
    preds: &[Vec<usize>],
    body: &[bool],
    u: usize,
    v: usize,
) -> Result<Expr, String> {
    let n = program.len();
    let init = |r: Reg| resolve_init(program, spec, states, reachable, preds, body, v, r);
    match program[u] {
        // `sub r, r, k` fused `jgez`: runs until r goes negative; from X,
        // the decrement executes floor(X/k)+1 times.
        Inst::Alu {
            op: AluOp::Sub,
            rd,
            ra,
            b: Operand::Imm(k),
            fuse: Some((FuseCond::Gez, t)),
        } if t == v && rd == ra && k > 0 => {
            let solo = (0..n)
                .filter(|&x| body[x] && x != u)
                .all(|x| def(&program[x]) != Some(rd));
            if !solo {
                return Err(format!("loop at {v}: {rd} has extra in-loop writes"));
            }
            let k = k as u64;
            match init(rd) {
                Init::Sym(r) => Ok(Expr::add(
                    Expr::div_floor(Expr::Input(r.0), k),
                    Expr::Const(1),
                )),
                Init::Abs(a) => Ok(Expr::Const(a.hi.max(0) as u64 / k + 1)),
                Init::Unknown => Err(format!("loop at {v}: initial {rd} unresolved")),
            }
        }
        // `sub r, r, k` fused `jnz`: counts down to exactly zero — exact
        // X/k trips, but only when X provably cannot step over zero.
        Inst::Alu {
            op: AluOp::Sub,
            rd,
            ra,
            b: Operand::Imm(k),
            fuse: Some((FuseCond::Nz, t)),
        } if t == v && rd == ra && k > 0 => {
            let solo = (0..n)
                .filter(|&x| x != u)
                .all(|x| def(&program[x]) != Some(rd));
            let k = k as u64;
            if nz_countdown_proven(program, spec, u, rd, k as i32) {
                return Ok(Expr::div_floor(Expr::Input(rd.0), k));
            }
            if solo {
                if let Init::Abs(a) = init(rd) {
                    if a.is_const() && a.lo > 0 && (a.lo as u64).is_multiple_of(k) {
                        return Ok(Expr::Const(a.lo as u64 / k));
                    }
                }
            }
            Err(format!(
                "loop at {v}: jnz countdown on {rd} may step over zero \
                 (declare it input_multiple({rd}, {k}))"
            ))
        }
        // Separate `jgt`/`jge` branch: every in-loop write must be a
        // strict decrease, and every iteration must pass one.
        Inst::Jcc {
            cond: cond @ (JumpCond::Gt | JumpCond::Ge),
            ra,
            b: Operand::Imm(c),
            target,
        } if target == v => {
            let defs: Vec<usize> = (0..n)
                .filter(|&x| body[x] && def(&program[x]) == Some(ra))
                .collect();
            let mut k_min = u64::MAX;
            for &x in &defs {
                match program[x] {
                    Inst::Alu {
                        op: AluOp::Sub,
                        rd,
                        ra: a,
                        b: Operand::Imm(k),
                        ..
                    } if rd == a && k > 0 => k_min = k_min.min(k as u64),
                    _ => {
                        return Err(format!(
                            "loop at {v}: {ra} write at {x} is not a constant decrement"
                        ))
                    }
                }
            }
            if defs.is_empty() {
                return Err(format!("loop at {v}: {ra} never decremented in loop"));
            }
            // Every header-to-branch path must pass a decrement: BFS from v
            // through the body avoiding the decrement pcs must not reach u.
            let mut seen = vec![false; n];
            let mut work = vec![v];
            seen[v] = true;
            while let Some(x) = work.pop() {
                if x == u {
                    return Err(format!(
                        "loop at {v}: a path reaches the branch at {u} without \
                         decrementing {ra}"
                    ));
                }
                if defs.contains(&x) {
                    continue;
                }
                for s in successors(program, x) {
                    if body[s] && s != v && !std::mem::replace(&mut seen[s], true) {
                        work.push(s);
                    }
                }
            }
            // Continue while r > c (Gt) / r ≥ c (Ge); each iteration drops
            // r by ≥ k_min: trips ≤ floor((X - t)/k_min) + 1, t = c+1 / c.
            let t = if cond == JumpCond::Gt {
                c as i64 + 1
            } else {
                c as i64
            };
            let over_k_plus_1 = |e: Expr| Expr::add(Expr::div_floor(e, k_min), Expr::Const(1));
            match init(ra) {
                Init::Sym(r) => {
                    let x = Expr::Input(r.0);
                    let shifted = if t >= 0 {
                        Expr::sat_sub(x, t as u64)
                    } else {
                        Expr::add(x, Expr::Const((-t) as u64))
                    };
                    Ok(over_k_plus_1(shifted))
                }
                Init::Abs(a) => {
                    let shifted = (a.hi - t).max(0) as u64;
                    Ok(over_k_plus_1(Expr::Const(shifted)))
                }
                Init::Unknown => Err(format!("loop at {v}: initial {ra} unresolved")),
            }
        }
        _ => Err(format!(
            "back-edge {u} -> {v} has no recognized decreasing-counter pattern"
        )),
    }
}

/// Find all natural loops with proven trip bounds, innermost first.
/// `Err` when any back edge lacks a bound or loops overlap irreducibly.
fn find_loops(
    program: &[Inst],
    spec: &VerifySpec,
    states: &[Option<[AbsVal; NUM_REGS]>],
    reachable: &[bool],
    preds: &[Vec<usize>],
) -> Result<Vec<LoopInfo>, String> {
    let mut loops: Vec<LoopInfo> = Vec::new();
    for (u, v) in back_edges(program) {
        if loops.iter().any(|l| l.v == v) {
            return Err(format!("multiple back edges share the header at {v}"));
        }
        let body = natural_loop(program, preds, u, v);
        let trips = trip_bound(program, spec, states, reachable, preds, &body, u, v)?;
        loops.push(LoopInfo { v, body, trips });
    }
    loops.sort_by_key(|l| l.body.iter().filter(|&&b| b).count());
    for i in 0..loops.len() {
        for j in i + 1..loops.len() {
            let (a, b) = (&loops[i].body, &loops[j].body);
            let nested = (0..a.len()).all(|x| !a[x] || b[x]);
            let disjoint = (0..a.len()).all(|x| !(a[x] && b[x]));
            if !nested && !disjoint {
                return Err(format!(
                    "loops at {} and {} overlap irreducibly",
                    loops[i].v, loops[j].v
                ));
            }
        }
    }
    Ok(loops)
}

// ---------------------------------------------------------------------------
// The cycle bound
// ---------------------------------------------------------------------------

/// Derive the symbolic worst-case bound on retired instructions for
/// `program` under `spec`. See the module docs for the method.
pub fn analyze(program: &[Inst], spec: &VerifySpec) -> WcetBound {
    match analyze_inner(program, spec) {
        Ok(e) => WcetBound::Finite(e),
        Err(why) => WcetBound::Unbounded(why),
    }
}

fn analyze_inner(program: &[Inst], spec: &VerifySpec) -> Result<Expr, String> {
    if program.is_empty() {
        return Ok(Expr::ZERO);
    }
    let reachable = reach(program);
    let preds = pred_map(program, &reachable);
    let states = abstract_states(program, spec);
    let loops = find_loops(program, spec, &states, &reachable, &preds)?;

    // Collapse loops innermost-first: the header becomes a super-node
    // costing trips × longest-body-path, body nodes die, exit edges hoist
    // to the header.
    let n = program.len();
    let mut cost: Vec<Expr> = (0..n).map(|_| Expr::Const(1)).collect();
    let mut succ: Vec<Vec<usize>> = (0..n).map(|pc| successors(program, pc)).collect();
    let mut alive = reachable.clone();
    for l in &loops {
        // A natural loop is single-entry; anything else the DFS would have
        // classified differently, but check rather than assume.
        for x in (0..n).filter(|&x| alive[x] && !l.body[x]) {
            if let Some(&b) = succ[x].iter().find(|&&s| l.body[s] && s != l.v) {
                return Err(format!("loop at {} has a side entry at {b}", l.v));
            }
        }
        let body_cost = longest_path(&succ, &cost, &alive, &l.body, l.v)
            .ok_or_else(|| format!("loop at {} is not reducible", l.v))?;
        cost[l.v] = Expr::mul(l.trips.clone(), body_cost);
        let mut exits: Vec<usize> = Vec::new();
        for x in (0..n).filter(|&x| alive[x] && l.body[x]) {
            for &s in &succ[x] {
                if !l.body[s] && !exits.contains(&s) {
                    exits.push(s);
                }
            }
        }
        succ[l.v] = exits;
        for x in (0..n).filter(|&x| x != l.v) {
            if l.body[x] {
                alive[x] = false;
            }
        }
    }
    if !alive[0] {
        return Err("entry collapsed into a loop body".to_string());
    }
    let all = vec![true; n];
    longest_path(&succ, &cost, &alive, &all, 0)
        .ok_or_else(|| "residual control flow is cyclic".to_string())
}

/// Longest path (by summed node cost) from `entry` over alive nodes within
/// `members`, ignoring edges into `entry`. `None` if the region is cyclic.
fn longest_path(
    succ: &[Vec<usize>],
    cost: &[Expr],
    alive: &[bool],
    members: &[bool],
    entry: usize,
) -> Option<Expr> {
    let n = succ.len();
    let node_ok = |x: usize| alive[x] && members[x];
    // Kahn topo sort of the region reachable from entry.
    let mut indeg = vec![0usize; n];
    let mut seen = vec![false; n];
    let mut work = vec![entry];
    seen[entry] = true;
    let mut region = Vec::new();
    while let Some(x) = work.pop() {
        region.push(x);
        for &s in &succ[x] {
            if node_ok(s) && s != entry {
                indeg[s] += 1;
                if !std::mem::replace(&mut seen[s], true) {
                    work.push(s);
                }
            }
        }
    }
    let mut order = Vec::with_capacity(region.len());
    let mut ready: Vec<usize> = vec![entry];
    while let Some(x) = ready.pop() {
        order.push(x);
        for &s in &succ[x] {
            if node_ok(s) && s != entry {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
    }
    if order.len() != region.len() {
        return None; // residual cycle
    }
    let mut dist: Vec<Option<Expr>> = vec![None; n];
    dist[entry] = Some(cost[entry].clone());
    let mut best = cost[entry].clone();
    for &x in &order {
        let Some(dx) = dist[x].clone() else { continue };
        for &s in &succ[x] {
            if node_ok(s) && s != entry {
                let cand = Expr::add(dx.clone(), cost[s].clone());
                let merged = match dist[s].take() {
                    None => cand,
                    Some(prev) => Expr::max(prev, cand),
                };
                best = Expr::max(best.clone(), merged.clone());
                dist[s] = Some(merged);
            }
        }
    }
    Some(best)
}

// ---------------------------------------------------------------------------
// WRAM footprint and the cross-tasklet partition proof
// ---------------------------------------------------------------------------

/// Byte-interval footprint of one tasklet's program over its WRAM frame.
/// Intervals are inclusive `[lo, hi]` and may overlap each other.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Bytes the program may read.
    pub reads: Vec<(i64, i64)>,
    /// Bytes the program may write.
    pub writes: Vec<(i64, i64)>,
}

impl Footprint {
    fn push(&mut self, write: bool, lo: i64, hi: i64) {
        if write {
            self.writes.push((lo, hi));
        } else {
            self.reads.push((lo, hi));
        }
    }
}

/// Bound every WRAM access of `program` under a fully-instantiated `spec`
/// (pointer inputs pinned with [`VerifySpec::input_value`], loop counters
/// evaluable). Loop-carried pointers use linear progressions — all in-loop
/// writes of the base must be `add/sub base, base, const` — scaled by the
/// loop's proven trip count, which the interval widening of the plain
/// abstract domain cannot retain.
pub fn wram_footprint(program: &[Inst], spec: &VerifySpec) -> Result<Footprint, String> {
    let reachable = reach(program);
    let preds = pred_map(program, &reachable);
    let states = abstract_states(program, spec);
    let loops = find_loops(program, spec, &states, &reachable, &preds)?;
    let params = KernelParams::from_spec(spec);
    // Concrete trip counts per loop, innermost order matching `loops`.
    let mut trips: Vec<u64> = Vec::with_capacity(loops.len());
    for l in &loops {
        let t = l.trips.eval(&params).ok_or_else(|| {
            format!(
                "trip count for loop at {} depends on an unpinned input ({})",
                l.v, l.trips
            )
        })?;
        trips.push(t);
    }

    let mut fp = Footprint::default();
    for pc in (0..program.len()).filter(|&pc| reachable[pc]) {
        let (base, off, width, write) = match program[pc] {
            Inst::Lw { base, off, .. } => (base, off, 4i64, false),
            Inst::Sw { base, off, .. } => (base, off, 4i64, true),
            Inst::Lbu { base, off, .. } => (base, off, 1i64, false),
            Inst::Sb { base, off, .. } => (base, off, 1i64, true),
            _ => continue,
        };
        let state = states[pc]
            .as_ref()
            .ok_or_else(|| format!("no abstract state at {pc}"))?;
        let addr = abs_alu(
            AluOp::Add,
            state[base.0 as usize],
            AbsVal::constant(off as i64),
        );
        if addr.lo > -BOUND && addr.hi < BOUND {
            fp.push(write, addr.lo, addr.hi + width - 1);
            continue;
        }
        // Widened away: try the loop-linear progression.
        let holders: Vec<usize> = (0..loops.len()).filter(|&i| loops[i].body[pc]).collect();
        let &li = holders
            .first()
            .ok_or_else(|| format!("unbounded address at {pc} outside any loop"))?;
        if holders.len() > 1 {
            return Err(format!(
                "address at {pc} lives in nested loops; progression analysis \
                 handles one level"
            ));
        }
        let l = &loops[li];
        let t = trips[li] as i64;
        let mut delta_pos = 0i64;
        let mut delta_neg = 0i64;
        let mut prefix_pos = 0i64;
        let mut prefix_neg = 0i64;
        for x in (0..program.len()).filter(|&x| l.body[x] && reachable[x]) {
            match program[x] {
                _ if def(&program[x]) != Some(base) => {}
                Inst::Alu {
                    op: op @ (AluOp::Add | AluOp::Sub),
                    rd,
                    ra,
                    b: Operand::Imm(c),
                    ..
                } if rd == base && ra == base => {
                    let d = if op == AluOp::Add {
                        c as i64
                    } else {
                        -(c as i64)
                    };
                    delta_pos += d.max(0);
                    delta_neg += d.min(0);
                    if x < pc {
                        prefix_pos += d.max(0);
                        prefix_neg += d.min(0);
                    }
                }
                _ => {
                    return Err(format!(
                        "pointer {base} at {pc} is not a linear progression \
                         (write at {x})"
                    ))
                }
            }
        }
        let init = match resolve_init(
            program, spec, &states, &reachable, &preds, &l.body, l.v, base,
        ) {
            Init::Abs(a) if a.lo > -BOUND && a.hi < BOUND => a,
            _ => {
                return Err(format!(
                    "initial value of pointer {base} at loop {} unresolved",
                    l.v
                ))
            }
        };
        // In a forward-only body (control never moves backward except via
        // the back edge), an access in iteration i sees at most i full
        // per-iteration deltas plus the deltas textually before it — so the
        // last iteration (i = t-1) bounds the range exactly, one iteration
        // tighter than scaling by t. That tightness is what keeps adjacent
        // tasklets' chunks disjoint in the partition proof.
        let forward_only = (0..program.len())
            .filter(|&x| l.body[x] && reachable[x])
            .all(|x| {
                successors(program, x)
                    .into_iter()
                    .all(|s| !l.body[s] || s > x || s == l.v)
            });
        let (lo, hi) = if forward_only {
            let i_last = (t - 1).max(0);
            (
                init.lo + off as i64 + i_last.saturating_mul(delta_neg) + prefix_neg,
                init.hi + off as i64 + i_last.saturating_mul(delta_pos) + prefix_pos + width - 1,
            )
        } else {
            (
                init.lo + off as i64 + t.saturating_mul(delta_neg),
                init.hi + off as i64 + t.saturating_mul(delta_pos) + width - 1,
            )
        };
        fp.push(write, lo, hi);
    }
    Ok(fp)
}

fn overlap(a: (i64, i64), b: (i64, i64)) -> bool {
    a.0 <= b.1 && b.0 <= a.1
}

/// Prove the tasklets' WRAM accesses race-free for one barrier-to-barrier
/// phase: every tasklet's writes must be disjoint from every *other*
/// tasklet's reads and writes (overlapping reads are fine — PREV rows and
/// sequence data are shared read-only). `specs` carries one
/// fully-instantiated spec per tasklet.
pub fn prove_partition(program: &[Inst], specs: &[VerifySpec]) -> Result<(), String> {
    let fps: Vec<Footprint> = specs
        .iter()
        .map(|s| wram_footprint(program, s))
        .collect::<Result<_, _>>()?;
    for (i, a) in fps.iter().enumerate() {
        for (j, b) in fps.iter().enumerate() {
            if i == j {
                continue;
            }
            for &w in &a.writes {
                if let Some(&r) = b.reads.iter().find(|&&r| overlap(w, r)) {
                    return Err(format!(
                        "tasklet {i} writes {}..={} overlapping tasklet {j} reads {}..={}",
                        w.0, w.1, r.0, r.1
                    ));
                }
                if let Some(&x) = b.writes.iter().find(|&&x| overlap(w, x)) {
                    return Err(format!(
                        "tasklet {i} writes {}..={} overlapping tasklet {j} writes {}..={}",
                        w.0, w.1, x.0, x.1
                    ));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::assemble;

    fn r(i: u8) -> Reg {
        Reg(i)
    }

    #[test]
    fn straight_line_bound_is_program_length() {
        let prog = assemble(
            "move r1, 4
             add r2, r1, 5
             halt",
        )
        .unwrap();
        let b = analyze(&prog, &VerifySpec::new());
        assert_eq!(b, WcetBound::Finite(Expr::Const(3)));
    }

    #[test]
    fn branchy_program_takes_the_longer_arm() {
        let prog = assemble(
            "jeq r0, 0, yes
             halt
             yes: add r1, r0, 1
             add r1, r1, 1
             add r1, r1, 1
             halt",
        )
        .unwrap();
        let b = analyze(&prog, &VerifySpec::new());
        // jeq + 3 adds + halt = 5, vs jeq + halt = 2.
        assert_eq!(b, WcetBound::Finite(Expr::Const(5)));
    }

    #[test]
    fn gez_countdown_yields_symbolic_bound() {
        let prog = assemble(
            "loop: add r2, r2, 1
             sub r1, r1, 1, jgez loop
             halt",
        )
        .unwrap();
        let spec = VerifySpec::new().input(r(1)).input(r(2));
        let b = analyze(&prog, &spec);
        let WcetBound::Finite(e) = &b else {
            panic!("expected finite, got {b}");
        };
        assert_eq!(e.inputs(), vec![r(1)]);
        // X = 3: body runs 4 times (3,2,1,0) then halt.
        let got = b.eval(&KernelParams::new().set(r(1), 3)).unwrap();
        assert_eq!(got, 2 * 4 + 1);
    }

    #[test]
    fn jcc_countdown_matches_dynamic_count() {
        let prog = assemble(
            "loop: add r2, r2, 1
             sub r1, r1, 1
             jgt r1, 0, loop
             halt",
        )
        .unwrap();
        let spec = VerifySpec::new().input(r(1)).input(r(2));
        let b = analyze(&prog, &spec);
        // X iterations of 3 instructions, plus halt.
        let got = b.eval(&KernelParams::new().set(r(1), 10)).unwrap();
        assert_eq!(got, 3 * 10 + 1);
    }

    #[test]
    fn constant_init_loop_folds_to_a_constant() {
        let prog = assemble(
            "move r1, 8
             loop: add r2, r2, 1
             sub r1, r1, 1
             jgt r1, 0, loop
             halt",
        )
        .unwrap();
        let spec = VerifySpec::new().input(r(2));
        let b = analyze(&prog, &spec);
        assert_eq!(b, WcetBound::Finite(Expr::Const(1 + 3 * 8 + 1)));
    }

    #[test]
    fn nz_countdown_needs_the_multiple_contract() {
        let src = "loop: add r2, r2, 1
                   sub r1, r1, 4, jnz loop
                   halt";
        let prog = assemble(src).unwrap();
        let plain = VerifySpec::new().input(r(1)).input(r(2));
        assert!(!analyze(&prog, &plain).is_finite(), "no contract, no bound");
        let declared = VerifySpec::new().input_multiple(r(1), 4).input(r(2));
        let b = analyze(&prog, &declared);
        let got = b.eval(&KernelParams::new().set(r(1), 40)).unwrap();
        assert_eq!(got, 2 * 10 + 1);
    }

    #[test]
    fn infinite_loop_is_unbounded() {
        let prog = assemble(
            "loop: add r1, r1, 1
             jmp loop",
        )
        .unwrap();
        let b = analyze(&prog, &VerifySpec::new().input(r(1)));
        assert!(!b.is_finite());
    }

    #[test]
    fn nested_constant_loops_multiply() {
        let prog = assemble(
            "move r1, 4
             outer: move r2, 3
             inner: add r3, r3, 1
             sub r2, r2, 1
             jgt r2, 0, inner
             sub r1, r1, 1
             jgt r1, 0, outer
             halt",
        )
        .unwrap();
        let b = analyze(&prog, &VerifySpec::new().input(r(3)));
        // Exact dynamic count: 1 + 4*(1 + 3*3 + 2) + 1 = 50.
        let got = b.eval(&KernelParams::new()).unwrap();
        assert!(got >= 50, "bound {got} must cover the 50 retired");
        assert!(got <= 60, "bound {got} should stay tight");
    }

    #[test]
    fn footprint_of_a_store_loop() {
        // Writes 8 words at r2, r2+4, ..., r2+28.
        let prog = assemble(
            "move r1, 8
             loop: sw r3, r2, 0
             add r2, r2, 4
             sub r1, r1, 1
             jgt r1, 0, loop
             halt",
        )
        .unwrap();
        let spec = VerifySpec::new()
            .input_value(r(2), 0x100)
            .input(r(3))
            .frame(0x200);
        let fp = wram_footprint(&prog, &spec).unwrap();
        assert_eq!(fp.writes.len(), 1);
        let (lo, hi) = fp.writes[0];
        assert!(lo <= 0x100 && hi >= 0x100 + 7 * 4 + 3, "covers {lo}..{hi}");
        assert!(hi < 0x100 + 8 * 4 + 4, "stays near the true extent, {hi}");
    }

    #[test]
    fn partition_proof_distinguishes_disjoint_from_overlapping() {
        let prog = assemble(
            "move r1, 8
             loop: sw r3, r2, 0
             add r2, r2, 4
             sub r1, r1, 1
             jgt r1, 0, loop
             halt",
        )
        .unwrap();
        let spec_at = |base: u32| {
            VerifySpec::new()
                .input_value(r(2), base)
                .input(r(3))
                .frame(0x400)
        };
        let disjoint = [spec_at(0x000), spec_at(0x040), spec_at(0x080)];
        assert!(prove_partition(&prog, &disjoint).is_ok());
        let clashing = [spec_at(0x000), spec_at(0x010)];
        let err = prove_partition(&prog, &clashing).unwrap_err();
        assert!(err.contains("overlapping"), "{err}");
    }

    #[test]
    fn display_is_compact() {
        let e = Expr::add(
            Expr::Const(7),
            Expr::mul(Expr::Const(51), Expr::div_floor(Expr::Input(1), 4)),
        );
        assert_eq!(e.to_string(), "7 + 51*(r1/4)");
    }
}
