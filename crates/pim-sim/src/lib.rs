#![warn(missing_docs)]

//! # pim-sim — a functional + timing simulator of the UPMEM PiM architecture
//!
//! The paper (§2) evaluates on real UPMEM DIMMs; this crate is the
//! substitution substrate: it models the architectural features the paper's
//! performance analysis actually depends on, and it moves *real bytes*
//! through simulated memories so kernels are functionally checked, not just
//! costed.
//!
//! Modeled (see DESIGN.md §6 for the approximations):
//! * **Memory hierarchy** — per-DPU 64 MB MRAM (the DRAM bank) and 64 KB
//!   WRAM (the scratchpad), with the DMA engine's alignment/size rules
//!   (8-byte aligned, 8..=2048 bytes, 2 B/cycle) enforced on every transfer.
//! * **Pipeline timing** — the 14-stage pipeline with its 11-cycle tasklet
//!   re-entry restriction: a tasklet issues at most one instruction every
//!   `max(11, active_tasklets)` cycles, so ≥11 tasklets are needed for the
//!   1-instruction/cycle peak (§2.1).
//! * **Tasklets** — per-tasklet cycle accounting with barrier-delimited
//!   phases (the granularity at which the paper's pools synchronize, §4.2.3).
//! * **Topology** — DIMMs of 2 ranks × 64 DPUs; rank-granular launch and
//!   collect with the rank barrier of §4.1.2; host↔MRAM transfers at the
//!   measured 60 GB/s aggregate (§4.1.1).
//! * **ISA** — a mini triadic instruction set with the `cmpb4` SIMD byte
//!   compare and fused jump instructions (§2.1, §4.2.4), plus an assembler
//!   and interpreter used to *measure* instructions/cell for the Table 7
//!   kernels instead of guessing constants.
//! * **Power** — the component-level power model of §5.6 (Falevoz–Legriel).
//! * **Verification** — a static lint pass over assembled ISA programs
//!   ([`isa::verify`]) and an opt-in runtime WRAM sanitizer with shadow
//!   memory and cross-tasklet race detection ([`sanitizer`]).
//! * **Fault injection** — a deterministic, seedable fault schedule
//!   ([`fault::FaultPlan`] on [`ServerConfig`]): boot-disabled DPUs, launch
//!   faults, dead ranks, readback bit corruption, and straggler ranks.

pub mod config;
pub mod dpu;
pub mod error;
pub mod fault;
pub mod isa;
pub mod memory;
pub mod pipeline;
pub mod power;
pub mod rank;
pub mod sanitizer;
pub mod server;
pub mod stats;

pub use config::{DpuConfig, ServerConfig};
pub use dpu::Dpu;
pub use error::SimError;
pub use fault::FaultPlan;
pub use memory::{Mram, Wram};
pub use pipeline::{phase_cycles, PhaseCost};
pub use rank::Rank;
pub use sanitizer::WramShadow;
pub use server::PimServer;
pub use stats::{DpuStats, SanitizerStats};

/// Cycle counter type.
pub type Cycles = u64;

/// Convert DPU cycles to seconds at the given frequency.
pub fn cycles_to_seconds(cycles: Cycles, freq_hz: f64) -> f64 {
    cycles as f64 / freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_to_seconds_at_350mhz() {
        let s = cycles_to_seconds(350_000_000, 350.0e6);
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(cycles_to_seconds(0, 350.0e6), 0.0);
    }
}
