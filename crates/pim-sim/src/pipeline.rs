//! The DPU pipeline timing model (§2.1).
//!
//! Ground truth behaviour being modeled:
//! * The 14-stage pipeline imposes an 11-cycle re-entry restriction: a given
//!   tasklet issues at most one instruction every 11 cycles.
//! * Tasklets share the issue slot round-robin, so with `A` runnable
//!   tasklets a tasklet issues every `max(11, A)` cycles and the DPU retires
//!   `min(1, A/11)` instructions per cycle.
//! * A DMA transfer blocks only its issuing tasklet (`len/2 + setup`
//!   cycles); other tasklets keep issuing — this latency masking is why the
//!   paper runs more than 11 (usually 16–24) tasklets.
//! * The DMA engine itself is serial per DPU, so total DMA time is also a
//!   lower bound on the phase.
//!
//! Execution is phase-based (a phase = the work between two barriers of a
//! tasklet group, e.g. one anti-diagonal, §4.2.3): each tasklet contributes
//! `(instructions, dma_cycles)` and the phase duration is
//!
//! ```text
//! max(  max_i (instr_i * max(11, A) + dma_i),   // critical tasklet
//!       sum_i instr_i / min(1, A/11),           // issue throughput
//!       sum_i dma_i )                           // serial DMA engine
//! ```
//!
//! For balanced tasklets the first two coincide; the formula interpolates
//! correctly for imbalanced segments (e.g. the band tail when `w % T != 0`).

use crate::config::DpuConfig;
use crate::Cycles;

/// Per-tasklet cost of one phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseCost {
    /// Instructions issued by this tasklet during the phase.
    pub instructions: u64,
    /// Cycles this tasklet spends blocked on DMA during the phase.
    pub dma_cycles: Cycles,
}

impl PhaseCost {
    /// Add another cost into this one.
    pub fn add(&mut self, other: PhaseCost) {
        self.instructions += other.instructions;
        self.dma_cycles += other.dma_cycles;
    }

    /// True when the tasklet did nothing this phase.
    pub fn is_idle(&self) -> bool {
        self.instructions == 0 && self.dma_cycles == 0
    }
}

/// Duration in cycles of one phase executed by the given tasklet costs,
/// with `active_total` runnable tasklets DPU-wide setting the issue interval
/// (pools run concurrently: a pool's phase sees the other pools' tasklets
/// competing for the pipeline).
pub fn phase_cycles(cfg: &DpuConfig, active_total: usize, costs: &[PhaseCost]) -> Cycles {
    let active = active_total.max(1).min(cfg.max_tasklets) as u64;
    let interval = (cfg.reentry_cycles as u64).max(active);

    let mut critical: Cycles = 0;
    let mut total_dma: Cycles = 0;
    for c in costs {
        // Each tasklet gets one issue slot every `interval` cycles (round
        // robin over the active set), and its DMA stalls serialize with its
        // own instruction stream.
        critical = critical.max(c.instructions * interval + c.dma_cycles);
        total_dma += c.dma_cycles;
    }
    // The critical-tasklet bound already encodes the issue-throughput bound:
    // a balanced group of g tasklets with I instructions each retires g*I
    // instructions in I*interval cycles, exactly the group's share of the
    // min(1, A/11) IPC machine. The serial DMA engine adds a second bound.
    critical.max(total_dma)
}

/// Convenience: duration of a phase where `tasklets` tasklets each execute
/// `instr_each` instructions and `dma_each` DMA cycles.
pub fn uniform_phase(
    cfg: &DpuConfig,
    active_total: usize,
    tasklets: usize,
    instr_each: u64,
    dma_each: Cycles,
) -> Cycles {
    let costs = vec![
        PhaseCost {
            instructions: instr_each,
            dma_cycles: dma_each
        };
        tasklets
    ];
    phase_cycles(cfg, active_total, &costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DpuConfig {
        DpuConfig::default()
    }

    #[test]
    fn single_tasklet_pays_the_reentry_restriction() {
        // 1 tasklet, 100 instructions: one instruction per 11 cycles.
        let c = phase_cycles(
            &cfg(),
            1,
            &[PhaseCost {
                instructions: 100,
                dma_cycles: 0,
            }],
        );
        assert_eq!(c, 1100);
    }

    #[test]
    fn eleven_tasklets_reach_peak_ipc() {
        // 11 tasklets x 100 instructions: 1100 instructions at 1 IPC.
        let costs = vec![
            PhaseCost {
                instructions: 100,
                dma_cycles: 0
            };
            11
        ];
        let c = phase_cycles(&cfg(), 11, &costs);
        assert_eq!(c, 1100);
        // Utilization = 1100/1100 = 1.0: peak.
    }

    #[test]
    fn more_tasklets_same_total_time_when_work_fixed_per_tasklet_scales() {
        // 22 tasklets x 100 instructions: issue interval 22, each tasklet
        // takes 2200 cycles; total 2200 instructions at 1 IPC = 2200 cycles.
        let costs = vec![
            PhaseCost {
                instructions: 100,
                dma_cycles: 0
            };
            22
        ];
        assert_eq!(phase_cycles(&cfg(), 22, &costs), 2200);
    }

    #[test]
    fn under_eleven_tasklets_pipeline_is_underused() {
        // 4 tasklets x 100 instructions: each issues every 11 cycles ->
        // 1100 cycles for 400 instructions (IPC 0.36, the paper's reason a
        // pure 8-tasklet-per-alignment scheme is not enough).
        let costs = vec![
            PhaseCost {
                instructions: 100,
                dma_cycles: 0
            };
            4
        ];
        let c = phase_cycles(&cfg(), 4, &costs);
        assert_eq!(c, 1100);
    }

    #[test]
    fn dma_blocks_only_its_tasklet() {
        // One tasklet does a long DMA; ten others compute. The phase is
        // bounded by compute, not compute+DMA, as long as DMA < compute.
        let mut costs = vec![
            PhaseCost {
                instructions: 200,
                dma_cycles: 0
            };
            10
        ];
        costs.push(PhaseCost {
            instructions: 10,
            dma_cycles: 500,
        });
        let c = phase_cycles(&cfg(), 11, &costs);
        // Critical compute tasklet: 200 * 11 = 2200 > 10*11 + 500.
        assert_eq!(c, 2200);
    }

    #[test]
    fn serial_dma_engine_bounds_the_phase() {
        // All tasklets mostly DMA: phase >= sum of DMA times.
        let costs = vec![
            PhaseCost {
                instructions: 1,
                dma_cycles: 400
            };
            8
        ];
        let c = phase_cycles(&cfg(), 8, &costs);
        assert!(c >= 3200, "serial DMA bound, got {c}");
    }

    #[test]
    fn imbalanced_tasklet_is_the_critical_path() {
        // One tasklet has 3x the work (the band tail): it dominates.
        let mut costs = vec![
            PhaseCost {
                instructions: 100,
                dma_cycles: 0
            };
            3
        ];
        costs.push(PhaseCost {
            instructions: 300,
            dma_cycles: 0,
        });
        let c = phase_cycles(&cfg(), 4, &costs);
        assert_eq!(c, 300 * 11);
    }

    #[test]
    fn empty_phase_costs_nothing() {
        assert_eq!(phase_cycles(&cfg(), 16, &[]), 0);
        assert_eq!(phase_cycles(&cfg(), 16, &[PhaseCost::default()]), 0);
    }

    #[test]
    fn uniform_phase_matches_explicit() {
        let cfg = cfg();
        let u = uniform_phase(&cfg, 16, 4, 50, 10);
        let costs = vec![
            PhaseCost {
                instructions: 50,
                dma_cycles: 10
            };
            4
        ];
        assert_eq!(u, phase_cycles(&cfg, 16, &costs));
    }

    #[test]
    fn active_total_above_group_slows_the_group() {
        // A 4-tasklet pool on a DPU with 24 active tasklets issues every 24
        // cycles, not every 11.
        let costs = vec![
            PhaseCost {
                instructions: 100,
                dma_cycles: 0
            };
            4
        ];
        let alone = phase_cycles(&cfg(), 4, &costs);
        let contended = phase_cycles(&cfg(), 24, &costs);
        assert_eq!(alone, 1100);
        assert_eq!(contended, 2400);
    }
}
