//! A single DPU: one 64 MB MRAM bank, one 64 KB WRAM scratchpad, up to 24
//! tasklets, and the cycle accounting that turns kernel work into time.
//!
//! Kernels (the `dpu-kernel` crate) run *real code* against these memories —
//! sequences are DMA'd from MRAM, anti-diagonals live in WRAM, `BT` rows are
//! DMA'd back — while charging instruction counts per tasklet. The paper's
//! pools (§4.2.3) each own a [`Timeline`]; the DPU's elapsed time is the
//! slowest pool's timeline since pools run concurrently on the shared
//! pipeline.

use crate::config::DpuConfig;
use crate::error::SimError;
use crate::memory::{Mram, Wram};
use crate::pipeline::{phase_cycles, PhaseCost};
use crate::sanitizer::WramShadow;
use crate::stats::DpuStats;
use crate::Cycles;

/// A simulated DPU.
#[derive(Debug)]
pub struct Dpu {
    /// Architectural parameters.
    pub cfg: DpuConfig,
    /// The scratchpad.
    pub wram: Wram,
    /// The DRAM bank.
    pub mram: Mram,
    /// Counters for the last (or current) execution.
    pub stats: DpuStats,
    /// Optional runtime sanitizer shadow over the scratchpad. When present,
    /// DMA transfers into WRAM unpoison their target bytes and DMA
    /// transfers out require their source bytes to be initialized.
    pub shadow: Option<WramShadow>,
}

/// A kernel program loadable onto DPUs. One binary is broadcast to every DPU
/// (the typical UPMEM usage, §2.1); data parallelism comes from each DPU's
/// MRAM contents.
pub trait Kernel: Sync {
    /// Execute on one DPU. On return, `dpu.stats` must reflect the
    /// execution (the rank barrier uses `stats.cycles`).
    fn run(&self, dpu: &mut Dpu) -> Result<(), SimError>;
}

impl Dpu {
    /// A fresh DPU.
    pub fn new(cfg: DpuConfig) -> Self {
        Self {
            wram: Wram::new(cfg.wram_size),
            mram: Mram::new(cfg.mram_size),
            stats: DpuStats::default(),
            shadow: None,
            cfg,
        }
    }

    /// Turn on the runtime sanitizer: a fully-poisoned shadow over WRAM.
    pub fn enable_sanitizer(&mut self) {
        self.shadow = Some(WramShadow::new(self.cfg.wram_size));
    }

    /// Prepare for a new launch: clear the scratchpad and counters. MRAM
    /// persists — it holds the host's input data.
    pub fn reset_for_launch(&mut self) {
        self.wram.reset();
        self.stats = DpuStats::default();
        if let Some(shadow) = &mut self.shadow {
            *shadow = WramShadow::new(self.cfg.wram_size);
        }
    }

    /// DMA transfer MRAM -> WRAM issued by a tasklet: moves the bytes,
    /// charges the tasklet's [`PhaseCost`] and the DPU traffic counters.
    pub fn mram_to_wram(
        &mut self,
        cost: &mut PhaseCost,
        mram_off: usize,
        wram_off: usize,
        len: usize,
    ) -> Result<(), SimError> {
        // The DMA engine requires 8-byte alignment on the WRAM side too.
        if !wram_off.is_multiple_of(8) {
            return Err(SimError::DmaMisaligned { offset: wram_off });
        }
        let dst = self.wram.slice_mut(wram_off, len)?;
        self.mram.dma_read(mram_off, dst)?;
        if let Some(shadow) = &mut self.shadow {
            shadow.host_write(wram_off, len);
        }
        cost.instructions += 1; // the ldma instruction
        cost.dma_cycles += self.cfg.dma_cycles(len);
        self.stats.dma_read_bytes += len as u64;
        self.stats.dma_transfers += 1;
        Ok(())
    }

    /// DMA transfer WRAM -> MRAM issued by a tasklet.
    pub fn wram_to_mram(
        &mut self,
        cost: &mut PhaseCost,
        wram_off: usize,
        mram_off: usize,
        len: usize,
    ) -> Result<(), SimError> {
        if !wram_off.is_multiple_of(8) {
            return Err(SimError::DmaMisaligned { offset: wram_off });
        }
        // Disjoint field borrows: WRAM is the source, MRAM the destination.
        let src = self.wram.slice(wram_off, len)?;
        if let Some(shadow) = &self.shadow {
            shadow.host_read(wram_off, len)?;
        }
        self.mram.dma_write(mram_off, src)?;
        cost.instructions += 1; // the sdma instruction
        cost.dma_cycles += self.cfg.dma_cycles(len);
        self.stats.dma_write_bytes += len as u64;
        self.stats.dma_transfers += 1;
        Ok(())
    }

    /// Record the outcome of an execution whose concurrent pool timelines
    /// are given; elapsed time is the slowest pool (they share the pipeline
    /// but the interleaving is already priced into each timeline via
    /// `active_total`).
    pub fn record_timelines(&mut self, timelines: &[Timeline]) {
        let mut cycles: Cycles = 0;
        for t in timelines {
            cycles = cycles.max(t.cycles);
            self.stats.instructions += t.instructions;
            self.stats.dma_stall_cycles += t.dma_stall_cycles;
            self.stats.phases += t.phases;
        }
        self.stats.cycles = self.stats.cycles.max(cycles);
    }
}

/// Cycle timeline of one tasklet pool: a sequence of barrier-delimited
/// phases (§4.2.3 — the master tasklet synchronizes its pool at
/// anti-diagonal granularity).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timeline {
    /// Elapsed cycles on this timeline.
    pub cycles: Cycles,
    /// Instructions retired by this pool.
    pub instructions: u64,
    /// Cycles spent blocked on DMA.
    pub dma_stall_cycles: Cycles,
    /// Phases executed.
    pub phases: u64,
}

impl Timeline {
    /// Close a phase: every tasklet in `costs` ran concurrently since the
    /// previous barrier; `active_total` is the DPU-wide number of runnable
    /// tasklets (all pools), which sets the issue interval.
    pub fn finish_phase(&mut self, cfg: &DpuConfig, active_total: usize, costs: &mut [PhaseCost]) {
        let dur = phase_cycles(cfg, active_total, costs);
        self.cycles += dur;
        for c in costs.iter_mut() {
            self.instructions += c.instructions;
            self.dma_stall_cycles += c.dma_cycles;
            *c = PhaseCost::default();
        }
        self.phases += 1;
    }

    /// Sequential (single-tasklet, unsynchronized) work such as the
    /// traceback, which the paper notes cannot be parallelized (§4.2.3).
    pub fn sequential(&mut self, cfg: &DpuConfig, active_total: usize, cost: PhaseCost) {
        let mut costs = [cost];
        self.finish_phase(cfg, active_total, &mut costs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpu() -> Dpu {
        Dpu::new(DpuConfig::default())
    }

    #[test]
    fn dma_round_trip_moves_real_bytes_and_charges() {
        let mut d = dpu();
        d.mram.host_write(64, &[7u8; 16]).unwrap();
        let w_off = d.wram.alloc(16, 8).unwrap();
        let mut cost = PhaseCost::default();
        d.mram_to_wram(&mut cost, 64, w_off, 16).unwrap();
        assert_eq!(d.wram.slice(w_off, 16).unwrap(), &[7u8; 16]);
        assert_eq!(cost.instructions, 1);
        assert_eq!(cost.dma_cycles, d.cfg.dma_cycles(16));
        assert_eq!(d.stats.dma_read_bytes, 16);

        // Mutate in WRAM, write back elsewhere in MRAM.
        d.wram.write_u8(w_off, 9).unwrap();
        d.wram_to_mram(&mut cost, w_off, 128, 16).unwrap();
        let back = d.mram.host_read(128, 16).unwrap();
        assert_eq!(back[0], 9);
        assert_eq!(back[1], 7);
        assert_eq!(d.stats.dma_transfers, 2);
    }

    #[test]
    fn dma_errors_propagate() {
        let mut d = dpu();
        let w_off = d.wram.alloc(16, 8).unwrap();
        let mut cost = PhaseCost::default();
        // Misaligned MRAM offset.
        let err = d.mram_to_wram(&mut cost, 3, w_off, 16).unwrap_err();
        assert!(matches!(err, SimError::DmaMisaligned { .. }));
        // WRAM out of bounds (8-aligned so the alignment rule passes).
        let err = d
            .mram_to_wram(&mut cost, 0, d.cfg.wram_size - 8, 16)
            .unwrap_err();
        assert!(matches!(err, SimError::WramOutOfBounds { .. }));
        // Failed transfers charge nothing.
        assert!(cost.is_idle());
    }

    #[test]
    fn wram_side_dma_must_be_8_aligned() {
        let mut d = dpu();
        d.mram.host_write(0, &[1u8; 16]).unwrap();
        let mut cost = PhaseCost::default();
        // Misaligned WRAM destination.
        let err = d.mram_to_wram(&mut cost, 0, 4, 16).unwrap_err();
        assert!(matches!(err, SimError::DmaMisaligned { offset: 4 }));
        // Misaligned WRAM source.
        let err = d.wram_to_mram(&mut cost, 12, 0, 16).unwrap_err();
        assert!(matches!(err, SimError::DmaMisaligned { offset: 12 }));
        assert!(cost.is_idle());
    }

    #[test]
    fn sanitizer_tracks_dma_initialization() {
        let mut d = dpu();
        d.enable_sanitizer();
        d.mram.host_write(0, &[3u8; 16]).unwrap();
        let mut cost = PhaseCost::default();
        // Writing uninitialized WRAM back to MRAM is caught...
        let err = d.wram_to_mram(&mut cost, 0, 128, 16).unwrap_err();
        assert!(matches!(err, SimError::Isa(_)), "{err}");
        // ...but DMA'ing data in first unpoisons the bytes.
        d.mram_to_wram(&mut cost, 0, 0, 16).unwrap();
        d.wram_to_mram(&mut cost, 0, 128, 16).unwrap();
        let shadow = d.shadow.as_ref().unwrap();
        assert!(shadow.is_initialized(0, 16));
        assert_eq!(shadow.stats.bytes_host_initialized, 16);
        // A launch reset re-poisons everything.
        d.reset_for_launch();
        assert!(!d.shadow.as_ref().unwrap().is_initialized(0, 1));
    }

    #[test]
    fn timeline_phases_accumulate() {
        let cfg = DpuConfig::default();
        let mut t = Timeline::default();
        let mut costs = vec![
            PhaseCost {
                instructions: 100,
                dma_cycles: 0
            };
            4
        ];
        t.finish_phase(&cfg, 24, &mut costs);
        assert_eq!(t.cycles, 2400);
        assert_eq!(t.instructions, 400);
        assert_eq!(t.phases, 1);
        // Costs are reset by the barrier.
        assert!(costs.iter().all(|c| c.is_idle()));
        t.sequential(
            &cfg,
            24,
            PhaseCost {
                instructions: 10,
                dma_cycles: 5,
            },
        );
        assert_eq!(t.phases, 2);
        assert_eq!(t.cycles, 2400 + 10 * 24 + 5);
    }

    #[test]
    fn record_timelines_takes_the_slowest_pool() {
        let mut d = dpu();
        let t1 = Timeline {
            cycles: 1000,
            instructions: 500,
            ..Default::default()
        };
        let t2 = Timeline {
            cycles: 1500,
            instructions: 700,
            ..Default::default()
        };
        d.record_timelines(&[t1, t2]);
        assert_eq!(d.stats.cycles, 1500);
        assert_eq!(d.stats.instructions, 1200);
    }

    #[test]
    fn reset_for_launch_keeps_mram() {
        let mut d = dpu();
        d.mram.host_write(0, &[5u8; 8]).unwrap();
        d.wram.alloc(100, 1).unwrap();
        d.stats.cycles = 42;
        d.reset_for_launch();
        assert_eq!(d.stats.cycles, 0);
        assert_eq!(d.wram.allocated(), 0);
        assert_eq!(d.mram.host_read(0, 8).unwrap(), vec![5u8; 8]);
    }
}
