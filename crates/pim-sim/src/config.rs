//! Hardware configuration: the numbers come straight from §2.1 and §5 of the
//! paper and from UPMEM's published documentation.

use crate::fault::FaultPlan;

/// Per-DPU architectural parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpuConfig {
    /// Scratchpad size in bytes (64 KB on UPMEM v1.4).
    pub wram_size: usize,
    /// DRAM bank size in bytes (64 MB).
    pub mram_size: usize,
    /// DPU clock (the paper's server runs at 350 MHz).
    pub freq_hz: f64,
    /// Pipeline re-entry restriction: a tasklet can issue one instruction
    /// every `reentry_cycles` cycles, so at least this many tasklets are
    /// needed for peak throughput (11 on UPMEM).
    pub reentry_cycles: u32,
    /// Maximum hardware tasklets per DPU (24).
    pub max_tasklets: usize,
    /// DMA engine throughput in bytes per cycle (2 B/cycle).
    pub dma_bytes_per_cycle: u32,
    /// Fixed DMA setup cost in cycles per transfer.
    pub dma_setup_cycles: u32,
    /// Per-launch cycle budget the rank watchdog enforces: a DPU whose
    /// kernel retires more cycles than this in a single launch is treated
    /// as hung and reported via [`crate::SimError::WatchdogExpired`] with
    /// its partial stats preserved. `0` disables the watchdog (the
    /// hardware default — real DPUs have no such limit, the host deadline
    /// is the only backstop). Hosts derive the budget from the kernels'
    /// symbolic WCET bounds (`dpu_kernel::cost::wcet_watchdog_cycles`)
    /// rather than guessing a constant — see DESIGN.md §7g.
    pub watchdog_cycles: u64,
}

impl Default for DpuConfig {
    fn default() -> Self {
        Self {
            wram_size: 64 * 1024,
            mram_size: 64 * 1024 * 1024,
            freq_hz: 350.0e6,
            reentry_cycles: 11,
            max_tasklets: 24,
            dma_bytes_per_cycle: 2,
            dma_setup_cycles: 24,
            watchdog_cycles: 0,
        }
    }
}

impl DpuConfig {
    /// Cycles a DMA transfer of `len` bytes blocks its issuing tasklet.
    pub fn dma_cycles(&self, len: usize) -> u64 {
        self.dma_setup_cycles as u64 + (len as u64).div_ceil(self.dma_bytes_per_cycle as u64)
    }
}

/// Server-level topology and host-link parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Number of PiM ranks (each UPMEM DIMM has 2; the paper's server has 20
    /// DIMMs = 40 ranks, evaluated at 10/20/40).
    pub ranks: usize,
    /// DPUs per rank (64).
    pub dpus_per_rank: usize,
    /// Per-DPU configuration.
    pub dpu: DpuConfig,
    /// Aggregate host->PiM transfer bandwidth in bytes/second (the measured
    /// 60 GB/s peak of §4.1.1).
    pub host_bandwidth: f64,
    /// Fault-injection schedule. The default injects nothing.
    pub fault: FaultPlan,
}

impl Default for ServerConfig {
    /// The paper's full server: 20 DIMMs = 40 ranks = 2560 DPUs.
    fn default() -> Self {
        Self {
            ranks: 40,
            dpus_per_rank: 64,
            dpu: DpuConfig::default(),
            host_bandwidth: 60.0e9,
            fault: FaultPlan::default(),
        }
    }
}

impl ServerConfig {
    /// A server with the given number of ranks and default everything else.
    pub fn with_ranks(ranks: usize) -> Self {
        Self {
            ranks,
            ..Self::default()
        }
    }

    /// Total DPU count.
    pub fn total_dpus(&self) -> usize {
        self.ranks * self.dpus_per_rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = DpuConfig::default();
        assert_eq!(c.wram_size, 65536);
        assert_eq!(c.mram_size, 64 << 20);
        assert_eq!(c.freq_hz, 350.0e6);
        assert_eq!(c.reentry_cycles, 11);
        assert_eq!(c.max_tasklets, 24);
        assert_eq!(c.watchdog_cycles, 0, "watchdog is opt-in");
        let s = ServerConfig::default();
        assert_eq!(s.total_dpus(), 2560);
    }

    #[test]
    fn dma_cycles_scale_with_length() {
        let c = DpuConfig::default();
        let base = c.dma_setup_cycles as u64;
        assert_eq!(c.dma_cycles(8), base + 4);
        assert_eq!(c.dma_cycles(2048), base + 1024);
        // Larger transfers amortize the setup: 1 transfer of 2048 is cheaper
        // than 256 transfers of 8 (the paper's "prefer large transfers").
        assert!(c.dma_cycles(2048) < 256 * c.dma_cycles(8));
    }

    #[test]
    fn with_ranks_scales_topology() {
        assert_eq!(ServerConfig::with_ranks(10).total_dpus(), 640);
        assert_eq!(ServerConfig::with_ranks(20).total_dpus(), 1280);
    }
}
