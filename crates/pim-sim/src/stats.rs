//! Execution counters: instructions, cycles, DMA traffic, and the pipeline
//! utilization figure the paper reports (95–99 % at P=6, T=4).

use crate::Cycles;

/// Per-DPU statistics accumulated across one kernel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpuStats {
    /// Instructions retired (across all tasklets).
    pub instructions: u64,
    /// Total elapsed DPU cycles.
    pub cycles: Cycles,
    /// Bytes moved MRAM->WRAM.
    pub dma_read_bytes: u64,
    /// Bytes moved WRAM->MRAM.
    pub dma_write_bytes: u64,
    /// Cycles tasklets spent blocked on DMA.
    pub dma_stall_cycles: Cycles,
    /// Number of DMA transfers issued.
    pub dma_transfers: u64,
    /// Number of barrier-delimited phases executed.
    pub phases: u64,
}

impl DpuStats {
    /// Pipeline utilization: retired instructions per elapsed cycle, in
    /// `[0, 1]`. The paper reports 95–99 % for the chosen P×T.
    pub fn pipeline_utilization(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        (self.instructions as f64 / self.cycles as f64).min(1.0)
    }

    /// Fraction of time attributable to MRAM transfers (the paper: 1–5 %).
    pub fn dma_impact(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.dma_stall_cycles as f64 / self.cycles as f64
    }

    /// Merge counters from another execution (e.g. several kernel launches
    /// on the same DPU).
    pub fn merge(&mut self, other: &DpuStats) {
        self.instructions += other.instructions;
        self.cycles += other.cycles;
        self.dma_read_bytes += other.dma_read_bytes;
        self.dma_write_bytes += other.dma_write_bytes;
        self.dma_stall_cycles += other.dma_stall_cycles;
        self.dma_transfers += other.dma_transfers;
        self.phases += other.phases;
    }
}

/// Counters maintained by the runtime sanitizer ([`crate::sanitizer`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SanitizerStats {
    /// WRAM bytes whose initialization was checked on loads.
    pub bytes_read_checked: u64,
    /// WRAM bytes marked initialized by stores.
    pub bytes_written: u64,
    /// Bytes first initialized by host/DMA transfers.
    pub bytes_host_initialized: u64,
    /// Barriers observed (ownership resets).
    pub barriers: u64,
}

impl SanitizerStats {
    /// Merge counters from another shadow (e.g. several tasklet runs).
    pub fn merge(&mut self, other: &SanitizerStats) {
        self.bytes_read_checked += other.bytes_read_checked;
        self.bytes_written += other.bytes_written;
        self.bytes_host_initialized += other.bytes_host_initialized;
        self.barriers += other.barriers;
    }
}

/// Aggregate over many DPUs (a rank or the whole server).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AggregateStats {
    /// Sum of all per-DPU counters.
    pub total: DpuStats,
    /// Max cycles over DPUs — the rank barrier waits for this one (§4.1.2).
    pub max_cycles: Cycles,
    /// Min cycles over DPUs — the balance gap `max - min` is what the LPT
    /// heuristic minimizes.
    pub min_cycles: Cycles,
    /// Number of DPUs aggregated.
    pub dpus: usize,
    /// DPUs whose launch tripped the cycle-budget watchdog (runaway
    /// kernels / injected livelocks). Their partial cycles are *not* part
    /// of `total` — they produced no results — but are preserved in
    /// `runaway_cycles` so wasted work stays visible.
    pub watchdog_expired: u64,
    /// Cycles burned by watchdog-expired DPUs before they were reaped.
    pub runaway_cycles: Cycles,
}

impl AggregateStats {
    /// Fold one DPU's stats in.
    pub fn add(&mut self, s: &DpuStats) {
        if self.dpus == 0 {
            self.min_cycles = s.cycles;
            self.max_cycles = s.cycles;
        } else {
            self.min_cycles = self.min_cycles.min(s.cycles);
            self.max_cycles = self.max_cycles.max(s.cycles);
        }
        self.total.merge(s);
        self.dpus += 1;
    }

    /// Load imbalance: `(max - min) / max`, 0 when perfectly balanced.
    /// The paper reports ~5 % for the 16S static split.
    pub fn imbalance(&self) -> f64 {
        if self.max_cycles == 0 {
            return 0.0;
        }
        (self.max_cycles - self.min_cycles) as f64 / self.max_cycles as f64
    }

    /// Mean cycles per DPU.
    pub fn mean_cycles(&self) -> f64 {
        if self.dpus == 0 {
            return 0.0;
        }
        self.total.cycles as f64 / self.dpus as f64
    }

    /// Note a DPU reaped by the watchdog after `cycles` of runaway work.
    pub fn add_watchdog_expired(&mut self, cycles: Cycles) {
        self.watchdog_expired += 1;
        self.runaway_cycles += cycles;
    }

    /// Fold a whole aggregate in (merging two runs' worth of launches):
    /// totals add, the min/max envelope widens, watchdog accounting adds.
    pub fn absorb(&mut self, other: &AggregateStats) {
        if other.dpus == 0 {
            self.watchdog_expired += other.watchdog_expired;
            self.runaway_cycles += other.runaway_cycles;
            return;
        }
        if self.dpus == 0 {
            let (we, rc) = (self.watchdog_expired, self.runaway_cycles);
            *self = *other;
            self.watchdog_expired += we;
            self.runaway_cycles += rc;
            return;
        }
        self.total.merge(&other.total);
        self.min_cycles = self.min_cycles.min(other.min_cycles);
        self.max_cycles = self.max_cycles.max(other.max_cycles);
        self.dpus += other.dpus;
        self.watchdog_expired += other.watchdog_expired;
        self.runaway_cycles += other.runaway_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_bounds() {
        let mut s = DpuStats::default();
        assert_eq!(s.pipeline_utilization(), 0.0);
        s.instructions = 95;
        s.cycles = 100;
        assert!((s.pipeline_utilization() - 0.95).abs() < 1e-12);
        s.instructions = 150; // cannot exceed 1 IPC
        assert_eq!(s.pipeline_utilization(), 1.0);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = DpuStats {
            instructions: 10,
            cycles: 20,
            ..Default::default()
        };
        let b = DpuStats {
            instructions: 5,
            cycles: 7,
            dma_transfers: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.instructions, 15);
        assert_eq!(a.cycles, 27);
        assert_eq!(a.dma_transfers, 2);
    }

    #[test]
    fn aggregate_tracks_extremes() {
        let mut agg = AggregateStats::default();
        for c in [100u64, 80, 120, 95] {
            agg.add(&DpuStats {
                cycles: c,
                ..Default::default()
            });
        }
        assert_eq!(agg.dpus, 4);
        assert_eq!(agg.max_cycles, 120);
        assert_eq!(agg.min_cycles, 80);
        assert!((agg.imbalance() - (40.0 / 120.0)).abs() < 1e-12);
        assert!((agg.mean_cycles() - 98.75).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_is_sane() {
        let agg = AggregateStats::default();
        assert_eq!(agg.imbalance(), 0.0);
        assert_eq!(agg.mean_cycles(), 0.0);
        assert_eq!(agg.watchdog_expired, 0);
    }

    #[test]
    fn watchdog_expiries_accumulate_outside_total() {
        let mut agg = AggregateStats::default();
        agg.add(&DpuStats {
            cycles: 100,
            ..Default::default()
        });
        agg.add_watchdog_expired(5000);
        agg.add_watchdog_expired(7000);
        assert_eq!(agg.watchdog_expired, 2);
        assert_eq!(agg.runaway_cycles, 12_000);
        assert_eq!(agg.total.cycles, 100, "runaway work is not useful work");
        assert_eq!(agg.dpus, 1);
    }

    #[test]
    fn dma_impact_ratio() {
        let s = DpuStats {
            cycles: 1000,
            dma_stall_cycles: 30,
            ..Default::default()
        };
        assert!((s.dma_impact() - 0.03).abs() < 1e-12);
    }
}
