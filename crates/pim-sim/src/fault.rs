//! Deterministic, seedable fault injection.
//!
//! Real UPMEM DIMMs ship with faulty DPUs masked out at boot, and the SDK
//! surfaces per-DPU faults at launch time; frameworks that target the real
//! hardware (Diab et al., arXiv:2208.01243) must detect and route around
//! them. This module lets the simulator reproduce that world on demand:
//!
//! * **Boot-disabled DPUs** — listed DPUs never come up; host access raises
//!   [`crate::SimError::DpuFaulted`].
//! * **Launch faults** — each enabled DPU faults with probability
//!   `dpu_fault_rate` per launch; faulted DPUs run nothing and are reported
//!   in [`crate::rank::RankRun::faulted`].
//! * **Dead ranks** — listed ranks fail every launch with
//!   [`crate::SimError::RankFailed`] (a whole-DIMM/channel failure).
//! * **Result corruption** — with probability `corrupt_rate` per DPU per
//!   launch, the DPU's MRAM readback path is armed to flip one bit per
//!   host read until the next host write (see [`crate::Mram`]).
//! * **Stragglers** — listed ranks release their barrier `slowdown`×
//!   later than the slowest DPU (thermal throttling / refresh contention);
//!   timing-only, never correctness.
//! * **Hangs** — with probability `hang_rate` per DPU per launch, the DPU's
//!   kernel livelocks and never returns. With a watchdog budget configured
//!   ([`crate::DpuConfig::watchdog_cycles`]) the spin is simulated
//!   instantly (the DPU burns exactly the budget, then trips
//!   [`crate::SimError::WatchdogExpired`]); without one the rank worker
//!   really spins on the host clock until cooperatively cancelled —
//!   exercising the host's wall-clock deadline.
//! * **Silent result corruption** — with probability `silent_corrupt_rate`
//!   per DPU per launch, one result record is mutated *and its checksum
//!   recomputed*, so the readback integrity check passes. Only an
//!   end-to-end audit (CIGAR validation + score recomputation) catches it.
//!
//! Every decision is a pure function of `(seed, rank, dpu, launch#)`, so a
//! fault schedule replays identically regardless of host thread
//! interleaving — which is what makes the recovery layer testable.

/// splitmix64: the statelessly-seedable mixer behind every fault decision.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A uniform draw in `[0, 1)` from a mixed key.
fn unit(key: u64) -> f64 {
    (mix64(key) >> 11) as f64 / (1u64 << 53) as f64
}

/// A full fault schedule for a server. [`FaultPlan::default`] injects
/// nothing and adds zero overhead anywhere.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision.
    pub seed: u64,
    /// `(rank, dpu)` pairs disabled at boot (masked-out DPUs).
    pub disabled_dpus: Vec<(usize, usize)>,
    /// Ranks whose every launch fails (dead DIMM half).
    pub dead_ranks: Vec<usize>,
    /// Per-launch, per-DPU probability of a launch fault.
    pub dpu_fault_rate: f64,
    /// Per-launch, per-DPU probability of armed readback corruption.
    pub corrupt_rate: f64,
    /// Ranks that straggle: their barrier releases `straggler_slowdown`×
    /// late.
    pub straggler_ranks: Vec<usize>,
    /// Slowdown factor for straggler ranks (≥ 1.0; 1.0 = no effect).
    pub straggler_slowdown: f64,
    /// Host-side wall-clock hold (milliseconds) a straggler rank adds to
    /// every *odd-numbered* launch — an intermittent stall (DRAM refresh
    /// storm / thermal throttle) the host actually waits out, unlike
    /// `straggler_slowdown` which only scales the *simulated* barrier.
    /// Timing-only, never correctness; 0.0 = no effect. This is what makes
    /// the global round barrier's cost observable in host wall-clock: a
    /// lockstep dispatcher idles every other rank for the hold, a pipelined
    /// one keeps feeding them.
    pub straggler_hold_ms: f64,
    /// Per-launch, per-DPU probability of a tasklet livelock: the kernel
    /// never terminates on its own and must be reaped by the watchdog (or
    /// the host deadline when no watchdog budget is configured).
    pub hang_rate: f64,
    /// Per-launch, per-DPU probability of silent result corruption: one
    /// result record is mutated with its checksum recomputed, defeating
    /// the readback integrity check.
    pub silent_corrupt_rate: f64,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.disabled_dpus.is_empty()
            && self.dead_ranks.is_empty()
            && self.dpu_fault_rate == 0.0
            && self.corrupt_rate == 0.0
            && self.hang_rate == 0.0
            && self.silent_corrupt_rate == 0.0
            && (self.straggler_ranks.is_empty()
                || (self.straggler_slowdown <= 1.0 && self.straggler_hold_ms <= 0.0))
    }

    /// A pseudo-random chaos plan: `disabled` DPUs masked out, one dead
    /// rank when the server has more than one, and the given fault, corrupt,
    /// hang and silent-corrupt rates — everything derived from `seed`.
    #[allow(clippy::too_many_arguments)]
    pub fn chaos(
        seed: u64,
        ranks: usize,
        dpus_per_rank: usize,
        disabled: usize,
        dpu_fault_rate: f64,
        corrupt_rate: f64,
        hang_rate: f64,
        silent_corrupt_rate: f64,
    ) -> Self {
        let mut disabled_dpus = Vec::new();
        let mut k = 0u64;
        while disabled_dpus.len() < disabled.min(ranks * dpus_per_rank / 2) {
            let r = (mix64(seed ^ 0xD15A ^ k) as usize) % ranks.max(1);
            let d = (mix64(seed ^ 0xB1ED ^ k) as usize) % dpus_per_rank.max(1);
            if !disabled_dpus.contains(&(r, d)) {
                disabled_dpus.push((r, d));
            }
            k += 1;
        }
        let dead_ranks = if ranks > 1 {
            vec![(mix64(seed ^ 0xDEAD) as usize) % ranks]
        } else {
            Vec::new()
        };
        let straggler_ranks = if ranks > 1 {
            vec![(mix64(seed ^ 0x510) as usize) % ranks]
        } else {
            Vec::new()
        };
        Self {
            seed,
            disabled_dpus,
            dead_ranks,
            dpu_fault_rate,
            corrupt_rate,
            straggler_ranks,
            straggler_slowdown: 2.5,
            straggler_hold_ms: 0.0,
            hang_rate,
            silent_corrupt_rate,
        }
    }

    /// Slice the plan down to one rank's runtime state.
    pub fn rank_state(&self, rank: usize, dpus: usize) -> RankFaultState {
        let mut disabled = vec![false; dpus];
        for &(r, d) in &self.disabled_dpus {
            if r == rank && d < dpus {
                disabled[d] = true;
            }
        }
        RankFaultState {
            rank,
            seed: self.seed,
            disabled,
            dead: self.dead_ranks.contains(&rank),
            dpu_fault_rate: self.dpu_fault_rate,
            corrupt_rate: self.corrupt_rate,
            slowdown: if self.straggler_ranks.contains(&rank) {
                self.straggler_slowdown.max(1.0)
            } else {
                1.0
            },
            hold_ms: if self.straggler_ranks.contains(&rank) {
                self.straggler_hold_ms.max(0.0)
            } else {
                0.0
            },
            hang_rate: self.hang_rate,
            silent_corrupt_rate: self.silent_corrupt_rate,
            launches: 0,
        }
    }
}

/// One rank's view of the fault plan plus its launch counter.
#[derive(Debug, Clone)]
pub struct RankFaultState {
    /// This rank's index in the server.
    pub rank: usize,
    seed: u64,
    disabled: Vec<bool>,
    dead: bool,
    dpu_fault_rate: f64,
    corrupt_rate: f64,
    slowdown: f64,
    hold_ms: f64,
    hang_rate: f64,
    silent_corrupt_rate: f64,
    launches: u64,
}

impl RankFaultState {
    /// A fully healthy rank (what [`crate::Rank::new`] uses).
    pub fn healthy(rank: usize, dpus: usize) -> Self {
        FaultPlan::default().rank_state(rank, dpus)
    }

    /// True when any probabilistic injection can trigger on this rank.
    pub fn active(&self) -> bool {
        self.dpu_fault_rate > 0.0
            || self.corrupt_rate > 0.0
            || self.hang_rate > 0.0
            || self.silent_corrupt_rate > 0.0
    }

    /// True when the whole rank is dead.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Straggler slowdown factor (1.0 = healthy).
    pub fn slowdown(&self) -> f64 {
        self.slowdown
    }

    /// Host wall-clock seconds the *current* launch holds the rank busy
    /// before releasing. Intermittent by design — only odd-numbered
    /// launches (the 1st, 3rd, ...) stall, so the straggler alternates
    /// between slow and healthy launches. Deterministic in the launch
    /// counter, hence identical across dispatch engines that issue the
    /// same per-rank launch sequence.
    pub fn hold_seconds(&self) -> f64 {
        if self.hold_ms > 0.0 && self.launches % 2 == 1 {
            self.hold_ms / 1e3
        } else {
            0.0
        }
    }

    /// True when `dpu` was masked out at boot.
    pub fn is_disabled(&self, dpu: usize) -> bool {
        self.disabled.get(dpu).copied().unwrap_or(false)
    }

    /// Advance the launch counter (called once per [`crate::Rank::launch`]).
    pub fn next_launch(&mut self) {
        self.launches += 1;
    }

    fn key(&self, dpu: usize, what: u64) -> u64 {
        self.seed ^ mix64(what ^ (self.rank as u64) << 32 ^ (dpu as u64) << 16 ^ self.launches)
    }

    /// Does `dpu` fault on the current launch?
    pub fn launch_fault(&self, dpu: usize) -> bool {
        self.dpu_fault_rate > 0.0 && unit(self.key(dpu, 0xFA17)) < self.dpu_fault_rate
    }

    /// Is `dpu`'s readback corrupted on the current launch? Returns the
    /// corruption seed to arm the MRAM with.
    pub fn corruption(&self, dpu: usize) -> Option<u64> {
        let key = self.key(dpu, 0xC0BB);
        (self.corrupt_rate > 0.0 && unit(key) < self.corrupt_rate).then(|| mix64(key))
    }

    /// Does `dpu`'s kernel livelock on the current launch?
    pub fn hang_fault(&self, dpu: usize) -> bool {
        self.hang_rate > 0.0 && unit(self.key(dpu, 0x4A46)) < self.hang_rate
    }

    /// Is one of `dpu`'s result records silently corrupted on the current
    /// launch? Returns the mutation seed the host-side fault applicator
    /// uses to pick the record and the perturbation (the mutation itself
    /// needs the result layout, which lives above the simulator).
    pub fn silent_corruption(&self, dpu: usize) -> Option<u64> {
        let key = self.key(dpu, 0x51C0);
        (self.silent_corrupt_rate > 0.0 && unit(key) < self.silent_corrupt_rate).then(|| mix64(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty() {
        assert!(FaultPlan::default().is_empty());
        let plan = FaultPlan {
            dpu_fault_rate: 0.1,
            ..Default::default()
        };
        assert!(!plan.is_empty());
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan {
            seed: 7,
            dpu_fault_rate: 0.5,
            corrupt_rate: 0.5,
            ..Default::default()
        };
        let a = plan.rank_state(1, 8);
        let b = plan.rank_state(1, 8);
        for d in 0..8 {
            assert_eq!(a.launch_fault(d), b.launch_fault(d));
            assert_eq!(a.corruption(d), b.corruption(d));
        }
    }

    #[test]
    fn launch_counter_changes_the_draw() {
        let plan = FaultPlan {
            seed: 3,
            dpu_fault_rate: 0.5,
            ..Default::default()
        };
        let mut s = plan.rank_state(0, 64);
        let first: Vec<bool> = (0..64).map(|d| s.launch_fault(d)).collect();
        s.next_launch();
        let second: Vec<bool> = (0..64).map(|d| s.launch_fault(d)).collect();
        assert_ne!(first, second, "fault pattern must vary across launches");
    }

    #[test]
    fn fault_rate_is_roughly_honored() {
        let plan = FaultPlan {
            seed: 11,
            dpu_fault_rate: 0.25,
            ..Default::default()
        };
        let mut s = plan.rank_state(0, 64);
        let mut hits = 0usize;
        let mut total = 0usize;
        for _ in 0..64 {
            s.next_launch();
            for d in 0..64 {
                total += 1;
                hits += usize::from(s.launch_fault(d));
            }
        }
        let rate = hits as f64 / total as f64;
        assert!((0.2..0.3).contains(&rate), "measured rate {rate}");
    }

    #[test]
    fn disabled_and_dead_are_per_rank() {
        let plan = FaultPlan {
            disabled_dpus: vec![(0, 2), (1, 5)],
            dead_ranks: vec![1],
            straggler_ranks: vec![0],
            straggler_slowdown: 3.0,
            ..Default::default()
        };
        let r0 = plan.rank_state(0, 8);
        let r1 = plan.rank_state(1, 8);
        assert!(r0.is_disabled(2) && !r0.is_disabled(5));
        assert!(r1.is_disabled(5) && !r1.is_disabled(2));
        assert!(!r0.is_dead() && r1.is_dead());
        assert_eq!(r0.slowdown(), 3.0);
        assert_eq!(r1.slowdown(), 1.0);
    }

    #[test]
    fn straggler_hold_is_intermittent_and_per_rank() {
        let plan = FaultPlan {
            straggler_ranks: vec![1],
            straggler_hold_ms: 20.0,
            ..Default::default()
        };
        assert!(!plan.is_empty(), "a hold-only straggler is a real fault");
        let mut s = plan.rank_state(1, 4);
        let mut healthy = plan.rank_state(0, 4);
        // Launch counter parity: odd launches hold, even ones don't.
        let mut pattern = Vec::new();
        for _ in 0..4 {
            s.next_launch();
            healthy.next_launch();
            pattern.push(s.hold_seconds() > 0.0);
            assert_eq!(healthy.hold_seconds(), 0.0, "non-straggler never holds");
        }
        assert_eq!(pattern, vec![true, false, true, false]);
        assert!((plan.rank_state(1, 4).hold_seconds() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn chaos_plan_is_seeded_and_bounded() {
        let a = FaultPlan::chaos(42, 4, 8, 3, 0.1, 0.1, 0.05, 0.05);
        let b = FaultPlan::chaos(42, 4, 8, 3, 0.1, 0.1, 0.05, 0.05);
        assert_eq!(a, b);
        assert_eq!(a.disabled_dpus.len(), 3);
        assert_eq!(a.dead_ranks.len(), 1);
        assert!(a.dead_ranks[0] < 4);
        assert_eq!(a.hang_rate, 0.05);
        assert_eq!(a.silent_corrupt_rate, 0.05);
        let single = FaultPlan::chaos(42, 1, 4, 1, 0.1, 0.0, 0.0, 0.0);
        assert!(single.dead_ranks.is_empty(), "never kill the only rank");
    }

    #[test]
    fn hang_and_silent_corruption_plans_are_real_faults() {
        let hangs = FaultPlan {
            hang_rate: 0.1,
            ..Default::default()
        };
        assert!(!hangs.is_empty());
        let silent = FaultPlan {
            silent_corrupt_rate: 0.1,
            ..Default::default()
        };
        assert!(!silent.is_empty());
        assert!(hangs.rank_state(0, 4).active());
        assert!(silent.rank_state(0, 4).active());
    }

    #[test]
    fn hang_and_silent_draws_are_deterministic_and_independent() {
        let plan = FaultPlan {
            seed: 21,
            hang_rate: 0.5,
            silent_corrupt_rate: 0.5,
            ..Default::default()
        };
        let a = plan.rank_state(2, 16);
        let b = plan.rank_state(2, 16);
        let mut hangs = 0usize;
        let mut silents = 0usize;
        for d in 0..16 {
            assert_eq!(a.hang_fault(d), b.hang_fault(d));
            assert_eq!(a.silent_corruption(d), b.silent_corruption(d));
            hangs += usize::from(a.hang_fault(d));
            silents += usize::from(a.silent_corruption(d).is_some());
        }
        assert!(hangs > 0 && hangs < 16, "rate 0.5 draws must be mixed");
        assert!(silents > 0 && silents < 16);
        // Independent tags: the hang pattern is not the silent pattern.
        let hang_pattern: Vec<bool> = (0..16).map(|d| a.hang_fault(d)).collect();
        let silent_pattern: Vec<bool> = (0..16).map(|d| a.silent_corruption(d).is_some()).collect();
        assert_ne!(hang_pattern, silent_pattern);
    }
}
