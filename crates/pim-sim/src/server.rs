//! The PiM server: a set of ranks plus the host link (Figure 2).
//!
//! The host CPU reaches the DPUs' MRAM directly over the DDR bus while DPUs
//! are idle; the UPMEM SDK parallelizes transfers across ranks and the paper
//! measures ~60 GB/s aggregate (§4.1.1). Transfers cannot be pipelined with
//! DPU execution (§2.1 — exclusive MRAM access), which is why the 2-bit
//! encoding matters: it divides the volume by 4.

use crate::config::ServerConfig;
use crate::error::SimError;
use crate::rank::Rank;

/// The full PiM server.
#[derive(Debug)]
pub struct PimServer {
    cfg: ServerConfig,
    ranks: Vec<Rank>,
}

impl PimServer {
    /// Build a server from a configuration, slicing its fault plan (if any)
    /// into per-rank state.
    pub fn new(cfg: ServerConfig) -> Self {
        let ranks = (0..cfg.ranks)
            .map(|r| {
                Rank::with_faults(
                    cfg.dpu,
                    cfg.dpus_per_rank,
                    cfg.fault.rank_state(r, cfg.dpus_per_rank),
                )
            })
            .collect();
        Self { cfg, ranks }
    }

    /// The paper's 40-rank server.
    pub fn paper_server() -> Self {
        Self::new(ServerConfig::default())
    }

    /// Configuration in use.
    pub fn cfg(&self) -> &ServerConfig {
        &self.cfg
    }

    /// Number of ranks.
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Access a rank.
    pub fn rank(&self, idx: usize) -> Result<&Rank, SimError> {
        self.ranks.get(idx).ok_or(SimError::BadTopology {
            what: "rank",
            index: idx,
            max: self.ranks.len(),
        })
    }

    /// Mutable access to a rank.
    pub fn rank_mut(&mut self, idx: usize) -> Result<&mut Rank, SimError> {
        let max = self.ranks.len();
        self.ranks.get_mut(idx).ok_or(SimError::BadTopology {
            what: "rank",
            index: idx,
            max,
        })
    }

    /// Split into mutable rank references (for the host's per-rank worker
    /// threads — ranks are independent once data is loaded).
    pub fn ranks_mut(&mut self) -> &mut [Rank] {
        &mut self.ranks
    }

    /// Set the per-launch cycle-budget watchdog on every DPU of every rank
    /// (0 disables). The recovery ladder uses this to retry suspected
    /// livelocks with a doubled budget before quarantining anything.
    pub fn set_watchdog_cycles(&mut self, cycles: u64) {
        self.cfg.dpu.watchdog_cycles = cycles;
        for rank in &mut self.ranks {
            rank.set_watchdog_cycles(cycles);
        }
    }

    /// Time to move `bytes` across the host<->PiM link at the aggregate
    /// bandwidth. The SDK fans transfers out over rank-parallel threads;
    /// the aggregate is what the paper measures, so we model the pool, not
    /// per-rank links.
    pub fn transfer_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / self.cfg.host_bandwidth
    }

    /// Seconds for `cycles` DPU cycles at the configured frequency.
    pub fn dpu_seconds(&self, cycles: u64) -> f64 {
        crate::cycles_to_seconds(cycles, self.cfg.dpu.freq_hz)
    }

    /// Broadcast the same bytes to one MRAM offset of *every* DPU — the 16S
    /// mode (§5.3): the dataset fits in a single MRAM so it is broadcast
    /// once, and each DPU computes a different subset of alignments.
    pub fn broadcast_to_mram(&mut self, offset: usize, bytes: &[u8]) -> Result<(), SimError> {
        for rank in &mut self.ranks {
            for d in 0..rank.len() {
                // Boot-disabled DPUs simply don't receive the broadcast —
                // the SDK masks them out of the transfer set.
                if !rank.dpu_enabled(d) {
                    continue;
                }
                rank.dpu_mut(d)?.mram.host_write(offset, bytes)?;
            }
        }
        Ok(())
    }

    /// Topology description used by the `repro fig2` command.
    pub fn topology(&self) -> Topology {
        Topology {
            ranks: self.ranks.len(),
            dpus_per_rank: self.cfg.dpus_per_rank,
            total_dpus: self.ranks.len() * self.cfg.dpus_per_rank,
            mram_per_dpu: self.cfg.dpu.mram_size,
            wram_per_dpu: self.cfg.dpu.wram_size,
            freq_hz: self.cfg.dpu.freq_hz,
            aggregate_mram_bandwidth: self.aggregate_mram_bandwidth(),
        }
    }

    /// Cumulative DPU<->MRAM bandwidth: 2 B/cycle per DPU at `freq`. The
    /// paper quotes ~2 TB/s for 2560 DPUs.
    pub fn aggregate_mram_bandwidth(&self) -> f64 {
        let dpus = (self.ranks.len() * self.cfg.dpus_per_rank) as f64;
        dpus * self.cfg.dpu.dma_bytes_per_cycle as f64 * self.cfg.dpu.freq_hz
    }
}

/// Server topology summary (Figure 2 as data).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Topology {
    /// Number of ranks.
    pub ranks: usize,
    /// DPUs per rank.
    pub dpus_per_rank: usize,
    /// Total DPUs.
    pub total_dpus: usize,
    /// MRAM bytes per DPU.
    pub mram_per_dpu: usize,
    /// WRAM bytes per DPU.
    pub wram_per_dpu: usize,
    /// DPU frequency.
    pub freq_hz: f64,
    /// Cumulative DPU-side memory bandwidth (B/s).
    pub aggregate_mram_bandwidth: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_server_topology() {
        let s = PimServer::paper_server();
        let t = s.topology();
        assert_eq!(t.ranks, 40);
        assert_eq!(t.total_dpus, 2560);
        assert_eq!(t.mram_per_dpu, 64 << 20);
        // ~1.8 TB/s at 350 MHz x 2 B/cycle x 2560 DPUs ("2TB/s" in the paper).
        assert!(t.aggregate_mram_bandwidth > 1.5e12);
        assert!(t.aggregate_mram_bandwidth < 2.5e12);
    }

    #[test]
    fn transfer_time_matches_bandwidth() {
        let s = PimServer::new(ServerConfig::with_ranks(2));
        let secs = s.transfer_seconds(60_000_000_000);
        assert!((secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn broadcast_reaches_every_dpu() {
        let mut cfg = ServerConfig::with_ranks(2);
        cfg.dpus_per_rank = 3;
        let mut s = PimServer::new(cfg);
        s.broadcast_to_mram(16, &[1, 2, 3, 4]).unwrap();
        for r in 0..2 {
            for d in 0..3 {
                let bytes = s
                    .rank(r)
                    .unwrap()
                    .dpu(d)
                    .unwrap()
                    .mram
                    .host_read(16, 4)
                    .unwrap();
                assert_eq!(bytes, vec![1, 2, 3, 4]);
            }
        }
    }

    #[test]
    fn watchdog_budget_propagates_to_every_dpu() {
        let mut cfg = ServerConfig::with_ranks(2);
        cfg.dpus_per_rank = 3;
        let mut s = PimServer::new(cfg);
        s.set_watchdog_cycles(4096);
        assert_eq!(s.cfg().dpu.watchdog_cycles, 4096);
        for r in 0..2 {
            for d in 0..3 {
                assert_eq!(s.rank(r).unwrap().dpu(d).unwrap().cfg.watchdog_cycles, 4096);
            }
        }
        s.set_watchdog_cycles(0);
        assert_eq!(s.rank(1).unwrap().dpu(0).unwrap().cfg.watchdog_cycles, 0);
    }

    #[test]
    fn rank_bounds_checked() {
        let mut s = PimServer::new(ServerConfig::with_ranks(1));
        assert!(s.rank(0).is_ok());
        assert!(s.rank(1).is_err());
        assert!(s.rank_mut(1).is_err());
    }
}
