//! Simulator error type: every rule the real hardware or SDK enforces that a
//! kernel could violate is surfaced as a typed error, never a silent clamp.

use std::fmt;

/// Errors raised by the PiM simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// WRAM access beyond the 64 KB scratchpad.
    WramOutOfBounds {
        /// Byte offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Scratchpad capacity.
        wram_size: usize,
    },
    /// MRAM access beyond the 64 MB bank.
    MramOutOfBounds {
        /// Byte offset of the access.
        offset: usize,
        /// Length of the access.
        len: usize,
        /// Bank capacity (or configured footprint limit).
        mram_size: usize,
    },
    /// DMA transfer size outside the hardware's 8..=2048 byte window or not
    /// a multiple of 8.
    DmaBadSize {
        /// The rejected length.
        len: usize,
    },
    /// DMA address not 8-byte aligned (MRAM side).
    DmaMisaligned {
        /// The misaligned MRAM offset.
        offset: usize,
    },
    /// The WRAM allocator ran out of scratchpad space — the paper's reason
    /// for the P×T pool design instead of one alignment per tasklet (§4.2.3).
    WramExhausted {
        /// Bytes requested.
        requested: usize,
        /// Bytes still available.
        available: usize,
    },
    /// Tasklet id outside the configured count.
    BadTasklet {
        /// The offending tasklet count/index.
        tasklet: usize,
        /// Hardware maximum.
        max: usize,
    },
    /// Kernel-reported failure (e.g. band too small for the job), with the
    /// kernel's own status code.
    KernelFault {
        /// Kernel status code.
        code: u32,
        /// Human-readable context.
        message: String,
    },
    /// ISA-level fault from the interpreter.
    Isa(crate::isa::IsaError),
    /// A DPU is unavailable: masked out at boot or faulted at launch (the
    /// SDK's per-DPU fault status).
    DpuFaulted {
        /// Rank of the faulty DPU.
        rank: usize,
        /// DPU index within the rank.
        dpu: usize,
    },
    /// A whole rank failed to launch (dead DIMM half, channel failure, or a
    /// panicked rank worker thread).
    RankFailed {
        /// The failed rank.
        rank: usize,
        /// Human-readable failure cause.
        reason: String,
    },
    /// A DPU blew through its per-launch cycle budget (runaway kernel /
    /// tasklet livelock) or was cancelled by the host's wall-clock deadline.
    /// Recoverable: the launch itself survives, the DPU's partial stats are
    /// preserved, and the dispatch layer requeues the DPU's jobs.
    WatchdogExpired {
        /// Rank of the runaway DPU.
        rank: usize,
        /// DPU index within the rank.
        dpu: usize,
        /// Cycles retired when the watchdog fired (the budget for a hung
        /// DPU, 0 when cancelled before any progress was observable).
        cycles: u64,
    },
    /// A result block read back from MRAM failed its integrity check (bad
    /// magic word or checksum mismatch) — bit corruption on the readback
    /// path.
    ResultCorrupt {
        /// MRAM offset of the corrupt record.
        offset: usize,
        /// What failed ("bad result magic", "checksum mismatch", ...).
        detail: &'static str,
    },
    /// The run was stopped by a host-side interrupt (Ctrl-C / SIGTERM):
    /// planning stopped, in-flight launches were cancelled through the rank
    /// cancel tokens, and no further work was dispatched. Not a hardware
    /// fault — the dispatch layer reports it so callers can emit a partial
    /// report instead of dying mid-write.
    Interrupted,
    /// A rank/DPU index out of range.
    BadTopology {
        /// What kind of index ("rank" or "dpu").
        what: &'static str,
        /// The offending index.
        index: usize,
        /// Number of valid indices.
        max: usize,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WramOutOfBounds {
                offset,
                len,
                wram_size,
            } => write!(
                f,
                "WRAM access [{offset}, {offset}+{len}) outside {wram_size}-byte scratchpad"
            ),
            SimError::MramOutOfBounds {
                offset,
                len,
                mram_size,
            } => write!(
                f,
                "MRAM access [{offset}, {offset}+{len}) outside {mram_size}-byte bank"
            ),
            SimError::DmaBadSize { len } => {
                write!(f, "DMA size {len} not in 8..=2048 or not a multiple of 8")
            }
            SimError::DmaMisaligned { offset } => {
                write!(f, "DMA MRAM offset {offset} not 8-byte aligned")
            }
            SimError::WramExhausted {
                requested,
                available,
            } => {
                write!(
                    f,
                    "WRAM allocator: requested {requested} bytes, {available} available"
                )
            }
            SimError::BadTasklet { tasklet, max } => {
                write!(f, "tasklet {tasklet} out of range (DPU has {max})")
            }
            SimError::KernelFault { code, message } => {
                write!(f, "kernel fault {code}: {message}")
            }
            SimError::Isa(e) => write!(f, "ISA fault: {e}"),
            SimError::DpuFaulted { rank, dpu } => {
                write!(f, "DPU {dpu} of rank {rank} is faulted/disabled")
            }
            SimError::RankFailed { rank, reason } => {
                write!(f, "rank {rank} failed: {reason}")
            }
            SimError::WatchdogExpired { rank, dpu, cycles } => {
                write!(
                    f,
                    "watchdog expired on DPU {dpu} of rank {rank} after {cycles} cycles"
                )
            }
            SimError::ResultCorrupt { offset, detail } => {
                write!(f, "corrupt result block at MRAM offset {offset}: {detail}")
            }
            SimError::Interrupted => {
                write!(f, "run interrupted by the host (Ctrl-C / shutdown)")
            }
            SimError::BadTopology { what, index, max } => {
                write!(f, "{what} index {index} out of range (max {max})")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<crate::isa::IsaError> for SimError {
    fn from(e: crate::isa::IsaError) -> Self {
        SimError::Isa(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_fields() {
        let e = SimError::DmaBadSize { len: 3 };
        assert!(e.to_string().contains('3'));
        let e = SimError::WramExhausted {
            requested: 100,
            available: 10,
        };
        assert!(e.to_string().contains("100"));
        assert!(e.to_string().contains("10"));
        let e = SimError::BadTopology {
            what: "rank",
            index: 41,
            max: 40,
        };
        assert!(e.to_string().contains("rank"));
    }

    #[test]
    fn fault_messages_mention_location() {
        let e = SimError::DpuFaulted { rank: 3, dpu: 17 };
        assert!(e.to_string().contains('3') && e.to_string().contains("17"));
        let e = SimError::RankFailed {
            rank: 5,
            reason: "injected".into(),
        };
        assert!(e.to_string().contains('5') && e.to_string().contains("injected"));
        let e = SimError::ResultCorrupt {
            offset: 4096,
            detail: "checksum mismatch",
        };
        assert!(e.to_string().contains("4096"));
        assert!(e.to_string().contains("checksum"));
        let e = SimError::WatchdogExpired {
            rank: 2,
            dpu: 9,
            cycles: 1_000_000,
        };
        assert!(e.to_string().contains('2') && e.to_string().contains('9'));
        assert!(e.to_string().contains("1000000"));
        assert!(e.to_string().contains("watchdog"));
    }

    #[test]
    fn interrupted_message_names_the_cause() {
        assert!(SimError::Interrupted.to_string().contains("interrupted"));
    }
}
