//! The DPU's two memories.
//!
//! * [`Wram`] — the 64 KB scratchpad, directly load/store addressable. A
//!   bump allocator mirrors how the real DPU runtime hands out tasklet
//!   buffers; exhausting it is exactly the failure mode that forced the
//!   paper's pool design (§4.2.3).
//! * [`Mram`] — the 64 MB DRAM bank, reachable *only* through DMA transfers
//!   that must be 8-byte aligned and 8..=2048 bytes long (§2.1). Backing
//!   storage grows lazily so simulating thousands of DPUs does not commit
//!   64 MB each.

use crate::error::SimError;

/// Little-endian helpers shared by kernels; the DPU is little-endian.
pub mod le {
    /// Read an `i32` at `off`.
    pub fn read_i32(buf: &[u8], off: usize) -> i32 {
        i32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Write an `i32` at `off`.
    pub fn write_i32(buf: &mut [u8], off: usize, v: i32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Read a `u32` at `off`.
    pub fn read_u32(buf: &[u8], off: usize) -> u32 {
        u32::from_le_bytes(buf[off..off + 4].try_into().expect("4 bytes"))
    }

    /// Write a `u32` at `off`.
    pub fn write_u32(buf: &mut [u8], off: usize, v: u32) {
        buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
    }
}

/// The 64 KB working RAM (scratchpad).
#[derive(Debug, Clone)]
pub struct Wram {
    data: Vec<u8>,
    /// Bump-allocator watermark.
    brk: usize,
}

impl Wram {
    /// A zeroed scratchpad of `size` bytes.
    pub fn new(size: usize) -> Self {
        Self {
            data: vec![0; size],
            brk: 0,
        }
    }

    /// Scratchpad capacity.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Bytes currently allocated by [`Wram::alloc`].
    pub fn allocated(&self) -> usize {
        self.brk
    }

    /// Allocate `len` bytes aligned to `align` (a power of two); returns the
    /// offset. Mirrors the DPU runtime's static buffer placement.
    pub fn alloc(&mut self, len: usize, align: usize) -> Result<usize, SimError> {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        let start = (self.brk + align - 1) & !(align - 1);
        let end = start.checked_add(len).ok_or(SimError::WramExhausted {
            requested: len,
            available: 0,
        })?;
        if end > self.data.len() {
            return Err(SimError::WramExhausted {
                requested: len,
                available: self.data.len().saturating_sub(start),
            });
        }
        self.brk = end;
        Ok(start)
    }

    /// Release everything allocated (between kernel launches).
    pub fn reset(&mut self) {
        self.brk = 0;
        self.data.fill(0);
    }

    /// Borrow a byte range.
    pub fn slice(&self, offset: usize, len: usize) -> Result<&[u8], SimError> {
        self.check(offset, len)?;
        Ok(&self.data[offset..offset + len])
    }

    /// Mutably borrow a byte range.
    pub fn slice_mut(&mut self, offset: usize, len: usize) -> Result<&mut [u8], SimError> {
        self.check(offset, len)?;
        Ok(&mut self.data[offset..offset + len])
    }

    /// Read an `i32` (kernel load).
    pub fn read_i32(&self, offset: usize) -> Result<i32, SimError> {
        self.check(offset, 4)?;
        Ok(le::read_i32(&self.data, offset))
    }

    /// Write an `i32` (kernel store).
    pub fn write_i32(&mut self, offset: usize, v: i32) -> Result<(), SimError> {
        self.check(offset, 4)?;
        le::write_i32(&mut self.data, offset, v);
        Ok(())
    }

    /// Read a `u8`.
    pub fn read_u8(&self, offset: usize) -> Result<u8, SimError> {
        self.check(offset, 1)?;
        Ok(self.data[offset])
    }

    /// Write a `u8`.
    pub fn write_u8(&mut self, offset: usize, v: u8) -> Result<(), SimError> {
        self.check(offset, 1)?;
        self.data[offset] = v;
        Ok(())
    }

    fn check(&self, offset: usize, len: usize) -> Result<(), SimError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.data.len())
        {
            return Err(SimError::WramOutOfBounds {
                offset,
                len,
                wram_size: self.data.len(),
            });
        }
        Ok(())
    }
}

/// The 64 MB MRAM bank. Lazily grown: untouched regions cost nothing.
#[derive(Debug, Clone)]
pub struct Mram {
    data: Vec<u8>,
    size: usize,
    /// Armed readback corruption (fault injection): when `Some(seed)`,
    /// every host read has one deterministic bit flipped in the returned
    /// buffer. The stored bytes are untouched; the next host write disarms
    /// (the corruption models a flaky host<->DIMM link, and a fresh image
    /// upload re-trains it).
    corrupt: Option<u64>,
}

impl Mram {
    /// An MRAM bank of `size` logical bytes (zero committed).
    pub fn new(size: usize) -> Self {
        Self {
            data: Vec::new(),
            size,
            corrupt: None,
        }
    }

    /// Arm readback corruption with a deterministic seed (fault injection).
    pub fn arm_corruption(&mut self, seed: u64) {
        self.corrupt = Some(seed);
    }

    /// True when readback corruption is armed.
    pub fn corruption_armed(&self) -> bool {
        self.corrupt.is_some()
    }

    /// Logical bank size.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Bytes actually committed by writes so far.
    pub fn committed(&self) -> usize {
        self.data.len()
    }

    fn check(&self, offset: usize, len: usize) -> Result<(), SimError> {
        if offset.checked_add(len).is_none_or(|end| end > self.size) {
            return Err(SimError::MramOutOfBounds {
                offset,
                len,
                mram_size: self.size,
            });
        }
        Ok(())
    }

    fn ensure(&mut self, end: usize) {
        if self.data.len() < end {
            self.data.resize(end, 0);
        }
    }

    /// Host-side write (the DDR-bus path of §2.1; no DMA rules apply — the
    /// host accesses MRAM directly while the DPU is idle).
    pub fn host_write(&mut self, offset: usize, bytes: &[u8]) -> Result<(), SimError> {
        self.check(offset, bytes.len())?;
        self.corrupt = None;
        self.ensure(offset + bytes.len());
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// In-place patch used by the fault layer to emulate data the *DPU
    /// itself* wrote wrong (silent result corruption): unlike
    /// [`Mram::host_write`] it does **not** disarm armed readback
    /// corruption — the two fault models are independent.
    pub fn patch(&mut self, offset: usize, bytes: &[u8]) -> Result<(), SimError> {
        self.check(offset, bytes.len())?;
        self.ensure(offset + bytes.len());
        self.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Read the stored bytes exactly as the DPU left them, bypassing the
    /// armed readback-corruption bit flip. The fault layer uses this to
    /// craft silent corruptions from the true record contents.
    pub fn read_raw(&self, offset: usize, len: usize) -> Result<Vec<u8>, SimError> {
        self.check(offset, len)?;
        let mut out = vec![0u8; len];
        let have = self.data.len().saturating_sub(offset).min(len);
        if have > 0 {
            out[..have].copy_from_slice(&self.data[offset..offset + have]);
        }
        Ok(out)
    }

    /// Host-side read. When corruption is armed, one bit of the returned
    /// buffer — chosen deterministically from `(seed, offset)` — is flipped.
    pub fn host_read(&self, offset: usize, len: usize) -> Result<Vec<u8>, SimError> {
        let mut out = self.read_raw(offset, len)?;
        if let Some(seed) = self.corrupt {
            if len > 0 {
                let bit = crate::fault::mix64(seed ^ offset as u64) as usize % (len * 8);
                out[bit / 8] ^= 1 << (bit % 8);
            }
        }
        Ok(out)
    }

    /// Validate the DMA rules for a transfer touching `[offset, offset+len)`.
    pub fn check_dma(&self, offset: usize, len: usize) -> Result<(), SimError> {
        if !(8..=2048).contains(&len) || !len.is_multiple_of(8) {
            return Err(SimError::DmaBadSize { len });
        }
        if !offset.is_multiple_of(8) {
            return Err(SimError::DmaMisaligned { offset });
        }
        self.check(offset, len)
    }

    /// DPU-side DMA read into a caller buffer (used by [`crate::dpu::Dpu`]).
    pub fn dma_read(&self, offset: usize, dst: &mut [u8]) -> Result<(), SimError> {
        self.check_dma(offset, dst.len())?;
        let have = self.data.len().saturating_sub(offset).min(dst.len());
        if have > 0 {
            dst[..have].copy_from_slice(&self.data[offset..offset + have]);
        }
        dst[have..].fill(0);
        Ok(())
    }

    /// DPU-side DMA write from a caller buffer.
    pub fn dma_write(&mut self, offset: usize, src: &[u8]) -> Result<(), SimError> {
        self.check_dma(offset, src.len())?;
        self.ensure(offset + src.len());
        self.data[offset..offset + src.len()].copy_from_slice(src);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DpuConfig;

    fn wram() -> Wram {
        Wram::new(DpuConfig::default().wram_size)
    }

    #[test]
    fn wram_alloc_bumps_and_aligns() {
        let mut w = wram();
        let a = w.alloc(10, 1).unwrap();
        let b = w.alloc(16, 8).unwrap();
        assert_eq!(a, 0);
        assert_eq!(b % 8, 0);
        assert!(b >= 10);
        assert_eq!(w.allocated(), b + 16);
    }

    #[test]
    fn armed_corruption_flips_exactly_one_bit_per_read() {
        let mut m = Mram::new(1 << 20);
        m.host_write(64, &[0xAAu8; 32]).unwrap();
        let clean = m.host_read(64, 32).unwrap();
        m.arm_corruption(0x1234);
        assert!(m.corruption_armed());
        let dirty = m.host_read(64, 32).unwrap();
        let flipped: u32 = clean
            .iter()
            .zip(&dirty)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
        // Deterministic: the same read corrupts the same bit.
        assert_eq!(m.host_read(64, 32).unwrap(), dirty);
        // Stored bytes are untouched and a host write disarms.
        m.host_write(0, &[1]).unwrap();
        assert!(!m.corruption_armed());
        assert_eq!(m.host_read(64, 32).unwrap(), clean);
    }

    #[test]
    fn patch_and_read_raw_bypass_armed_corruption() {
        let mut m = Mram::new(1 << 20);
        m.host_write(64, &[0x55u8; 16]).unwrap();
        m.arm_corruption(0xBEEF);
        // read_raw sees the true bytes; host_read sees the flipped ones.
        assert_eq!(m.read_raw(64, 16).unwrap(), vec![0x55u8; 16]);
        assert_ne!(m.host_read(64, 16).unwrap(), vec![0x55u8; 16]);
        // A patch mutates the stored bytes without disarming.
        m.patch(64, &[0x66u8; 4]).unwrap();
        assert!(m.corruption_armed(), "patch must not disarm");
        assert_eq!(m.read_raw(64, 4).unwrap(), vec![0x66u8; 4]);
        // Bounds still apply.
        assert!(m.patch((1 << 20) - 2, &[0; 4]).is_err());
        assert!(m.read_raw(1 << 20, 1).is_err());
    }

    #[test]
    fn wram_alloc_exhaustion_is_reported() {
        let mut w = Wram::new(64);
        w.alloc(60, 1).unwrap();
        let err = w.alloc(16, 1).unwrap_err();
        assert!(matches!(err, SimError::WramExhausted { requested: 16, .. }));
    }

    #[test]
    fn wram_reset_reclaims_and_zeroes() {
        let mut w = Wram::new(64);
        let off = w.alloc(8, 1).unwrap();
        w.write_i32(off, -5).unwrap();
        w.reset();
        assert_eq!(w.allocated(), 0);
        assert_eq!(w.read_i32(off).unwrap(), 0);
    }

    #[test]
    fn wram_bounds_checked() {
        let w = Wram::new(16);
        assert!(matches!(
            w.read_i32(13),
            Err(SimError::WramOutOfBounds { .. })
        ));
        assert!(w.read_i32(12).is_ok());
        assert!(matches!(
            w.slice(8, 9),
            Err(SimError::WramOutOfBounds { .. })
        ));
    }

    #[test]
    fn wram_i32_round_trip() {
        let mut w = Wram::new(32);
        w.write_i32(4, -123456).unwrap();
        assert_eq!(w.read_i32(4).unwrap(), -123456);
        w.write_u8(0, 0xAB).unwrap();
        assert_eq!(w.read_u8(0).unwrap(), 0xAB);
    }

    #[test]
    fn mram_is_lazy() {
        let mut m = Mram::new(64 << 20);
        assert_eq!(m.committed(), 0);
        m.host_write(1024, &[1, 2, 3]).unwrap();
        assert!(m.committed() <= 2048);
        assert_eq!(m.host_read(1024, 3).unwrap(), vec![1, 2, 3]);
        // Reads beyond the committed frontier see zeros.
        assert_eq!(m.host_read(1 << 20, 4).unwrap(), vec![0; 4]);
    }

    #[test]
    fn mram_bounds_checked() {
        let mut m = Mram::new(1024);
        assert!(m.host_write(1020, &[0; 8]).is_err());
        assert!(m.host_read(1024, 1).is_err());
        assert!(m.host_write(1016, &[0; 8]).is_ok());
    }

    #[test]
    fn dma_rules_enforced() {
        let mut m = Mram::new(4096);
        let mut buf8 = [0u8; 8];
        // Size not multiple of 8.
        assert!(matches!(
            m.dma_read(0, &mut [0u8; 12]),
            Err(SimError::DmaBadSize { len: 12 })
        ));
        // Too small / too large.
        assert!(matches!(
            m.dma_read(0, &mut [0u8; 4]),
            Err(SimError::DmaBadSize { .. })
        ));
        assert!(matches!(
            m.dma_read(0, &mut [0u8; 4096]),
            Err(SimError::DmaBadSize { .. })
        ));
        // Misaligned offset.
        assert!(matches!(
            m.dma_read(4, &mut buf8),
            Err(SimError::DmaMisaligned { offset: 4 })
        ));
        // A legal transfer round-trips.
        m.dma_write(8, &[9u8; 16]).unwrap();
        let mut out = [0u8; 16];
        m.dma_read(8, &mut out).unwrap();
        assert_eq!(out, [9u8; 16]);
    }

    #[test]
    fn dma_size_boundaries() {
        let mut m = Mram::new(1 << 20);
        // Zero-length transfers are rejected, not silently ignored.
        assert!(matches!(
            m.dma_read(0, &mut []),
            Err(SimError::DmaBadSize { len: 0 })
        ));
        assert!(matches!(
            m.dma_write(0, &[]),
            Err(SimError::DmaBadSize { len: 0 })
        ));
        // One step past the 2048-byte engine limit.
        assert!(matches!(
            m.dma_read(0, &mut [0u8; 2056]),
            Err(SimError::DmaBadSize { len: 2056 })
        ));
        assert!(matches!(
            m.dma_write(0, &[0u8; 2056]),
            Err(SimError::DmaBadSize { len: 2056 })
        ));
        // 2047 is under the limit but not a multiple of 8.
        assert!(matches!(
            m.dma_write(0, &[0u8; 2047]),
            Err(SimError::DmaBadSize { len: 2047 })
        ));
        // The exact boundaries are legal.
        m.dma_write(0, &[1u8; 2048]).unwrap();
        m.dma_write(0, &[1u8; 8]).unwrap();
        let mut buf = [0u8; 2048];
        m.dma_read(0, &mut buf).unwrap();
    }

    #[test]
    fn dma_read_of_uncommitted_region_is_zeros() {
        let m = Mram::new(4096);
        let mut buf = [7u8; 8];
        m.dma_read(2048, &mut buf).unwrap();
        assert_eq!(buf, [0u8; 8]);
    }
}
