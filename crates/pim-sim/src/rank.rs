//! A rank: 64 DPUs that launch and synchronize together.
//!
//! The rank is the granularity of access on the real system (§2.1): launch,
//! transfer and collect operate on all 64 DPUs of a rank at once, and the
//! results of a rank cannot be read before *every* DPU of the rank has
//! finished — the barrier that makes intra-rank load balancing critical
//! (§4.1.2).

use crate::config::DpuConfig;
use crate::dpu::{Dpu, Kernel};
use crate::error::SimError;
use crate::stats::AggregateStats;
use crate::Cycles;

/// A rank of DPUs.
#[derive(Debug)]
pub struct Rank {
    dpus: Vec<Dpu>,
}

impl Rank {
    /// Build a rank of `n` DPUs.
    pub fn new(cfg: DpuConfig, n: usize) -> Self {
        Self {
            dpus: (0..n).map(|_| Dpu::new(cfg)).collect(),
        }
    }

    /// Number of DPUs.
    pub fn len(&self) -> usize {
        self.dpus.len()
    }

    /// True when the rank has no DPUs (never the case on real hardware).
    pub fn is_empty(&self) -> bool {
        self.dpus.is_empty()
    }

    /// Access one DPU (host-side, between launches).
    pub fn dpu(&self, idx: usize) -> Result<&Dpu, SimError> {
        self.dpus.get(idx).ok_or(SimError::BadTopology {
            what: "dpu",
            index: idx,
            max: self.dpus.len(),
        })
    }

    /// Mutable access to one DPU (host-side, between launches).
    pub fn dpu_mut(&mut self, idx: usize) -> Result<&mut Dpu, SimError> {
        let max = self.dpus.len();
        self.dpus.get_mut(idx).ok_or(SimError::BadTopology {
            what: "dpu",
            index: idx,
            max,
        })
    }

    /// Iterate DPUs.
    pub fn dpus(&self) -> impl Iterator<Item = &Dpu> {
        self.dpus.iter()
    }

    /// Launch the kernel on every DPU of the rank (the broadcast boot
    /// command) and wait for all of them: returns the rank barrier time —
    /// the *maximum* DPU cycle count — plus per-DPU aggregates.
    pub fn launch(&mut self, kernel: &dyn Kernel) -> Result<RankRun, SimError> {
        let mut agg = AggregateStats::default();
        for dpu in &mut self.dpus {
            dpu.reset_for_launch();
            kernel.run(dpu)?;
            agg.add(&dpu.stats);
        }
        Ok(RankRun {
            barrier_cycles: agg.max_cycles,
            stats: agg,
        })
    }
}

/// Outcome of one rank launch.
#[derive(Debug, Clone, Copy)]
pub struct RankRun {
    /// Cycles until the rank barrier releases (slowest DPU).
    pub barrier_cycles: Cycles,
    /// Aggregated per-DPU statistics.
    pub stats: AggregateStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::Timeline;
    use crate::pipeline::PhaseCost;

    /// Kernel that spins for a per-DPU number of instructions read from the
    /// first MRAM word — exercising the barrier semantics.
    struct SpinKernel;

    impl Kernel for SpinKernel {
        fn run(&self, dpu: &mut Dpu) -> Result<(), SimError> {
            let n = u64::from(dpu.mram.host_read(0, 1)?[0]);
            let mut t = Timeline::default();
            t.sequential(
                &dpu.cfg,
                1,
                PhaseCost {
                    instructions: n * 100,
                    dma_cycles: 0,
                },
            );
            dpu.record_timelines(&[t]);
            Ok(())
        }
    }

    #[test]
    fn barrier_waits_for_the_slowest_dpu() {
        let mut rank = Rank::new(DpuConfig::default(), 4);
        for (i, load) in [1u8, 5, 2, 3].iter().enumerate() {
            rank.dpu_mut(i)
                .unwrap()
                .mram
                .host_write(0, &[*load])
                .unwrap();
        }
        let run = rank.launch(&SpinKernel).unwrap();
        // Slowest: 5*100 instructions at 11 cycles each.
        assert_eq!(run.barrier_cycles, 5 * 100 * 11);
        assert_eq!(run.stats.dpus, 4);
        assert_eq!(run.stats.min_cycles, 100 * 11);
        assert!(run.stats.imbalance() > 0.5);
    }

    #[test]
    fn dpu_index_bounds() {
        let mut rank = Rank::new(DpuConfig::default(), 2);
        assert!(rank.dpu(1).is_ok());
        assert!(matches!(rank.dpu(2), Err(SimError::BadTopology { .. })));
        assert!(rank.dpu_mut(2).is_err());
    }

    #[test]
    fn relaunch_resets_counters() {
        let mut rank = Rank::new(DpuConfig::default(), 1);
        rank.dpu_mut(0).unwrap().mram.host_write(0, &[4]).unwrap();
        let first = rank.launch(&SpinKernel).unwrap();
        let second = rank.launch(&SpinKernel).unwrap();
        assert_eq!(first.barrier_cycles, second.barrier_cycles);
    }
}
