//! A rank: 64 DPUs that launch and synchronize together.
//!
//! The rank is the granularity of access on the real system (§2.1): launch,
//! transfer and collect operate on all 64 DPUs of a rank at once, and the
//! results of a rank cannot be read before *every* DPU of the rank has
//! finished — the barrier that makes intra-rank load balancing critical
//! (§4.1.2).
//!
//! Faults: a rank carries its slice of the server's
//! [`crate::fault::FaultPlan`]. Boot-disabled DPUs are unreachable from the
//! host ([`SimError::DpuFaulted`]); a dead rank fails every launch
//! ([`SimError::RankFailed`]); per-launch DPU faults and readback
//! corruption are reported through [`RankRun`] and the DPU's
//! [`crate::Mram`]. With the default (empty) plan none of these paths are
//! taken and behavior is identical to a fault-free rank.

use crate::config::DpuConfig;
use crate::dpu::{Dpu, Kernel};
use crate::error::SimError;
use crate::fault::RankFaultState;
use crate::isa::IsaError;
use crate::stats::AggregateStats;
use crate::Cycles;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A rank of DPUs.
#[derive(Debug)]
pub struct Rank {
    dpus: Vec<Dpu>,
    fault: RankFaultState,
    /// Cooperative cancellation flag the host's deadline watcher sets while
    /// a launch is in flight. Every wall-clock wait inside
    /// [`Rank::launch_threads`] (straggler holds, injected hang spins)
    /// polls it; a set flag breaks the wait and the launch returns with the
    /// affected DPUs reported as [`SimError::WatchdogExpired`]. Cleared at
    /// the start of each launch so a stale cancel never kills fresh work.
    cancel: Arc<AtomicBool>,
}

impl Rank {
    /// Build a healthy rank of `n` DPUs.
    pub fn new(cfg: DpuConfig, n: usize) -> Self {
        Self::with_faults(cfg, n, RankFaultState::healthy(0, n))
    }

    /// Build a rank carrying its slice of a fault plan.
    pub fn with_faults(cfg: DpuConfig, n: usize, fault: RankFaultState) -> Self {
        Self {
            dpus: (0..n).map(|_| Dpu::new(cfg)).collect(),
            fault,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Handle the host's deadline watcher uses to cancel an in-flight
    /// launch without holding a borrow of the rank.
    pub fn cancel_token(&self) -> Arc<AtomicBool> {
        self.cancel.clone()
    }

    /// Set the per-DPU watchdog cycle budget for subsequent launches (the
    /// recovery ladder doubles it on retry passes).
    pub fn set_watchdog_cycles(&mut self, cycles: u64) {
        for dpu in &mut self.dpus {
            dpu.cfg.watchdog_cycles = cycles;
        }
    }

    /// Number of DPUs (including disabled ones — the hardware slots exist).
    pub fn len(&self) -> usize {
        self.dpus.len()
    }

    /// True when the rank has no DPUs (never the case on real hardware).
    pub fn is_empty(&self) -> bool {
        self.dpus.is_empty()
    }

    /// True when `idx` is a usable DPU: in range and not masked out at boot.
    pub fn dpu_enabled(&self, idx: usize) -> bool {
        idx < self.dpus.len() && !self.fault.is_disabled(idx)
    }

    /// Indices of the boot-enabled DPUs.
    pub fn enabled_dpus(&self) -> Vec<usize> {
        (0..self.dpus.len())
            .filter(|&d| !self.fault.is_disabled(d))
            .collect()
    }

    /// True when the rank is configured dead (every launch fails).
    pub fn is_dead(&self) -> bool {
        self.fault.is_dead()
    }

    fn check_enabled(&self, idx: usize) -> Result<(), SimError> {
        if idx >= self.dpus.len() {
            return Err(SimError::BadTopology {
                what: "dpu",
                index: idx,
                max: self.dpus.len(),
            });
        }
        if self.fault.is_disabled(idx) {
            return Err(SimError::DpuFaulted {
                rank: self.fault.rank,
                dpu: idx,
            });
        }
        Ok(())
    }

    /// Access one DPU (host-side, between launches).
    pub fn dpu(&self, idx: usize) -> Result<&Dpu, SimError> {
        self.check_enabled(idx)?;
        Ok(&self.dpus[idx])
    }

    /// Mutable access to one DPU (host-side, between launches).
    pub fn dpu_mut(&mut self, idx: usize) -> Result<&mut Dpu, SimError> {
        self.check_enabled(idx)?;
        Ok(&mut self.dpus[idx])
    }

    /// Iterate DPUs (including disabled slots).
    pub fn dpus(&self) -> impl Iterator<Item = &Dpu> {
        self.dpus.iter()
    }

    /// Launch the kernel on every enabled DPU of the rank (the broadcast
    /// boot command) and wait for all of them: returns the rank barrier
    /// time — the *maximum* DPU cycle count — plus per-DPU aggregates.
    ///
    /// Sequential form of [`Rank::launch_threads`] — see it for the fault
    /// semantics.
    pub fn launch(&mut self, kernel: &dyn Kernel) -> Result<RankRun, SimError> {
        self.launch_threads(kernel, 1)
    }

    /// [`Rank::launch`] with the rank's DPUs executed on up to `threads`
    /// worker threads (the intra-rank pool; `<= 1` runs inline). The
    /// outcome is bit-identical to the sequential launch: fault draws are
    /// pure functions of `(seed, rank, dpu, launch)` taken *before* the
    /// DPUs run, and per-DPU stats are absorbed in DPU-index order after
    /// all of them finish.
    ///
    /// Fault semantics: a dead rank returns [`SimError::RankFailed`];
    /// per-DPU launch faults skip the DPU and report it in
    /// [`RankRun::faulted`] (mirroring the SDK's per-DPU fault status —
    /// surviving DPUs still produce results); a kernel error on one DPU no
    /// longer aborts the launch — the error lands in [`RankRun::errors`]
    /// and every other DPU's results and stats survive; armed readback
    /// corruption is installed on the affected DPU's MRAM after its
    /// kernel ran.
    ///
    /// Watchdog semantics: with a nonzero
    /// [`DpuConfig::watchdog_cycles`] budget, a kernel that retires more
    /// cycles than the budget — or aborts with the interpreter's step cap
    /// ([`IsaError::MaxSteps`]) — is reaped as
    /// [`SimError::WatchdogExpired`] with its partial stats preserved in
    /// [`RankRun::stats`]'s runaway counters. An injected hang
    /// ([`crate::fault::FaultPlan::hang_rate`]) burns exactly the budget
    /// (simulated instantly, so outcomes stay deterministic); with the
    /// watchdog disabled it spins on the host clock until the cancel token
    /// is set.
    pub fn launch_threads(
        &mut self,
        kernel: &dyn Kernel,
        threads: usize,
    ) -> Result<RankRun, SimError> {
        if self.fault.is_dead() {
            return Err(SimError::RankFailed {
                rank: self.fault.rank,
                reason: "rank offline (injected fault)".into(),
            });
        }
        self.cancel.store(false, Ordering::Relaxed);
        self.fault.next_launch();
        // Intermittent straggler hold: real wall-clock the host spends
        // waiting on this rank (see [`crate::fault::FaultPlan`]). Purely a
        // timing fault — simulated cycles and results are untouched. The
        // sleep is chopped into slices so the host deadline can cut it
        // short via the cancel token.
        let hold = self.fault.hold_seconds();
        if hold > 0.0 {
            cancellable_sleep(hold, &self.cancel);
        }
        let rank_idx = self.fault.rank;
        let probabilistic = self.fault.active();
        let mut faulted = Vec::new();
        // Draw launch and hang faults up front (pure per-DPU draws —
        // order-free) and collect the DPUs that will actually run.
        let fault = &self.fault;
        let cancel = &self.cancel;
        let mut running: Vec<(usize, bool, &mut Dpu)> = Vec::new();
        for (d, dpu) in self.dpus.iter_mut().enumerate() {
            if fault.is_disabled(d) {
                continue;
            }
            if probabilistic && fault.launch_fault(d) {
                faulted.push(d);
                continue;
            }
            let hung = probabilistic && fault.hang_fault(d);
            dpu.reset_for_launch();
            running.push((d, hung, dpu));
        }
        let run_one = |d: usize, hung: bool, dpu: &mut Dpu| -> (usize, Result<(), SimError>) {
            let budget = dpu.cfg.watchdog_cycles;
            if hung {
                if budget > 0 {
                    // The livelock is simulated instantly: the DPU burns
                    // exactly its budget, then the watchdog reaps it.
                    dpu.stats.cycles = budget;
                    return (
                        d,
                        Err(SimError::WatchdogExpired {
                            rank: rank_idx,
                            dpu: d,
                            cycles: budget,
                        }),
                    );
                }
                // No watchdog: the DPU really never returns. Spin on the
                // host clock until the deadline watcher cancels us.
                while !cancel.load(Ordering::Relaxed) {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                return (
                    d,
                    Err(SimError::WatchdogExpired {
                        rank: rank_idx,
                        dpu: d,
                        cycles: 0,
                    }),
                );
            }
            let res = match kernel.run(dpu) {
                // The interpreter's hard step cap is the same failure class:
                // runaway execution, recoverable at the launch boundary.
                Err(SimError::Isa(IsaError::MaxSteps { .. })) => Err(SimError::WatchdogExpired {
                    rank: rank_idx,
                    dpu: d,
                    cycles: dpu.stats.cycles,
                }),
                Ok(()) if budget > 0 && dpu.stats.cycles > budget => {
                    Err(SimError::WatchdogExpired {
                        rank: rank_idx,
                        dpu: d,
                        cycles: dpu.stats.cycles,
                    })
                }
                other => other,
            };
            (d, res)
        };
        let workers = threads.max(1).min(running.len().max(1));
        let results: Vec<(usize, Result<(), SimError>)> = if workers <= 1 {
            running
                .iter_mut()
                .map(|(d, hung, dpu)| run_one(*d, *hung, dpu))
                .collect()
        } else {
            let per = running.len().div_ceil(workers);
            std::thread::scope(|s| {
                let handles: Vec<_> = running
                    .chunks_mut(per)
                    .map(|chunk| {
                        let run_one = &run_one;
                        s.spawn(move || {
                            chunk
                                .iter_mut()
                                .map(|(d, hung, dpu)| run_one(*d, *hung, dpu))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| {
                        // Re-raise a worker panic with its payload so the
                        // dispatch layer's catch_unwind sees the original.
                        h.join().unwrap_or_else(|p| std::panic::resume_unwind(p))
                    })
                    .collect()
            })
        };
        drop(running);
        // Absorb in DPU-index order (the chunks preserve it), so the
        // aggregate's min/max/f64 accumulation is bit-identical to the
        // sequential launch.
        let mut agg = AggregateStats::default();
        let mut errors = Vec::new();
        let mut silent_corrupt = Vec::new();
        let mut runaway_barrier: Cycles = 0;
        for (d, res) in results {
            match res {
                Ok(()) => {
                    let dpu = &mut self.dpus[d];
                    agg.add(&dpu.stats);
                    if probabilistic {
                        if let Some(seed) = self.fault.corruption(d) {
                            dpu.mram.arm_corruption(seed);
                        }
                        // Silent corruption only makes sense on a DPU that
                        // actually produced results.
                        if let Some(seed) = self.fault.silent_corruption(d) {
                            silent_corrupt.push((d, seed));
                        }
                    }
                }
                Err(e) => {
                    if let SimError::WatchdogExpired { cycles, .. } = e {
                        agg.add_watchdog_expired(cycles);
                        // The rank barrier waits for the watchdog to fire.
                        runaway_barrier = runaway_barrier.max(cycles);
                    }
                    errors.push((d, e));
                }
            }
        }
        let barrier_basis = agg.max_cycles.max(runaway_barrier);
        let barrier_cycles = (barrier_basis as f64 * self.fault.slowdown()).round() as Cycles;
        Ok(RankRun {
            barrier_cycles,
            stats: agg,
            faulted,
            errors,
            silent_corrupt,
            cancelled: self.cancel.load(Ordering::Relaxed),
        })
    }
}

/// Sleep `seconds` in small slices, returning early when `cancel` is set.
fn cancellable_sleep(seconds: f64, cancel: &AtomicBool) {
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(seconds);
    while !cancel.load(Ordering::Relaxed) {
        let left = deadline.saturating_duration_since(std::time::Instant::now());
        if left.is_zero() {
            break;
        }
        std::thread::sleep(left.min(std::time::Duration::from_millis(1)));
    }
}

/// Outcome of one rank launch.
#[derive(Debug, Clone)]
pub struct RankRun {
    /// Cycles until the rank barrier releases (slowest DPU, times the
    /// straggler slowdown when injected).
    pub barrier_cycles: Cycles,
    /// Aggregated per-DPU statistics (faulted DPUs contribute nothing).
    pub stats: AggregateStats,
    /// DPUs that faulted at launch and ran nothing (fault injection).
    pub faulted: Vec<usize>,
    /// DPUs whose kernel returned an error, with the error. The launch
    /// itself still succeeds: every other DPU's results and stats are
    /// intact (previously the first error aborted the rank and discarded
    /// the stats of DPUs already executed).
    pub errors: Vec<(usize, SimError)>,
    /// Silent result-corruption draws: `(dpu, mutation_seed)` for DPUs
    /// whose launch succeeded. The simulator does not know the result
    /// layout, so the dispatch layer above applies the actual mutation
    /// (record picked and perturbed deterministically from the seed, the
    /// checksum recomputed so readback integrity checks pass).
    pub silent_corrupt: Vec<(usize, u64)>,
    /// True when the host's deadline watcher cancelled this launch — at
    /// least one wall-clock wait was cut short by the cancel token.
    pub cancelled: bool,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dpu::Timeline;
    use crate::fault::FaultPlan;
    use crate::pipeline::PhaseCost;

    /// Kernel that spins for a per-DPU number of instructions read from the
    /// first MRAM word — exercising the barrier semantics.
    struct SpinKernel;

    impl Kernel for SpinKernel {
        fn run(&self, dpu: &mut Dpu) -> Result<(), SimError> {
            let n = u64::from(dpu.mram.host_read(0, 1)?[0]);
            let mut t = Timeline::default();
            t.sequential(
                &dpu.cfg,
                1,
                PhaseCost {
                    instructions: n * 100,
                    dma_cycles: 0,
                },
            );
            dpu.record_timelines(&[t]);
            Ok(())
        }
    }

    #[test]
    fn barrier_waits_for_the_slowest_dpu() {
        let mut rank = Rank::new(DpuConfig::default(), 4);
        for (i, load) in [1u8, 5, 2, 3].iter().enumerate() {
            rank.dpu_mut(i)
                .unwrap()
                .mram
                .host_write(0, &[*load])
                .unwrap();
        }
        let run = rank.launch(&SpinKernel).unwrap();
        // Slowest: 5*100 instructions at 11 cycles each.
        assert_eq!(run.barrier_cycles, 5 * 100 * 11);
        assert_eq!(run.stats.dpus, 4);
        assert_eq!(run.stats.min_cycles, 100 * 11);
        assert!(run.stats.imbalance() > 0.5);
        assert!(run.faulted.is_empty());
    }

    #[test]
    fn dpu_index_bounds() {
        let mut rank = Rank::new(DpuConfig::default(), 2);
        assert!(rank.dpu(1).is_ok());
        assert!(matches!(rank.dpu(2), Err(SimError::BadTopology { .. })));
        assert!(rank.dpu_mut(2).is_err());
    }

    #[test]
    fn relaunch_resets_counters() {
        let mut rank = Rank::new(DpuConfig::default(), 1);
        rank.dpu_mut(0).unwrap().mram.host_write(0, &[4]).unwrap();
        let first = rank.launch(&SpinKernel).unwrap();
        let second = rank.launch(&SpinKernel).unwrap();
        assert_eq!(first.barrier_cycles, second.barrier_cycles);
    }

    #[test]
    fn disabled_dpu_is_unreachable_and_skipped() {
        let plan = FaultPlan {
            disabled_dpus: vec![(0, 1)],
            ..Default::default()
        };
        let mut rank = Rank::with_faults(DpuConfig::default(), 3, plan.rank_state(0, 3));
        assert!(!rank.dpu_enabled(1));
        assert_eq!(rank.enabled_dpus(), vec![0, 2]);
        assert!(matches!(
            rank.dpu_mut(1),
            Err(SimError::DpuFaulted { rank: 0, dpu: 1 })
        ));
        for d in [0usize, 2] {
            rank.dpu_mut(d).unwrap().mram.host_write(0, &[2]).unwrap();
        }
        let run = rank.launch(&SpinKernel).unwrap();
        assert_eq!(run.stats.dpus, 2, "disabled DPU never boots");
    }

    #[test]
    fn dead_rank_fails_every_launch() {
        let plan = FaultPlan {
            dead_ranks: vec![4],
            ..Default::default()
        };
        let mut rank = Rank::with_faults(DpuConfig::default(), 2, plan.rank_state(4, 2));
        assert!(rank.is_dead());
        for _ in 0..3 {
            assert!(matches!(
                rank.launch(&SpinKernel),
                Err(SimError::RankFailed { rank: 4, .. })
            ));
        }
    }

    #[test]
    fn launch_faults_are_reported_not_fatal() {
        let plan = FaultPlan {
            seed: 99,
            dpu_fault_rate: 0.5,
            ..Default::default()
        };
        let mut rank = Rank::with_faults(DpuConfig::default(), 16, plan.rank_state(0, 16));
        for d in 0..16 {
            rank.dpu_mut(d).unwrap().mram.host_write(0, &[1]).unwrap();
        }
        let mut saw_fault = false;
        let mut saw_survivor = false;
        for _ in 0..8 {
            let run = rank.launch(&SpinKernel).unwrap();
            saw_fault |= !run.faulted.is_empty();
            saw_survivor |= run.stats.dpus > 0;
            assert_eq!(run.stats.dpus + run.faulted.len(), 16);
        }
        assert!(
            saw_fault,
            "rate 0.5 over 128 draws must fault at least once"
        );
        assert!(saw_survivor, "and at least one DPU must survive");
    }

    #[test]
    fn straggler_slowdown_scales_the_barrier() {
        let plan = FaultPlan {
            straggler_ranks: vec![0],
            straggler_slowdown: 3.0,
            ..Default::default()
        };
        let mut slow = Rank::with_faults(DpuConfig::default(), 1, plan.rank_state(0, 1));
        let mut fast = Rank::new(DpuConfig::default(), 1);
        for r in [&mut slow, &mut fast] {
            r.dpu_mut(0).unwrap().mram.host_write(0, &[2]).unwrap();
        }
        let s = slow.launch(&SpinKernel).unwrap();
        let f = fast.launch(&SpinKernel).unwrap();
        assert_eq!(s.barrier_cycles, 3 * f.barrier_cycles);
        // Stats are unscaled — the DPUs did the same work.
        assert_eq!(s.stats.max_cycles, f.stats.max_cycles);
    }

    #[test]
    fn corruption_is_armed_after_launch() {
        let plan = FaultPlan {
            seed: 5,
            corrupt_rate: 1.0,
            ..Default::default()
        };
        let mut rank = Rank::with_faults(DpuConfig::default(), 2, plan.rank_state(0, 2));
        for d in 0..2 {
            rank.dpu_mut(d).unwrap().mram.host_write(0, &[1]).unwrap();
        }
        rank.launch(&SpinKernel).unwrap();
        for d in 0..2 {
            assert!(rank.dpu(d).unwrap().mram.corruption_armed());
        }
        // A fresh image upload disarms.
        rank.dpu_mut(0).unwrap().mram.host_write(0, &[1]).unwrap();
        assert!(!rank.dpu(0).unwrap().mram.corruption_armed());
    }

    /// Kernel that errors on DPUs whose MRAM byte 0 is zero and spins
    /// otherwise — for the partial-failure launch semantics.
    struct FussyKernel;

    impl Kernel for FussyKernel {
        fn run(&self, dpu: &mut Dpu) -> Result<(), SimError> {
            let n = u64::from(dpu.mram.host_read(0, 1)?[0]);
            if n == 0 {
                return Err(SimError::KernelFault {
                    code: 7,
                    message: "zero workload".into(),
                });
            }
            let mut t = Timeline::default();
            t.sequential(
                &dpu.cfg,
                1,
                PhaseCost {
                    instructions: n * 100,
                    dma_cycles: 0,
                },
            );
            dpu.record_timelines(&[t]);
            Ok(())
        }
    }

    #[test]
    fn kernel_error_no_longer_discards_other_dpus_stats() {
        // DPU 2 errors mid-rank; DPUs 0, 1, 3 already/subsequently ran and
        // their stats must survive in the launch outcome.
        let mut rank = Rank::new(DpuConfig::default(), 4);
        for (i, load) in [3u8, 1, 0, 2].iter().enumerate() {
            rank.dpu_mut(i)
                .unwrap()
                .mram
                .host_write(0, &[*load])
                .unwrap();
        }
        let run = rank.launch(&FussyKernel).unwrap();
        assert_eq!(run.errors.len(), 1);
        assert_eq!(run.errors[0].0, 2);
        assert!(matches!(run.errors[0].1, SimError::KernelFault { .. }));
        assert_eq!(run.stats.dpus, 3, "survivors' stats are kept");
        assert_eq!(run.barrier_cycles, 3 * 100 * 11);
        assert_eq!(run.stats.min_cycles, 100 * 11);
    }

    #[test]
    fn parallel_launch_matches_sequential_bit_for_bit() {
        // Same topology + fault plan, threads 1 vs 4 (and a non-dividing
        // 3): everything observable must be identical — fault draws,
        // errors, aggregates, barrier, MRAM corruption arming, silent
        // corruption draws, watchdog expiries.
        let plan = FaultPlan {
            seed: 1234,
            dpu_fault_rate: 0.25,
            corrupt_rate: 0.3,
            hang_rate: 0.2,
            silent_corrupt_rate: 0.3,
            disabled_dpus: vec![(0, 5)],
            ..Default::default()
        };
        let cfg = DpuConfig {
            // Finite budget so injected hangs resolve deterministically.
            watchdog_cycles: 1_000_000,
            ..Default::default()
        };
        let build = || {
            let mut r = Rank::with_faults(cfg, 16, plan.rank_state(0, 16));
            for d in 0..16 {
                let load = [3u8, 1, 0, 2, 5][d % 5];
                if let Ok(dpu) = r.dpu_mut(d) {
                    dpu.mram.host_write(0, &[load]).unwrap();
                }
            }
            r
        };
        for threads in [3usize, 4, 16] {
            let mut seq = build();
            let mut par = build();
            for _ in 0..4 {
                let a = seq.launch_threads(&FussyKernel, 1).unwrap();
                let b = par.launch_threads(&FussyKernel, threads).unwrap();
                assert_eq!(a.barrier_cycles, b.barrier_cycles);
                assert_eq!(a.faulted, b.faulted);
                assert_eq!(a.errors, b.errors);
                assert_eq!(a.silent_corrupt, b.silent_corrupt);
                assert_eq!(a.cancelled, b.cancelled);
                assert_eq!(a.stats.watchdog_expired, b.stats.watchdog_expired);
                assert_eq!(a.stats.runaway_cycles, b.stats.runaway_cycles);
                assert_eq!(a.stats.dpus, b.stats.dpus);
                assert_eq!(a.stats.min_cycles, b.stats.min_cycles);
                assert_eq!(a.stats.max_cycles, b.stats.max_cycles);
                assert_eq!(a.stats.total, b.stats.total, "summed counters match");
                for d in 0..16 {
                    let (sa, sb) = (seq.dpus[d].mram.corruption_armed(), {
                        par.dpus[d].mram.corruption_armed()
                    });
                    assert_eq!(sa, sb, "corruption arming differs on dpu {d}");
                }
            }
        }
    }

    #[test]
    fn watchdog_reaps_runaway_kernels_and_preserves_partial_stats() {
        let cfg = DpuConfig {
            watchdog_cycles: 2000,
            ..Default::default()
        };
        let mut rank = Rank::new(cfg, 2);
        // Load 1 → 1100 cycles (inside budget); load 5 → 5500 (runaway).
        rank.dpu_mut(0).unwrap().mram.host_write(0, &[1]).unwrap();
        rank.dpu_mut(1).unwrap().mram.host_write(0, &[5]).unwrap();
        let run = rank.launch(&SpinKernel).unwrap();
        assert_eq!(run.errors.len(), 1);
        assert_eq!(
            run.errors[0],
            (
                1,
                SimError::WatchdogExpired {
                    rank: 0,
                    dpu: 1,
                    cycles: 5500,
                }
            )
        );
        assert_eq!(run.stats.dpus, 1, "the healthy DPU's results survive");
        assert_eq!(run.stats.watchdog_expired, 1);
        assert_eq!(run.stats.runaway_cycles, 5500);
        assert_eq!(
            run.barrier_cycles, 5500,
            "the rank barrier waits for the watchdog to fire"
        );
    }

    #[test]
    fn injected_hangs_burn_exactly_the_budget() {
        let plan = FaultPlan {
            seed: 9,
            hang_rate: 1.0,
            ..Default::default()
        };
        let cfg = DpuConfig {
            watchdog_cycles: 9000,
            ..Default::default()
        };
        let mut rank = Rank::with_faults(cfg, 3, plan.rank_state(0, 3));
        for d in 0..3 {
            rank.dpu_mut(d).unwrap().mram.host_write(0, &[1]).unwrap();
        }
        let run = rank.launch(&SpinKernel).unwrap();
        assert_eq!(run.errors.len(), 3, "every DPU hung");
        for (d, e) in &run.errors {
            assert!(
                matches!(e, SimError::WatchdogExpired { cycles: 9000, .. }),
                "dpu {d}: {e}"
            );
        }
        assert_eq!(run.stats.dpus, 0);
        assert_eq!(run.stats.watchdog_expired, 3);
        assert_eq!(run.barrier_cycles, 9000);
        assert!(!run.cancelled);
    }

    #[test]
    fn unwatched_hang_spins_until_the_host_cancels() {
        let plan = FaultPlan {
            seed: 9,
            hang_rate: 1.0,
            ..Default::default()
        };
        // Watchdog disabled: the hang is a real wall-clock spin, broken
        // only by the cancel token (the host deadline path).
        let mut rank = Rank::with_faults(DpuConfig::default(), 1, plan.rank_state(0, 1));
        rank.dpu_mut(0).unwrap().mram.host_write(0, &[1]).unwrap();
        let token = rank.cancel_token();
        let done = Arc::new(AtomicBool::new(false));
        let canceller = {
            let done = done.clone();
            std::thread::spawn(move || {
                // Keep re-asserting the cancel until the launch returns, so
                // the test cannot race the launch-entry flag reset.
                while !done.load(Ordering::Relaxed) {
                    token.store(true, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        };
        let run = rank.launch(&SpinKernel).unwrap();
        done.store(true, Ordering::Relaxed);
        canceller.join().unwrap();
        assert!(run.cancelled);
        assert_eq!(
            run.errors[0],
            (
                0,
                SimError::WatchdogExpired {
                    rank: 0,
                    dpu: 0,
                    cycles: 0,
                }
            )
        );
    }

    #[test]
    fn cancel_cuts_the_straggler_hold_short() {
        let plan = FaultPlan {
            straggler_ranks: vec![0],
            straggler_hold_ms: 60_000.0, // a minute — must not actually elapse
            ..Default::default()
        };
        let mut rank = Rank::with_faults(DpuConfig::default(), 1, plan.rank_state(0, 1));
        rank.dpu_mut(0).unwrap().mram.host_write(0, &[1]).unwrap();
        // First launch is the held one (odd launch counter).
        let token = rank.cancel_token();
        let done = Arc::new(AtomicBool::new(false));
        let canceller = {
            let done = done.clone();
            std::thread::spawn(move || {
                while !done.load(Ordering::Relaxed) {
                    token.store(true, Ordering::Relaxed);
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
            })
        };
        let start = std::time::Instant::now();
        let run = rank.launch(&SpinKernel).unwrap();
        done.store(true, Ordering::Relaxed);
        canceller.join().unwrap();
        assert!(
            start.elapsed() < std::time::Duration::from_secs(30),
            "no wedge"
        );
        assert!(run.cancelled);
        // The hold is timing-only: the DPU still ran and produced stats.
        assert_eq!(run.stats.dpus, 1);
    }

    /// Kernel that aborts with the interpreter's step cap after recording
    /// partial progress — the raw `MaxSteps` must not survive the launch.
    struct RunawayKernel;

    impl Kernel for RunawayKernel {
        fn run(&self, dpu: &mut Dpu) -> Result<(), SimError> {
            dpu.stats.cycles = 123_456;
            Err(IsaError::MaxSteps { limit: 1000 }.into())
        }
    }

    #[test]
    fn interpreter_step_cap_becomes_watchdog_expiry_on_the_launch_path() {
        let mut rank = Rank::new(DpuConfig::default(), 1);
        let run = rank.launch(&RunawayKernel).unwrap();
        assert_eq!(
            run.errors[0],
            (
                0,
                SimError::WatchdogExpired {
                    rank: 0,
                    dpu: 0,
                    cycles: 123_456,
                }
            )
        );
        assert_eq!(run.stats.watchdog_expired, 1);
        assert_eq!(run.stats.runaway_cycles, 123_456);
    }

    #[test]
    fn silent_corruption_is_drawn_only_for_successful_dpus() {
        let plan = FaultPlan {
            seed: 77,
            silent_corrupt_rate: 1.0,
            dpu_fault_rate: 0.5,
            ..Default::default()
        };
        let mut rank = Rank::with_faults(DpuConfig::default(), 8, plan.rank_state(0, 8));
        for d in 0..8 {
            rank.dpu_mut(d).unwrap().mram.host_write(0, &[1]).unwrap();
        }
        let run = rank.launch(&SpinKernel).unwrap();
        let drawn: Vec<usize> = run.silent_corrupt.iter().map(|&(d, _)| d).collect();
        assert!(!drawn.is_empty());
        for d in &drawn {
            assert!(!run.faulted.contains(d), "faulted DPUs produce nothing");
        }
        assert_eq!(drawn.len() + run.faulted.len(), 8);
    }
}
