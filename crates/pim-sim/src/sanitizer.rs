//! Runtime WRAM sanitizer: MSan-style shadow memory for the ISA interpreter.
//!
//! The static verifier ([`crate::isa::verify`]) proves what it can ahead of
//! time; this module catches what it cannot, at runtime, with two per-byte
//! shadow planes over a WRAM buffer:
//!
//! * **Initialization** — every byte starts poisoned; stores (and host/DMA
//!   transfers into WRAM) unpoison it. A load touching a poisoned byte
//!   aborts with [`IsaError::UninitializedRead`] instead of silently
//!   computing on garbage.
//! * **Ownership** — every byte records which tasklet touched it since the
//!   last barrier. A tasklet touching a byte another tasklet wrote, with no
//!   barrier in between, aborts with [`IsaError::DataRace`]. Host/DMA
//!   writes reset ownership: the simulator only issues them at phase
//!   boundaries, where they cannot race.
//!
//! Attach the shadow to an interpreter run with [`Machine::run_sanitized`]
//! (or implement heavier policies on top of [`WramWatch`] directly).

use crate::isa::{Inst, IsaError, Machine, RunStats, WramWatch};
use crate::stats::SanitizerStats;

/// Owner value meaning "no tasklet has touched this byte since the last
/// barrier (or ever)".
const NO_OWNER: u8 = 0xFF;

/// Per-byte shadow state for one WRAM buffer.
#[derive(Debug, Clone)]
pub struct WramShadow {
    init: Vec<bool>,
    owner: Vec<u8>,
    /// Counters describing the checking work performed.
    pub stats: SanitizerStats,
}

impl WramShadow {
    /// Fully-poisoned shadow for a `len`-byte WRAM buffer.
    pub fn new(len: usize) -> Self {
        Self {
            init: vec![false; len],
            owner: vec![NO_OWNER; len],
            stats: SanitizerStats::default(),
        }
    }

    /// Shadow length in bytes.
    pub fn len(&self) -> usize {
        self.init.len()
    }

    /// Is the shadow zero-sized?
    pub fn is_empty(&self) -> bool {
        self.init.is_empty()
    }

    /// Is every byte of `[addr, addr+len)` initialized?
    pub fn is_initialized(&self, addr: usize, len: usize) -> bool {
        self.init[addr..addr + len].iter().all(|&b| b)
    }

    /// A host or DMA write landed on `[addr, addr+len)`: unpoison it and
    /// clear ownership (host transfers happen at phase boundaries and
    /// cannot race with tasklets).
    pub fn host_write(&mut self, addr: usize, len: usize) {
        for b in &mut self.init[addr..addr + len] {
            *b = true;
        }
        for o in &mut self.owner[addr..addr + len] {
            *o = NO_OWNER;
        }
        self.stats.bytes_host_initialized += len as u64;
    }

    /// A host or DMA read of `[addr, addr+len)` (e.g. WRAM -> MRAM DMA):
    /// every byte must be initialized.
    pub fn host_read(&self, addr: usize, len: usize) -> Result<(), IsaError> {
        for (i, &ok) in self.init[addr..addr + len].iter().enumerate() {
            if !ok {
                return Err(IsaError::UninitializedRead {
                    addr: addr + i,
                    len: 1,
                });
            }
        }
        Ok(())
    }

    /// A barrier: all tasklets synchronized, so ownership resets and
    /// subsequent cross-tasklet accesses are ordered (not races).
    pub fn barrier(&mut self) {
        for o in &mut self.owner {
            *o = NO_OWNER;
        }
        self.stats.barriers += 1;
    }

    /// View of this shadow for accesses performed by one tasklet.
    pub fn tasklet(&mut self, tasklet: u8) -> TaskletShadow<'_> {
        debug_assert_ne!(
            tasklet, NO_OWNER,
            "tasklet id collides with the no-owner sentinel"
        );
        TaskletShadow {
            shadow: self,
            tasklet,
        }
    }
}

/// A [`WramWatch`] implementation checking one tasklet's accesses against a
/// shared [`WramShadow`].
#[derive(Debug)]
pub struct TaskletShadow<'a> {
    shadow: &'a mut WramShadow,
    tasklet: u8,
}

impl TaskletShadow<'_> {
    fn claim(&mut self, addr: usize, len: usize) -> Result<(), IsaError> {
        for i in addr..addr + len {
            let owner = self.shadow.owner[i];
            if owner != NO_OWNER && owner != self.tasklet {
                return Err(IsaError::DataRace {
                    addr: i,
                    tasklet: self.tasklet,
                    owner,
                });
            }
        }
        Ok(())
    }
}

impl WramWatch for TaskletShadow<'_> {
    fn on_read(&mut self, addr: usize, len: usize) -> Result<(), IsaError> {
        self.shadow.stats.bytes_read_checked += len as u64;
        for (i, &ok) in self.shadow.init[addr..addr + len].iter().enumerate() {
            if !ok {
                return Err(IsaError::UninitializedRead {
                    addr: addr + i,
                    len,
                });
            }
        }
        // Reading another tasklet's unsynchronized write is a race too.
        self.claim(addr, len)
    }

    fn on_write(&mut self, addr: usize, len: usize) -> Result<(), IsaError> {
        self.claim(addr, len)?;
        self.shadow.stats.bytes_written += len as u64;
        for i in addr..addr + len {
            self.shadow.init[i] = true;
            self.shadow.owner[i] = self.tasklet;
        }
        Ok(())
    }
}

impl Machine {
    /// Run `program` with the sanitizer attached: every WRAM access is
    /// checked against `shadow` on behalf of `tasklet`. Semantically
    /// identical to [`Machine::run`] on clean programs; dirty programs
    /// abort with a sanitizer [`IsaError`].
    pub fn run_sanitized(
        &mut self,
        program: &[Inst],
        wram: &mut [u8],
        max_steps: u64,
        shadow: &mut WramShadow,
        tasklet: u8,
    ) -> Result<RunStats, IsaError> {
        let mut watch = shadow.tasklet(tasklet);
        self.run_watched(program, wram, max_steps, &mut watch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::assemble;

    #[test]
    fn clean_program_matches_plain_run() {
        let prog = assemble(
            "
            move r1, 77
            sw r1, r0, 8
            lw r2, r0, 8
            halt
            ",
        )
        .unwrap();
        let mut wram = vec![0u8; 16];
        let mut m = Machine::new();
        let plain = m.run(&prog, &mut wram.clone(), 100).unwrap();
        let mut shadow = WramShadow::new(wram.len());
        let mut m2 = Machine::new();
        let sanitized = m2
            .run_sanitized(&prog, &mut wram, 100, &mut shadow, 0)
            .unwrap();
        assert_eq!(plain, sanitized);
        assert_eq!(m.regs, m2.regs);
        assert!(shadow.is_initialized(8, 4));
        assert_eq!(shadow.stats.bytes_written, 4);
        assert_eq!(shadow.stats.bytes_read_checked, 4);
    }

    #[test]
    fn uninitialized_read_aborts() {
        let prog = assemble("lw r1, r0, 0\nhalt").unwrap();
        let mut wram = vec![0u8; 16];
        let mut shadow = WramShadow::new(wram.len());
        let err = Machine::new()
            .run_sanitized(&prog, &mut wram, 100, &mut shadow, 0)
            .unwrap_err();
        assert!(
            matches!(err, IsaError::UninitializedRead { addr: 0, len: 4 }),
            "{err}"
        );
    }

    #[test]
    fn partial_initialization_is_still_poisoned() {
        // sb writes 1 byte; the following word load touches 3 poisoned ones.
        let prog = assemble("move r1, 5\nsb r1, r0, 0\nlw r2, r0, 0\nhalt").unwrap();
        let mut wram = vec![0u8; 16];
        let mut shadow = WramShadow::new(wram.len());
        let err = Machine::new()
            .run_sanitized(&prog, &mut wram, 100, &mut shadow, 0)
            .unwrap_err();
        assert!(
            matches!(err, IsaError::UninitializedRead { addr: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn host_write_unpoisons() {
        let prog = assemble("lw r1, r0, 0\nhalt").unwrap();
        let mut wram = vec![0u8; 16];
        let mut shadow = WramShadow::new(wram.len());
        shadow.host_write(0, 8);
        Machine::new()
            .run_sanitized(&prog, &mut wram, 100, &mut shadow, 0)
            .unwrap();
        assert_eq!(shadow.stats.bytes_host_initialized, 8);
    }

    #[test]
    fn host_read_requires_initialization() {
        let mut shadow = WramShadow::new(16);
        shadow.host_write(0, 8);
        shadow.host_read(0, 8).unwrap();
        assert!(matches!(
            shadow.host_read(4, 8),
            Err(IsaError::UninitializedRead { addr: 8, .. })
        ));
    }

    #[test]
    fn cross_tasklet_write_without_barrier_is_a_race() {
        let write = assemble("move r1, 1\nsw r1, r0, 0\nhalt").unwrap();
        let mut wram = vec![0u8; 16];
        let mut shadow = WramShadow::new(wram.len());
        Machine::new()
            .run_sanitized(&write, &mut wram, 100, &mut shadow, 0)
            .unwrap();
        // Tasklet 1 stomps the same word with no intervening barrier.
        let err = Machine::new()
            .run_sanitized(&write, &mut wram, 100, &mut shadow, 1)
            .unwrap_err();
        assert!(
            matches!(
                err,
                IsaError::DataRace {
                    addr: 0,
                    tasklet: 1,
                    owner: 0
                }
            ),
            "{err}"
        );
        let msg = err.to_string();
        assert!(
            msg.contains("tasklet 1") && msg.contains("tasklet 0"),
            "{msg}"
        );
    }

    #[test]
    fn cross_tasklet_read_without_barrier_is_a_race() {
        let write = assemble("move r1, 1\nsw r1, r0, 0\nhalt").unwrap();
        let read = assemble("lw r1, r0, 0\nhalt").unwrap();
        let mut wram = vec![0u8; 16];
        let mut shadow = WramShadow::new(wram.len());
        Machine::new()
            .run_sanitized(&write, &mut wram, 100, &mut shadow, 0)
            .unwrap();
        let err = Machine::new()
            .run_sanitized(&read, &mut wram, 100, &mut shadow, 1)
            .unwrap_err();
        assert!(matches!(err, IsaError::DataRace { .. }), "{err}");
    }

    #[test]
    fn barrier_legitimizes_cross_tasklet_access() {
        let write = assemble("move r1, 1\nsw r1, r0, 0\nhalt").unwrap();
        let read = assemble("lw r1, r0, 0\nhalt").unwrap();
        let mut wram = vec![0u8; 16];
        let mut shadow = WramShadow::new(wram.len());
        Machine::new()
            .run_sanitized(&write, &mut wram, 100, &mut shadow, 0)
            .unwrap();
        shadow.barrier();
        Machine::new()
            .run_sanitized(&read, &mut wram, 100, &mut shadow, 1)
            .unwrap();
        assert_eq!(shadow.stats.barriers, 1);
    }

    #[test]
    fn same_tasklet_reuse_is_not_a_race() {
        let prog = assemble(
            "
            move r1, 3
            loop:
              sw r1, r0, 0
              lw r2, r0, 0
              sub r1, r1, 1, jnz loop
            halt
            ",
        )
        .unwrap();
        let mut wram = vec![0u8; 16];
        let mut shadow = WramShadow::new(wram.len());
        Machine::new()
            .run_sanitized(&prog, &mut wram, 100, &mut shadow, 5)
            .unwrap();
    }

    #[test]
    fn stats_merge() {
        let mut a = SanitizerStats {
            bytes_written: 4,
            barriers: 1,
            ..Default::default()
        };
        let b = SanitizerStats {
            bytes_written: 8,
            bytes_read_checked: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.bytes_written, 12);
        assert_eq!(a.bytes_read_checked, 2);
        assert_eq!(a.barriers, 1);
    }
}
