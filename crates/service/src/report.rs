//! Service-lifetime accounting and the conservation law the smoke tests
//! assert: every received request is accepted or rejected, and every
//! accepted request is answered exactly once — completed, deadline-missed,
//! or shed. Nothing is silently dropped.

use pim_host::{CacheStats, FaultReport};
use std::fmt::Write as _;

/// What the durability layer (cache WAL + request journal) did this
/// lifetime — zeroed and `enabled: false` when serving without a state
/// directory.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityReport {
    /// True when a persistent cache store and/or request journal was
    /// attached.
    pub enabled: bool,
    /// Unanswered tickets replayed into the admission queue at startup.
    pub recovered_requests: usize,
    /// Recovered tickets whose deadline expired during the downtime,
    /// reaped straight into `deadline_missed`.
    pub recovered_expired: usize,
    /// Older same-id admissions collapsed by replay idempotency.
    pub recovered_duplicates: usize,
    /// Cache entries re-admitted through the audit gate at startup.
    pub cache_recovered: usize,
    /// Decoded cache entries the audit gate refused (corrupt on disk).
    pub cache_recovery_rejected: usize,
    /// Unreadable records skipped across both files (checksum mismatch,
    /// undecodable payload) plus torn-tail truncations as byte counts.
    pub corrupt_records_skipped: usize,
    /// Bytes truncated off torn tails across cache WAL and journal.
    pub torn_tail_bytes: usize,
    /// Cache WAL records appended this lifetime.
    pub wal_appends: u64,
    /// Snapshot compactions this lifetime.
    pub wal_compactions: u64,
    /// Request-journal records appended this lifetime.
    pub journal_appends: u64,
    /// Durability I/O errors swallowed (persistence degrades, serving
    /// never stops).
    pub io_errors: u64,
}

/// Schema version stamped into every JSON document this workspace's tools
/// emit (`ServiceReport::to_json` and the `BENCH_*.json` bench emitters).
/// Bump on any incompatible shape change so downstream parsers can refuse
/// early instead of misreading.
pub const SCHEMA_VERSION: u32 = 1;

/// Exact (sample-sorted) latency percentile recorder.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples_ms: Vec<f64>,
}

impl LatencyRecorder {
    /// Record one completed request's latency, in milliseconds.
    pub fn push(&mut self, ms: f64) {
        self.samples_ms.push(ms);
    }

    /// Number of samples recorded.
    pub fn len(&self) -> usize {
        self.samples_ms.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples_ms.is_empty()
    }

    /// Nearest-rank percentile (`p` in 0..=100); 0.0 with no samples.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        let mut v = self.samples_ms.clone();
        v.sort_by(f64::total_cmp);
        let rank = ((p / 100.0) * v.len() as f64).ceil() as usize;
        v[rank.clamp(1, v.len()) - 1]
    }

    /// Mean latency; 0.0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.samples_ms.is_empty() {
            return 0.0;
        }
        self.samples_ms.iter().sum::<f64>() / self.samples_ms.len() as f64
    }
}

/// Everything one service lifetime did, emitted on exit (and by
/// `bench --serve` per load phase).
#[derive(Debug, Clone, Default)]
pub struct ServiceReport {
    /// Well-formed align requests received (including later-rejected ones).
    pub received: usize,
    /// Lines that failed to parse (answered with a `type=error` line).
    pub invalid: usize,
    /// Requests admitted to the queue.
    pub accepted: usize,
    /// Requests refused at admission (queue full, too large, draining).
    pub rejected: usize,
    /// Admitted requests displaced by higher-priority arrivals.
    pub shed: usize,
    /// Accepted requests answered in full.
    pub completed: usize,
    /// Accepted requests reaped at their deadline (queued or in flight).
    pub deadline_missed: usize,
    /// Pairs across accepted requests.
    pub pairs_accepted: usize,
    /// Pairs across completed requests.
    pub pairs_completed: usize,
    /// Job slots answered `cancelled` on deadline-missed requests.
    pub jobs_cancelled: usize,
    /// High-water mark of the admission queue depth.
    pub max_queue_depth: usize,
    /// Pairs answered from the result cache (hits + in-request duplicates).
    pub pairs_from_cache: usize,
    /// Fraction of service wall time the engine had work in flight.
    pub pim_utilization: f64,
    /// Lifetime result-cache counters (the cache persists across tickets).
    pub cache: CacheStats,
    /// Everything the recovery ladder did, summed over all tickets.
    pub fault: FaultReport,
    /// p50 latency over completed requests, milliseconds.
    pub latency_p50_ms: f64,
    /// p99 latency over completed requests, milliseconds.
    pub latency_p99_ms: f64,
    /// Mean latency over completed requests, milliseconds.
    pub latency_mean_ms: f64,
    /// Service wall time, seconds.
    pub wall_seconds: f64,
    /// True when the service exited through the graceful drain path.
    pub drained: bool,
    /// Crash-safety accounting (cache WAL + request journal).
    pub durability: DurabilityReport,
}

impl ServiceReport {
    /// The conservation law: `accepted == completed + deadline_missed +
    /// shed` and `received == accepted + rejected`. Every request gets
    /// exactly one terminal answer.
    pub fn consistent(&self) -> bool {
        self.accepted == self.completed + self.deadline_missed + self.shed
            && self.received == self.accepted + self.rejected
    }

    /// Completed pairs per second of service wall time.
    pub fn pairs_per_second(&self) -> f64 {
        if self.wall_seconds == 0.0 {
            return 0.0;
        }
        self.pairs_completed as f64 / self.wall_seconds
    }

    /// The report as a single JSON object (`schema_version` =
    /// [`SCHEMA_VERSION`]).
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\n  \"schema_version\": {SCHEMA_VERSION},\n  \"report\": \"serve\",\n  \
             \"received\": {},\n  \"invalid\": {},\n  \"accepted\": {},\n  \
             \"rejected\": {},\n  \"shed\": {},\n  \"completed\": {},\n  \
             \"deadline_missed\": {},\n  \"pairs_accepted\": {},\n  \
             \"pairs_completed\": {},\n  \"jobs_cancelled\": {},\n  \
             \"max_queue_depth\": {},\n  \"pairs_from_cache\": {},\n  \
             \"pim_utilization\": {:.4},\n  \"latency_p50_ms\": {:.3},\n  \
             \"latency_p99_ms\": {:.3},\n  \"latency_mean_ms\": {:.3},\n  \
             \"wall_seconds\": {:.3},\n  \"pairs_per_sec\": {:.3},\n  \
             \"drained\": {},\n  \"consistent\": {},\n",
            self.received,
            self.invalid,
            self.accepted,
            self.rejected,
            self.shed,
            self.completed,
            self.deadline_missed,
            self.pairs_accepted,
            self.pairs_completed,
            self.jobs_cancelled,
            self.max_queue_depth,
            self.pairs_from_cache,
            self.pim_utilization,
            self.latency_p50_ms,
            self.latency_p99_ms,
            self.latency_mean_ms,
            self.wall_seconds,
            self.pairs_per_second(),
            self.drained,
            self.consistent(),
        );
        let c = &self.cache;
        let _ = writeln!(
            s,
            "  \"cache\": {{\"lookups\": {}, \"hits\": {}, \"misses\": {}, \
             \"inserts\": {}, \"evictions\": {}, \"rejected_inserts\": {}, \
             \"hit_rate\": {:.4}, \"conserved\": {}}},",
            c.lookups,
            c.hits,
            c.misses,
            c.inserts,
            c.evictions,
            c.rejected_inserts,
            c.hit_rate(),
            c.conserved(),
        );
        let d = &self.durability;
        let _ = writeln!(
            s,
            "  \"durability\": {{\"enabled\": {}, \"recovered_requests\": {}, \
             \"recovered_expired\": {}, \"recovered_duplicates\": {}, \
             \"cache_recovered\": {}, \"cache_recovery_rejected\": {}, \
             \"corrupt_records_skipped\": {}, \"torn_tail_bytes\": {}, \
             \"wal_appends\": {}, \"wal_compactions\": {}, \
             \"journal_appends\": {}, \"io_errors\": {}}},",
            d.enabled,
            d.recovered_requests,
            d.recovered_expired,
            d.recovered_duplicates,
            d.cache_recovered,
            d.cache_recovery_rejected,
            d.corrupt_records_skipped,
            d.torn_tail_bytes,
            d.wal_appends,
            d.wal_compactions,
            d.journal_appends,
            d.io_errors,
        );
        let f = &self.fault;
        let _ = write!(
            s,
            "  \"fault\": {{\"dpu_faults\": {}, \"rank_failures\": {}, \
             \"corrupt_results\": {}, \"retried_jobs\": {}, \"quarantined\": {}, \
             \"dead_ranks\": {}, \"cpu_fallbacks\": {}, \"wasted_cycles\": {}, \
             \"watchdog_expired\": {}, \"silent_corruptions\": {}, \
             \"audit_checked\": {}, \"audit_failures\": {}, \
             \"budget_escalations\": {}, \"deadline_cancellations\": {}, \
             \"interrupted_jobs\": {}}}\n}}",
            f.dpu_faults,
            f.rank_failures,
            f.corrupt_results,
            f.retried_jobs,
            f.quarantined.len(),
            f.dead_ranks.len(),
            f.cpu_fallbacks,
            f.wasted_cycles,
            f.watchdog_expired,
            f.silent_corruptions,
            f.audit_checked,
            f.audit_failures,
            f.budget_escalations,
            f.deadline_cancellations,
            f.interrupted_jobs,
        );
        s
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "serve: {} received, {} accepted ({} rejected, {} shed), \
             {} completed, {} deadline-missed in {:.1}s \
             [p50 {:.1}ms, p99 {:.1}ms, {:.1} pairs/s], queue peak {}{}",
            self.received,
            self.accepted,
            self.rejected,
            self.shed,
            self.completed,
            self.deadline_missed,
            self.wall_seconds,
            self.latency_p50_ms,
            self.latency_p99_ms,
            self.pairs_per_second(),
            self.max_queue_depth,
            if self.drained {
                ", drained cleanly"
            } else {
                ""
            },
        );
        if self.cache.lookups > 0 {
            let _ = write!(
                s,
                ", cache {}/{} hits ({:.0}%)",
                self.cache.hits,
                self.cache.lookups,
                100.0 * self.cache.hit_rate(),
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn percentiles_are_nearest_rank() {
        let mut l = LatencyRecorder::default();
        assert_eq!(l.percentile(50.0), 0.0);
        assert_eq!(l.mean(), 0.0);
        for ms in [10.0, 20.0, 30.0, 40.0] {
            l.push(ms);
        }
        assert_eq!(l.len(), 4);
        assert_eq!(l.percentile(50.0), 20.0);
        assert_eq!(l.percentile(99.0), 40.0);
        assert_eq!(l.percentile(0.0), 10.0);
        assert!((l.mean() - 25.0).abs() < 1e-12);
    }

    #[test]
    fn conservation_law() {
        let mut r = ServiceReport {
            received: 10,
            accepted: 8,
            rejected: 2,
            completed: 5,
            deadline_missed: 2,
            shed: 1,
            ..Default::default()
        };
        assert!(r.consistent());
        r.completed = 6; // an answer duplicated or a shed lost
        assert!(!r.consistent());
    }

    #[test]
    fn json_report_parses_and_carries_schema_version() {
        let mut r = ServiceReport {
            received: 3,
            accepted: 3,
            completed: 3,
            pairs_completed: 12,
            wall_seconds: 2.0,
            drained: true,
            ..Default::default()
        };
        r.fault.cpu_fallbacks = 1;
        r.pairs_from_cache = 4;
        r.durability.enabled = true;
        r.durability.recovered_requests = 2;
        r.cache = CacheStats {
            lookups: 12,
            hits: 4,
            misses: 8,
            inserts: 8,
            evictions: 0,
            rejected_inserts: 0,
        };
        let v = Json::parse(&r.to_json()).unwrap();
        assert_eq!(v.get("pairs_from_cache").unwrap().as_u64(), Some(4));
        let c = v.get("cache").unwrap();
        assert_eq!(c.get("hits").unwrap().as_u64(), Some(4));
        assert_eq!(c.get("conserved").unwrap().as_bool(), Some(true));
        assert!(r.summary().contains("cache 4/12 hits"));
        assert_eq!(
            v.get("schema_version").unwrap().as_u64(),
            Some(SCHEMA_VERSION as u64)
        );
        assert_eq!(v.get("completed").unwrap().as_u64(), Some(3));
        let d = v.get("durability").unwrap();
        assert_eq!(d.get("enabled").unwrap().as_bool(), Some(true));
        assert_eq!(d.get("recovered_requests").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("consistent").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("pairs_per_sec").unwrap().as_f64(), Some(6.0));
        assert_eq!(
            v.get("fault")
                .unwrap()
                .get("cpu_fallbacks")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        assert!(r.summary().contains("3 completed"));
    }
}
