//! The NDJSON wire protocol the daemon speaks over its unix socket.
//!
//! One JSON object per line in each direction. Client lines:
//!
//! ```json
//! {"op":"align","id":"r1","priority":"interactive","deadline_ms":500,
//!  "pairs":[["ACGT","ACGA"],["GGGC","GGC"]]}
//! {"op":"stats"}
//! {"op":"drain"}
//! ```
//!
//! `op` defaults to `"align"`, `priority` to `"normal"`, and `deadline_ms`
//! to the daemon's default deadline (none unless configured). Daemon lines
//! (`type` discriminates):
//!
//! * `result` — terminal answer for an accepted request: `disposition`
//!   is `"ok"` or `"deadline-missed"`, `results` carries one entry per
//!   pair in input order (`status`, plus `score` and `cigar` when `ok`).
//! * `reject` — the request was not admitted (`reason`: `queue-full`,
//!   `too-large`, `draining`), with a `retry_after_ms` hint when retrying
//!   could help.
//! * `shed` — the request was admitted earlier but displaced by a
//!   higher-priority arrival under overload; it carries `retry_after_ms`.
//! * `error` — the line could not be parsed.
//! * `draining` — a drain request was acknowledged.
//! * `stats` — a live snapshot (queue depth, cache hit rate, per-backend
//!   pair counts) answered inline without draining or blocking service.
//!
//! Every accepted request gets exactly one terminal `result` or `shed`
//! line — the conservation law [`crate::report::ServiceReport::consistent`]
//! checks.

use crate::json::{escape, Json};
use dpu_kernel::layout::{JobResult, JobStatus};
use nw_core::seq::DnaSeq;
use pim_host::CacheStats;
use std::fmt::Write as _;

/// Longest accepted request id; bounds response sizes.
pub const MAX_ID_LEN: usize = 128;

/// Admission priority classes, highest first. Shedding removes the
/// youngest request of the lowest populated class that is strictly lower
/// than the arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Latency-sensitive foreground work; never shed.
    Interactive,
    /// The default class.
    Normal,
    /// Throughput work that tolerates displacement under overload.
    Batch,
}

impl Priority {
    /// Number of classes.
    pub const COUNT: usize = 3;

    /// Class index, 0 = highest priority.
    pub fn index(self) -> usize {
        match self {
            Priority::Interactive => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            Priority::Interactive => "interactive",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Parse a wire name.
    pub fn parse(s: &str) -> Option<Priority> {
        match s {
            "interactive" => Some(Priority::Interactive),
            "normal" => Some(Priority::Normal),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// One parsed alignment request.
#[derive(Debug, Clone)]
pub struct AlignRequest {
    /// Client-chosen id, echoed on every response for this request.
    pub id: String,
    /// Admission class.
    pub priority: Priority,
    /// Wall-clock deadline relative to arrival, in milliseconds.
    pub deadline_ms: Option<u64>,
    /// The pairs to align, in response order.
    pub pairs: Vec<(DnaSeq, DnaSeq)>,
}

/// One parsed client line.
#[derive(Debug)]
pub enum ClientLine {
    /// An alignment request.
    Align(AlignRequest),
    /// A live telemetry snapshot; answered inline, never queued.
    Stats,
    /// Begin a graceful drain: stop admitting, finish everything accepted,
    /// then exit.
    Drain,
}

/// Parse one client line.
pub fn parse_line(line: &str) -> Result<ClientLine, String> {
    let v = Json::parse(line)?;
    match v.get("op").and_then(Json::as_str) {
        Some("drain") => return Ok(ClientLine::Drain),
        Some("stats") => return Ok(ClientLine::Stats),
        Some("align") | None => {}
        Some(op) => return Err(format!("unknown op {op:?}")),
    }
    let id = v
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"id\"".to_string())?
        .to_string();
    if id.len() > MAX_ID_LEN {
        return Err(format!("id longer than {MAX_ID_LEN} bytes"));
    }
    let priority = match v.get("priority") {
        None => Priority::Normal,
        Some(p) => p.as_str().and_then(Priority::parse).ok_or_else(|| {
            "priority must be \"interactive\", \"normal\" or \"batch\"".to_string()
        })?,
    };
    let deadline_ms = match v.get("deadline_ms") {
        None | Some(Json::Null) => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or_else(|| "deadline_ms must be a non-negative integer".to_string())?,
        ),
    };
    let raw = v
        .get("pairs")
        .and_then(Json::as_arr)
        .ok_or_else(|| "missing array field \"pairs\"".to_string())?;
    let mut pairs = Vec::with_capacity(raw.len());
    for (k, entry) in raw.iter().enumerate() {
        let pair = entry
            .as_arr()
            .filter(|p| p.len() == 2)
            .ok_or_else(|| format!("pairs[{k}] must be a [query, target] pair"))?;
        let a = pair[0]
            .as_str()
            .ok_or_else(|| format!("pairs[{k}] query must be a string"))?;
        let b = pair[1]
            .as_str()
            .ok_or_else(|| format!("pairs[{k}] target must be a string"))?;
        let a = DnaSeq::from_ascii(a.as_bytes()).map_err(|e| format!("pairs[{k}] query: {e}"))?;
        let b = DnaSeq::from_ascii(b.as_bytes()).map_err(|e| format!("pairs[{k}] target: {e}"))?;
        pairs.push((a, b));
    }
    Ok(ClientLine::Align(AlignRequest {
        id,
        priority,
        deadline_ms,
        pairs,
    }))
}

/// Wire name of a job status.
pub fn status_str(s: JobStatus) -> &'static str {
    match s {
        JobStatus::Ok => "ok",
        JobStatus::OutOfBand => "out-of-band",
        JobStatus::CigarOverflow => "cigar-overflow",
        JobStatus::Cancelled => "cancelled",
    }
}

/// Build a `reject` response line.
pub fn reject_line(id: &str, reason: &str, retry_after_ms: Option<u64>) -> String {
    let mut s = format!(
        "{{\"type\":\"reject\",\"id\":\"{}\",\"reason\":\"{}\"",
        escape(id),
        escape(reason)
    );
    if let Some(ms) = retry_after_ms {
        let _ = write!(s, ",\"retry_after_ms\":{ms}");
    }
    s.push('}');
    s
}

/// Build a `shed` response line (sent to a displaced request).
pub fn shed_line(id: &str, retry_after_ms: u64) -> String {
    format!(
        "{{\"type\":\"shed\",\"id\":\"{}\",\"retry_after_ms\":{retry_after_ms}}}",
        escape(id)
    )
}

/// Build an `error` response line (unparseable input).
pub fn error_line(msg: &str) -> String {
    format!("{{\"type\":\"error\",\"error\":\"{}\"}}", escape(msg))
}

/// Build the `draining` acknowledgement line.
pub fn drain_ack_line() -> String {
    "{\"type\":\"draining\"}".to_string()
}

/// A live point-in-time view of the daemon, answered to `{"op":"stats"}`
/// without draining or blocking service.
#[derive(Debug, Clone, Default)]
pub struct StatsSnapshot {
    /// True once a drain began (new requests are rejected).
    pub draining: bool,
    /// Requests waiting in the admission queue.
    pub queue_depth: usize,
    /// Pairs across queued requests.
    pub queued_pairs: usize,
    /// Requests dispatched into the engine and not yet answered.
    pub active_tickets: usize,
    /// Well-formed align requests received so far.
    pub received: usize,
    /// Requests answered in full so far.
    pub completed: usize,
    /// Pairs across completed requests.
    pub pairs_completed: usize,
    /// Pairs answered from the result cache (hits + in-request duplicates).
    pub pairs_from_cache: usize,
    /// Jobs the recovery ladder completed on the CPU fallback aligner.
    pub cpu_fallback_jobs: usize,
    /// Fraction of service wall time the engine had work in flight.
    pub pim_utilization: f64,
    /// EWMA of completed-request latency, milliseconds.
    pub ewma_service_ms: f64,
    /// Results currently resident in the cache.
    pub cache_len: usize,
    /// Cache capacity (0 = caching disabled).
    pub cache_capacity: usize,
    /// Lifetime cache counters.
    pub cache: CacheStats,
    /// Crash-recovered tickets replayed into the queue at startup (0
    /// when serving without a state directory).
    pub recovered_requests: usize,
}

/// Build a `stats` response line.
pub fn stats_line(s: &StatsSnapshot) -> String {
    let c = &s.cache;
    let pim_pairs = s
        .pairs_completed
        .saturating_sub(s.pairs_from_cache)
        .saturating_sub(s.cpu_fallback_jobs);
    format!(
        "{{\"type\":\"stats\",\"draining\":{},\"queue_depth\":{},\"queued_pairs\":{},\
         \"active_tickets\":{},\"received\":{},\"completed\":{},\"pairs_completed\":{},\
         \"recovered_requests\":{},\
         \"ewma_service_ms\":{:.3},\
         \"cache\":{{\"len\":{},\"capacity\":{},\"lookups\":{},\"hits\":{},\"misses\":{},\
         \"inserts\":{},\"evictions\":{},\"rejected_inserts\":{},\"hit_rate\":{:.4}}},\
         \"backends\":[{{\"name\":\"pim\",\"pairs\":{pim_pairs},\"utilization\":{:.4}}},\
         {{\"name\":\"cpu-fallback\",\"pairs\":{}}},\
         {{\"name\":\"cache\",\"pairs\":{}}}]}}",
        s.draining,
        s.queue_depth,
        s.queued_pairs,
        s.active_tickets,
        s.received,
        s.completed,
        s.pairs_completed,
        s.recovered_requests,
        s.ewma_service_ms,
        s.cache_len,
        s.cache_capacity,
        c.lookups,
        c.hits,
        c.misses,
        c.inserts,
        c.evictions,
        c.rejected_inserts,
        c.hit_rate(),
        s.pim_utilization,
        s.cpu_fallback_jobs,
        s.pairs_from_cache,
    )
}

/// Build a terminal `result` response line. `deadline_missed` selects the
/// disposition; abandoned jobs appear with status `cancelled`.
pub fn result_line(
    id: &str,
    deadline_missed: bool,
    results: &[JobResult],
    latency_ms: f64,
) -> String {
    let mut s = format!(
        "{{\"type\":\"result\",\"id\":\"{}\",\"disposition\":\"{}\",\"latency_ms\":{:.3},\"results\":[",
        escape(id),
        if deadline_missed { "deadline-missed" } else { "ok" },
        latency_ms,
    );
    for (k, r) in results.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        match r.status {
            JobStatus::Ok => {
                let _ = write!(
                    s,
                    "{{\"status\":\"ok\",\"score\":{},\"cigar\":\"{}\"}}",
                    r.score, r.cigar
                );
            }
            st => {
                let _ = write!(s, "{{\"status\":\"{}\"}}", status_str(st));
            }
        }
    }
    s.push_str("]}");
    s
}

/// Build an `align` request line (the client half of the protocol).
pub fn align_line(
    id: &str,
    priority: Priority,
    deadline_ms: Option<u64>,
    pairs: &[(String, String)],
) -> String {
    let mut s = format!(
        "{{\"op\":\"align\",\"id\":\"{}\",\"priority\":\"{}\"",
        escape(id),
        priority.as_str()
    );
    if let Some(ms) = deadline_ms {
        let _ = write!(s, ",\"deadline_ms\":{ms}");
    }
    s.push_str(",\"pairs\":[");
    for (k, (a, b)) in pairs.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(s, "[\"{}\",\"{}\"]", escape(a), escape(b));
    }
    s.push_str("]}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::cigar::Cigar;

    #[test]
    fn align_line_round_trips() {
        let line = align_line(
            "req-1",
            Priority::Interactive,
            Some(250),
            &[("ACGT".into(), "ACGA".into()), ("GG".into(), "GGC".into())],
        );
        let ClientLine::Align(req) = parse_line(&line).unwrap() else {
            panic!("expected align");
        };
        assert_eq!(req.id, "req-1");
        assert_eq!(req.priority, Priority::Interactive);
        assert_eq!(req.deadline_ms, Some(250));
        assert_eq!(req.pairs.len(), 2);
        assert_eq!(req.pairs[0].0.to_ascii(), b"ACGT");
        assert_eq!(req.pairs[1].1.to_ascii(), b"GGC");
    }

    #[test]
    fn defaults_and_drain() {
        let ClientLine::Align(req) = parse_line(r#"{"id":"x","pairs":[]}"#).unwrap() else {
            panic!("expected align");
        };
        assert_eq!(req.priority, Priority::Normal);
        assert_eq!(req.deadline_ms, None);
        assert!(req.pairs.is_empty());
        assert!(matches!(
            parse_line(r#"{"op":"drain"}"#).unwrap(),
            ClientLine::Drain
        ));
        assert!(matches!(
            parse_line(r#"{"op":"stats"}"#).unwrap(),
            ClientLine::Stats
        ));
    }

    #[test]
    fn stats_line_is_valid_json_and_splits_backends() {
        use crate::json::Json;
        let snap = StatsSnapshot {
            queue_depth: 2,
            queued_pairs: 9,
            active_tickets: 1,
            received: 20,
            completed: 15,
            pairs_completed: 100,
            pairs_from_cache: 40,
            cpu_fallback_jobs: 5,
            pim_utilization: 0.5,
            ewma_service_ms: 12.0,
            cache_len: 30,
            cache_capacity: 64,
            cache: CacheStats {
                lookups: 100,
                hits: 40,
                misses: 60,
                inserts: 55,
                evictions: 10,
                rejected_inserts: 5,
            },
            ..StatsSnapshot::default()
        };
        let v = Json::parse(&stats_line(&snap)).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("stats"));
        assert_eq!(v.get("queue_depth").unwrap().as_u64(), Some(2));
        let cache = v.get("cache").unwrap();
        assert_eq!(cache.get("hits").unwrap().as_u64(), Some(40));
        assert_eq!(cache.get("hit_rate").unwrap().as_f64(), Some(0.4));
        let backends = v.get("backends").unwrap().as_arr().unwrap();
        assert_eq!(backends.len(), 3);
        // pim pairs = completed - cached - cpu-fallback.
        assert_eq!(backends[0].get("name").unwrap().as_str(), Some("pim"));
        assert_eq!(backends[0].get("pairs").unwrap().as_u64(), Some(55));
        assert_eq!(backends[1].get("pairs").unwrap().as_u64(), Some(5));
        assert_eq!(backends[2].get("pairs").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn rejects_bad_requests() {
        for bad in [
            "not json",
            r#"{"pairs":[]}"#,
            r#"{"id":"x"}"#,
            r#"{"id":"x","pairs":[["AC"]]}"#,
            r#"{"id":"x","pairs":[["AC",7]]}"#,
            r#"{"id":"x","pairs":[["AXC","A"]]}"#,
            r#"{"id":"x","priority":"urgent","pairs":[]}"#,
            r#"{"id":"x","deadline_ms":-5,"pairs":[]}"#,
            r#"{"op":"reboot"}"#,
        ] {
            assert!(parse_line(bad).is_err(), "{bad:?} should fail");
        }
        let long = format!(r#"{{"id":"{}","pairs":[]}}"#, "i".repeat(MAX_ID_LEN + 1));
        assert!(parse_line(&long).is_err());
    }

    #[test]
    fn response_lines_are_valid_json() {
        use crate::json::Json;
        let ok = JobResult {
            status: JobStatus::Ok,
            score: -17,
            cigar: Cigar::new(),
        };
        let cancelled = JobResult {
            status: JobStatus::Cancelled,
            score: 0,
            cigar: Cigar::new(),
        };
        let line = result_line("a\"b", true, &[ok, cancelled], 12.5);
        let v = Json::parse(&line).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("a\"b"));
        assert_eq!(
            v.get("disposition").unwrap().as_str(),
            Some("deadline-missed")
        );
        let rs = v.get("results").unwrap().as_arr().unwrap();
        assert_eq!(rs[0].get("score").unwrap().as_f64(), Some(-17.0));
        assert_eq!(rs[1].get("status").unwrap().as_str(), Some("cancelled"));

        for line in [
            reject_line("x", "queue-full", Some(40)),
            reject_line("x", "draining", None),
            shed_line("x", 75),
            error_line("bad \"line\""),
            drain_ack_line(),
        ] {
            Json::parse(&line).unwrap();
        }
        let v = Json::parse(&reject_line("x", "queue-full", Some(40))).unwrap();
        assert_eq!(v.get("retry_after_ms").unwrap().as_u64(), Some(40));
    }

    #[test]
    fn priority_order_and_names() {
        assert!(Priority::Interactive < Priority::Normal);
        assert!(Priority::Normal < Priority::Batch);
        for p in [Priority::Interactive, Priority::Normal, Priority::Batch] {
            assert_eq!(Priority::parse(p.as_str()), Some(p));
            assert!(p.index() < Priority::COUNT);
        }
        assert_eq!(Priority::parse("bogus"), None);
    }
}
