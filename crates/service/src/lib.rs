#![warn(missing_docs)]

//! # upmem-nw-service — the overload-robust alignment service
//!
//! A persistent daemon over the simulated PiM server: clients connect to a
//! unix socket, send newline-delimited JSON alignment requests, and get
//! exactly one terminal answer per request — a result, an explicit
//! rejection, or an explicit shed notice. The daemon runs on the
//! non-draining engine ([`pim_host::persistent`]), so rank workers,
//! quarantine state, and the whole fault-recovery ladder stay hot across
//! requests.
//!
//! * [`proto`] — the NDJSON wire protocol (requests, responses, priority
//!   classes).
//! * [`queue`] — the bounded priority admission queue: backpressure and
//!   load shedding live here.
//! * [`daemon`] — the accept/drive loop, deadline reaping, and graceful
//!   drain.
//! * [`report`] — service-lifetime accounting and its conservation law:
//!   `accepted == completed + deadline_missed + shed`.
//! * [`journal`] — the crash-safe request journal: admitted-but-unanswered
//!   requests replay after a `kill -9`, so the conservation law balances
//!   across process lifetimes.
//! * [`client`] — a blocking client used by tests, the ci smoke, and
//!   `bench --serve`.
//! * [`json`] — the dependency-free JSON parser/emitter underneath it all.

pub mod client;
pub mod daemon;
pub mod journal;
pub mod json;
pub mod proto;
pub mod queue;
pub mod report;

pub use client::{Client, RetryOutcome, RetryPolicy};
pub use daemon::{run_serve, ServeError, ServeOptions};
pub use journal::{DoneKind, RecoveredTicket, RequestJournal};
pub use proto::{AlignRequest, ClientLine, Priority};
pub use queue::{Admission, AdmissionQueue, Queued};
pub use report::{LatencyRecorder, ServiceReport, SCHEMA_VERSION};
