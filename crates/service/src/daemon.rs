//! The persistent alignment daemon: a unix-socket NDJSON server over the
//! non-draining engine ([`pim_host::persistent`]).
//!
//! Thread shape:
//!
//! ```text
//!   acceptor thread ──spawns──▶ one reader thread per connection
//!        │                            │  Event::Line
//!        │ Event::Conn(writer)        ▼
//!        └──────────────▶ mpsc ─▶ driver loop (this thread, owns EngineCtl)
//!                                      │ admission → queue → submit/pump
//!                                      └─▶ response writes per connection
//! ```
//!
//! The driver loop is single-threaded and owns everything: admission
//! decisions, the bounded [`AdmissionQueue`], the engine handle, and the
//! response writers — so admission, shedding, and accounting need no
//! locks and the conservation law is easy to audit.
//!
//! Robustness properties:
//!
//! * **Admission control** — arrivals past the queue bounds are rejected
//!   *explicitly* with a `retry_after_ms` hint derived from the measured
//!   service time and the current backlog; queue memory stays bounded.
//! * **Load shedding** — under sustained overload a higher-priority
//!   arrival displaces the youngest lowest-priority queued request, which
//!   is answered with an explicit `shed` line.
//! * **Deadlines** — a request expired while queued is reaped (answered
//!   `deadline-missed` with all-`cancelled` results); one expired while in
//!   flight is cancelled through the engine, which abandons unfinished
//!   jobs with explicit accounting.
//! * **Graceful drain** — on SIGTERM/SIGINT (via [`pim_host::interrupt`])
//!   or a `{"op":"drain"}` request: stop accepting connections, reject new
//!   requests, finish (or deadline-out) everything accepted, answer every
//!   client, then return the final [`ServiceReport`].
//! * **Result caching** — a content-addressed [`ResultCache`] persists
//!   across tickets: at dispatch each request is pre-passed against the
//!   cache, an all-hit request is answered without an engine ticket, and a
//!   partial hit submits only the misses. Computed results enter the cache
//!   behind the audit gate (never an unverified or failed result).
//! * **Live telemetry** — `{"op":"stats"}` answers inline with queue
//!   depth, cache hit rate, and per-backend pair counts, without draining.
//! * **Crash-safe durability** (opt-in via `state_dir`) — the result cache
//!   persists through a checksummed WAL + snapshot ([`pim_host::wal`]),
//!   and every admitted request is journaled before any acknowledgment
//!   ([`crate::journal`]): after a `kill -9`, restart recovers the cache
//!   through the audit gate and replays unanswered tickets, so the
//!   conservation law balances across process lifetimes.

use crate::journal::{unix_ms_now, DoneKind, JournalScan, RecoveredTicket, RequestJournal};
use crate::proto::{self, AlignRequest, ClientLine, StatsSnapshot};
use crate::queue::{Admission, AdmissionQueue, Queued};
use crate::report::{LatencyRecorder, ServiceReport};
use dpu_kernel::layout::{JobResult, JobStatus, KernelParams};
use dpu_kernel::NwKernel;
use nw_core::cigar::Cigar;
use nw_core::seq::DnaSeq;
use nw_core::ScoringScheme;
use pim_host::cache::{self as result_cache, CachePrepass};
use pim_host::{
    with_persistent_engine, CacheRecovery, CacheStore, DeadlinePolicy, EngineCtl, RecoveryConfig,
    ResultCache, StoreOptions, TicketDone,
};
use pim_sim::isa::InterpMode;
use pim_sim::{FaultPlan, PimServer, ServerConfig};
use std::collections::HashMap;
use std::fmt;
use std::io::{self, BufRead, BufReader, Write as _};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Everything `upmem-nw serve` configures.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Unix socket path to listen on (an existing file is replaced).
    pub socket: PathBuf,
    /// Simulated ranks.
    pub ranks: usize,
    /// DPUs per rank.
    pub dpus: usize,
    /// Band width (rounded up to a multiple of 16).
    pub band: usize,
    /// Per-rank FIFO depth of the persistent engine.
    pub fifo_depth: usize,
    /// Simulation threads per rank worker (0 = auto).
    pub sim_threads: usize,
    /// PiM attempts per job before CPU fallback.
    pub retries: usize,
    /// Consecutive faults before a DPU is quarantined.
    pub quarantine: usize,
    /// Audit every returned alignment (the silent-corruption defense).
    pub audit: bool,
    /// Stall deadline: with work in flight and no completion for this many
    /// seconds, cancel the ranks so hung launches requeue (≤ 0 disables).
    pub stall_deadline_seconds: f64,
    /// Per-DPU watchdog cycle budget (0 = off).
    pub watchdog_cycles: u64,
    /// Admission bound: queued requests.
    pub queue_requests: usize,
    /// Admission bound: total queued pairs.
    pub queue_pairs: usize,
    /// Requests dispatched into the engine concurrently. 0 pauses
    /// dispatch entirely (admission-only mode, used by tests).
    pub max_open_tickets: usize,
    /// Largest accepted request, in pairs (larger ones are rejected
    /// `too-large`).
    pub max_pairs_per_request: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline_ms: Option<u64>,
    /// Fault injection for the simulated server (chaos serving).
    pub fault: FaultPlan,
    /// Interpreter tier for the kernel's cost measurement
    /// (checked/fast/jit; bit-identical results by contract).
    pub interp_mode: InterpMode,
    /// Content-addressed result cache capacity, in results (0 disables).
    /// The cache persists across tickets for the daemon's lifetime:
    /// repeated pairs are answered without touching the engine.
    pub cache_capacity: usize,
    /// Durability state directory (`None` = durability off). Holds the
    /// request journal and — unless `cache_path` overrides — the result
    /// cache's WAL and snapshot. Restarting against the same directory
    /// recovers the cache and replays unanswered requests.
    pub state_dir: Option<PathBuf>,
    /// Separate directory for the persistent result cache; defaults to
    /// `state_dir`.
    pub cache_path: Option<PathBuf>,
    /// Cache-WAL appends between snapshot compactions.
    pub compact_every: usize,
    /// `fdatasync` every WAL/journal append. Process-crash (`kill -9`)
    /// durability needs no fsync — written pages survive in the OS cache;
    /// this buys host-crash durability at a large per-append cost.
    pub fsync: bool,
    /// Largest accepted request line, in bytes. Longer lines are discarded
    /// in bounded chunks — never buffered whole — and answered with an
    /// error, so a single connection cannot balloon daemon memory.
    pub max_line_bytes: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            socket: PathBuf::from("/tmp/upmem-nw.sock"),
            ranks: 2,
            dpus: 8,
            band: 64,
            fifo_depth: 2,
            sim_threads: 0,
            retries: 3,
            quarantine: 3,
            audit: true,
            stall_deadline_seconds: 5.0,
            watchdog_cycles: 0,
            queue_requests: 64,
            queue_pairs: 4096,
            max_open_tickets: 8,
            max_pairs_per_request: 1024,
            default_deadline_ms: None,
            fault: FaultPlan::default(),
            interp_mode: InterpMode::default(),
            cache_capacity: 4096,
            state_dir: None,
            cache_path: None,
            compact_every: 256,
            fsync: false,
            max_line_bytes: 16 << 20,
        }
    }
}

/// Daemon startup failure.
#[derive(Debug)]
pub enum ServeError {
    /// Binding or configuring the listening socket failed.
    Io(io::Error),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "socket setup failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<io::Error> for ServeError {
    fn from(e: io::Error) -> Self {
        ServeError::Io(e)
    }
}

enum Event {
    Conn(u64, UnixStream),
    Line(u64, String),
    Oversized(u64),
    Gone(u64),
}

/// The `conn` id of replayed (crash-recovered) requests: their original
/// connection died with the previous process, so responses go to no one.
/// `respond` on an unknown conn is already a no-op; this id is never
/// handed out by the acceptor.
const NO_CONN: u64 = u64::MAX;

/// Durability state opened before the engine starts, moved into the
/// driver: the (possibly persistent) cache plus what recovery found.
struct DurabilityInit {
    cache: ResultCache,
    cache_recovery: CacheRecovery,
    journal: Option<RequestJournal>,
    recovered: Vec<RecoveredTicket>,
    scan: JournalScan,
    enabled: bool,
}

fn open_durability(opts: &ServeOptions) -> io::Result<DurabilityInit> {
    let mut enabled = false;
    let cache_dir = opts.cache_path.as_ref().or(opts.state_dir.as_ref());
    let (cache, cache_recovery) = match cache_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let store = CacheStore::open(
                dir,
                StoreOptions {
                    compact_every: opts.compact_every.max(1),
                    sync_data: opts.fsync,
                },
            )?;
            enabled = true;
            ResultCache::with_store(opts.cache_capacity, store)
        }
        None => (
            ResultCache::new(opts.cache_capacity),
            CacheRecovery::default(),
        ),
    };
    let (journal, recovered, scan) = match &opts.state_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            let (j, t, s) = RequestJournal::open(&dir.join("requests.journal"), opts.fsync)?;
            enabled = true;
            (Some(j), t, s)
        }
        None => (None, Vec::new(), JournalScan::default()),
    };
    Ok(DurabilityInit {
        cache,
        cache_recovery,
        journal,
        recovered,
        scan,
        enabled,
    })
}

/// Run the daemon until drained (SIGTERM/SIGINT or a `drain` request).
/// Returns the service-lifetime report; every accepted request has been
/// answered when this returns.
pub fn run_serve(opts: &ServeOptions) -> Result<ServiceReport, ServeError> {
    // Recover durable state *before* binding the socket: replayed tickets
    // are queued before any new connection can race them.
    let durability = open_durability(opts)?;
    let _ = std::fs::remove_file(&opts.socket);
    let listener = UnixListener::bind(&opts.socket)?;
    listener.set_nonblocking(true)?;
    let stop_accept = Arc::new(AtomicBool::new(false));
    let (ev_tx, ev_rx) = channel::<Event>();
    let acceptor = {
        let stop = stop_accept.clone();
        let max_line = opts.max_line_bytes.max(1024);
        thread::spawn(move || accept_loop(listener, stop, ev_tx, max_line))
    };

    let ranks = opts.ranks.max(1);
    let mut server_cfg = ServerConfig::with_ranks(ranks);
    server_cfg.dpus_per_rank = opts.dpus.max(1);
    server_cfg.fault = opts.fault.clone();
    server_cfg.dpu.watchdog_cycles = opts.watchdog_cycles;
    let mut server = PimServer::new(server_cfg);
    let params = KernelParams {
        band: opts.band.next_multiple_of(16).max(16),
        scheme: ScoringScheme::default(),
        score_only: false,
    };
    let kernel = NwKernel::paper_default().with_interp_mode(opts.interp_mode);
    let rcfg = RecoveryConfig {
        max_attempts: opts.retries.max(1),
        quarantine_after: opts.quarantine.max(1),
        deadline: DeadlinePolicy::after_seconds(opts.stall_deadline_seconds),
        audit: opts.audit,
        ..RecoveryConfig::default()
    };

    let started = Instant::now();
    let mut report = with_persistent_engine(
        &mut server,
        &kernel,
        params,
        &rcfg,
        opts.fifo_depth.max(1),
        opts.sim_threads,
        |ctl| drive(ctl, opts, &ev_rx, &stop_accept, durability),
    );
    stop_accept.store(true, Ordering::SeqCst);
    let _ = acceptor.join();
    let _ = std::fs::remove_file(&opts.socket);
    report.wall_seconds = started.elapsed().as_secs_f64();
    Ok(report)
}

fn accept_loop(listener: UnixListener, stop: Arc<AtomicBool>, tx: Sender<Event>, max_line: usize) {
    let mut next_conn = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _addr)) => {
                let conn = next_conn;
                next_conn += 1;
                let Ok(writer) = stream.try_clone() else {
                    continue;
                };
                if tx.send(Event::Conn(conn, writer)).is_err() {
                    return;
                }
                let tx = tx.clone();
                thread::spawn(move || {
                    let mut reader = BufReader::new(stream);
                    let mut buf = Vec::new();
                    loop {
                        buf.clear();
                        match read_bounded_line(&mut reader, &mut buf, max_line) {
                            Ok(LineRead::Eof) | Err(_) => break,
                            Ok(LineRead::Line) => {
                                let line = String::from_utf8_lossy(&buf).into_owned();
                                if tx.send(Event::Line(conn, line)).is_err() {
                                    return;
                                }
                            }
                            Ok(LineRead::Oversized) => {
                                if tx.send(Event::Oversized(conn)).is_err() {
                                    return;
                                }
                            }
                        }
                    }
                    let _ = tx.send(Event::Gone(conn));
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => return,
        }
    }
}

enum LineRead {
    Eof,
    Line,
    Oversized,
}

/// Read one `\n`-terminated line into `buf`, buffering at most `limit`
/// bytes: the tail of an oversized line is discarded chunk by chunk
/// through the reader's fixed buffer, so peak memory per connection stays
/// `limit`-bounded no matter what arrives on the wire.
fn read_bounded_line<R: BufRead>(
    r: &mut R,
    buf: &mut Vec<u8>,
    limit: usize,
) -> io::Result<LineRead> {
    let n = io::Read::take(&mut *r, limit as u64 + 1).read_until(b'\n', buf)?;
    if n == 0 {
        return Ok(LineRead::Eof);
    }
    if buf.last() == Some(&b'\n') || n <= limit {
        return Ok(LineRead::Line);
    }
    buf.clear();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(LineRead::Oversized);
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(i) => {
                r.consume(i + 1);
                return Ok(LineRead::Oversized);
            }
            None => {
                let len = chunk.len();
                r.consume(len);
            }
        }
    }
}

/// One dispatched request, keyed by its engine ticket. Only the cache
/// misses were submitted; `pre` carries the hit-filled slots, the keys for
/// post-compute inserts, and the in-request duplicates to serve at finish.
struct Active {
    conn: u64,
    id: String,
    arrival: Instant,
    deadline: Option<Instant>,
    pairs: usize,
    cancel_sent: bool,
    req_pairs: Vec<(DnaSeq, DnaSeq)>,
    pre: CachePrepass,
    seq: Option<u64>,
}

struct Driver<'a> {
    opts: &'a ServeOptions,
    writers: HashMap<u64, UnixStream>,
    queue: AdmissionQueue,
    active: HashMap<u64, Active>,
    rep: ServiceReport,
    lat: LatencyRecorder,
    /// EWMA of completed-request latency, the basis of retry-after hints.
    ewma_ms: f64,
    draining: bool,
    /// Persistent result cache; outlives every ticket (and, with a store
    /// attached, every process lifetime).
    cache: ResultCache,
    /// Request journal, when durability is on.
    journal: Option<RequestJournal>,
    /// Key ingredients — must match the engine's `KernelParams` exactly or
    /// cached results would not be bit-identical to computed ones.
    scheme: ScoringScheme,
    band: usize,
    /// Engine busy-time accounting for the `stats` utilization figure.
    started: Instant,
    busy_seconds: f64,
    busy_since: Option<Instant>,
}

fn drive(
    ctl: &mut EngineCtl,
    opts: &ServeOptions,
    ev_rx: &Receiver<Event>,
    stop_accept: &AtomicBool,
    durability: DurabilityInit,
) -> ServiceReport {
    let DurabilityInit {
        cache,
        cache_recovery,
        journal,
        recovered,
        scan,
        enabled,
    } = durability;
    let mut d = Driver {
        opts,
        writers: HashMap::new(),
        queue: AdmissionQueue::new(opts.queue_requests, opts.queue_pairs),
        active: HashMap::new(),
        rep: ServiceReport::default(),
        lat: LatencyRecorder::default(),
        ewma_ms: 0.0,
        draining: false,
        cache,
        journal,
        scheme: ScoringScheme::default(),
        band: opts.band.next_multiple_of(16).max(16),
        started: Instant::now(),
        busy_seconds: 0.0,
        busy_since: None,
    };
    d.rep.durability.enabled = enabled;
    d.rep.durability.recovered_duplicates = scan.duplicates;
    d.rep.durability.cache_recovered = cache_recovery.recovered;
    d.rep.durability.cache_recovery_rejected = cache_recovery.rejected;
    d.rep.durability.corrupt_records_skipped =
        cache_recovery.corrupt_skipped + scan.corrupt_skipped;
    d.rep.durability.torn_tail_bytes = cache_recovery.torn_tail_bytes + scan.torn_tail_bytes;
    d.replay_recovered(recovered);
    loop {
        while let Ok(ev) = ev_rx.try_recv() {
            d.handle_event(ev);
        }
        if !d.draining && pim_host::interrupt::requested() {
            d.draining = true;
        }
        if d.draining {
            stop_accept.store(true, Ordering::SeqCst);
        }
        d.dispatch(ctl);
        if ctl.idle() && d.queue.is_empty() && d.active.is_empty() {
            if d.draining {
                break;
            }
            // Quiet: block on the event channel instead of spinning.
            match ev_rx.recv_timeout(Duration::from_millis(50)) {
                Ok(ev) => d.handle_event(ev),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            continue;
        }
        for td in ctl.pump(Duration::from_millis(5)) {
            d.finish_ticket(td);
        }
    }
    // Close every connection for real: shutting the sockets down unblocks
    // the per-connection reader threads (parked in `read_line`) and gives
    // clients their EOF — otherwise the reader threads would keep the
    // sockets half-open forever.
    for w in d.writers.values() {
        let _ = w.shutdown(std::net::Shutdown::Both);
    }
    // Compact the persistent cache at drain so the next start recovers
    // from a dense snapshot instead of replaying the whole WAL.
    d.cache.compact_now();
    if let Some(ps) = d.cache.persist_stats() {
        d.rep.durability.wal_appends = ps.appended;
        d.rep.durability.wal_compactions = ps.compactions;
        d.rep.durability.io_errors += ps.io_errors;
    }
    if let Some(j) = &d.journal {
        d.rep.durability.journal_appends = j.appends();
        d.rep.durability.io_errors += j.io_errors();
    }
    d.rep.latency_p50_ms = d.lat.percentile(50.0);
    d.rep.latency_p99_ms = d.lat.percentile(99.0);
    d.rep.latency_mean_ms = d.lat.mean();
    d.rep.drained = true;
    d.rep.cache = d.cache.stats();
    d.rep.pim_utilization = d.utilization();
    d.rep
}

impl Driver<'_> {
    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Conn(conn, writer) => {
                self.writers.insert(conn, writer);
            }
            Event::Gone(conn) => {
                self.writers.remove(&conn);
            }
            Event::Oversized(conn) => {
                self.rep.invalid += 1;
                let l = proto::error_line(&format!(
                    "line exceeds {} bytes",
                    self.opts.max_line_bytes.max(1024)
                ));
                self.respond(conn, &l);
            }
            Event::Line(conn, line) => self.handle_line(conn, line.trim()),
        }
    }

    /// Journal the terminal answer of a journaled ticket (no-op without
    /// durability). Called *after* the reply was written: a crash between
    /// reply and journal re-answers at most one request to a dead
    /// connection, never loses one.
    fn close_seq(&mut self, seq: Option<u64>, kind: DoneKind) {
        if let (Some(seq), Some(j)) = (seq, self.journal.as_mut()) {
            j.done(seq, kind);
        }
    }

    /// Re-admit journal-recovered tickets from the previous process
    /// lifetime. They count into `received`/`accepted` of this lifetime;
    /// ones whose absolute deadline passed while the daemon was down are
    /// answered `deadline-missed` immediately, the rest queue for normal
    /// dispatch (their results go nowhere, but warm the cache and close
    /// their journal seqs).
    fn replay_recovered(&mut self, tickets: Vec<RecoveredTicket>) {
        let now = Instant::now();
        let now_unix = unix_ms_now();
        for t in tickets {
            self.rep.received += 1;
            self.rep.accepted += 1;
            self.rep.pairs_accepted += t.req.pairs.len();
            self.rep.durability.recovered_requests += 1;
            let expired = t.deadline_unix_ms.is_some_and(|dl| dl <= now_unix);
            let q = Queued {
                req: t.req,
                conn: NO_CONN,
                arrival: now,
                deadline: t
                    .deadline_unix_ms
                    .map(|dl| now + Duration::from_millis(dl.saturating_sub(now_unix))),
                seq: Some(t.seq),
            };
            if expired {
                self.rep.durability.recovered_expired += 1;
                self.miss_queued(q);
            } else {
                self.queue.push_recovered(q);
            }
        }
        self.rep.max_queue_depth = self.rep.max_queue_depth.max(self.queue.len());
    }

    fn respond(&mut self, conn: u64, line: &str) {
        if let Some(w) = self.writers.get_mut(&conn) {
            // A dead peer is not an error: accounting already happened and
            // the writer is simply dropped.
            if writeln!(w, "{line}").is_err() {
                self.writers.remove(&conn);
            }
        }
    }

    /// Expected milliseconds until retrying could succeed: the measured
    /// per-request service time scaled by the backlog ahead of a new
    /// arrival, spread over the dispatch parallelism.
    fn retry_after_ms(&self) -> u64 {
        let backlog = (self.queue.len() + self.active.len() + 1) as f64;
        let par = self.opts.max_open_tickets.max(1) as f64;
        let per_request = if self.ewma_ms > 0.0 {
            self.ewma_ms
        } else {
            50.0
        };
        (per_request * backlog / par).ceil().max(1.0) as u64
    }

    fn handle_line(&mut self, conn: u64, line: &str) {
        if line.is_empty() {
            return;
        }
        match proto::parse_line(line) {
            Err(e) => {
                self.rep.invalid += 1;
                let l = proto::error_line(&e);
                self.respond(conn, &l);
            }
            Ok(ClientLine::Drain) => {
                self.draining = true;
                let l = proto::drain_ack_line();
                self.respond(conn, &l);
            }
            Ok(ClientLine::Stats) => {
                let l = proto::stats_line(&self.stats_snapshot());
                self.respond(conn, &l);
            }
            Ok(ClientLine::Align(req)) => self.admit(conn, req),
        }
    }

    /// Live telemetry for the `stats` op; pure read, never drains.
    fn stats_snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            draining: self.draining,
            queue_depth: self.queue.len(),
            queued_pairs: self.queue.queued_pairs(),
            active_tickets: self.active.len(),
            received: self.rep.received,
            completed: self.rep.completed,
            pairs_completed: self.rep.pairs_completed,
            recovered_requests: self.rep.durability.recovered_requests,
            pairs_from_cache: self.rep.pairs_from_cache,
            cpu_fallback_jobs: self.rep.fault.cpu_fallbacks,
            pim_utilization: self.utilization(),
            ewma_service_ms: self.ewma_ms,
            cache_len: self.cache.len(),
            cache_capacity: self.cache.capacity(),
            cache: self.cache.stats(),
        }
    }

    /// Fraction of service wall time with engine work in flight.
    fn utilization(&self) -> f64 {
        let busy = self.busy_seconds + self.busy_since.map_or(0.0, |t| t.elapsed().as_secs_f64());
        let wall = self.started.elapsed().as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            (busy / wall).clamp(0.0, 1.0)
        }
    }

    /// Track empty↔nonempty transitions of the in-flight set; call after
    /// any change to `active`.
    fn note_busy_state(&mut self) {
        match (self.active.is_empty(), self.busy_since) {
            (false, None) => self.busy_since = Some(Instant::now()),
            (true, Some(t0)) => {
                self.busy_seconds += t0.elapsed().as_secs_f64();
                self.busy_since = None;
            }
            _ => {}
        }
    }

    fn admit(&mut self, conn: u64, req: AlignRequest) {
        self.rep.received += 1;
        if self.draining {
            self.rep.rejected += 1;
            let l = proto::reject_line(&req.id, "draining", None);
            self.respond(conn, &l);
            return;
        }
        if req.pairs.len() > self.opts.max_pairs_per_request {
            self.rep.rejected += 1;
            let l = proto::reject_line(&req.id, "too-large", None);
            self.respond(conn, &l);
            return;
        }
        let now = Instant::now();
        let deadline_ms = req.deadline_ms.or(self.opts.default_deadline_ms);
        let deadline = deadline_ms.map(|ms| now + Duration::from_millis(ms));
        // Journal the admission *before* the queue decides (and before any
        // acknowledgment): a crash from here on replays this request. A
        // rejection below closes the tentative seq so it never replays.
        let seq = self
            .journal
            .as_mut()
            .map(|j| j.admit(&req, deadline_ms.map(|ms| unix_ms_now() + ms)));
        let pairs = req.pairs.len();
        match self.queue.admit(Queued {
            req,
            conn,
            arrival: now,
            deadline,
            seq,
        }) {
            Admission::Admitted => {
                self.rep.accepted += 1;
                self.rep.pairs_accepted += pairs;
            }
            Admission::Displaced(victim) => {
                self.rep.accepted += 1;
                self.rep.pairs_accepted += pairs;
                self.rep.shed += 1;
                let l = proto::shed_line(&victim.req.id, self.retry_after_ms());
                self.respond(victim.conn, &l);
                self.close_seq(victim.seq, DoneKind::Shed);
            }
            Admission::Rejected(back) => {
                self.rep.rejected += 1;
                let l = proto::reject_line(&back.req.id, "queue-full", Some(self.retry_after_ms()));
                self.respond(back.conn, &l);
                self.close_seq(back.seq, DoneKind::Rejected);
            }
        }
        self.rep.max_queue_depth = self.rep.max_queue_depth.max(self.queue.len());
    }

    /// Answer a request reaped from the queue at its deadline: explicit
    /// `deadline-missed` with one `cancelled` slot per pair.
    fn miss_queued(&mut self, q: Queued) {
        self.rep.deadline_missed += 1;
        self.rep.jobs_cancelled += q.req.pairs.len();
        let results: Vec<JobResult> = q
            .req
            .pairs
            .iter()
            .map(|_| JobResult {
                status: JobStatus::Cancelled,
                score: 0,
                cigar: Cigar::new(),
            })
            .collect();
        let ms = q.arrival.elapsed().as_secs_f64() * 1e3;
        let l = proto::result_line(&q.req.id, true, &results, ms);
        self.respond(q.conn, &l);
        self.close_seq(q.seq, DoneKind::DeadlineMissed);
    }

    /// Reap expired queued requests, top the engine up from the queue, and
    /// cancel in-flight tickets past their deadline.
    fn dispatch(&mut self, ctl: &mut EngineCtl) {
        let now = Instant::now();
        for q in self.queue.reap_expired(now) {
            self.miss_queued(q);
        }
        while self.active.len() < self.opts.max_open_tickets {
            let Some(q) = self.queue.pop_next() else {
                break;
            };
            if q.deadline.is_some_and(|dl| dl <= Instant::now()) {
                self.miss_queued(q);
                continue;
            }
            let pre = result_cache::serve_hits(
                Some(&mut self.cache),
                &q.req.pairs,
                &self.scheme,
                self.band,
                false,
            );
            if pre.work.is_empty() {
                // Every pair was a cache hit or an in-request duplicate:
                // answer immediately without spending an engine ticket.
                let cached = q.req.pairs.len();
                let results = result_cache::resolve(
                    Some(&mut self.cache),
                    &q.req.pairs,
                    &self.scheme,
                    self.band,
                    false,
                    pre.slots,
                    &pre.keys,
                    &pre.work,
                    &pre.aliases,
                );
                self.complete(q.conn, &q.req.id, q.arrival, cached, cached, &results);
                self.close_seq(q.seq, DoneKind::Completed);
                continue;
            }
            let jobs = pre
                .work
                .iter()
                .map(|&i| (q.req.pairs[i].0.pack(), q.req.pairs[i].1.pack()))
                .collect();
            let ticket = ctl.submit(jobs);
            self.active.insert(
                ticket,
                Active {
                    conn: q.conn,
                    id: q.req.id,
                    arrival: q.arrival,
                    deadline: q.deadline,
                    pairs: q.req.pairs.len(),
                    cancel_sent: false,
                    req_pairs: q.req.pairs,
                    pre,
                    seq: q.seq,
                },
            );
        }
        self.note_busy_state();
        let now = Instant::now();
        for (t, a) in self.active.iter_mut() {
            if !a.cancel_sent && a.deadline.is_some_and(|dl| dl <= now) {
                ctl.cancel(*t);
                a.cancel_sent = true;
            }
        }
    }

    /// Account and answer one completed (not deadline-missed) request.
    fn complete(
        &mut self,
        conn: u64,
        id: &str,
        arrival: Instant,
        pairs: usize,
        cached_pairs: usize,
        results: &[JobResult],
    ) {
        let ms = arrival.elapsed().as_secs_f64() * 1e3;
        self.rep.completed += 1;
        self.rep.pairs_completed += pairs;
        self.rep.pairs_from_cache += cached_pairs;
        self.lat.push(ms);
        self.ewma_ms = if self.lat.len() == 1 {
            ms
        } else {
            0.8 * self.ewma_ms + 0.2 * ms
        };
        let l = proto::result_line(id, false, results, ms);
        self.respond(conn, &l);
    }

    fn finish_ticket(&mut self, td: TicketDone) {
        let Some(a) = self.active.remove(&td.ticket) else {
            return;
        };
        self.rep.fault.merge(&td.fault);
        // Merge the engine's results (one per submitted miss) back into the
        // hit-filled slots, insert the fresh ones behind the audit gate, and
        // serve in-request duplicates from the cache.
        let CachePrepass {
            mut slots,
            keys,
            work,
            aliases,
        } = a.pre;
        for (&slot, r) in work.iter().zip(td.results.iter()) {
            slots[slot] = Some(r.clone());
        }
        let results = result_cache::resolve(
            Some(&mut self.cache),
            &a.req_pairs,
            &self.scheme,
            self.band,
            false,
            slots,
            &keys,
            &work,
            &aliases,
        );
        if td.cancelled {
            let ms = a.arrival.elapsed().as_secs_f64() * 1e3;
            self.rep.deadline_missed += 1;
            self.rep.jobs_cancelled += results
                .iter()
                .filter(|r| r.status == JobStatus::Cancelled)
                .count();
            let l = proto::result_line(&a.id, true, &results, ms);
            self.respond(a.conn, &l);
            self.close_seq(a.seq, DoneKind::DeadlineMissed);
        } else {
            self.complete(
                a.conn,
                &a.id,
                a.arrival,
                a.pairs,
                a.pairs - work.len(),
                &results,
            );
            self.close_seq(a.seq, DoneKind::Completed);
        }
        self.note_busy_state();
    }
}
