//! A small blocking NDJSON client for the daemon's unix socket — what the
//! integration tests, the ci smoke, and `bench --serve` use to talk to a
//! running service.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// A blocking client over one connection.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connect to a listening daemon.
    pub fn connect(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Connect, retrying while the daemon is still binding its socket.
    pub fn connect_retry(path: &Path, timeout: Duration) -> io::Result<Client> {
        let give_up = Instant::now() + timeout;
        loop {
            match Self::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= give_up => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Send one request line (the newline is added here).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Read the next response line; `None` on EOF (the daemon drained).
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return Json::parse(trimmed)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
        }
    }

    /// A second handle over the same connection, so one thread can send
    /// while another receives (the open-loop bench client).
    pub fn try_split(&self) -> io::Result<Client> {
        let w = self.writer.try_clone()?;
        let r = BufReader::new(self.writer.try_clone()?);
        Ok(Client {
            writer: w,
            reader: r,
        })
    }
}
