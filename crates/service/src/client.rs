//! A small blocking NDJSON client for the daemon's unix socket — what the
//! integration tests, the ci smoke, and `bench --serve` use to talk to a
//! running service.

use crate::json::Json;
use std::io::{self, BufRead, BufReader, Write as _};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

/// How [`Client::request_with_retry`] reacts to explicit rejects that
/// carry a `retry_after_ms` hint. Off by default (`attempts: 0`): every
/// reject surfaces to the caller unchanged.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Extra attempts after the first send (0 = never retry).
    pub attempts: usize,
    /// Cap on a single backoff sleep, whatever the daemon hints.
    pub max_wait: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 0,
            max_wait: Duration::from_secs(2),
        }
    }
}

/// The terminal response of a retried request, with how many rejects were
/// absorbed along the way.
#[derive(Debug)]
pub struct RetryOutcome {
    /// The final response line (any type — a reject when attempts ran out
    /// or the reject carried no retry hint).
    pub response: Json,
    /// Rejects absorbed by backoff-and-resend.
    pub retried: usize,
}

/// A blocking client over one connection.
pub struct Client {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
}

impl Client {
    /// Connect to a listening daemon.
    pub fn connect(path: &Path) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            writer: stream,
            reader,
        })
    }

    /// Connect, retrying while the daemon is still binding its socket.
    pub fn connect_retry(path: &Path, timeout: Duration) -> io::Result<Client> {
        let give_up = Instant::now() + timeout;
        loop {
            match Self::connect(path) {
                Ok(c) => return Ok(c),
                Err(e) if Instant::now() >= give_up => return Err(e),
                Err(_) => std::thread::sleep(Duration::from_millis(5)),
            }
        }
    }

    /// Send one request line (the newline is added here).
    pub fn send(&mut self, line: &str) -> io::Result<()> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Read the next response line; `None` on EOF (the daemon drained).
    pub fn recv(&mut self) -> io::Result<Option<Json>> {
        let mut line = String::new();
        loop {
            line.clear();
            if self.reader.read_line(&mut line)? == 0 {
                return Ok(None);
            }
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            return Json::parse(trimmed)
                .map(Some)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e));
        }
    }

    /// Send `line` and wait for its response; when the daemon answers
    /// with an explicit `reject` carrying a `retry_after_ms` hint and the
    /// policy has attempts left, sleep the hinted backoff (capped at
    /// `policy.max_wait`) and resend. Rejects without a hint (e.g.
    /// `draining`, `too-large`) surface immediately — retrying cannot
    /// help them. Only valid for synchronous use with one outstanding
    /// request: the next line read is assumed to answer `line`.
    /// Returns `None` on EOF.
    pub fn request_with_retry(
        &mut self,
        line: &str,
        policy: &RetryPolicy,
    ) -> io::Result<Option<RetryOutcome>> {
        let mut retried = 0;
        loop {
            self.send(line)?;
            let Some(response) = self.recv()? else {
                return Ok(None);
            };
            let is_reject = response.get("type").and_then(Json::as_str) == Some("reject");
            let hint_ms = response.get("retry_after_ms").and_then(Json::as_u64);
            match hint_ms {
                Some(ms) if is_reject && retried < policy.attempts => {
                    retried += 1;
                    std::thread::sleep(policy.max_wait.min(Duration::from_millis(ms)));
                }
                _ => return Ok(Some(RetryOutcome { response, retried })),
            }
        }
    }

    /// A second handle over the same connection, so one thread can send
    /// while another receives (the open-loop bench client).
    pub fn try_split(&self) -> io::Result<Client> {
        let w = self.writer.try_clone()?;
        let r = BufReader::new(self.writer.try_clone()?);
        Ok(Client {
            writer: w,
            reader: r,
        })
    }
}
