//! Crash-safe request journal: the daemon's half of the durability layer.
//!
//! Every admitted request is journaled *before* its admission is
//! acknowledged in any way; every terminal answer (result, deadline-miss,
//! shed, reject) is journaled *after* the reply is written. A `kill -9`
//! between the two leaves an unanswered `Admit` record, and on restart
//! [`RequestJournal::open`] replays exactly those into the admission
//! queue — at-least-once semantics, safe because the original connection
//! is gone (replayed work warms the cache and balances the books; it is
//! answered to no one).
//!
//! The file shares the WAL framing from [`pim_host::wal`] (header with
//! magic + format version + schema version, then
//! `len | payload | fnv1a32` records) and the same tolerance: torn tails
//! and corrupt records are skipped, a future format version refuses.
//!
//! Replay is idempotent by request id: when the same id was admitted more
//! than once (a client retry racing a crash), only the latest unanswered
//! admission survives; the collapsed duplicates are dropped and counted.
//! Deadlines are journaled as *absolute* unix milliseconds so expiry
//! survives the downtime: the daemon reaps tickets whose deadline passed
//! while the process was dead into `deadline_missed`, keeping the
//! conservation law `accepted == completed + deadline_missed + shed`
//! balanced across the crash boundary.

use crate::proto::{AlignRequest, Priority};
use pim_host::wal::{
    check_header, get_seq, put_header, put_record, put_seq, scan_records, ByteReader, HeaderCheck,
    FORMAT_VERSION, HEADER_LEN, WAL_SCHEMA_VERSION,
};
use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

const MAGIC_JOURNAL: &[u8; 6] = b"UNWJNL";
const TAG_ADMIT: u8 = 0;
const TAG_DONE: u8 = 1;

/// Milliseconds since the unix epoch, for absolute journaled deadlines.
pub fn unix_ms_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// How an admitted request was terminally answered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DoneKind {
    /// Answered with a full `result`.
    Completed = 0,
    /// Reaped at its deadline (queued or in flight).
    DeadlineMissed = 1,
    /// Displaced by a higher-priority arrival.
    Shed = 2,
    /// Refused at admission after the tentative journal write (the write
    /// happens before the queue decides, so a reject must close its seq).
    Rejected = 3,
}

impl DoneKind {
    fn from_byte(b: u8) -> Option<DoneKind> {
        match b {
            0 => Some(DoneKind::Completed),
            1 => Some(DoneKind::DeadlineMissed),
            2 => Some(DoneKind::Shed),
            3 => Some(DoneKind::Rejected),
            _ => None,
        }
    }
}

/// One admitted-but-unanswered request recovered from the journal.
#[derive(Debug, Clone)]
pub struct RecoveredTicket {
    /// Journal sequence number — kept across restarts so a second crash
    /// replays idempotently.
    pub seq: u64,
    /// The request, reconstructed. `deadline_ms` is always `None` here;
    /// the absolute deadline travels separately.
    pub req: AlignRequest,
    /// Absolute deadline (unix ms) if the original request had one.
    pub deadline_unix_ms: Option<u64>,
}

/// What scanning the journal found, for the durability report.
#[derive(Debug, Clone, Copy, Default)]
pub struct JournalScan {
    /// Admit records decoded.
    pub admits: usize,
    /// Done records decoded.
    pub dones: usize,
    /// Older same-id admissions collapsed by replay idempotency.
    pub duplicates: usize,
    /// Records skipped (checksum mismatch or undecodable payload).
    pub corrupt_skipped: usize,
    /// Bytes truncated off a torn tail.
    pub torn_tail_bytes: usize,
    /// True when the header was missing/foreign and the file restarted.
    pub header_reset: bool,
}

struct AdmitRecord {
    seq: u64,
    req: AlignRequest,
    deadline_unix_ms: Option<u64>,
}

fn encode_admit(seq: u64, req: &AlignRequest, deadline_unix_ms: Option<u64>) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + req.id.len());
    out.push(TAG_ADMIT);
    out.extend_from_slice(&seq.to_le_bytes());
    out.extend_from_slice(&(req.id.len() as u32).to_le_bytes());
    out.extend_from_slice(req.id.as_bytes());
    out.push(req.priority.index() as u8);
    match deadline_unix_ms {
        Some(ms) => {
            out.push(1);
            out.extend_from_slice(&ms.to_le_bytes());
        }
        None => out.push(0),
    }
    out.extend_from_slice(&(req.pairs.len() as u32).to_le_bytes());
    for (a, b) in &req.pairs {
        put_seq(&mut out, &a.pack());
        put_seq(&mut out, &b.pack());
    }
    out
}

fn decode_admit(r: &mut ByteReader<'_>) -> Option<AdmitRecord> {
    let seq = r.u64()?;
    let id_len = r.u32()? as usize;
    let id = String::from_utf8(r.take(id_len)?.to_vec()).ok()?;
    let priority = match r.u8()? {
        0 => Priority::Interactive,
        1 => Priority::Normal,
        2 => Priority::Batch,
        _ => return None,
    };
    let deadline_unix_ms = match r.u8()? {
        0 => None,
        1 => Some(r.u64()?),
        _ => return None,
    };
    let n = r.u32()? as usize;
    let mut pairs = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let a = get_seq(r)?;
        let b = get_seq(r)?;
        pairs.push((a.unpack(), b.unpack()));
    }
    if !r.done() {
        return None;
    }
    Some(AdmitRecord {
        seq,
        req: AlignRequest {
            id,
            priority,
            deadline_ms: None,
            pairs,
        },
        deadline_unix_ms,
    })
}

/// The journal file handle the daemon appends to.
#[derive(Debug)]
pub struct RequestJournal {
    path: PathBuf,
    file: Option<File>,
    sync: bool,
    next_seq: u64,
    appends: u64,
    io_errors: u64,
}

impl RequestJournal {
    /// Open (creating if needed) the journal at `path`, replay its
    /// unanswered admissions, and compact it down to exactly those
    /// records. Errors only on an unusable path or a future format
    /// version — corruption never refuses startup.
    pub fn open(
        path: &Path,
        sync: bool,
    ) -> io::Result<(RequestJournal, Vec<RecoveredTicket>, JournalScan)> {
        let mut scan = JournalScan::default();
        let bytes = std::fs::read(path).unwrap_or_default();
        let mut admits: Vec<AdmitRecord> = Vec::new();
        let mut done_seqs: HashSet<u64> = HashSet::new();
        let mut max_seq = 0u64;
        match check_header(&bytes, MAGIC_JOURNAL) {
            HeaderCheck::FutureVersion { format, schema } => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: format v{format} schema v{schema} is newer than this \
                         binary (v{FORMAT_VERSION}/v{WAL_SCHEMA_VERSION}); refusing \
                         to guess — migrate or remove the file",
                        path.display()
                    ),
                ));
            }
            HeaderCheck::Corrupt => {
                scan.header_reset = !bytes.is_empty();
            }
            HeaderCheck::Ok => {
                let records = scan_records(&bytes, HEADER_LEN);
                scan.corrupt_skipped += records.corrupt_skipped;
                scan.torn_tail_bytes = records.torn_tail_bytes;
                for payload in &records.payloads {
                    let mut r = ByteReader::new(payload);
                    match r.u8() {
                        Some(TAG_ADMIT) => match decode_admit(&mut r) {
                            Some(a) => {
                                scan.admits += 1;
                                max_seq = max_seq.max(a.seq);
                                admits.push(a);
                            }
                            None => scan.corrupt_skipped += 1,
                        },
                        Some(TAG_DONE) => match (r.u64(), r.u8().and_then(DoneKind::from_byte)) {
                            (Some(seq), Some(_kind)) if r.done() => {
                                scan.dones += 1;
                                max_seq = max_seq.max(seq);
                                done_seqs.insert(seq);
                            }
                            _ => scan.corrupt_skipped += 1,
                        },
                        _ => scan.corrupt_skipped += 1,
                    }
                }
            }
        }
        // Unanswered admissions, idempotent by request id: only the
        // latest admission of an id survives replay.
        let mut latest_of_id: HashMap<String, u64> = HashMap::new();
        for a in admits.iter().filter(|a| !done_seqs.contains(&a.seq)) {
            let e = latest_of_id.entry(a.req.id.clone()).or_insert(a.seq);
            *e = (*e).max(a.seq);
        }
        let mut tickets: Vec<RecoveredTicket> = Vec::new();
        for a in admits {
            if done_seqs.contains(&a.seq) {
                continue;
            }
            if latest_of_id.get(&a.req.id) != Some(&a.seq) {
                scan.duplicates += 1;
                continue;
            }
            tickets.push(RecoveredTicket {
                seq: a.seq,
                req: a.req,
                deadline_unix_ms: a.deadline_unix_ms,
            });
        }
        tickets.sort_by_key(|t| t.seq);

        // Compact: rewrite the file as header + the surviving admissions
        // (original seqs kept), dropping answered pairs, duplicates, torn
        // tails, and corrupt records in one stroke.
        let mut buf = Vec::with_capacity(HEADER_LEN);
        put_header(&mut buf, MAGIC_JOURNAL);
        for t in &tickets {
            put_record(&mut buf, &encode_admit(t.seq, &t.req, t.deadline_unix_ms));
        }
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, &buf)?;
        let mut journal = RequestJournal {
            path: path.to_path_buf(),
            file: None,
            sync,
            next_seq: max_seq + 1,
            appends: 0,
            io_errors: 0,
        };
        journal.file = OpenOptions::new().append(true).open(path).ok();
        if journal.file.is_none() {
            journal.io_errors += 1;
        }
        Ok((journal, tickets, scan))
    }

    /// Journal path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records appended this lifetime.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// I/O errors swallowed (journaling degrades, serving never stops).
    pub fn io_errors(&self) -> u64 {
        self.io_errors
    }

    fn append(&mut self, payload: &[u8]) {
        let mut buf = Vec::with_capacity(payload.len() + 8);
        put_record(&mut buf, payload);
        let Some(f) = self.file.as_mut() else {
            self.io_errors += 1;
            return;
        };
        let ok = f
            .write_all(&buf)
            .and_then(|()| if self.sync { f.sync_data() } else { Ok(()) });
        match ok {
            Ok(()) => self.appends += 1,
            Err(_) => self.io_errors += 1,
        }
    }

    /// Journal one admission (call *before* any acknowledgment reaches
    /// the client); returns the ticket's sequence number.
    pub fn admit(&mut self, req: &AlignRequest, deadline_unix_ms: Option<u64>) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.append(&encode_admit(seq, req, deadline_unix_ms));
        seq
    }

    /// Journal a terminal answer (call *after* the reply was written).
    pub fn done(&mut self, seq: u64, kind: DoneKind) {
        let mut payload = Vec::with_capacity(10);
        payload.push(TAG_DONE);
        payload.extend_from_slice(&seq.to_le_bytes());
        payload.push(kind as u8);
        self.append(&payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::seq::DnaSeq;

    fn request(id: &str, n: usize) -> AlignRequest {
        let a = DnaSeq::from_ascii(b"ACGTACGTGGTCAT").unwrap();
        let b = DnaSeq::from_ascii(b"ACGTACGAGGTCAT").unwrap();
        AlignRequest {
            id: id.to_string(),
            priority: Priority::Normal,
            deadline_ms: None,
            pairs: (0..n).map(|_| (a.clone(), b.clone())).collect(),
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "upmem-nw-journal-{tag}-{}-{:?}.journal",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn unanswered_admissions_replay_in_seq_order() {
        let path = tmp("replay");
        {
            let (mut j, tickets, _) = RequestJournal::open(&path, false).unwrap();
            assert!(tickets.is_empty());
            let s1 = j.admit(&request("r1", 2), None);
            let s2 = j.admit(&request("r2", 1), Some(unix_ms_now() + 60_000));
            let _s3 = j.admit(&request("r3", 3), None);
            j.done(s1, DoneKind::Completed);
            assert!(s2 > s1);
        } // crash: r2 and r3 unanswered
        let (mut j, tickets, scan) = RequestJournal::open(&path, false).unwrap();
        assert_eq!(scan.admits, 3);
        assert_eq!(scan.dones, 1);
        let ids: Vec<&str> = tickets.iter().map(|t| t.req.id.as_str()).collect();
        assert_eq!(ids, ["r2", "r3"]);
        assert!(tickets[0].deadline_unix_ms.is_some());
        assert_eq!(tickets[1].req.pairs.len(), 3);
        assert_eq!(tickets[1].req.pairs[0].0.to_ascii(), b"ACGTACGTGGTCAT");
        // Seq numbers stay monotone across the restart.
        let s4 = j.admit(&request("r4", 1), None);
        assert!(s4 > tickets[1].seq);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_is_idempotent_by_request_id() {
        let path = tmp("dedupe");
        {
            let (mut j, _, _) = RequestJournal::open(&path, false).unwrap();
            j.admit(&request("same", 1), None);
            j.admit(&request("same", 2), None); // client retry racing a crash
            j.admit(&request("other", 1), None);
        }
        let (_, tickets, scan) = RequestJournal::open(&path, false).unwrap();
        assert_eq!(scan.duplicates, 1);
        assert_eq!(tickets.len(), 2);
        let same = tickets.iter().find(|t| t.req.id == "same").unwrap();
        assert_eq!(same.req.pairs.len(), 2, "latest admission wins");
        // A second crash-free reopen replays the identical set.
        let (_, again, scan) = RequestJournal::open(&path, false).unwrap();
        assert_eq!(scan.duplicates, 0, "compaction dropped the duplicate");
        assert_eq!(again.len(), 2);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_and_corrupt_records_do_not_refuse_startup() {
        let path = tmp("torn");
        {
            let (mut j, _, _) = RequestJournal::open(&path, false).unwrap();
            j.admit(&request("ok1", 1), None);
            j.admit(&request("ok2", 1), None);
        }
        // Simulate a crash mid-append: garbage half-record at the tail.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]);
        std::fs::write(&path, &bytes).unwrap();
        let (_, tickets, scan) = RequestJournal::open(&path, false).unwrap();
        assert_eq!(tickets.len(), 2);
        assert!(scan.torn_tail_bytes > 0);
        // Rejected-at-admission seqs are closed and never replay.
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn rejected_admissions_never_replay() {
        let path = tmp("reject");
        {
            let (mut j, _, _) = RequestJournal::open(&path, false).unwrap();
            let s = j.admit(&request("r", 1), None);
            j.done(s, DoneKind::Rejected);
        }
        let (_, tickets, _) = RequestJournal::open(&path, false).unwrap();
        assert!(tickets.is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn future_version_refuses() {
        let path = tmp("future");
        drop(RequestJournal::open(&path, false).unwrap());
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[6] = FORMAT_VERSION + 1;
        std::fs::write(&path, &bytes).unwrap();
        let err = RequestJournal::open(&path, false).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_file(&path);
    }
}
