//! A minimal JSON parser and emitter for the service wire protocol.
//!
//! The workspace has a zero-external-dependency policy, so the NDJSON
//! protocol is read and written by this hand-rolled recursive-descent
//! parser instead of a crate. It is deliberately not a general-purpose
//! JSON library: numbers are `f64` (JavaScript semantics), object key
//! order is preserved, and [`Json::get`] returns the first match on
//! duplicate keys. That is exactly enough for the daemon's line protocol
//! and its reports — and small enough to audit.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`, like JavaScript).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order preserved, first key wins on lookup.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse one complete JSON document. Anything but trailing whitespace
    /// after the value is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            b: text.as_bytes(),
            i: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != p.b.len() {
            return Err(format!("trailing garbage at byte {}", p.i));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer. Fractions, negative
    /// numbers, and values past 2^53 (not exactly representable) are
    /// rejected.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Escape `s` for embedding inside a JSON string literal (quotes not
/// included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) if !n.is_finite() => write!(f, "null"),
            Json::Num(n) if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 => {
                write!(f, "{}", *n as i64)
            }
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{v}", escape(k))?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Deepest container nesting the parser accepts. The parser is recursive
/// descent, so unbounded nesting is unbounded stack: a hostile
/// `[[[[[…` line must come back as an `Err`, never a stack overflow
/// (which aborts the process — not even catchable). 128 is far beyond
/// anything the wire protocol produces (≤ 4 levels).
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl Parser<'_> {
    fn descend(&mut self) -> Result<(), String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        Ok(())
    }
    fn skip_ws(&mut self) {
        while matches!(self.b.get(self.i), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.b.get(self.i) {
            None => Err("unexpected end of input".to_string()),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.i))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while matches!(
            self.b.get(self.i),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii slice");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(format!("bad number {text:?} at byte {start}")),
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.i + 4;
        let slice = self
            .b
            .get(self.i..end)
            .ok_or_else(|| "truncated \\u escape".to_string())?;
        let text = std::str::from_utf8(slice).map_err(|_| "bad \\u escape".to_string())?;
        let code = u32::from_str_radix(text, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.i = end;
        Ok(code)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = Vec::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out).map_err(|_| "invalid UTF-8".to_string());
                }
                Some(b'\\') => {
                    self.i += 1;
                    let esc = *self
                        .b
                        .get(self.i)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.i += 1;
                    let c = match esc {
                        b'"' => '"',
                        b'\\' => '\\',
                        b'/' => '/',
                        b'b' => '\u{8}',
                        b'f' => '\u{c}',
                        b'n' => '\n',
                        b'r' => '\r',
                        b't' => '\t',
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.b.get(self.i) != Some(&b'\\')
                                    || self.b.get(self.i + 1) != Some(&b'u')
                                {
                                    return Err("lone high surrogate".to_string());
                                }
                                self.i += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err("bad low surrogate".to_string());
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            char::from_u32(code).ok_or_else(|| "bad \\u escape".to_string())?
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    };
                    let mut buf = [0u8; 4];
                    out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                }
                Some(&c) if c < 0x20 => return Err("raw control byte in string".to_string()),
                Some(&c) => {
                    out.push(c);
                    self.i += 1;
                }
            }
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", c as char, self.i))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b']') {
            self.i += 1;
            self.depth -= 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.descend()?;
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.b.get(self.i) == Some(&b'}') {
            self.i += 1;
            self.depth -= 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.b.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    self.depth -= 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn parses_nested_documents() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(arr[2], Json::Null);
        assert_eq!(v.get("c").unwrap().as_bool(), Some(true));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn string_escapes_round_trip() {
        let v = Json::parse(r#""a\"b\\c\nd\u0041\u00e9\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndAé😀"));
        let emitted = Json::Str("a\"b\\\n\t\u{1}".to_string()).to_string();
        assert_eq!(emitted, r#""a\"b\\\n\t\u0001""#);
        assert_eq!(
            Json::parse(&emitted).unwrap().as_str(),
            Some("a\"b\\\n\t\u{1}")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1.2.3",
            "\"\\q\"",
            "\"unterminated",
            "{\"a\":1} x",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-0.5).to_string(), "-0.5");
        assert_eq!(
            Json::Obj(vec![("k".into(), Json::Arr(vec![Json::Num(1.0)]))]).to_string(),
            r#"{"k":[1]}"#
        );
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        // Far past MAX_DEPTH: a recursive parser without the depth gate
        // would blow the stack (an uncatchable abort) here.
        let deep = "[".repeat(200_000);
        assert!(Json::parse(&deep).is_err());
        let deep_obj = "{\"k\":".repeat(200_000);
        assert!(Json::parse(&deep_obj).is_err());
        // Shallow nesting is untouched.
        let fine = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&fine).is_ok());
        let over = format!("{}1{}", "[".repeat(129), "]".repeat(129));
        assert!(Json::parse(&over).is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::Num(3.0).as_u64(), Some(3));
        assert_eq!(Json::Num(3.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Str("3".into()).as_u64(), None);
    }
}
