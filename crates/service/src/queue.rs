//! Bounded priority admission queue: the backpressure half of the daemon.
//!
//! Admission is decided synchronously at arrival, against two explicit
//! bounds — queued requests and queued pairs — so queue memory stays
//! bounded no matter how hard clients push. When the queue is full, an
//! arriving request either *displaces* the youngest strictly-lower-priority
//! queued request (load shedding: the victim gets an explicit `shed`
//! response, never silence) or is *rejected* with a retry hint. Within a
//! class, service order is FIFO; across classes, higher priority always
//! pops first.

use crate::proto::{AlignRequest, Priority};
use std::collections::VecDeque;
use std::time::Instant;

/// One admitted request waiting for dispatch.
#[derive(Debug)]
pub struct Queued {
    /// The parsed request.
    pub req: AlignRequest,
    /// Connection that sent it (responses go back here).
    pub conn: u64,
    /// Arrival time; latency is measured from here.
    pub arrival: Instant,
    /// Absolute deadline (arrival + `deadline_ms`), if any.
    pub deadline: Option<Instant>,
    /// Request-journal sequence number, when durability is on; terminal
    /// answers close it so a crash replays only unanswered tickets.
    pub seq: Option<u64>,
}

/// The outcome of an admission attempt.
#[derive(Debug)]
pub enum Admission {
    /// Admitted; the queue had room.
    Admitted,
    /// Admitted by displacing a strictly-lower-priority queued request;
    /// the victim must be answered with a `shed` response.
    Displaced(Queued),
    /// No room and no lower-priority victim: the request is handed back
    /// for an explicit rejection.
    Rejected(Queued),
}

/// The bounded priority queue between admission and dispatch.
#[derive(Debug)]
pub struct AdmissionQueue {
    max_requests: usize,
    max_pairs: usize,
    queued_pairs: usize,
    classes: [VecDeque<Queued>; Priority::COUNT],
}

impl AdmissionQueue {
    /// A queue bounded to `max_requests` requests and `max_pairs` total
    /// queued pairs (both clamped to at least 1).
    pub fn new(max_requests: usize, max_pairs: usize) -> Self {
        AdmissionQueue {
            max_requests: max_requests.max(1),
            max_pairs: max_pairs.max(1),
            queued_pairs: 0,
            classes: std::array::from_fn(|_| VecDeque::new()),
        }
    }

    /// Queued requests across all classes.
    pub fn len(&self) -> usize {
        self.classes.iter().map(VecDeque::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.classes.iter().all(VecDeque::is_empty)
    }

    /// Total pairs across queued requests (the memory bound's unit).
    pub fn queued_pairs(&self) -> usize {
        self.queued_pairs
    }

    fn has_room_for(&self, pairs: usize) -> bool {
        self.len() < self.max_requests && self.queued_pairs + pairs <= self.max_pairs
    }

    /// Try to admit `q`. At most one victim is displaced; if evicting the
    /// youngest lowest-priority victim still would not make room (an
    /// oversized arrival), the victim stays and the arrival is rejected.
    pub fn admit(&mut self, q: Queued) -> Admission {
        let pairs = q.req.pairs.len();
        if self.has_room_for(pairs) {
            self.push(q);
            return Admission::Admitted;
        }
        // Youngest victim of the lowest populated class strictly below the
        // arrival's priority.
        for class in (q.req.priority.index() + 1..Priority::COUNT).rev() {
            if let Some(victim) = self.classes[class].pop_back() {
                self.queued_pairs -= victim.req.pairs.len();
                if self.has_room_for(pairs) {
                    self.push(q);
                    return Admission::Displaced(victim);
                }
                // Evicting one victim is not enough: put it back.
                self.queued_pairs += victim.req.pairs.len();
                self.classes[class].push_back(victim);
                return Admission::Rejected(q);
            }
        }
        Admission::Rejected(q)
    }

    fn push(&mut self, q: Queued) {
        self.queued_pairs += q.req.pairs.len();
        self.classes[q.req.priority.index()].push_back(q);
    }

    /// Enqueue a crash-recovered ticket, bypassing the admission bounds:
    /// it was already admitted (and journaled) by a previous process
    /// lifetime, so bouncing it now would break the conservation law the
    /// journal exists to preserve. Recovery happens before the socket
    /// accepts traffic, so the transient over-bound is limited to the
    /// replayed backlog and drains normally.
    pub fn push_recovered(&mut self, q: Queued) {
        self.push(q);
    }

    /// Pop the next request to dispatch: highest class first, FIFO within
    /// a class.
    pub fn pop_next(&mut self) -> Option<Queued> {
        for class in &mut self.classes {
            if let Some(q) = class.pop_front() {
                self.queued_pairs -= q.req.pairs.len();
                return Some(q);
            }
        }
        None
    }

    /// Remove and return every queued request whose deadline is at or
    /// before `now` — the reaper that turns expired waits into explicit
    /// deadline-miss responses instead of letting them rot in the queue.
    pub fn reap_expired(&mut self, now: Instant) -> Vec<Queued> {
        let mut out = Vec::new();
        for class in &mut self.classes {
            let mut keep = VecDeque::with_capacity(class.len());
            for q in class.drain(..) {
                if q.deadline.is_some_and(|d| d <= now) {
                    self.queued_pairs -= q.req.pairs.len();
                    out.push(q);
                } else {
                    keep.push_back(q);
                }
            }
            *class = keep;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::seq::DnaSeq;
    use std::time::Duration;

    fn request(id: &str, priority: Priority, pairs: usize) -> Queued {
        let seq = DnaSeq::from_ascii(b"ACGT").unwrap();
        Queued {
            req: AlignRequest {
                id: id.to_string(),
                priority,
                deadline_ms: None,
                pairs: (0..pairs).map(|_| (seq.clone(), seq.clone())).collect(),
            },
            conn: 0,
            arrival: Instant::now(),
            deadline: None,
            seq: None,
        }
    }

    #[test]
    fn exactly_full_queue_rejects_equal_priority_and_sheds_lower() {
        let mut q = AdmissionQueue::new(2, 100);
        assert!(matches!(
            q.admit(request("b1", Priority::Batch, 1)),
            Admission::Admitted
        ));
        assert!(matches!(
            q.admit(request("b2", Priority::Batch, 1)),
            Admission::Admitted
        ));
        assert_eq!(q.len(), 2);

        // Exactly full: another batch request cannot displace its own class.
        let Admission::Rejected(back) = q.admit(request("b3", Priority::Batch, 1)) else {
            panic!("expected rejection at the request cap");
        };
        assert_eq!(back.req.id, "b3");
        assert_eq!(q.len(), 2);

        // A higher class displaces the *youngest* batch request.
        let Admission::Displaced(victim) = q.admit(request("i1", Priority::Interactive, 1)) else {
            panic!("expected displacement");
        };
        assert_eq!(victim.req.id, "b2");
        assert_eq!(q.len(), 2);

        // Interactive requests are never shed: full queue of interactive
        // work rejects even interactive arrivals.
        let Admission::Displaced(victim) = q.admit(request("i2", Priority::Interactive, 1)) else {
            panic!("expected displacement of b1");
        };
        assert_eq!(victim.req.id, "b1");
        assert!(matches!(
            q.admit(request("i3", Priority::Interactive, 1)),
            Admission::Rejected(_)
        ));

        // Service order: highest class first, FIFO within it.
        assert_eq!(q.pop_next().unwrap().req.id, "i1");
        assert_eq!(q.pop_next().unwrap().req.id, "i2");
        assert!(q.pop_next().is_none());
        assert_eq!(q.queued_pairs(), 0);
    }

    #[test]
    fn pair_budget_bounds_memory_independently_of_request_count() {
        let mut q = AdmissionQueue::new(100, 10);
        assert!(matches!(
            q.admit(request("b1", Priority::Batch, 8)),
            Admission::Admitted
        ));
        // 8 + 5 > 10: over the pair budget even though only 1 request is queued.
        assert!(matches!(
            q.admit(request("b2", Priority::Batch, 5)),
            Admission::Rejected(_)
        ));
        // A higher-priority arrival displaces the batch request to fit.
        let Admission::Displaced(victim) = q.admit(request("n1", Priority::Normal, 9)) else {
            panic!("expected displacement");
        };
        assert_eq!(victim.req.id, "b1");
        assert_eq!(q.queued_pairs(), 9);
        // An arrival too big even after evicting the only victim bounces,
        // and the victim is preserved.
        assert!(matches!(
            q.admit(request("i1", Priority::Interactive, 11)),
            Admission::Rejected(_)
        ));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop_next().unwrap().req.id, "n1");
    }

    #[test]
    fn reaper_returns_only_expired_requests() {
        let now = Instant::now();
        let mut q = AdmissionQueue::new(10, 100);
        let mut expired = request("dead", Priority::Normal, 2);
        expired.deadline = Some(now - Duration::from_millis(1));
        let mut live = request("live", Priority::Normal, 3);
        live.deadline = Some(now + Duration::from_secs(60));
        q.admit(expired);
        q.admit(live);
        q.admit(request("forever", Priority::Batch, 1));

        let reaped = q.reap_expired(now);
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].req.id, "dead");
        assert_eq!(q.len(), 2);
        assert_eq!(q.queued_pairs(), 4);
        assert_eq!(q.pop_next().unwrap().req.id, "live");
        assert_eq!(q.pop_next().unwrap().req.id, "forever");
    }
}
