//! In-process durability tests: two daemon lifetimes over the same state
//! directory (graceful restart — the `kill -9` path lives in the cli's
//! crash-recovery integration test), and startup refusal on a journal
//! written by a future format version.

use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use std::path::{Path, PathBuf};
use std::thread;
use std::time::Duration;
use upmem_nw_service::{proto, run_serve, Client, Priority, ServeOptions, ServiceReport};

fn scratch(name: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("upmem-nw-durable-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&p);
    std::fs::create_dir_all(&p).unwrap();
    p
}

fn opts(root: &Path, lifetime: usize) -> ServeOptions {
    ServeOptions {
        socket: root.join(format!("life-{lifetime}.sock")),
        ranks: 2,
        dpus: 4,
        band: 64,
        state_dir: Some(root.join("state")),
        ..ServeOptions::default()
    }
}

fn ascii_pairs(n: usize, seed: u64) -> Vec<(String, String)> {
    SyntheticParams::preset(SyntheticPreset::S1000, seed)
        .generate(n)
        .into_iter()
        .map(|(a, b)| {
            (
                String::from_utf8(a.to_ascii()).unwrap(),
                String::from_utf8(b.to_ascii()).unwrap(),
            )
        })
        .collect()
}

/// One daemon lifetime: serve the workload, collect result lines, drain.
fn lifetime(
    opts: &ServeOptions,
    pairs: &[(String, String)],
) -> (Vec<(f64, String)>, ServiceReport) {
    let o = opts.clone();
    let daemon = thread::spawn(move || run_serve(&o).expect("daemon starts"));
    let mut c =
        Client::connect_retry(&opts.socket, Duration::from_secs(10)).expect("socket appears");
    let mut results = Vec::new();
    for (i, pair) in pairs.iter().enumerate() {
        c.send(&proto::align_line(
            &format!("p{i}"),
            Priority::Normal,
            None,
            std::slice::from_ref(pair),
        ))
        .unwrap();
        let resp = c.recv().unwrap().expect("result line");
        assert_eq!(
            resp.get("disposition").unwrap().as_str(),
            Some("ok"),
            "{resp:?}"
        );
        for r in resp.get("results").unwrap().as_arr().unwrap() {
            results.push((
                r.get("score").unwrap().as_f64().unwrap(),
                r.get("cigar").unwrap().as_str().unwrap().to_string(),
            ));
        }
    }
    c.send("{\"op\":\"drain\"}").unwrap();
    while c.recv().unwrap().is_some() {}
    (results, daemon.join().unwrap())
}

#[test]
fn graceful_restart_serves_the_workload_from_the_recovered_cache() {
    let root = scratch("warm");
    let pairs = ascii_pairs(6, 17);

    let (cold_results, cold) = lifetime(&opts(&root, 0), &pairs);
    assert!(cold.consistent(), "{cold:?}");
    assert!(cold.durability.enabled);
    assert_eq!(cold.durability.cache_recovered, 0, "first start is cold");
    assert_eq!(cold.cache.hits, 0, "nothing to hit on a cold start");
    assert!(cold.cache.inserts > 0, "workload populates the store");

    let (warm_results, warm) = lifetime(&opts(&root, 1), &pairs);
    assert!(warm.consistent(), "{warm:?}");
    assert!(
        warm.durability.cache_recovered > 0,
        "restart recovered nothing: {:?}",
        warm.durability
    );
    assert_eq!(
        warm.durability.cache_recovery_rejected, 0,
        "clean state must pass the audit gate whole"
    );
    assert!(
        warm.cache.hits as usize >= pairs.len(),
        "warm restart did not serve from the recovered cache: {:?}",
        warm.cache
    );
    assert_eq!(cold_results, warm_results, "answers must be bit-identical");

    let _ = std::fs::remove_dir_all(root);
}

#[test]
fn journal_from_a_future_format_version_refuses_startup() {
    let root = scratch("future");
    let state = root.join("state");
    std::fs::create_dir_all(&state).unwrap();
    // A plausible journal header with format byte bumped past ours.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"UNWJNL");
    bytes.push(0xFE);
    bytes.push(0);
    bytes.extend_from_slice(&1u32.to_le_bytes());
    std::fs::write(state.join("requests.journal"), &bytes).unwrap();

    let err = run_serve(&opts(&root, 0)).expect_err("future version must refuse startup");
    let msg = format!("{err}");
    assert!(
        msg.contains("refusing") || msg.contains("version") || msg.contains("format"),
        "unhelpful refusal message: {msg}"
    );
    let _ = std::fs::remove_dir_all(root);
}
