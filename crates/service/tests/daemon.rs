//! End-to-end daemon tests over a real unix socket: round trips, deadline
//! handling, graceful drain with in-flight work, and admission/shedding
//! under a deliberately full queue.

use datasets::synthetic::{SyntheticParams, SyntheticPreset};
use nw_core::adaptive::AdaptiveAligner;
use nw_core::ScoringScheme;
use std::collections::HashMap;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;
use upmem_nw_service::json::Json;
use upmem_nw_service::{
    proto, run_serve, Client, Priority, RetryPolicy, ServeOptions, ServiceReport,
};

fn sock(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("upmem-nw-test-{}-{name}.sock", std::process::id()));
    p
}

fn test_opts(name: &str) -> ServeOptions {
    ServeOptions {
        socket: sock(name),
        ranks: 2,
        dpus: 4,
        band: 64,
        max_open_tickets: 4,
        queue_requests: 16,
        queue_pairs: 1024,
        stall_deadline_seconds: 2.0,
        ..ServeOptions::default()
    }
}

fn ascii_pairs(n: usize, seed: u64) -> Vec<(String, String)> {
    SyntheticParams::preset(SyntheticPreset::S1000, seed)
        .generate(n)
        .into_iter()
        .map(|(a, b)| {
            (
                String::from_utf8(a.to_ascii()).unwrap(),
                String::from_utf8(b.to_ascii()).unwrap(),
            )
        })
        .collect()
}

fn spawn_daemon(opts: &ServeOptions) -> thread::JoinHandle<ServiceReport> {
    let opts = opts.clone();
    thread::spawn(move || run_serve(&opts).expect("daemon starts"))
}

fn connect(opts: &ServeOptions) -> Client {
    Client::connect_retry(&opts.socket, Duration::from_secs(10)).expect("daemon socket appears")
}

/// Read responses until EOF, keyed by id; the drain ack has no id and is
/// returned separately (last ack wins).
fn collect_until_eof(c: &mut Client) -> (HashMap<String, Json>, usize) {
    let mut by_id = HashMap::new();
    let mut drain_acks = 0;
    while let Some(v) = c.recv().expect("readable response") {
        if v.get("type").and_then(Json::as_str) == Some("draining") {
            drain_acks += 1;
            continue;
        }
        let id = v.get("id").and_then(Json::as_str).expect("id").to_string();
        by_id.insert(id, v);
    }
    (by_id, drain_acks)
}

#[test]
fn roundtrip_results_match_cpu_reference_and_drain_reports() {
    let opts = test_opts("roundtrip");
    let daemon = spawn_daemon(&opts);
    let mut c = connect(&opts);

    let pairs = ascii_pairs(4, 7);
    c.send(&proto::align_line("r1", Priority::Normal, None, &pairs))
        .unwrap();
    let resp = c.recv().unwrap().expect("result line");
    assert_eq!(resp.get("type").unwrap().as_str(), Some("result"));
    assert_eq!(resp.get("id").unwrap().as_str(), Some("r1"));
    assert_eq!(resp.get("disposition").unwrap().as_str(), Some("ok"));
    let results = resp.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), pairs.len());

    let band = 64usize.next_multiple_of(16);
    let aligner = AdaptiveAligner::new(ScoringScheme::default(), band);
    for ((a, b), got) in pairs.iter().zip(results) {
        let reference = aligner
            .align(
                &nw_core::seq::DnaSeq::from_ascii(a.as_bytes()).unwrap(),
                &nw_core::seq::DnaSeq::from_ascii(b.as_bytes()).unwrap(),
            )
            .expect("reference aligns");
        assert_eq!(got.get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(
            got.get("score").unwrap().as_f64(),
            Some(reference.score as f64)
        );
        assert_eq!(
            got.get("cigar").unwrap().as_str(),
            Some(reference.cigar.to_string().as_str())
        );
    }

    c.send("{\"op\":\"drain\"}").unwrap();
    let (rest, drain_acks) = collect_until_eof(&mut c);
    assert!(rest.is_empty(), "no further responses expected: {rest:?}");
    assert_eq!(drain_acks, 1);

    let rep = daemon.join().unwrap();
    assert!(rep.consistent(), "conservation law: {rep:?}");
    assert_eq!(rep.received, 1);
    assert_eq!(rep.accepted, 1);
    assert_eq!(rep.completed, 1);
    assert_eq!(rep.pairs_completed, 4);
    assert!(rep.drained);
    assert!(rep.latency_p50_ms > 0.0);
}

#[test]
fn deadline_expired_on_arrival_is_reaped_not_dropped() {
    let opts = test_opts("deadline0");
    let daemon = spawn_daemon(&opts);
    let mut c = connect(&opts);

    let pairs = ascii_pairs(2, 11);
    // deadline_ms 0: expired the moment it is admitted.
    c.send(&proto::align_line(
        "late",
        Priority::Normal,
        Some(0),
        &pairs,
    ))
    .unwrap();
    let resp = c.recv().unwrap().expect("terminal answer");
    assert_eq!(resp.get("type").unwrap().as_str(), Some("result"));
    assert_eq!(resp.get("id").unwrap().as_str(), Some("late"));
    assert_eq!(
        resp.get("disposition").unwrap().as_str(),
        Some("deadline-missed")
    );
    let results = resp.get("results").unwrap().as_arr().unwrap();
    assert_eq!(results.len(), 2);
    for r in results {
        assert_eq!(r.get("status").unwrap().as_str(), Some("cancelled"));
    }

    // The daemon is still healthy: a normal request completes after it.
    c.send(&proto::align_line("fine", Priority::Normal, None, &pairs))
        .unwrap();
    let resp = c.recv().unwrap().expect("result line");
    assert_eq!(resp.get("disposition").unwrap().as_str(), Some("ok"));

    c.send("{\"op\":\"drain\"}").unwrap();
    let _ = collect_until_eof(&mut c);
    let rep = daemon.join().unwrap();
    assert!(rep.consistent(), "conservation law: {rep:?}");
    assert_eq!(rep.accepted, 2);
    assert_eq!(rep.completed, 1);
    assert_eq!(rep.deadline_missed, 1);
    assert_eq!(rep.jobs_cancelled, 2);
}

#[test]
fn drain_with_inflight_work_answers_every_request() {
    let opts = test_opts("drain-inflight");
    let daemon = spawn_daemon(&opts);
    let mut c = connect(&opts);

    // Fire several requests and the drain without reading anything, so the
    // drain lands while work is queued and in flight.
    let pairs = ascii_pairs(3, 23);
    for k in 0..3 {
        c.send(&proto::align_line(
            &format!("r{k}"),
            Priority::Normal,
            None,
            &pairs,
        ))
        .unwrap();
    }
    c.send("{\"op\":\"drain\"}").unwrap();
    // Requests arriving after the drain are rejected, not ignored.
    c.send(&proto::align_line("late", Priority::Normal, None, &pairs))
        .unwrap();

    let (by_id, _) = collect_until_eof(&mut c);
    for k in 0..3 {
        let v = &by_id[&format!("r{k}")];
        assert_eq!(v.get("type").unwrap().as_str(), Some("result"));
        assert_eq!(v.get("disposition").unwrap().as_str(), Some("ok"));
    }
    // The late request raced the drain: either answered before the flag
    // was processed (result) or explicitly rejected — but never silent,
    // unless the daemon exited before reading the line (EOF answers it).
    if let Some(v) = by_id.get("late") {
        let t = v.get("type").unwrap().as_str().unwrap();
        assert!(t == "result" || t == "reject", "unexpected answer {v:?}");
    }

    let rep = daemon.join().unwrap();
    assert!(rep.consistent(), "conservation law: {rep:?}");
    assert!(rep.completed >= 3);
    assert!(rep.drained);
}

#[test]
fn full_queue_rejects_sheds_and_deadlines_account_exactly() {
    // Admission-only mode: max_open_tickets = 0 pauses dispatch so the
    // queue fills deterministically.
    let mut opts = test_opts("admission");
    opts.max_open_tickets = 0;
    opts.queue_requests = 2;
    let daemon = spawn_daemon(&opts);
    let mut c = connect(&opts);

    let pairs = ascii_pairs(1, 31);
    let deadline = Some(400);
    c.send(&proto::align_line("b1", Priority::Batch, deadline, &pairs))
        .unwrap();
    c.send(&proto::align_line("b2", Priority::Batch, deadline, &pairs))
        .unwrap();
    // Queue exactly full: a same-priority arrival is rejected with a hint.
    c.send(&proto::align_line("b3", Priority::Batch, deadline, &pairs))
        .unwrap();
    // A higher-priority arrival displaces the youngest batch request.
    c.send(&proto::align_line(
        "i1",
        Priority::Interactive,
        deadline,
        &pairs,
    ))
    .unwrap();
    c.send("{\"op\":\"drain\"}").unwrap();

    let (by_id, drain_acks) = collect_until_eof(&mut c);
    assert_eq!(drain_acks, 1);

    let b3 = &by_id["b3"];
    assert_eq!(b3.get("type").unwrap().as_str(), Some("reject"));
    assert_eq!(b3.get("reason").unwrap().as_str(), Some("queue-full"));
    assert!(b3.get("retry_after_ms").unwrap().as_u64().unwrap() >= 1);

    let b2 = &by_id["b2"];
    assert_eq!(b2.get("type").unwrap().as_str(), Some("shed"));
    assert!(b2.get("retry_after_ms").unwrap().as_u64().unwrap() >= 1);

    // b1 and i1 sat in the paused queue until their deadlines reaped them.
    for id in ["b1", "i1"] {
        let v = &by_id[id];
        assert_eq!(v.get("type").unwrap().as_str(), Some("result"), "{id}");
        assert_eq!(
            v.get("disposition").unwrap().as_str(),
            Some("deadline-missed"),
            "{id}"
        );
    }

    let rep = daemon.join().unwrap();
    assert!(rep.consistent(), "conservation law: {rep:?}");
    assert_eq!(rep.received, 4);
    assert_eq!(rep.accepted, 3);
    assert_eq!(rep.rejected, 1);
    assert_eq!(rep.shed, 1);
    assert_eq!(rep.deadline_missed, 2);
    assert_eq!(rep.completed, 0);
    assert_eq!(rep.max_queue_depth, 2);
}

#[test]
fn client_retry_honors_backoff_hint_and_attempt_budget() {
    // Admission-only daemon with a one-slot queue: b1 occupies the slot
    // until its deadline, so every attempt of r2 bounces with a
    // `retry_after_ms` hint and the retry budget runs dry deterministically.
    let mut opts = test_opts("retry");
    opts.max_open_tickets = 0;
    opts.queue_requests = 1;
    let daemon = spawn_daemon(&opts);
    let mut c = connect(&opts);

    let pairs = ascii_pairs(1, 41);
    c.send(&proto::align_line("b1", Priority::Batch, Some(600), &pairs))
        .unwrap();

    let policy = RetryPolicy {
        attempts: 2,
        max_wait: Duration::from_millis(20),
    };
    let line = proto::align_line("r2", Priority::Batch, Some(600), &pairs);
    let out = c
        .request_with_retry(&line, &policy)
        .unwrap()
        .expect("terminal answer, not EOF");
    assert_eq!(out.retried, policy.attempts, "budget fully spent");
    assert_eq!(
        out.response.get("type").unwrap().as_str(),
        Some("reject"),
        "still full after the last retry: {:?}",
        out.response
    );
    assert_eq!(out.response.get("id").unwrap().as_str(), Some("r2"));
    assert!(
        out.response
            .get("retry_after_ms")
            .unwrap()
            .as_u64()
            .unwrap()
            >= 1
    );

    c.send("{\"op\":\"drain\"}").unwrap();
    let (by_id, _) = collect_until_eof(&mut c);
    assert_eq!(
        by_id["b1"].get("disposition").unwrap().as_str(),
        Some("deadline-missed")
    );

    let rep = daemon.join().unwrap();
    assert!(rep.consistent(), "conservation law: {rep:?}");
    // b1 once, r2 three times (initial send + 2 retries).
    assert_eq!(rep.received, 4);
    assert_eq!(rep.rejected, 3);
    assert_eq!(rep.deadline_missed, 1);
}

#[test]
fn oversized_line_is_refused_and_the_connection_survives() {
    let mut opts = test_opts("oversized");
    opts.max_line_bytes = 4096;
    let daemon = spawn_daemon(&opts);
    let mut c = connect(&opts);

    // One line far past the bound: refused with an error, not buffered.
    let mut huge = String::from("{\"op\":\"align\",\"id\":\"huge\",\"pairs\":[[\"");
    huge.push_str(&"A".repeat(32 * 1024));
    huge.push_str("\",\"AC\"]]}");
    c.send(&huge).unwrap();
    let resp = c.recv().unwrap().expect("error answer");
    assert_eq!(resp.get("type").unwrap().as_str(), Some("error"));
    let msg = resp.get("error").unwrap().as_str().unwrap();
    assert!(msg.contains("exceeds"), "unexpected error: {msg}");

    // The same connection still serves a normal request afterwards.
    let pairs = ascii_pairs(1, 43);
    c.send(&proto::align_line("ok", Priority::Normal, None, &pairs))
        .unwrap();
    let resp = c.recv().unwrap().expect("result line");
    assert_eq!(resp.get("type").unwrap().as_str(), Some("result"));
    assert_eq!(resp.get("disposition").unwrap().as_str(), Some("ok"));

    c.send("{\"op\":\"drain\"}").unwrap();
    let _ = collect_until_eof(&mut c);
    let rep = daemon.join().unwrap();
    assert!(rep.consistent(), "conservation law: {rep:?}");
    assert_eq!(rep.invalid, 1);
    assert_eq!(rep.completed, 1);
}
