//! Hostile-input tests for the hand-rolled JSON parser and the protocol
//! layer: truncations of valid documents, seeded byte garbage,
//! pathological nesting, and multi-megabyte lines must all come back as
//! `Err` or a parsed value — never a panic, a stack overflow, or a hang.

use pim_sim::fault::mix64;
use std::time::Instant;
use upmem_nw_service::json::Json;
use upmem_nw_service::proto;

/// Feed one line to both parser entry points the daemon uses.
fn no_panic(line: &str) {
    let _ = Json::parse(line);
    let _ = proto::parse_line(line);
}

#[test]
fn every_truncation_of_a_valid_request_is_handled() {
    let doc = concat!(
        r#"{"op":"align","id":"fuzz-1","priority":"interactive","deadline_ms":1500,"#,
        r#""pairs":[["ACGTACGTAC","ACGAACGTAC"],["TTTTGGGGCC","TTTTGGGGCC"]],"#,
        r#""meta":{"nested":{"deep":[1,2,3,true,false,null,-0.5e3]},"s":"é\n\"\\"}}"#
    );
    for cut in 0..=doc.len() {
        if doc.is_char_boundary(cut) {
            no_panic(&doc[..cut]);
        }
    }
    // The full document itself must parse.
    assert!(Json::parse(doc).is_ok());
    assert!(proto::parse_line(doc).is_ok());
}

#[test]
fn seeded_raw_byte_garbage_never_panics() {
    for round in 0..512u64 {
        let mut bytes = Vec::new();
        let len = 1 + (mix64(round ^ 0x5EED) % 96) as usize;
        let mut x = mix64(round.wrapping_mul(0x9E37_79B9));
        for _ in 0..len {
            x = mix64(x);
            bytes.push((x & 0xFF) as u8);
        }
        let line = String::from_utf8_lossy(&bytes).into_owned();
        no_panic(&line);
    }
}

#[test]
fn seeded_json_shaped_garbage_never_panics() {
    // Garbage drawn from JSON's own alphabet reaches much deeper into the
    // parser than raw bytes do.
    const ALPHABET: &[u8] = br#"{}[]",:0123456789.eE+-truefalsn ul"#;
    for round in 0..2048u64 {
        let mut line = String::new();
        let len = 1 + (mix64(round ^ 0xA11CE) % 256) as usize;
        let mut x = mix64(round | 1 << 40);
        for _ in 0..len {
            x = mix64(x);
            line.push(ALPHABET[(x as usize) % ALPHABET.len()] as char);
        }
        no_panic(&line);
    }
}

#[test]
fn pathological_nesting_is_rejected_without_blowing_the_stack() {
    let start = Instant::now();
    for unit in ["[", "{\"k\":[", "[[{\"a\":", "[0,"] {
        let line = unit.repeat(1_000_000 / unit.len());
        assert!(
            Json::parse(&line).is_err(),
            "unterminated deep nesting must not parse: {unit:?}"
        );
        let closed = format!("{}0{}", "[".repeat(500_000), "]".repeat(500_000));
        assert!(
            Json::parse(&closed).is_err(),
            "nesting beyond the depth gate must be refused"
        );
    }
    assert!(
        start.elapsed().as_secs() < 30,
        "deep-nesting rejection took pathologically long"
    );
}

#[test]
fn multi_megabyte_lines_parse_or_fail_quickly() {
    // A syntactically valid multi-MB request: one giant pair list.
    let mut doc = String::with_capacity(6 << 20);
    doc.push_str(r#"{"op":"align","id":"big","pairs":["#);
    for i in 0..20_000 {
        if i > 0 {
            doc.push(',');
        }
        doc.push_str(r#"["ACGTACGTACGTACGTACGTACGTACGTACGT","TGCATGCATGCATGCATGCATGCATGCATGCA"]"#);
    }
    doc.push_str("]}");
    assert!(doc.len() > 1 << 20);
    let start = Instant::now();
    let parsed = proto::parse_line(&doc);
    assert!(parsed.is_ok(), "valid multi-MB request must parse");
    // And multi-MB non-JSON garbage fails instead of hanging.
    let garbage = "A".repeat(4 << 20);
    no_panic(&garbage);
    let quoted = format!("\"{}", "x".repeat(4 << 20));
    no_panic(&quoted);
    assert!(
        start.elapsed().as_secs() < 30,
        "multi-megabyte parsing took pathologically long"
    );
}
