//! Randomized tests for the host-side machinery: balancing invariants,
//! grouping coverage, and encode/pack agreement under arbitrary inputs.
//! Cases come from a seeded [`SplitMix64`] stream.

use nw_core::rng::SplitMix64;
use nw_core::seq::{Base, DnaSeq};
use pim_host::balance::{bin_loads, imbalance, lpt_assign, round_robin_assign, workload};
use pim_host::dispatch::group_jobs;
use pim_host::encode::Encoder;

fn rand_workloads(rng: &mut SplitMix64, max_items: u64) -> Vec<u64> {
    (0..rng.below(max_items))
        .map(|_| rng.between(1, 99_999))
        .collect()
}

const TRIALS: usize = 100;

#[test]
fn lpt_partitions_exactly() {
    let mut rng = SplitMix64::new(21);
    for _ in 0..TRIALS {
        let w = rand_workloads(&mut rng, 200);
        let bins = rng.between(1, 39) as usize;
        let asg = lpt_assign(&w, bins);
        assert_eq!(asg.len(), bins);
        let mut seen = vec![0u8; w.len()];
        for bin in &asg {
            for &i in bin {
                seen[i] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1), "every item exactly once");
        // Total load is conserved.
        let loads = bin_loads(&asg, &w);
        assert_eq!(loads.iter().sum::<u64>(), w.iter().sum::<u64>());
    }
}

#[test]
fn lpt_makespan_never_exceeds_round_robin() {
    let mut rng = SplitMix64::new(22);
    for _ in 0..TRIALS {
        let w = rand_workloads(&mut rng, 200);
        let bins = rng.between(1, 31) as usize;
        // LPT's greedy is provably within 4/3 of optimal; round-robin has no
        // guarantee. LPT's makespan must never be *worse* than round-robin's
        // by more than the largest item (loose but universal bound).
        let lpt = bin_loads(&lpt_assign(&w, bins), &w);
        let rr = bin_loads(&round_robin_assign(w.len(), bins), &w);
        let lpt_max = lpt.iter().copied().max().unwrap_or(0);
        let rr_max = rr.iter().copied().max().unwrap_or(0);
        let biggest = w.iter().copied().max().unwrap_or(0);
        assert!(lpt_max <= rr_max + biggest);
    }
}

#[test]
fn lpt_respects_four_thirds_bound() {
    let mut rng = SplitMix64::new(23);
    for _ in 0..TRIALS {
        let mut w = rand_workloads(&mut rng, 200);
        if w.is_empty() {
            w.push(rng.between(1, 99_999));
        }
        let bins = rng.between(1, 15) as usize;
        let loads = bin_loads(&lpt_assign(&w, bins), &w);
        let makespan = *loads.iter().max().unwrap() as f64;
        let total: u64 = w.iter().sum();
        let lower = (total as f64 / bins as f64).max(*w.iter().max().unwrap() as f64);
        assert!(
            makespan <= lower * 4.0 / 3.0 + 1.0,
            "makespan {makespan} lower {lower}"
        );
    }
}

#[test]
fn group_jobs_covers_and_balances_counts() {
    let mut rng = SplitMix64::new(24);
    for _ in 0..TRIALS {
        let w = rand_workloads(&mut rng, 200);
        let groups = rng.between(1, 19) as usize;
        let gs = group_jobs(&w, groups);
        assert_eq!(gs.len(), groups);
        let mut seen = vec![false; w.len()];
        for g in &gs {
            for &i in g {
                assert!(!seen[i]);
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        // Serpentine dealing keeps group sizes within 1 of each other.
        let sizes: Vec<usize> = gs.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1, "sizes {sizes:?}");
    }
}

#[test]
fn group_jobs_balances_workload_units_not_job_counts() {
    // The serpentine deal operates on eq.-6 workload units: on skewed
    // inputs (heavy items first) the heaviest group's *load* stays within
    // one maximal item of the lightest group's, even though a count-only
    // deal over the same arrival order can be arbitrarily lopsided in load.
    let mut rng = SplitMix64::new(28);
    for _ in 0..TRIALS {
        // Skewed: a few huge items and a tail of tiny ones.
        let mut w: Vec<u64> = (0..rng.between(2, 9))
            .map(|_| rng.between(500_000, 999_999))
            .collect();
        w.extend((0..rng.between(10, 99)).map(|_| rng.between(1, 999)));
        let groups = rng.between(2, 9) as usize;
        let gs = group_jobs(&w, groups);
        let loads: Vec<u64> = gs.iter().map(|g| g.iter().map(|&i| w[i]).sum()).collect();
        let (min, max) = (*loads.iter().min().unwrap(), *loads.iter().max().unwrap());
        let biggest = *w.iter().max().unwrap();
        assert!(
            max - min <= biggest,
            "load gap {} exceeds biggest item {biggest}: {loads:?}",
            max - min
        );
    }
}

#[test]
fn imbalance_is_scale_invariant() {
    let mut rng = SplitMix64::new(25);
    for _ in 0..TRIALS {
        let w: Vec<u64> = (0..rng.between(1, 49))
            .map(|_| rng.between(1, 999))
            .collect();
        let k = rng.between(2, 9);
        let bins = 4;
        let base = bin_loads(&lpt_assign(&w, bins), &w);
        let scaled: Vec<u64> = w.iter().map(|&x| x * k).collect();
        let big = bin_loads(&lpt_assign(&scaled, bins), &scaled);
        assert!((imbalance(&base) - imbalance(&big)).abs() < 1e-9);
    }
}

#[test]
fn workload_is_monotone() {
    let mut rng = SplitMix64::new(26);
    for _ in 0..TRIALS {
        let m = rng.below(10_000) as usize;
        let n = rng.below(10_000) as usize;
        let w = rng.between(1, 511) as usize;
        assert!(workload(m + 1, n, w) >= workload(m, n, w));
        assert!(workload(m, n + 1, w) >= workload(m, n, w));
        assert_eq!(workload(m, n, w), workload(n, m, w));
    }
}

#[test]
fn encoder_matches_pack_on_arbitrary_sequences() {
    let mut rng = SplitMix64::new(27);
    for _ in 0..TRIALS {
        let seq: DnaSeq = (0..rng.below(500))
            .map(|_| Base::from_code(rng.below(4) as u8))
            .collect();
        let ascii = seq.to_ascii();
        let mut enc = Encoder::new(0);
        let direct = enc.encode_ascii(&ascii).unwrap();
        assert_eq!(direct, seq.pack());
        assert_eq!(enc.stats().ascii_bytes, ascii.len() as u64);
    }
}
