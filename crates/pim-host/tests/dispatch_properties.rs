//! Property tests for the host-side machinery: balancing invariants,
//! grouping coverage, and encode/pack agreement under arbitrary inputs.

use nw_core::seq::{Base, DnaSeq};
use pim_host::balance::{bin_loads, imbalance, lpt_assign, round_robin_assign, workload};
use pim_host::dispatch::group_jobs;
use pim_host::encode::Encoder;
use proptest::prelude::*;

fn arb_workloads() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(1u64..100_000, 0..200)
}

proptest! {
    #[test]
    fn lpt_partitions_exactly(w in arb_workloads(), bins in 1usize..40) {
        let asg = lpt_assign(&w, bins);
        prop_assert_eq!(asg.len(), bins);
        let mut seen = vec![0u8; w.len()];
        for bin in &asg {
            for &i in bin {
                seen[i] += 1;
            }
        }
        prop_assert!(seen.iter().all(|&c| c == 1), "every item exactly once");
        // Total load is conserved.
        let loads = bin_loads(&asg, &w);
        prop_assert_eq!(loads.iter().sum::<u64>(), w.iter().sum::<u64>());
    }

    #[test]
    fn lpt_makespan_never_exceeds_round_robin(w in arb_workloads(), bins in 1usize..32) {
        // LPT's greedy is provably within 4/3 of optimal; round-robin has no
        // guarantee. LPT's makespan must never be *worse* than round-robin's
        // by more than the largest item (loose but universal bound), and its
        // imbalance should not exceed round-robin's on sorted-heavy inputs.
        let lpt = bin_loads(&lpt_assign(&w, bins), &w);
        let rr = bin_loads(&round_robin_assign(w.len(), bins), &w);
        let lpt_max = lpt.iter().copied().max().unwrap_or(0);
        let rr_max = rr.iter().copied().max().unwrap_or(0);
        let biggest = w.iter().copied().max().unwrap_or(0);
        prop_assert!(lpt_max <= rr_max + biggest);
    }

    #[test]
    fn lpt_respects_four_thirds_bound(w in arb_workloads(), bins in 1usize..16) {
        prop_assume!(!w.is_empty());
        let loads = bin_loads(&lpt_assign(&w, bins), &w);
        let makespan = *loads.iter().max().unwrap() as f64;
        let total: u64 = w.iter().sum();
        let lower = (total as f64 / bins as f64).max(*w.iter().max().unwrap() as f64);
        prop_assert!(makespan <= lower * 4.0 / 3.0 + 1.0, "makespan {makespan} lower {lower}");
    }

    #[test]
    fn group_jobs_covers_and_balances_counts(w in arb_workloads(), groups in 1usize..20) {
        let gs = group_jobs(&w, groups);
        prop_assert_eq!(gs.len(), groups);
        let mut seen = vec![false; w.len()];
        for g in &gs {
            for &i in g {
                prop_assert!(!seen[i]);
                seen[i] = true;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Serpentine dealing keeps group sizes within 1 of each other.
        let sizes: Vec<usize> = gs.iter().map(Vec::len).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        prop_assert!(max - min <= 1, "sizes {sizes:?}");
    }

    #[test]
    fn imbalance_is_scale_invariant(w in prop::collection::vec(1u64..1000, 1..50), k in 2u64..10) {
        let bins = 4;
        let base = bin_loads(&lpt_assign(&w, bins), &w);
        let scaled: Vec<u64> = w.iter().map(|&x| x * k).collect();
        let big = bin_loads(&lpt_assign(&scaled, bins), &scaled);
        prop_assert!((imbalance(&base) - imbalance(&big)).abs() < 1e-9);
    }

    #[test]
    fn workload_is_monotone(m in 0usize..10_000, n in 0usize..10_000, w in 1usize..512) {
        prop_assert!(workload(m + 1, n, w) >= workload(m, n, w));
        prop_assert!(workload(m, n + 1, w) >= workload(m, n, w));
        prop_assert_eq!(workload(m, n, w), workload(n, m, w));
    }

    #[test]
    fn encoder_matches_pack_on_arbitrary_sequences(codes in prop::collection::vec(0u8..4, 0..500)) {
        let seq: DnaSeq = codes.iter().map(|&c| Base::from_code(c)).collect();
        let ascii = seq.to_ascii();
        let mut enc = Encoder::new(0);
        let direct = enc.encode_ascii(&ascii).unwrap();
        prop_assert_eq!(direct, seq.pack());
        prop_assert_eq!(enc.stats().ascii_bytes, ascii.len() as u64);
    }
}
