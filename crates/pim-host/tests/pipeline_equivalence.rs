//! Randomized equivalence tests for the pipelined dispatch engine: on any
//! job set, topology and FIFO depth, `execute_rounds_pipelined` must be
//! bit-identical to the lockstep `execute_rounds` — same results, same
//! simulated per-rank seconds, same aggregate statistics. Stragglers (both
//! the simulated slowdown and the wall-clock hold) may only change *host*
//! timing, never outputs. Cases come from a seeded [`SplitMix64`] stream.

use dpu_kernel::{KernelParams, KernelVariant, NwKernel, PoolConfig};
use nw_core::rng::SplitMix64;
use nw_core::seq::{Base, DnaSeq, PackedSeq};
use nw_core::ScoringScheme;
use pim_host::balance::pair_workloads;
use pim_host::dispatch::{execute_rounds, group_jobs, plan_rank, DispatchOutcome, RankPlan};
use pim_host::pipeline::{execute_rounds_pipelined, PipelineOptions};
use pim_host::recovery::{align_pairs_recovering, RecoveryConfig};
use pim_host::{DispatchConfig, Engine};
use pim_sim::{FaultPlan, PimServer, ServerConfig};

fn params() -> KernelParams {
    KernelParams {
        band: 16,
        scheme: ScoringScheme::default(),
        score_only: false,
    }
}

fn kernel() -> NwKernel {
    NwKernel::new(
        PoolConfig {
            pools: 2,
            tasklets: 4,
        },
        KernelVariant::Asm,
    )
}

fn server(fault: FaultPlan, ranks: usize, dpus: usize) -> PimServer {
    let mut cfg = ServerConfig::with_ranks(ranks);
    cfg.dpus_per_rank = dpus;
    cfg.fault = fault;
    PimServer::new(cfg)
}

fn rand_seq(rng: &mut SplitMix64, len: usize) -> DnaSeq {
    (0..len)
        .map(|_| Base::from_code(rng.below(4) as u8))
        .collect()
}

/// Random packed pairs: a random sequence and a lightly edited copy, so most
/// jobs stay in-band while some go OutOfBand — both outcomes must agree.
fn rand_jobs(rng: &mut SplitMix64, n: usize) -> Vec<(PackedSeq, PackedSeq)> {
    (0..n)
        .map(|_| {
            let len = rng.between(20, 80) as usize;
            let a = rand_seq(rng, len);
            let mut text = a.to_ascii();
            let edits = rng.below(4) as usize;
            for _ in 0..edits {
                let at = rng.below(text.len() as u64) as usize;
                text.insert(at, b"ACGT"[rng.below(4) as usize]);
            }
            let b = DnaSeq::from_ascii(&text).unwrap();
            (a.pack(), b.pack())
        })
        .collect()
}

/// Deterministic plan construction: the same grouping the production modes
/// use (eq.-6 workloads, serpentine `group_jobs`, LPT inside each rank), so
/// building twice yields byte-identical plans for both engines.
fn build_rounds(
    jobs: &[(PackedSeq, PackedSeq)],
    n_rounds: usize,
    n_ranks: usize,
    dpus: usize,
) -> Vec<Vec<RankPlan>> {
    let workloads = pair_workloads(jobs, params().band);
    let groups = group_jobs(&workloads, n_rounds * n_ranks);
    let mut rounds = Vec::new();
    for k in 0..n_rounds {
        let mut plans = Vec::new();
        for r in 0..n_ranks {
            let ids = &groups[k * n_ranks + r];
            let subset: Vec<(PackedSeq, PackedSeq)> =
                ids.iter().map(|&i| jobs[i].clone()).collect();
            plans.push(plan_rank(&subset, ids, dpus, params(), 2, 64 << 20).unwrap());
        }
        rounds.push(plans);
    }
    rounds
}

fn assert_bit_identical(lock: &DispatchOutcome, pipe: &DispatchOutcome, label: &str) {
    let sort = |v: &[(usize, dpu_kernel::JobResult)]| {
        let mut v = v.to_vec();
        v.sort_by_key(|(id, _)| *id);
        v
    };
    assert_eq!(sort(&lock.results), sort(&pipe.results), "{label}: results");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&lock.rank_seconds),
        bits(&pipe.rank_seconds),
        "{label}: rank_seconds"
    );
    assert_eq!(
        lock.transfer_seconds.to_bits(),
        pipe.transfer_seconds.to_bits(),
        "{label}: transfer_seconds"
    );
    assert_eq!(
        lock.dpu_seconds.to_bits(),
        pipe.dpu_seconds.to_bits(),
        "{label}: dpu_seconds"
    );
    assert_eq!(lock.bytes_in, pipe.bytes_in, "{label}: bytes_in");
    assert_eq!(lock.bytes_out, pipe.bytes_out, "{label}: bytes_out");
    assert_eq!(lock.stats, pipe.stats, "{label}: stats");
    assert_eq!(
        lock.mean_rank_imbalance.to_bits(),
        pipe.mean_rank_imbalance.to_bits(),
        "{label}: imbalance"
    );
    assert_eq!(lock.workload, pipe.workload, "{label}: workload");
}

fn run_both(
    fault: FaultPlan,
    topo: (usize, usize),
    jobs: &[(PackedSeq, PackedSeq)],
    n_rounds: usize,
    depth: usize,
    sim_threads: usize,
    label: &str,
) {
    let (ranks, dpus) = topo;
    let kernel = kernel();
    // The lockstep reference always runs the DPUs strictly sequentially
    // (thread budget 1); the pipelined run gets the trial's budget — the
    // comparison therefore also property-checks the intra-rank pool.
    let mut s1 = server(fault.clone(), ranks, dpus);
    let lock = execute_rounds(
        &mut s1,
        &kernel,
        build_rounds(jobs, n_rounds, ranks, dpus),
        1,
    )
    .unwrap();
    let mut s2 = server(fault, ranks, dpus);
    let opts = PipelineOptions {
        fifo_depth: depth,
        sim_threads,
        ..Default::default()
    };
    let pipe = execute_rounds_pipelined(
        &mut s2,
        &kernel,
        build_rounds(jobs, n_rounds, ranks, dpus),
        &opts,
    )
    .unwrap();
    assert_bit_identical(&lock, &pipe, label);
}

const TRIALS: usize = 12;

#[test]
fn pipelined_is_bit_identical_on_random_workloads() {
    let mut rng = SplitMix64::new(0xF1F0);
    for trial in 0..TRIALS {
        let n = rng.below(25) as usize;
        let jobs = rand_jobs(&mut rng, n);
        let ranks = rng.between(1, 3) as usize;
        let dpus = rng.between(1, 4) as usize;
        let n_rounds = rng.between(1, 3) as usize;
        let depth = rng.between(1, 3) as usize;
        let threads = rng.between(1, 8) as usize;
        run_both(
            FaultPlan::default(),
            (ranks, dpus),
            &jobs,
            n_rounds,
            depth,
            threads,
            &format!(
                "trial {trial} ({ranks}x{dpus}, {n_rounds} rounds, depth {depth}, {threads} threads)"
            ),
        );
    }
}

#[test]
fn pipelined_is_bit_identical_under_simulated_stragglers() {
    let mut rng = SplitMix64::new(0x57A6);
    for trial in 0..6 {
        let n = rng.between(6, 20) as usize;
        let jobs = rand_jobs(&mut rng, n);
        let ranks = rng.between(2, 3) as usize;
        let fault = FaultPlan {
            straggler_ranks: vec![rng.below(ranks as u64) as usize],
            straggler_slowdown: 2.0 + rng.below(2) as f64,
            ..FaultPlan::default()
        };
        run_both(
            fault,
            (ranks, 2),
            &jobs,
            2,
            2,
            1 + trial,
            &format!("straggler trial {trial}"),
        );
    }
}

#[test]
fn wall_clock_hold_does_not_change_outputs() {
    // The hold sleeps the host thread on the straggler's odd launches; it
    // must be invisible in every simulated quantity.
    let mut rng = SplitMix64::new(0x401D);
    let jobs = rand_jobs(&mut rng, 12);
    let fault = FaultPlan {
        straggler_ranks: vec![0],
        straggler_slowdown: 2.0,
        straggler_hold_ms: 3.0,
        ..FaultPlan::default()
    };
    run_both(fault, (2, 2), &jobs, 3, 2, 4, "hold");
}

#[test]
fn parallel_intra_rank_is_bit_identical_under_fault_plans() {
    // Satellite 3, fault half: under random topologies, fault plans and
    // thread budgets, the tolerant round executor must produce the same
    // fault draws, per-DPU failures, results and cycle stats whether the
    // rank's DPUs ran sequentially or on the intra-rank pool.
    use pim_host::dispatch::run_round;
    let mut rng = SplitMix64::new(0xACE5);
    for trial in 0..8 {
        let n = rng.between(4, 20) as usize;
        let jobs = rand_jobs(&mut rng, n);
        let ranks = rng.between(1, 3) as usize;
        let dpus = rng.between(2, 6) as usize;
        let threads = rng.between(2, 12) as usize;
        let fault = FaultPlan {
            seed: rng.next_u64(),
            dpu_fault_rate: 0.25,
            corrupt_rate: 0.2,
            disabled_dpus: vec![(
                rng.below(ranks as u64) as usize,
                rng.below(dpus as u64) as usize,
            )],
            ..FaultPlan::default()
        };
        let kernel = kernel();
        let label = format!("fault trial {trial} ({ranks}x{dpus}, {threads} threads)");
        let mut s1 = server(fault.clone(), ranks, dpus);
        let mut s2 = server(fault, ranks, dpus);
        for launch in 0..3 {
            let seq_round = run_round(
                &mut s1,
                &kernel,
                build_rounds(&jobs, 1, ranks, dpus).remove(0),
                true,
                1,
                pim_host::DeadlinePolicy::off(),
                None,
            );
            let par_round = run_round(
                &mut s2,
                &kernel,
                build_rounds(&jobs, 1, ranks, dpus).remove(0),
                true,
                threads,
                pim_host::DeadlinePolicy::off(),
                None,
            );
            for (r, (a, b)) in seq_round.into_iter().zip(par_round).enumerate() {
                let tag = format!("{label}, launch {launch}, rank {r}");
                match (a, b) {
                    (Ok(a), Ok(b)) => {
                        assert_eq!(a.results, b.results, "{tag}: results");
                        assert_eq!(a.stats, b.stats, "{tag}: stats");
                        assert_eq!(
                            a.barrier_seconds.to_bits(),
                            b.barrier_seconds.to_bits(),
                            "{tag}: barrier"
                        );
                        assert_eq!(
                            a.imbalance.to_bits(),
                            b.imbalance.to_bits(),
                            "{tag}: imbalance"
                        );
                        assert_eq!(a.bytes_in, b.bytes_in, "{tag}: bytes_in");
                        assert_eq!(a.bytes_out, b.bytes_out, "{tag}: bytes_out");
                        let fail = |v: &[pim_host::dispatch::DpuFailure]| {
                            v.iter()
                                .map(|f| (f.dpu, f.job_ids.clone(), f.error.clone()))
                                .collect::<Vec<_>>()
                        };
                        assert_eq!(fail(&a.failures), fail(&b.failures), "{tag}: fault draws");
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{tag}: errors"),
                    (a, b) => panic!("{tag}: outcomes diverge: {a:?} vs {b:?}"),
                }
            }
        }
    }
}

#[test]
fn recovery_engines_agree_with_fault_free_reference() {
    // Satellite 3, recovery half: under a chaotic fault plan (a dead rank
    // plus result corruption) both the sync and the pipelined recovery
    // engines must still complete every job with the fault-free answer.
    // Their schedules diverge (retries land on different launches), so the
    // comparison is against the clean reference, not each other.
    let mut rng = SplitMix64::new(0xDEAD);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..10)
        .map(|_| {
            let len = rng.between(30, 60) as usize;
            let a = rand_seq(&mut rng, len);
            let mut text = a.to_ascii();
            text.insert(5, b'T');
            (a.clone(), DnaSeq::from_ascii(&text).unwrap())
        })
        .collect();
    let mut cfg = DispatchConfig::new(kernel(), params());
    let rcfg = RecoveryConfig::default();

    cfg.engine = Engine::Lockstep;
    let mut clean = server(FaultPlan::default(), 2, 3);
    let (_, reference) = align_pairs_recovering(&mut clean, &cfg, &rcfg, &pairs).unwrap();
    assert_eq!(reference.len(), pairs.len());

    let fault = FaultPlan {
        seed: 7,
        dead_ranks: vec![0],
        corrupt_rate: 0.2,
        ..FaultPlan::default()
    };
    for (engine, label) in [
        (Engine::Lockstep, "sync recovery"),
        (Engine::Pipelined { fifo_depth: 2 }, "pipelined recovery"),
    ] {
        cfg.engine = engine;
        let mut faulty = server(fault.clone(), 2, 3);
        let (report, results) = align_pairs_recovering(&mut faulty, &cfg, &rcfg, &pairs).unwrap();
        assert_eq!(results, reference, "{label}: results");
        assert_eq!(report.fault.dead_ranks, vec![0], "{label}: dead rank");
        assert!(report.fault.retried_jobs > 0, "{label}: retried nothing");
    }
}

#[test]
fn engines_survive_hangs_and_silent_corruption_with_audited_results() {
    // Satellite: under a seeded plan mixing tasklet livelocks (reaped by
    // the cycle-budget watchdog, no wall-clock involved) with silent CIGAR
    // corruption (checksum recomputed, only the audit can catch it), both
    // recovery engines must deliver bit-identical results to the fault-free
    // reference — zero lost jobs, zero wrong results. The lockstep engine's
    // schedule is deterministic, so its FaultReport must also replay
    // bit-identically.
    let mut rng = SplitMix64::new(0xBEEF);
    let pairs: Vec<(DnaSeq, DnaSeq)> = (0..12)
        .map(|_| {
            let len = rng.between(30, 60) as usize;
            let a = rand_seq(&mut rng, len);
            let mut text = a.to_ascii();
            text.insert(7, b'G');
            (a.clone(), DnaSeq::from_ascii(&text).unwrap())
        })
        .collect();
    let mut cfg = DispatchConfig::new(kernel(), params());
    let rcfg = RecoveryConfig {
        max_attempts: 12,
        quarantine_after: 100,
        audit: true,
        ..Default::default()
    };
    let watched = |fault: FaultPlan| {
        let mut scfg = ServerConfig::with_ranks(2);
        scfg.dpus_per_rank = 3;
        scfg.fault = fault;
        scfg.dpu.watchdog_cycles = 2_000_000;
        pim_sim::PimServer::new(scfg)
    };

    cfg.engine = Engine::Lockstep;
    let mut clean = watched(FaultPlan::default());
    let (_, reference) = align_pairs_recovering(&mut clean, &cfg, &rcfg, &pairs).unwrap();
    assert_eq!(reference.len(), pairs.len());

    let fault = FaultPlan {
        seed: 0x5EED,
        hang_rate: 0.25,
        silent_corrupt_rate: 0.3,
        ..FaultPlan::default()
    };
    let mut lockstep_reports = Vec::new();
    for (engine, label) in [
        (Engine::Lockstep, "sync"),
        (Engine::Lockstep, "sync replay"),
        (Engine::Pipelined { fifo_depth: 2 }, "pipelined"),
    ] {
        cfg.engine = engine;
        let mut faulty = watched(fault.clone());
        let (report, results) = align_pairs_recovering(&mut faulty, &cfg, &rcfg, &pairs).unwrap();
        assert_eq!(results, reference, "{label}: results");
        assert!(
            report.fault.watchdog_expired > 0,
            "{label}: no hang reaped: {}",
            report.fault.summary()
        );
        assert!(
            report.fault.budget_escalations > 0,
            "{label}: expiries must escalate the budget"
        );
        assert!(
            report.fault.silent_corruptions > 0,
            "{label}: no corruption injected: {}",
            report.fault.summary()
        );
        assert!(
            report.fault.audit_failures > 0,
            "{label}: the audit must reject the mutated CIGARs"
        );
        assert_eq!(report.fault.corrupt_results, 0, "{label}: checksums pass");
        assert_eq!(report.fault.cpu_fallbacks, 0, "{label}: retries suffice");
        if matches!(engine, Engine::Lockstep) {
            lockstep_reports.push(report.fault.clone());
        }
    }
    assert_eq!(
        lockstep_reports[0], lockstep_reports[1],
        "lockstep fault accounting must replay bit-identically"
    );
}
