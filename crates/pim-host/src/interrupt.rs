//! Cooperative host-side interruption (Ctrl-C / SIGTERM).
//!
//! One process-wide flag, set from a signal handler (or programmatically by
//! tests and the serve daemon's drain path) and polled by every dispatch
//! driver at its planning points:
//!
//! * the strict engines stop planning, cancel in-flight launches through
//!   the rank cancel tokens, and return [`SimError::Interrupted`];
//! * the recovery engines stop planning, drain what is in flight, record
//!   the never-run jobs in [`crate::recovery::FaultReport::interrupted_jobs`]
//!   and return the **partial** outcome — completed results survive, so
//!   the CLI can print a partial [`crate::report::ExecutionReport`] instead
//!   of dying mid-write.
//!
//! A signal handler may only do async-signal-safe work; setting a static
//! atomic is the canonical safe payload. Registration goes through raw
//! `signal(2)` so no dependency is needed — std already links libc on unix.

use std::sync::atomic::{AtomicBool, Ordering};

static INTERRUPTED: AtomicBool = AtomicBool::new(false);

/// Has an interrupt been requested (signal received or [`trip`] called)?
pub fn requested() -> bool {
    INTERRUPTED.load(Ordering::Relaxed)
}

/// Request an interrupt programmatically — same effect as Ctrl-C. Used by
/// tests and by shutdown paths that want dispatch to wind down.
pub fn trip() {
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Clear the flag (start of a fresh run; tests).
pub fn reset() {
    INTERRUPTED.store(false, Ordering::Relaxed);
}

#[cfg(unix)]
extern "C" fn on_signal(_signum: i32) {
    // Async-signal-safe: one relaxed atomic store, nothing else.
    INTERRUPTED.store(true, Ordering::Relaxed);
}

/// Install the SIGINT + SIGTERM handler that trips the flag. Idempotent;
/// repeated signals just re-set an already-set flag while the run winds
/// down cooperatively.
///
/// No-op on non-unix targets (the flag still works via [`trip`]).
pub fn install_handler() {
    #[cfg(unix)]
    {
        // std links libc; declaring `signal` here avoids a libc crate
        // dependency. SIG_ERR (== usize::MAX) is ignored on purpose: a
        // platform refusing the registration leaves the default behavior,
        // which is what we had anyway.
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trip_and_reset_round_trip() {
        reset();
        assert!(!requested());
        trip();
        assert!(requested());
        reset();
        assert!(!requested());
    }

    #[test]
    fn install_is_idempotent() {
        install_handler();
        install_handler();
    }
}
