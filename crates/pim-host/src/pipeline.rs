//! Pipelined asynchronous dispatch: persistent rank workers and a real
//! FIFO (§4.1.2, taken literally).
//!
//! The lockstep engine ([`crate::dispatch::execute_rounds`]) spawns fresh
//! threads every round and joins them all at a hard barrier, so one slow
//! rank stalls every other rank and the host sits idle between rounds.
//! This module keeps one worker thread per rank alive for the whole run
//! and feeds it through a bounded FIFO channel:
//!
//! ```text
//!   driver thread                         rank worker r (one per rank)
//!   ─────────────                         ──────────────────────────────
//!   plan round k+1  ──WorkItem──▶  [FIFO, depth d]  ──▶ write MRAM,
//!   decode round k  ◀──BatchDone── (shared channel) ◀── launch, raw read
//! ```
//!
//! * **Backpressure** — the driver only sends to rank `r` while fewer than
//!   `fifo_depth` of its batches are in flight, so `send` never blocks and
//!   memory stays bounded.
//! * **Overlap** — while workers execute round `k`, the driver serializes
//!   round `k+1`'s MRAM images (drawing buffers from a [`BufferPool`] of
//!   round `k-1`'s spent images) and decodes round `k-1`'s raw results.
//! * **No global barrier** — each rank advances the moment its FIFO has
//!   work; a straggler rank delays only itself.
//! * **Bit identity** — results and simulated times must match the
//!   lockstep engine exactly. Completions arrive in any order, so the
//!   driver buffers decoded executions and absorbs them in plan order
//!   (`seq = round × n_ranks + rank`), reproducing lockstep's f64
//!   accumulation order bit for bit.
//!
//! Error shutdown: on the first failed batch the driver stops planning,
//! keeps receiving until nothing is in flight, then drops the FIFO senders
//! — each worker drains to `Disconnected` and exits; the scope join
//! collects them. A worker panic is caught per batch and surfaced as that
//! batch's [`SimError::RankFailed`], so a poisoned rank cannot wedge the
//! driver in `recv`.

use crate::deadline::DeadlinePolicy;
use crate::dispatch::{
    decode_raw_exec, exec_rank_raw, panic_reason, DispatchOutcome, RankPlan, RawRankExec,
};
use dpu_kernel::layout::JobBatch;
use dpu_kernel::NwKernel;
use pim_sim::rank::Rank;
use pim_sim::{PimServer, SimError};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning knobs for the pipelined engine.
#[derive(Debug, Clone)]
pub struct PipelineOptions {
    /// Bounded FIFO depth per rank: how many batches may be in flight
    /// (queued + executing) on one rank. Depth 1 still removes the global
    /// round barrier; depth 2 (the default) additionally hides planning
    /// time behind execution.
    pub fifo_depth: usize,
    /// Total simulator thread budget (`0` = available parallelism), shared
    /// between the per-rank pipeline workers and each rank's intra-rank
    /// DPU pool: each worker executes its rank's DPUs on
    /// `max(1, budget / ranks)` threads ([`Rank::launch_threads`]).
    pub sim_threads: usize,
    /// Wall-clock stall deadline: when no batch completes for the policy's
    /// budget while work is in flight, the driver sets every rank's cancel
    /// token — hung launches break out of their waits and come back as that
    /// batch's failure instead of wedging the driver in `recv`.
    pub deadline: DeadlinePolicy,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            fifo_depth: 2,
            sim_threads: 0,
            deadline: DeadlinePolicy::off(),
        }
    }
}

/// Host-side pipeline measurements for one run. All times are real host
/// wall-clock (this is the one place the simulator measures the host
/// itself, not the simulated machine).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineMetrics {
    /// Configured FIFO depth.
    pub fifo_depth: usize,
    /// Batches dispatched to workers (empty plans are skipped).
    pub batches: usize,
    /// Wall-clock seconds from first plan to last absorb.
    pub host_wall_seconds: f64,
    /// Seconds the driver spent serializing MRAM images.
    pub plan_seconds: f64,
    /// Of `plan_seconds`, the share spent while at least one batch was in
    /// flight — planning hidden behind execution.
    pub plan_overlap_seconds: f64,
    /// Seconds the driver spent decoding raw results into CIGARs/scores.
    pub decode_seconds: f64,
    /// Per rank: seconds its worker sat waiting on an empty FIFO.
    pub rank_stall_seconds: Vec<f64>,
    /// Per rank: seconds its worker spent executing batches.
    pub rank_busy_seconds: Vec<f64>,
    /// Per rank: the largest number of batches ever in flight at once.
    pub max_fifo_occupancy: Vec<usize>,
    /// MRAM image buffers recycled from the pool.
    pub buffers_reused: usize,
    /// MRAM image buffers freshly allocated.
    pub buffers_allocated: usize,
}

impl PipelineMetrics {
    /// Fraction of host encode/serialize time hidden behind rank
    /// execution (1.0 = fully overlapped).
    pub fn encode_overlap_fraction(&self) -> f64 {
        if self.plan_seconds > 0.0 {
            self.plan_overlap_seconds / self.plan_seconds
        } else {
            0.0
        }
    }

    /// Total worker stall seconds across ranks.
    pub fn total_stall_seconds(&self) -> f64 {
        self.rank_stall_seconds.iter().sum()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "pipeline: {} batches, fifo depth {}, host wall {:.3}s, \
             plan {:.3}s ({:.0}% overlapped), decode {:.3}s, \
             stall {:.3}s, buffers {} reused / {} allocated",
            self.batches,
            self.fifo_depth,
            self.host_wall_seconds,
            self.plan_seconds,
            100.0 * self.encode_overlap_fraction(),
            self.decode_seconds,
            self.total_stall_seconds(),
            self.buffers_reused,
            self.buffers_allocated,
        )
    }
}

/// A recycling pool of MRAM image allocations. The planner draws from it
/// via [`BufferPool::take`]; the driver returns workers' spent images via
/// [`BufferPool::put`], so steady-state planning allocates nothing.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Vec<Vec<u8>>,
    reused: usize,
    allocated: usize,
}

impl BufferPool {
    /// Take a buffer (recycled if available, else fresh and empty). The
    /// builder zero-fills to the image length either way, so reuse never
    /// leaks bytes between batches.
    pub fn take(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(b) => {
                self.reused += 1;
                b
            }
            None => {
                self.allocated += 1;
                Vec::new()
            }
        }
    }

    /// Return spent buffers to the pool.
    pub fn put(&mut self, bufs: impl IntoIterator<Item = Vec<u8>>) {
        self.free.extend(bufs);
    }

    /// `(reused, allocated)` counters since construction.
    pub fn counters(&self) -> (usize, usize) {
        (self.reused, self.allocated)
    }
}

/// One batch on its way to a rank worker.
pub(crate) struct WorkItem {
    /// Absorb-order key: `round × n_ranks + rank`.
    pub(crate) seq: u64,
    pub(crate) plan: RankPlan,
    /// Watchdog cycle budget to apply to the rank before this batch
    /// launches (`None` keeps the current budget). The recovery ladder uses
    /// this to retry suspected livelocks with a doubled budget without
    /// stopping the pipeline.
    pub(crate) watchdog: Option<u64>,
}

/// One batch on its way back from a rank worker.
pub(crate) struct BatchDone {
    pub(crate) rank: usize,
    pub(crate) seq: u64,
    pub(crate) outcome: Result<RawRankExec, SimError>,
    /// Spent MRAM image buffers, ready for the pool.
    pub(crate) spent: Vec<Vec<u8>>,
    /// Wall-clock the worker waited on its FIFO before this batch.
    pub(crate) wait_seconds: f64,
    /// Wall-clock the worker spent executing this batch.
    pub(crate) busy_seconds: f64,
}

/// Body of one persistent rank worker: drain the FIFO until the driver
/// drops the sender. Exactly one [`BatchDone`] is sent per [`WorkItem`] —
/// a panic inside the batch is caught and reported as that batch's
/// failure, never swallowed (a silent worker death would wedge the driver
/// in `recv`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn worker_loop(
    r: usize,
    rank: &mut Rank,
    kernel: &NwKernel,
    freq: f64,
    threads: usize,
    rx: Receiver<WorkItem>,
    done: Sender<BatchDone>,
) {
    let mut filler: Option<JobBatch> = None;
    loop {
        let wait_start = Instant::now();
        let Ok(item) = rx.recv() else { break };
        let wait_seconds = wait_start.elapsed().as_secs_f64();
        if let Some(cycles) = item.watchdog {
            rank.set_watchdog_cycles(cycles);
        }
        let busy_start = Instant::now();
        let mut spent = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            exec_rank_raw(
                rank,
                kernel,
                r,
                item.plan,
                freq,
                threads,
                &mut filler,
                &mut spent,
            )
        }))
        .unwrap_or_else(|payload| {
            Err(SimError::RankFailed {
                rank: r,
                reason: panic_reason(payload),
            })
        });
        if done
            .send(BatchDone {
                rank: r,
                seq: item.seq,
                outcome,
                spent,
                wait_seconds,
                busy_seconds: busy_start.elapsed().as_secs_f64(),
            })
            .is_err()
        {
            break;
        }
    }
}

/// Receive the next completed batch, arming the wall-clock deadline when
/// the policy is enabled: if nothing completes for the policy's budget
/// while work is in flight, every rank's cancel token is set and the
/// receive blocks until the (now-cancelled) stragglers report back. A host
/// interrupt ([`crate::interrupt`]) cancels the same way, so Ctrl-C breaks
/// a hung launch even with no deadline configured. Returns `None` only
/// when every worker has exited.
pub(crate) fn recv_done(
    rx: &Receiver<BatchDone>,
    deadline: DeadlinePolicy,
    tokens: &[Arc<AtomicBool>],
) -> Option<BatchDone> {
    let poll = Duration::from_millis(25);
    let hard = deadline.timeout().map(|budget| Instant::now() + budget);
    let mut cancelled = false;
    loop {
        let wait = match hard {
            Some(d) if !cancelled => d.saturating_duration_since(Instant::now()).min(poll),
            _ => poll,
        };
        match rx.recv_timeout(wait) {
            Ok(done) => return Some(done),
            Err(RecvTimeoutError::Disconnected) => return None,
            Err(RecvTimeoutError::Timeout) => {
                let overdue = hard.is_some_and(|d| Instant::now() >= d);
                if !cancelled && (overdue || crate::interrupt::requested()) {
                    // No progress for a full deadline (or the host asked to
                    // stop): cancel every rank. Idle and finished ranks
                    // ignore the token (it is cleared at the next launch's
                    // entry); a hung launch breaks out of its wait and
                    // completes with watchdog failures.
                    for t in tokens {
                        t.store(true, Ordering::Relaxed);
                    }
                    cancelled = true;
                }
            }
        }
    }
}

/// Run `rounds × n_ranks` batches through the pipelined engine, planning
/// lazily: `plan_fn(round, rank, pool)` is called exactly once per (round,
/// rank) cell, just in time, on the driver thread — serialization of round
/// `k+1` overlaps execution of round `k`.
///
/// `plan_fn` must be deterministic in `(round, rank)`: cells are planned
/// in FIFO-availability order, not strict round order.
///
/// Strict semantics match [`crate::dispatch::execute_rounds`]: the first
/// per-DPU failure or rank error aborts with that error; on success the
/// outcome (results, simulated times, stats) is bit-identical to the
/// lockstep engine's.
pub fn execute_pipelined_with(
    server: &mut PimServer,
    kernel: &NwKernel,
    opts: &PipelineOptions,
    rounds: usize,
    mut plan_fn: impl FnMut(usize, usize, &mut BufferPool) -> Result<RankPlan, SimError>,
) -> Result<DispatchOutcome, SimError> {
    let n_ranks = server.rank_count();
    let host_bw = server.cfg().host_bandwidth;
    let freq = server.cfg().dpu.freq_hz;
    let depth = opts.fifo_depth.max(1);
    let pool_threads = crate::dispatch::rank_pool(opts.sim_threads, n_ranks);

    let mut out = DispatchOutcome {
        rank_seconds: vec![0.0; n_ranks],
        ..Default::default()
    };
    let mut dpu_busy = vec![0.0f64; n_ranks];
    let mut imbalances: Vec<f64> = Vec::new();
    let mut metrics = PipelineMetrics {
        fifo_depth: depth,
        rank_stall_seconds: vec![0.0; n_ranks],
        rank_busy_seconds: vec![0.0; n_ranks],
        max_fifo_occupancy: vec![0; n_ranks],
        ..Default::default()
    };
    let mut pool = BufferPool::default();
    let wall_start = Instant::now();
    let mut first_err: Option<SimError> = None;

    {
        let ranks = server.ranks_mut();
        let tokens: Vec<_> = ranks.iter().map(|rank| rank.cancel_token()).collect();
        let (done_tx, done_rx) = channel::<BatchDone>();
        std::thread::scope(|scope| {
            let mut inboxes = Vec::with_capacity(n_ranks);
            for (r, rank) in ranks.iter_mut().enumerate() {
                let (tx, rx) = sync_channel::<WorkItem>(depth);
                let done = done_tx.clone();
                scope.spawn(move || worker_loop(r, rank, kernel, freq, pool_threads, rx, done));
                inboxes.push(tx);
            }
            drop(done_tx);

            let mut next_round = vec![0usize; n_ranks];
            let mut in_flight = vec![0usize; n_ranks];
            let mut total_in_flight = 0usize;
            let mut outstanding: BTreeSet<u64> = BTreeSet::new();
            let mut ready: BTreeMap<u64, crate::dispatch::RankExec> = BTreeMap::new();
            let mut aborting = false;

            loop {
                if !aborting && crate::interrupt::requested() {
                    // Host interrupt: stop planning, cancel in-flight
                    // launches, drain, and report the interrupt.
                    first_err = Some(SimError::Interrupted);
                    aborting = true;
                    for t in &tokens {
                        t.store(true, Ordering::Relaxed);
                    }
                }
                // Fill phase: keep every rank's FIFO topped up. The gate
                // `in_flight < depth` guarantees `send` never blocks.
                if !aborting {
                    for r in 0..n_ranks {
                        while next_round[r] < rounds && in_flight[r] < depth {
                            let k = next_round[r];
                            next_round[r] += 1;
                            let plan_start = Instant::now();
                            let plan = plan_fn(k, r, &mut pool);
                            let dt = plan_start.elapsed().as_secs_f64();
                            metrics.plan_seconds += dt;
                            if total_in_flight > 0 {
                                metrics.plan_overlap_seconds += dt;
                            }
                            let plan = match plan {
                                Ok(p) => p,
                                Err(e) => {
                                    if first_err.is_none() {
                                        first_err = Some(e);
                                    }
                                    aborting = true;
                                    break;
                                }
                            };
                            // An all-idle plan never launches (no work, no
                            // simulated time) — skipping it is exactly what
                            // the lockstep engine's early return does.
                            if plan.dpus.iter().all(Option::is_none) {
                                continue;
                            }
                            let seq = (k * n_ranks + r) as u64;
                            outstanding.insert(seq);
                            in_flight[r] += 1;
                            total_in_flight += 1;
                            metrics.max_fifo_occupancy[r] =
                                metrics.max_fifo_occupancy[r].max(in_flight[r]);
                            metrics.batches += 1;
                            inboxes[r]
                                .send(WorkItem {
                                    seq,
                                    plan,
                                    watchdog: None,
                                })
                                .expect("worker alive while its inbox is held");
                        }
                        if aborting {
                            break;
                        }
                    }
                }
                if total_in_flight == 0 {
                    let all_planned = next_round.iter().all(|&k| k >= rounds);
                    if aborting || all_planned {
                        break;
                    }
                    // Not aborting, not done, nothing in flight: every
                    // remaining cell planned to an all-idle batch; loop
                    // again to plan the rest.
                    continue;
                }
                let Some(batch) = recv_done(&done_rx, opts.deadline, &tokens) else {
                    if first_err.is_none() {
                        first_err = Some(SimError::RankFailed {
                            rank: 0,
                            reason: "all rank workers exited with work in flight".into(),
                        });
                    }
                    break;
                };
                in_flight[batch.rank] -= 1;
                total_in_flight -= 1;
                metrics.rank_stall_seconds[batch.rank] += batch.wait_seconds;
                metrics.rank_busy_seconds[batch.rank] += batch.busy_seconds;
                pool.put(batch.spent);
                match batch.outcome {
                    Err(e) => {
                        outstanding.remove(&batch.seq);
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                        aborting = true;
                    }
                    Ok(raw) => {
                        let decode_start = Instant::now();
                        let exec = decode_raw_exec(raw, host_bw);
                        metrics.decode_seconds += decode_start.elapsed().as_secs_f64();
                        if let Some(f) = exec.failures.first() {
                            outstanding.remove(&batch.seq);
                            if first_err.is_none() {
                                first_err = Some(f.error.clone());
                            }
                            aborting = true;
                        } else {
                            ready.insert(batch.seq, exec);
                        }
                    }
                }
                // Absorb in plan order so f64 accumulation matches the
                // lockstep engine bit for bit.
                while let Some(&min) = outstanding.first() {
                    let Some(exec) = ready.remove(&min) else {
                        break;
                    };
                    outstanding.remove(&min);
                    out.absorb(exec, &mut dpu_busy, &mut imbalances);
                }
            }
            // Dropping the inboxes releases every worker from `recv`; the
            // scope join below collects them.
            drop(inboxes);
        });
    }

    out.finalize(&dpu_busy, &imbalances);
    metrics.host_wall_seconds = wall_start.elapsed().as_secs_f64();
    let (reused, allocated) = pool.counters();
    metrics.buffers_reused = reused;
    metrics.buffers_allocated = allocated;
    out.pipeline = Some(metrics);
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// Drop-in pipelined replacement for [`crate::dispatch::execute_rounds`]:
/// same prebuilt `rounds[k][r]` plans, same strict semantics, bit-identical
/// outcome — but ranks advance independently through their FIFOs instead
/// of joining a barrier each round.
pub fn execute_rounds_pipelined(
    server: &mut PimServer,
    kernel: &NwKernel,
    rounds: Vec<Vec<RankPlan>>,
    opts: &PipelineOptions,
) -> Result<DispatchOutcome, SimError> {
    let n_ranks = server.rank_count();
    let n_rounds = rounds.len();
    let mut cells: Vec<Vec<Option<RankPlan>>> = Vec::with_capacity(n_rounds);
    for round in rounds {
        assert_eq!(round.len(), n_ranks, "one plan per rank per round");
        cells.push(round.into_iter().map(Some).collect());
    }
    execute_pipelined_with(server, kernel, opts, n_rounds, |k, r, _pool| {
        Ok(cells[k][r].take().expect("each cell planned exactly once"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dispatch::{execute_rounds, plan_rank, plan_rank_into};
    use dpu_kernel::layout::KernelParams;
    use dpu_kernel::{KernelVariant, PoolConfig};
    use nw_core::seq::{DnaSeq, PackedSeq};
    use nw_core::ScoringScheme;
    use pim_sim::ServerConfig;

    fn params() -> KernelParams {
        KernelParams {
            band: 16,
            scheme: ScoringScheme::default(),
            score_only: false,
        }
    }

    fn kernel() -> NwKernel {
        NwKernel::new(
            PoolConfig {
                pools: 2,
                tasklets: 4,
            },
            KernelVariant::Asm,
        )
    }

    fn small_server(ranks: usize, dpus: usize) -> PimServer {
        let mut cfg = ServerConfig::with_ranks(ranks);
        cfg.dpus_per_rank = dpus;
        PimServer::new(cfg)
    }

    fn packed_pairs(n: usize) -> Vec<(PackedSeq, PackedSeq)> {
        (0..n)
            .map(|k| {
                let a = DnaSeq::from_ascii("ACGTGGTCAT".repeat(4 + k % 3).as_bytes()).unwrap();
                let mut btext = "ACGTGGTCAT".repeat(4 + k % 3);
                btext.insert_str(7, "AC");
                (
                    a.pack(),
                    DnaSeq::from_ascii(btext.as_bytes()).unwrap().pack(),
                )
            })
            .collect()
    }

    fn build_rounds(
        jobs: &[(PackedSeq, PackedSeq)],
        n_rounds: usize,
        n_ranks: usize,
        dpus: usize,
    ) -> Vec<Vec<RankPlan>> {
        let ids: Vec<usize> = (0..jobs.len()).collect();
        let cells = n_rounds * n_ranks;
        let mut rounds = Vec::new();
        for k in 0..n_rounds {
            let mut plans = Vec::new();
            for r in 0..n_ranks {
                let cell = k * n_ranks + r;
                let lo = cell * jobs.len() / cells;
                let hi = (cell + 1) * jobs.len() / cells;
                plans.push(
                    plan_rank(&jobs[lo..hi], &ids[lo..hi], dpus, params(), 2, 64 << 20).unwrap(),
                );
            }
            rounds.push(plans);
        }
        rounds
    }

    #[test]
    fn pipelined_matches_lockstep_bit_for_bit() {
        let jobs = packed_pairs(18);
        let kernel = kernel();
        let mut s1 = small_server(2, 3);
        let lock = execute_rounds(&mut s1, &kernel, build_rounds(&jobs, 3, 2, 3), 0).unwrap();
        let mut s2 = small_server(2, 3);
        let opts = PipelineOptions {
            fifo_depth: 2,
            ..Default::default()
        };
        let pipe = execute_rounds_pipelined(&mut s2, &kernel, build_rounds(&jobs, 3, 2, 3), &opts)
            .unwrap();
        let sort = |mut v: Vec<(usize, dpu_kernel::JobResult)>| {
            v.sort_by_key(|(id, _)| *id);
            v
        };
        assert_eq!(sort(lock.results), sort(pipe.results));
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&lock.rank_seconds), bits(&pipe.rank_seconds));
        assert_eq!(
            lock.transfer_seconds.to_bits(),
            pipe.transfer_seconds.to_bits()
        );
        assert_eq!(lock.dpu_seconds.to_bits(), pipe.dpu_seconds.to_bits());
        assert_eq!(lock.bytes_in, pipe.bytes_in);
        assert_eq!(lock.bytes_out, pipe.bytes_out);
        assert_eq!(lock.stats, pipe.stats);
        assert_eq!(
            lock.mean_rank_imbalance.to_bits(),
            pipe.mean_rank_imbalance.to_bits()
        );
        assert_eq!(lock.workload, pipe.workload);
        let m = pipe.pipeline.expect("pipelined engine records metrics");
        assert_eq!(m.batches, 6);
        assert!(m.max_fifo_occupancy.iter().all(|&o| o <= 2));
        assert!(lock.pipeline.is_none());
    }

    #[test]
    fn fifo_depth_one_still_completes() {
        let jobs = packed_pairs(10);
        let kernel = kernel();
        let mut server = small_server(2, 2);
        let opts = PipelineOptions {
            fifo_depth: 1,
            ..Default::default()
        };
        let out =
            execute_rounds_pipelined(&mut server, &kernel, build_rounds(&jobs, 2, 2, 2), &opts)
                .unwrap();
        assert_eq!(out.results.len(), 10);
        let m = out.pipeline.unwrap();
        assert!(m.max_fifo_occupancy.iter().all(|&o| o <= 1));
    }

    #[test]
    fn streaming_planner_recycles_buffers() {
        let jobs = packed_pairs(16);
        let ids: Vec<usize> = (0..jobs.len()).collect();
        let kernel = kernel();
        let mut server = small_server(1, 2);
        let n_rounds = 4;
        let groups: Vec<Vec<usize>> = (0..n_rounds)
            .map(|k| (0..jobs.len()).filter(|i| i % n_rounds == k).collect())
            .collect();
        let opts = PipelineOptions {
            fifo_depth: 2,
            ..Default::default()
        };
        let out = execute_pipelined_with(&mut server, &kernel, &opts, n_rounds, |k, _r, pool| {
            let sel: Vec<(PackedSeq, PackedSeq)> =
                groups[k].iter().map(|&i| jobs[i].clone()).collect();
            let sel_ids: Vec<usize> = groups[k].iter().map(|&i| ids[i]).collect();
            plan_rank_into(&sel, &sel_ids, 2, params(), 2, 64 << 20, pool)
        })
        .unwrap();
        assert_eq!(out.results.len(), 16);
        let m = out.pipeline.unwrap();
        assert!(
            m.buffers_reused > 0,
            "later rounds must draw from the pool: {m:?}"
        );
        assert!(
            m.buffers_allocated <= 4,
            "allocations bounded by fifo window"
        );
    }

    #[test]
    fn empty_rounds_are_fine() {
        let kernel = kernel();
        let mut server = small_server(2, 2);
        let empty = || RankPlan {
            dpus: vec![None, None],
            params: Some(params()),
        };
        let out = execute_rounds_pipelined(
            &mut server,
            &kernel,
            vec![vec![empty(), empty()]],
            &PipelineOptions::default(),
        )
        .unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.pipeline.unwrap().batches, 0);
    }
}
