//! Heterogeneous CPU + PiM execution — the paper's stated future work
//! (§5.6: "during PiM operations, most of the cores are free to be working
//! on other tasks. Looking ahead, future study could explore heterogeneous
//! computation using both PiM and CPU simultaneously").
//!
//! The host splits the pair list between the PiM server and a CPU worker
//! pool proportionally to their estimated throughputs (eq.-6 workload per
//! unit time), runs both sides, and merges the results. Because the CPU is
//! otherwise idle while DPUs execute, the combined wall time is
//! `max(cpu_share_time, pim_share_time)` — minimized when the split matches
//! the true throughput ratio.

use crate::dispatch::DispatchConfig;
use crate::modes::align_pairs;
use crate::report::ExecutionReport;
use cpu_baseline::CpuBaseline;
use dpu_kernel::layout::{JobResult, JobStatus};
use nw_core::cigar::Cigar;
use nw_core::error::AlignError;
use nw_core::seq::DnaSeq;
use pim_sim::{PimServer, SimError};

/// Configuration for a heterogeneous run.
#[derive(Debug, Clone)]
pub struct HeteroConfig {
    /// PiM-side dispatch configuration.
    pub dispatch: DispatchConfig,
    /// CPU worker threads.
    pub cpu_threads: usize,
    /// CPU static band (the CPU runs the KSW2 baseline, which needs a wider
    /// band than the adaptive DPU kernel for equal accuracy — Table 1).
    pub cpu_band: usize,
    /// Estimated PiM throughput in eq.-6 workload units per second (used
    /// only to pick the split; measured results are what's reported).
    pub pim_workload_per_second: f64,
    /// Estimated CPU throughput in workload units per second.
    pub cpu_workload_per_second: f64,
}

/// Outcome of a heterogeneous run.
#[derive(Debug)]
pub struct HeteroOutcome {
    /// Per-pair results in input order (CPU failures surface as
    /// `JobStatus::OutOfBand`).
    pub results: Vec<JobResult>,
    /// The PiM-side report for its share.
    pub pim_report: ExecutionReport,
    /// Simulated/modeled wall time of the PiM share.
    pub pim_seconds: f64,
    /// Measured wall time of the CPU share (on this machine).
    pub cpu_seconds: f64,
    /// Pairs routed to the PiM server.
    pub pim_pairs: usize,
    /// Pairs routed to the CPU.
    pub cpu_pairs: usize,
}

impl HeteroOutcome {
    /// Combined wall time: both sides run concurrently.
    pub fn combined_seconds(&self) -> f64 {
        self.pim_seconds.max(self.cpu_seconds)
    }
}

/// Split `pairs` by workload so each side's share matches its estimated
/// throughput, run the PiM share on `server` and the CPU share on a local
/// thread pool, and merge.
pub fn align_pairs_hetero(
    server: &mut PimServer,
    cfg: &HeteroConfig,
    pairs: &[(DnaSeq, DnaSeq)],
) -> Result<HeteroOutcome, SimError> {
    let band = cfg.dispatch.params.band;
    let workloads: Vec<u64> = pairs
        .iter()
        .map(|(a, b)| crate::balance::workload(a.len(), b.len(), band))
        .collect();
    let total: u64 = workloads.iter().sum();
    let pim_fraction = cfg.pim_workload_per_second
        / (cfg.pim_workload_per_second + cfg.cpu_workload_per_second).max(f64::MIN_POSITIVE);
    let pim_budget = (total as f64 * pim_fraction) as u64;

    // Longest-first fill of the PiM budget: big jobs suit the DPUs (their
    // fixed per-job overheads amortize), stragglers suit the CPU.
    let mut order: Vec<usize> = (0..pairs.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(workloads[i]));
    let mut pim_ids = Vec::new();
    let mut cpu_ids = Vec::new();
    let mut acc = 0u64;
    for i in order {
        if acc + workloads[i] <= pim_budget || cpu_ids.len() * 4 > pairs.len() * 3 {
            acc += workloads[i];
            pim_ids.push(i);
        } else {
            cpu_ids.push(i);
        }
    }

    // PiM share.
    let pim_pairs_vec: Vec<(DnaSeq, DnaSeq)> = pim_ids.iter().map(|&i| pairs[i].clone()).collect();
    let (pim_report, pim_results) = align_pairs(server, &cfg.dispatch, &pim_pairs_vec)?;
    let pim_seconds = pim_report.total_seconds();

    // CPU share (measured for real on this machine).
    let cpu_pairs_vec: Vec<(DnaSeq, DnaSeq)> = cpu_ids.iter().map(|&i| pairs[i].clone()).collect();
    let cpu = CpuBaseline::new(cfg.dispatch.params.scheme, cfg.cpu_band, cfg.cpu_threads);
    let cpu_outcome = cpu.align_all(&cpu_pairs_vec);

    // Merge in input order.
    let mut slots: Vec<Option<JobResult>> = (0..pairs.len()).map(|_| None).collect();
    for (&id, result) in pim_ids.iter().zip(pim_results) {
        slots[id] = Some(result);
    }
    for (&id, result) in cpu_ids.iter().zip(cpu_outcome.results) {
        slots[id] = Some(match result {
            Ok(aln) => JobResult {
                status: JobStatus::Ok,
                score: aln.score,
                cigar: aln.cigar,
            },
            Err(AlignError::OutOfBand { .. }) => JobResult {
                status: JobStatus::OutOfBand,
                score: 0,
                cigar: Cigar::new(),
            },
            Err(_) => JobResult {
                status: JobStatus::OutOfBand,
                score: 0,
                cigar: Cigar::new(),
            },
        });
    }
    Ok(HeteroOutcome {
        results: slots
            .into_iter()
            .enumerate()
            .map(|(i, s)| s.unwrap_or_else(|| panic!("pair {i} unassigned")))
            .collect(),
        pim_report,
        pim_seconds,
        cpu_seconds: cpu_outcome.elapsed.as_secs_f64(),
        pim_pairs: pim_ids.len(),
        cpu_pairs: cpu_ids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_kernel::{KernelParams, NwKernel};
    use nw_core::adaptive::AdaptiveAligner;
    use nw_core::banded::BandedAligner;
    use nw_core::ScoringScheme;
    use pim_sim::ServerConfig;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn pairs(n: usize) -> Vec<(DnaSeq, DnaSeq)> {
        (0..n)
            .map(|k| {
                let a = "ACGTGGTCAT".repeat(5 + k % 4);
                let mut b = a.clone();
                b.insert_str(4 + k % 6, "TT");
                (seq(&a), seq(&b))
            })
            .collect()
    }

    fn config() -> HeteroConfig {
        let params = KernelParams {
            band: 32,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        HeteroConfig {
            dispatch: DispatchConfig::new(NwKernel::paper_default(), params),
            cpu_threads: 2,
            cpu_band: 32,
            pim_workload_per_second: 3.0,
            cpu_workload_per_second: 1.0,
        }
    }

    #[test]
    fn hetero_run_covers_every_pair_correctly() {
        let ps = pairs(24);
        let cfg = config();
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        });
        let out = align_pairs_hetero(&mut server, &cfg, &ps).unwrap();
        assert_eq!(out.results.len(), 24);
        assert!(out.pim_pairs > 0, "PiM got a share");
        assert!(out.cpu_pairs > 0, "CPU got a share");
        assert_eq!(out.pim_pairs + out.cpu_pairs, 24);

        // Every result is a *correct* alignment for its pair: PiM results
        // match the adaptive aligner, CPU results the static baseline; both
        // must rescore consistently.
        let scheme = ScoringScheme::default();
        let adaptive = AdaptiveAligner::new(scheme, 32);
        let static_b = BandedAligner::new(scheme, 32);
        for (r, (a, b)) in out.results.iter().zip(&ps) {
            assert_eq!(r.status, JobStatus::Ok);
            r.cigar.validate(a, b).unwrap();
            let ad = adaptive.align(a, b).unwrap();
            let st = static_b.align(a, b).unwrap();
            assert!(
                r.score == ad.score || r.score == st.score,
                "score {} is neither adaptive {} nor static {}",
                r.score,
                ad.score,
                st.score
            );
        }
    }

    #[test]
    fn split_follows_throughput_ratio() {
        let ps = pairs(40);
        let mut cfg = config();
        cfg.pim_workload_per_second = 9.0;
        cfg.cpu_workload_per_second = 1.0;
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        });
        let out = align_pairs_hetero(&mut server, &cfg, &ps).unwrap();
        // ~90% of the workload should land on the PiM side.
        assert!(
            out.pim_pairs > out.cpu_pairs * 3,
            "pim {} vs cpu {}",
            out.pim_pairs,
            out.cpu_pairs
        );
    }

    #[test]
    fn combined_time_is_the_max_of_both_sides() {
        let out = HeteroOutcome {
            results: Vec::new(),
            pim_report: ExecutionReport::default(),
            pim_seconds: 2.5,
            cpu_seconds: 1.0,
            pim_pairs: 0,
            cpu_pairs: 0,
        };
        assert_eq!(out.combined_seconds(), 2.5);
    }

    #[test]
    fn empty_input() {
        let cfg = config();
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 1;
            c
        });
        let out = align_pairs_hetero(&mut server, &cfg, &[]).unwrap();
        assert!(out.results.is_empty());
    }
}
