//! Heterogeneous CPU + PiM execution — the paper's stated future work
//! (§5.6: "during PiM operations, most of the cores are free to be working
//! on other tasks. Looking ahead, future study could explore heterogeneous
//! computation using both PiM and CPU simultaneously").
//!
//! This is the *static-split* strategy: the host partitions the pair list
//! once, up front, proportionally to the configured throughput estimates
//! (eq.-6 workload per unit time), then runs both shares **concurrently**
//! through the same [`crate::backend::Backend`] implementations the
//! dynamic router uses — [`SimPimBackend`] on a scoped thread,
//! [`CpuPoolBackend`] (the kernel-identical adaptive aligner, so merged
//! results are bit-identical to a pure-PiM run for in-band pairs) on the
//! caller's thread. The combined wall time is `max(cpu_share, pim_share)`,
//! minimized when the split matches the true throughput ratio — which is
//! exactly what the estimates get wrong on unseen workloads, and why
//! [`crate::router`] replaces the up-front split with a per-batch
//! feedback-driven decision. `hetero` survives as the ablation baseline
//! the router is benchmarked against.
//!
//! Estimates left at `0.0` are auto-seeded from the same models the
//! router starts from (WCET bounds for PiM, a micro-probe for the CPU),
//! so "static split with model seeds" is a fair comparator: same priors,
//! no feedback.

use crate::backend::{seed_pim_rate, Backend, CpuPoolBackend, SimPimBackend};
use crate::cache::ResultCache;
use crate::dispatch::DispatchConfig;
use crate::recovery::RecoveryConfig;
use crate::report::ExecutionReport;
use dpu_kernel::layout::JobResult;
use nw_core::seq::DnaSeq;
use pim_sim::{PimServer, SimError};
use std::time::Instant;

/// Configuration for a heterogeneous run.
#[derive(Debug, Clone)]
pub struct HeteroConfig {
    /// PiM-side dispatch configuration.
    pub dispatch: DispatchConfig,
    /// CPU worker threads.
    pub cpu_threads: usize,
    /// CPU band. Use the kernel band: the CPU side runs the
    /// kernel-identical adaptive aligner, so equal bands give bit-identical
    /// merged results.
    pub cpu_band: usize,
    /// Estimated PiM throughput in eq.-6 workload units per second; `0.0`
    /// auto-seeds from the WCET bounds (the router's prior).
    pub pim_workload_per_second: f64,
    /// Estimated CPU throughput in workload units per second; `0.0`
    /// auto-seeds from a micro-probe.
    pub cpu_workload_per_second: f64,
}

/// Outcome of a heterogeneous run.
#[derive(Debug)]
pub struct HeteroOutcome {
    /// Per-pair results in input order (CPU failures surface as
    /// `JobStatus::OutOfBand`).
    pub results: Vec<JobResult>,
    /// The PiM-side report for its share.
    pub pim_report: ExecutionReport,
    /// Simulated/modeled wall time of the PiM share (the figure the
    /// ablation tables compare against modeled PiM-only runs).
    pub pim_seconds: f64,
    /// Measured wall time of the CPU share (on this machine).
    pub cpu_seconds: f64,
    /// Measured host wall time of the whole run — both shares run
    /// concurrently, so this is what a dynamic-router comparison uses.
    pub host_seconds: f64,
    /// Pairs routed to the PiM server.
    pub pim_pairs: usize,
    /// Pairs routed to the CPU.
    pub cpu_pairs: usize,
}

impl HeteroOutcome {
    /// Combined modeled wall time: both sides run concurrently.
    pub fn combined_seconds(&self) -> f64 {
        self.pim_seconds.max(self.cpu_seconds)
    }
}

/// Split `pairs` by workload so each side's share matches its estimated
/// throughput, run the PiM share and the CPU share concurrently, and
/// merge. See [`align_pairs_hetero_cached`] for the cache-fronted form.
pub fn align_pairs_hetero(
    server: &mut PimServer,
    cfg: &HeteroConfig,
    pairs: &[(DnaSeq, DnaSeq)],
) -> Result<HeteroOutcome, SimError> {
    align_pairs_hetero_cached(server, cfg, pairs, None)
}

/// [`align_pairs_hetero`] with a content-addressed result cache in front:
/// repeated pairs are served (and deduplicated) before the split is even
/// computed, exactly like the dynamic router's cache pre-pass.
pub fn align_pairs_hetero_cached(
    server: &mut PimServer,
    cfg: &HeteroConfig,
    pairs: &[(DnaSeq, DnaSeq)],
    cache: Option<&mut ResultCache>,
) -> Result<HeteroOutcome, SimError> {
    let band = cfg.dispatch.params.band;
    let scheme = cfg.dispatch.params.scheme;
    let score_only = cfg.dispatch.params.score_only;
    let t0 = Instant::now();

    // Backends first: they carry the model seeds used when an estimate is
    // left at 0.0, and they are what actually runs each share.
    let mut cpu_backend = CpuPoolBackend::new(scheme, cfg.cpu_band, score_only, cfg.cpu_threads);
    let cpu_rate = if cfg.cpu_workload_per_second > 0.0 {
        cfg.cpu_workload_per_second
    } else {
        cpu_backend.units_per_second()
    };
    let pim_rate = if cfg.pim_workload_per_second > 0.0 {
        cfg.pim_workload_per_second
    } else {
        let dpus = server.cfg().ranks * server.cfg().dpus_per_rank;
        seed_pim_rate(&cfg.dispatch, dpus)
    };

    let mut cache = cache;
    let cached = crate::cache::serve_hits(cache.as_deref_mut(), pairs, &scheme, band, score_only);

    let workloads: Vec<u64> = cached
        .work
        .iter()
        .map(|&i| crate::balance::workload(pairs[i].0.len(), pairs[i].1.len(), band))
        .collect();
    let total: u64 = workloads.iter().sum();
    let pim_fraction = pim_rate / (pim_rate + cpu_rate).max(f64::MIN_POSITIVE);
    let pim_budget = (total as f64 * pim_fraction) as u64;

    // Longest-first fill of the PiM budget: big jobs suit the DPUs (their
    // fixed per-job overheads amortize), stragglers suit the CPU.
    let mut order: Vec<usize> = (0..cached.work.len()).collect();
    order.sort_by_key(|&k| std::cmp::Reverse(workloads[k]));
    let mut pim_ids = Vec::new();
    let mut cpu_ids = Vec::new();
    let mut acc = 0u64;
    for k in order {
        if acc + workloads[k] <= pim_budget || cpu_ids.len() * 4 > cached.work.len() * 3 {
            acc += workloads[k];
            pim_ids.push(cached.work[k]);
        } else {
            cpu_ids.push(cached.work[k]);
        }
    }

    let pim_share: Vec<(DnaSeq, DnaSeq)> = pim_ids.iter().map(|&i| pairs[i].clone()).collect();
    let cpu_share: Vec<(DnaSeq, DnaSeq)> = cpu_ids.iter().map(|&i| pairs[i].clone()).collect();

    // Both shares run concurrently — the CPU really is otherwise idle
    // while the (simulated) DPUs execute.
    let mut pim_backend =
        SimPimBackend::new(server, cfg.dispatch.clone(), RecoveryConfig::default());
    let (pim_out, cpu_out) = std::thread::scope(|scope| {
        let pim_handle = scope.spawn(move || pim_backend.run_batch(&pim_share));
        let cpu_out = cpu_backend.run_batch(&cpu_share);
        (pim_handle.join().expect("pim share thread"), cpu_out)
    });
    let pim_out = pim_out?;
    let cpu_out = cpu_out?;
    let pim_report = pim_out.report.unwrap_or_default();

    // Merge in input order, then resolve cache state (audited inserts,
    // deferred duplicates).
    let mut slots = cached.slots;
    for (&i, res) in pim_ids.iter().zip(&pim_out.results) {
        slots[i] = Some(res.clone());
    }
    for (&i, res) in cpu_ids.iter().zip(&cpu_out.results) {
        slots[i] = Some(res.clone());
    }
    let results = crate::cache::resolve(
        cache,
        pairs,
        &scheme,
        band,
        score_only,
        slots,
        &cached.keys,
        &cached.work,
        &cached.aliases,
    );

    Ok(HeteroOutcome {
        results,
        pim_seconds: pim_report.total_seconds(),
        pim_report,
        cpu_seconds: cpu_out.seconds,
        host_seconds: t0.elapsed().as_secs_f64(),
        pim_pairs: pim_ids.len(),
        cpu_pairs: cpu_ids.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_kernel::layout::JobStatus;
    use dpu_kernel::{KernelParams, NwKernel};
    use nw_core::adaptive::AdaptiveAligner;
    use nw_core::ScoringScheme;
    use pim_sim::ServerConfig;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn pairs(n: usize) -> Vec<(DnaSeq, DnaSeq)> {
        (0..n)
            .map(|k| {
                let a = "ACGTGGTCAT".repeat(5 + k % 4);
                let mut b = a.clone();
                b.insert_str(4 + k % 6, "TT");
                (seq(&a), seq(&b))
            })
            .collect()
    }

    fn config() -> HeteroConfig {
        let params = KernelParams {
            band: 32,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        HeteroConfig {
            dispatch: DispatchConfig::new(NwKernel::paper_default(), params),
            cpu_threads: 2,
            cpu_band: 32,
            pim_workload_per_second: 3.0,
            cpu_workload_per_second: 1.0,
        }
    }

    #[test]
    fn hetero_run_covers_every_pair_correctly() {
        let ps = pairs(24);
        let cfg = config();
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        });
        let out = align_pairs_hetero(&mut server, &cfg, &ps).unwrap();
        assert_eq!(out.results.len(), 24);
        assert!(out.pim_pairs > 0, "PiM got a share");
        assert!(out.cpu_pairs > 0, "CPU got a share");
        assert_eq!(out.pim_pairs + out.cpu_pairs, 24);
        assert!(out.host_seconds > 0.0);

        // Both sides run the kernel-identical adaptive algorithm now, so
        // every result is bit-identical to the reference aligner.
        let adaptive = AdaptiveAligner::new(ScoringScheme::default(), 32);
        for (r, (a, b)) in out.results.iter().zip(&ps) {
            assert_eq!(r.status, JobStatus::Ok);
            r.cigar.validate(a, b).unwrap();
            let want = adaptive.align(a, b).unwrap();
            assert_eq!(r.score, want.score);
            assert_eq!(r.cigar, want.cigar);
        }
    }

    #[test]
    fn split_follows_throughput_ratio() {
        let ps = pairs(40);
        let mut cfg = config();
        cfg.pim_workload_per_second = 9.0;
        cfg.cpu_workload_per_second = 1.0;
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        });
        let out = align_pairs_hetero(&mut server, &cfg, &ps).unwrap();
        // ~90% of the workload should land on the PiM side.
        assert!(
            out.pim_pairs > out.cpu_pairs * 3,
            "pim {} vs cpu {}",
            out.pim_pairs,
            out.cpu_pairs
        );
    }

    #[test]
    fn zero_estimates_auto_seed() {
        let ps = pairs(16);
        let mut cfg = config();
        cfg.pim_workload_per_second = 0.0;
        cfg.cpu_workload_per_second = 0.0;
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        });
        let out = align_pairs_hetero(&mut server, &cfg, &ps).unwrap();
        assert_eq!(out.results.len(), 16);
        assert_eq!(out.pim_pairs + out.cpu_pairs, 16);
    }

    #[test]
    fn cache_short_circuits_repeats() {
        let base = pairs(8);
        let ps: Vec<_> = base.iter().chain(base.iter()).cloned().collect();
        let cfg = config();
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        });
        let mut cache = ResultCache::new(128);
        let out = align_pairs_hetero_cached(&mut server, &cfg, &ps, Some(&mut cache)).unwrap();
        assert_eq!(out.results.len(), 16);
        // Only the 8 unique pairs were computed; the rest were deferred
        // duplicates served from the cache.
        assert_eq!(out.pim_pairs + out.cpu_pairs, 8);
        let s = cache.stats();
        assert!(s.conserved());
        assert!(s.hits >= 8, "{s:?}");
        // Second run: everything cached.
        let out2 = align_pairs_hetero_cached(&mut server, &cfg, &ps, Some(&mut cache)).unwrap();
        assert_eq!(out2.pim_pairs + out2.cpu_pairs, 0);
        assert_eq!(out.results, out2.results);
    }

    #[test]
    fn combined_time_is_the_max_of_both_sides() {
        let out = HeteroOutcome {
            results: Vec::new(),
            pim_report: ExecutionReport::default(),
            pim_seconds: 2.5,
            cpu_seconds: 1.0,
            host_seconds: 0.1,
            pim_pairs: 0,
            cpu_pairs: 0,
        };
        assert_eq!(out.combined_seconds(), 2.5);
    }

    #[test]
    fn empty_input() {
        let cfg = config();
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 1;
            c
        });
        let out = align_pairs_hetero(&mut server, &cfg, &[]).unwrap();
        assert!(out.results.is_empty());
    }
}
