//! Content-addressed result cache: [`nw_core::JobKey`] → `(score, CIGAR)`.
//!
//! At "millions of users" scale repeated pairs dominate the request
//! stream, and under the bit-identity contract every backend returns the
//! same result for the same job — so a hit can skip the DPU pipeline and
//! the CPU pool entirely. The cache sits *in front of* the backend router
//! ([`crate::router`]) and inside the serve daemon (one cache for the
//! daemon lifetime, persisting across tickets).
//!
//! **Eviction** is two-generation segmented LRU: entries live in a `hot`
//! and a `cold` map. Lookups promote cold hits to hot; inserts go to hot;
//! when hot reaches half the capacity, the surviving cold generation is
//! dropped (those entries were neither looked up nor re-inserted for a
//! whole generation) and hot rotates down to cold. Every operation is
//! O(1), total residency never exceeds `capacity`, and recently-used
//! entries survive at least one rotation — LRU-ish without per-entry
//! timestamps or list links.
//!
//! **Safety invariant** (the PR 5 audit gate): a result enters the cache
//! only through [`ResultCache::insert_audited`], which re-validates the
//! CIGAR against the original sequences and re-scores it
//! ([`crate::recovery::audit_ok`]). A corrupted result — even a *silently*
//! corrupted one whose checksum was recomputed by the fault — can
//! therefore never be served twice. Non-`Ok` results are never cached
//! (failures must be recomputed, not replayed).

use crate::recovery::audit_ok;
use crate::wal::{CacheRecord, CacheRecovery, CacheStore, PersistStats};
use dpu_kernel::layout::{JobResult, JobStatus};
use nw_core::seq::{DnaSeq, PackedSeq};
use nw_core::{job_key_seqs, JobKey, ScoringScheme};
use std::collections::HashMap;

/// Cache counters; `hits + misses == lookups` is the conservation law the
/// bench validator asserts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookup calls.
    pub lookups: u64,
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to a backend.
    pub misses: u64,
    /// Results stored.
    pub inserts: u64,
    /// Entries dropped by generation rotation.
    pub evictions: u64,
    /// Insert attempts refused by the audit gate (failed results, audit
    /// mismatches, or a disabled cache).
    pub rejected_inserts: u64,
}

impl CacheStats {
    /// Hits per lookup (0.0 with no lookups).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// The conservation law: every lookup is a hit or a miss.
    pub fn conserved(&self) -> bool {
        self.hits + self.misses == self.lookups
    }

    /// Fold another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.misses += other.misses;
        self.inserts += other.inserts;
        self.evictions += other.evictions;
        self.rejected_inserts += other.rejected_inserts;
    }
}

/// Bounded content-addressed result cache with segmented-LRU eviction and
/// an optional crash-safe persistence backend ([`crate::wal`]).
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    hot: HashMap<JobKey, JobResult>,
    cold: HashMap<JobKey, JobResult>,
    stats: CacheStats,
    store: Option<CacheStore>,
}

impl ResultCache {
    /// A cache holding at most `capacity` results; 0 disables caching
    /// (every lookup misses, every insert is refused).
    pub fn new(capacity: usize) -> Self {
        ResultCache {
            capacity,
            hot: HashMap::new(),
            cold: HashMap::new(),
            stats: CacheStats::default(),
            store: None,
        }
    }

    /// A cache backed by `store`: replay everything on disk through the
    /// audit gate (so a corrupted-on-disk entry can never be served),
    /// attach the store for write-ahead logging of future inserts, then
    /// compact once so torn tails, rejected records, and stale WAL growth
    /// are folded away before serving starts.
    pub fn with_store(capacity: usize, store: CacheStore) -> (Self, CacheRecovery) {
        let mut cache = ResultCache::new(capacity);
        let mut recovery = CacheRecovery::default();
        let records = store.load_records(&mut recovery);
        // Replay before attaching: recovered inserts must not be
        // re-appended to the WAL they just came from.
        let replay_base = cache.stats;
        for r in &records {
            let pair = (r.a.clone(), r.b.clone());
            if cache.insert_audited(r.key(), &pair, &r.result, &r.scheme, r.band, r.score_only) {
                recovery.recovered += 1;
            } else {
                recovery.rejected += 1;
            }
        }
        // Replay is bookkeeping, not traffic: don't let it pollute the
        // serving-time insert/rejection counters.
        cache.stats = replay_base;
        cache.store = Some(store);
        cache.compact_now();
        (cache, recovery)
    }

    /// Persistence counters, when a store is attached.
    pub fn persist_stats(&self) -> Option<PersistStats> {
        self.store.as_ref().map(|s| s.stats())
    }

    /// Force a compaction now (snapshot + WAL truncate); no-op without a
    /// store. Called at recovery and at graceful drain.
    pub fn compact_now(&mut self) {
        let Some(mut store) = self.store.take() else {
            return;
        };
        let resident = |key: &JobKey| self.hot.contains_key(key) || self.cold.contains_key(key);
        store.compact(&resident);
        self.store = Some(store);
    }

    /// Configured capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently resident.
    pub fn len(&self) -> usize {
        self.hot.len() + self.cold.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Look one job up; a cold-generation hit is promoted to hot.
    pub fn lookup(&mut self, key: &JobKey) -> Option<JobResult> {
        self.stats.lookups += 1;
        if let Some(r) = self.hot.get(key) {
            self.stats.hits += 1;
            return Some(r.clone());
        }
        if let Some(r) = self.cold.remove(key) {
            self.stats.hits += 1;
            let out = r.clone();
            self.store_hot(*key, r);
            return Some(out);
        }
        self.stats.misses += 1;
        None
    }

    /// Insert through the audit gate: only a status-`Ok` result whose
    /// CIGAR validates against `pair` and re-scores to its claimed score
    /// is stored. `band` and `score_only` are the job parameters the key
    /// was derived under — with a persistent store attached they make the
    /// WAL record self-contained, so recovery can recompute (never trust)
    /// the key. Returns whether the result was accepted.
    pub fn insert_audited(
        &mut self,
        key: JobKey,
        pair: &(PackedSeq, PackedSeq),
        res: &JobResult,
        scheme: &ScoringScheme,
        band: usize,
        score_only: bool,
    ) -> bool {
        if self.capacity == 0
            || res.status != JobStatus::Ok
            || res.cigar.runs().is_empty()
            || !audit_ok(pair, res, scheme)
        {
            self.stats.rejected_inserts += 1;
            return false;
        }
        self.stats.inserts += 1;
        self.cold.remove(&key);
        self.store_hot(key, res.clone());
        if self.store.is_some() {
            let record = CacheRecord {
                a: pair.0.clone(),
                b: pair.1.clone(),
                scheme: *scheme,
                band,
                score_only,
                result: res.clone(),
            };
            let store = self.store.as_mut().expect("store checked above");
            store.append(&record);
            if store.should_compact() {
                self.compact_now();
            }
        }
        true
    }

    /// Place an entry in the hot generation, rotating when it fills.
    fn store_hot(&mut self, key: JobKey, res: JobResult) {
        self.hot.insert(key, res);
        let hot_cap = self.capacity.div_ceil(2).max(1);
        if self.hot.len() >= hot_cap && self.capacity > 0 {
            self.stats.evictions += self.cold.len() as u64;
            self.cold = std::mem::take(&mut self.hot);
        }
    }
}

/// Outcome of a cache pre-pass over a pair list ([`serve_hits`]).
#[derive(Debug)]
pub struct CachePrepass {
    /// One slot per input pair; hits are already filled.
    pub slots: Vec<Option<JobResult>>,
    /// The key of each pair (`None` when no cache was supplied).
    pub keys: Vec<Option<JobKey>>,
    /// Indices that must be computed, in input order.
    pub work: Vec<usize>,
    /// Within-run duplicates `(index, first_index)`: deferred, served by
    /// [`resolve`] once the first occurrence's result is cached.
    pub aliases: Vec<(usize, usize)>,
}

/// Cache pre-pass shared by the router, the hetero path, and the daemon:
/// hits fill their slots, misses form the worklist, and duplicates within
/// the run are deduplicated (only the first occurrence of a key is
/// computed — the rest are served from the cache post-compute, each as
/// one counted lookup).
pub fn serve_hits(
    mut cache: Option<&mut ResultCache>,
    pairs: &[(DnaSeq, DnaSeq)],
    scheme: &ScoringScheme,
    band: usize,
    score_only: bool,
) -> CachePrepass {
    let mut slots: Vec<Option<JobResult>> = (0..pairs.len()).map(|_| None).collect();
    let mut keys: Vec<Option<JobKey>> = vec![None; pairs.len()];
    let mut work: Vec<usize> = Vec::with_capacity(pairs.len());
    let mut aliases: Vec<(usize, usize)> = Vec::new();
    let mut first_of: HashMap<JobKey, usize> = HashMap::new();
    for (i, (a, b)) in pairs.iter().enumerate() {
        if let Some(c) = cache.as_mut() {
            let key = job_key_seqs(a, b, scheme, band, score_only);
            keys[i] = Some(key);
            if let Some(&first) = first_of.get(&key) {
                aliases.push((i, first));
                continue;
            }
            first_of.insert(key, i);
            if let Some(hit) = c.lookup(&key) {
                slots[i] = Some(hit);
                continue;
            }
        }
        work.push(i);
    }
    CachePrepass {
        slots,
        keys,
        work,
        aliases,
    }
}

/// Cache post-pass: insert every computed result (the `work` indices,
/// whose slots the caller has filled) behind the audit gate, then serve
/// the deferred duplicates — from the cache when the insert was accepted
/// (one counted hit each), by copying the computed twin when it was
/// audit-rejected. Returns the fully resolved result list in input order.
#[allow(clippy::too_many_arguments)]
pub fn resolve(
    mut cache: Option<&mut ResultCache>,
    pairs: &[(DnaSeq, DnaSeq)],
    scheme: &ScoringScheme,
    band: usize,
    score_only: bool,
    mut slots: Vec<Option<JobResult>>,
    keys: &[Option<JobKey>],
    work: &[usize],
    aliases: &[(usize, usize)],
) -> Vec<JobResult> {
    if let Some(c) = cache.as_mut() {
        for &i in work {
            if let (Some(key), Some(res)) = (keys[i], slots[i].as_ref()) {
                let packed = (pairs[i].0.pack(), pairs[i].1.pack());
                c.insert_audited(key, &packed, res, scheme, band, score_only);
            }
        }
    }
    for &(i, first) in aliases {
        let served = match (cache.as_mut(), keys[i].as_ref()) {
            (Some(c), Some(key)) => c.lookup(key),
            _ => None,
        };
        slots[i] = Some(match served {
            Some(hit) => hit,
            None => slots[first].clone().expect("first occurrence resolved"),
        });
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, s)| s.unwrap_or_else(|| panic!("pair {i} unresolved")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nw_core::cigar::Cigar;
    use nw_core::seq::DnaSeq;
    use nw_core::{job_key_seqs, AdaptiveAligner};

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn aligned_pair(k: usize) -> (DnaSeq, DnaSeq, JobResult) {
        let a = seq(&"ACGTGGTCAT".repeat(3 + k % 3));
        let mut b_text = a.to_ascii();
        b_text.insert(2 + k % 5, b'T');
        let b = DnaSeq::from_ascii(&b_text).unwrap();
        let aln = AdaptiveAligner::new(ScoringScheme::default(), 32)
            .align(&a, &b)
            .unwrap();
        (
            a,
            b,
            JobResult {
                status: JobStatus::Ok,
                score: aln.score,
                cigar: aln.cigar,
            },
        )
    }

    fn key_of(a: &DnaSeq, b: &DnaSeq) -> JobKey {
        job_key_seqs(a, b, &ScoringScheme::default(), 32, false)
    }

    #[test]
    fn hit_after_audited_insert_returns_the_same_result() {
        let mut c = ResultCache::new(64);
        let (a, b, res) = aligned_pair(0);
        let key = key_of(&a, &b);
        assert!(c.lookup(&key).is_none());
        assert!(c.insert_audited(
            key,
            &(a.pack(), b.pack()),
            &res,
            &ScoringScheme::default(),
            32,
            false
        ));
        assert_eq!(c.lookup(&key), Some(res));
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses, s.inserts), (2, 1, 1, 1));
        assert!(s.conserved());
    }

    #[test]
    fn audit_gate_refuses_corrupt_and_failed_results() {
        let mut c = ResultCache::new(64);
        let scheme = ScoringScheme::default();
        let (a, b, good) = aligned_pair(1);
        let key = key_of(&a, &b);
        let pair = (a.pack(), b.pack());
        // Silent corruption: score off by one (checksum-style integrity
        // would pass; only the audit catches it).
        let mut bad_score = good.clone();
        bad_score.score += 1;
        assert!(!c.insert_audited(key, &pair, &bad_score, &scheme, 32, false));
        // Corrupt CIGAR that no longer matches the sequences.
        let mut bad_cigar = good.clone();
        bad_cigar.cigar = Cigar::new();
        bad_cigar.cigar.push_run(3, nw_core::CigarOp::Match);
        assert!(!c.insert_audited(key, &pair, &bad_cigar, &scheme, 32, false));
        // Failed results never cache.
        let failed = JobResult {
            status: JobStatus::OutOfBand,
            score: 0,
            cigar: Cigar::new(),
        };
        assert!(!c.insert_audited(key, &pair, &failed, &scheme, 32, false));
        assert!(c.is_empty());
        assert_eq!(c.stats().rejected_inserts, 3);
        // The good result still gets in.
        assert!(c.insert_audited(key, &pair, &good, &scheme, 32, false));
        assert_eq!(c.lookup(&key), Some(good));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        let (a, b, res) = aligned_pair(2);
        let key = key_of(&a, &b);
        assert!(!c.insert_audited(
            key,
            &(a.pack(), b.pack()),
            &res,
            &ScoringScheme::default(),
            32,
            false
        ));
        assert!(c.lookup(&key).is_none());
        assert!(c.stats().conserved());
    }

    #[test]
    fn eviction_is_bounded_and_favors_recent_entries() {
        let scheme = ScoringScheme::default();
        let mut c = ResultCache::new(8);
        let mut keys = Vec::new();
        for k in 0..40 {
            let (a, b, res) = aligned_pair(k);
            // Vary the band so every k gets a distinct key even when the
            // generator cycles sequences.
            let key = job_key_seqs(&a, &b, &scheme, 16 * (k + 1), false);
            c.insert_audited(
                key,
                &(a.pack(), b.pack()),
                &res,
                &scheme,
                16 * (k + 1),
                false,
            );
            keys.push(key);
            assert!(c.len() <= 8, "capacity bound violated: {}", c.len());
        }
        assert!(c.stats().evictions > 0, "rotation must have evicted");
        // The most recent insert is always resident.
        assert!(c.lookup(keys.last().unwrap()).is_some());
        // The oldest entries have been rotated out.
        assert!(c.lookup(&keys[0]).is_none());
        assert!(c.stats().conserved());
    }

    #[test]
    fn cold_hits_promote_and_survive_rotation() {
        let scheme = ScoringScheme::default();
        let mut c = ResultCache::new(4); // hot capacity 2
        let (a, b, res) = aligned_pair(0);
        let favored = job_key_seqs(&a, &b, &scheme, 16, false);
        let pair = (a.pack(), b.pack());
        c.insert_audited(favored, &pair, &res, &scheme, 16, false);
        // Keep touching `favored` while churning other keys through; the
        // promotions must keep it resident.
        for k in 1..20 {
            let key = job_key_seqs(&a, &b, &scheme, 16 * (k + 1), false);
            c.insert_audited(key, &pair, &res, &scheme, 16 * (k + 1), false);
            assert!(c.lookup(&favored).is_some(), "churn round {k}");
        }
    }

    #[test]
    fn capacity_one_keeps_exactly_the_latest_insert() {
        let scheme = ScoringScheme::default();
        let mut c = ResultCache::new(1);
        let (a, b, res) = aligned_pair(0);
        let pair = (a.pack(), b.pack());
        let k1 = job_key_seqs(&a, &b, &scheme, 16, false);
        let k2 = job_key_seqs(&a, &b, &scheme, 32, false);
        assert!(c.insert_audited(k1, &pair, &res, &scheme, 16, false));
        assert!(c.len() <= 1);
        assert!(c.insert_audited(k2, &pair, &res, &scheme, 32, false));
        assert!(c.len() <= 1, "capacity-1 bound violated: {}", c.len());
        // hot capacity is 1, so every insert rotates: the newest key is
        // in cold and still serveable; the older one is gone.
        assert!(c.lookup(&k2).is_some());
        assert!(c.lookup(&k1).is_none());
        assert!(c.stats().conserved());
    }

    #[test]
    fn reinsert_after_rejection_is_accepted_cleanly() {
        let scheme = ScoringScheme::default();
        let mut c = ResultCache::new(8);
        let (a, b, good) = aligned_pair(3);
        let key = key_of(&a, &b);
        let pair = (a.pack(), b.pack());
        let mut bad = good.clone();
        bad.score -= 3;
        assert!(!c.insert_audited(key, &pair, &bad, &scheme, 32, false));
        assert!(c.lookup(&key).is_none(), "rejected insert must not serve");
        assert!(c.insert_audited(key, &pair, &good, &scheme, 32, false));
        assert_eq!(c.lookup(&key), Some(good));
        let s = c.stats();
        assert_eq!((s.rejected_inserts, s.inserts), (1, 1));
        assert!(s.conserved());
    }

    #[test]
    fn alias_duplicates_in_one_batch_count_as_hits() {
        let scheme = ScoringScheme::default();
        let (a, b, res) = aligned_pair(4);
        // One unique pair appearing three times in a batch: one miss,
        // then two alias lookups served post-insert as counted hits.
        let pairs = vec![(a.clone(), b.clone()), (a.clone(), b.clone()), (a, b)];
        let mut c = ResultCache::new(8);
        let pre = serve_hits(Some(&mut c), &pairs, &scheme, 32, false);
        assert_eq!(pre.work, vec![0]);
        assert_eq!(pre.aliases, vec![(1, 0), (2, 0)]);
        let mut slots = pre.slots;
        slots[0] = Some(res.clone());
        let out = resolve(
            Some(&mut c),
            &pairs,
            &scheme,
            32,
            false,
            slots,
            &pre.keys,
            &pre.work,
            &pre.aliases,
        );
        assert!(out.iter().all(|r| *r == res));
        let s = c.stats();
        assert_eq!((s.lookups, s.hits, s.misses), (3, 2, 1));
        assert!(s.conserved());
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn alias_falls_back_to_twin_when_insert_rejected() {
        let scheme = ScoringScheme::default();
        let (a, b, good) = aligned_pair(5);
        let mut corrupt = good.clone();
        corrupt.score += 1; // computed result fails the audit gate
        let pairs = vec![(a.clone(), b.clone()), (a, b)];
        let mut c = ResultCache::new(8);
        let pre = serve_hits(Some(&mut c), &pairs, &scheme, 32, false);
        let mut slots = pre.slots;
        slots[0] = Some(corrupt.clone());
        let out = resolve(
            Some(&mut c),
            &pairs,
            &scheme,
            32,
            false,
            slots,
            &pre.keys,
            &pre.work,
            &pre.aliases,
        );
        // The alias is still answered (copied from its computed twin) and
        // the accounting stays conserved: the post-insert alias lookup
        // missed because the insert was refused.
        assert_eq!(out[1], corrupt);
        let s = c.stats();
        assert_eq!(s.rejected_inserts, 1);
        assert_eq!((s.lookups, s.hits, s.misses), (2, 0, 2));
        assert!(s.conserved());
    }
}
