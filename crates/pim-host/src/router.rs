//! Cost-model router: each batch goes to whichever backend clears it
//! soonest.
//!
//! The static split in [`crate::hetero`] decides the whole partition up
//! front from hand-fed throughput estimates. The router instead makes a
//! *live* decision per batch: predicted completion on backend *b* is
//!
//! ```text
//! eta(b) = (queued_units(b) + batch_units) / measured_rate(b)
//! ```
//!
//! where `measured_rate` is the backend's EWMA over completed batches
//! ([`crate::backend::ThroughputEwma`]) and `queued_units` is the work
//! already assigned but not yet finished. The batch is offered to the
//! backend with the smallest eta over a *bounded* (depth-1) channel: a
//! backend whose estimate is optimistic fills up after at most two batches
//! and the next batch spills to the runner-up, so a bad seed costs a
//! bounded detour rather than a starved run. Per-workload CPU-vs-PiM
//! crossover is real and input-dependent (PAPERS.md, the PIM framework
//! paper), which is why the rates are measured, not configured.
//!
//! In front of routing sits the content-addressed [`ResultCache`]: hits
//! are served before any batch is formed; computed results are inserted
//! behind the audit gate after the workers join. Both cache passes run on
//! the driver thread — the cache needs no locking.

use crate::backend::{batch_units, Backend, BackendBatch};
use crate::cache::{CacheStats, ResultCache};
use crate::recovery::FaultReport;
use crate::report::ExecutionReport;
use dpu_kernel::layout::JobResult;
use nw_core::seq::DnaSeq;
use nw_core::ScoringScheme;
use pim_sim::SimError;
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

/// Router knobs. `band`/`scheme`/`score_only` must match what the
/// backends actually run — they define both the eq.-6 unit and the cache
/// key.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Pairs per routed batch (the routing granularity).
    pub batch_size: usize,
    /// Band width used for workload units and cache keys.
    pub band: usize,
    /// Scoring scheme (cache key component).
    pub scheme: ScoringScheme,
    /// Score-only mode (cache key component).
    pub score_only: bool,
}

impl RouterConfig {
    /// Defaults: batches of 16 pairs.
    pub fn new(band: usize, scheme: ScoringScheme, score_only: bool) -> Self {
        RouterConfig {
            batch_size: 16,
            band,
            scheme,
            score_only,
        }
    }
}

/// Per-backend telemetry accumulated by the router.
#[derive(Debug, Clone, Default)]
pub struct LaneReport {
    /// Backend name ("pim", "cpu").
    pub name: String,
    /// Batches routed to this backend.
    pub batches: u64,
    /// Pairs routed to this backend.
    pub pairs: u64,
    /// eq.-6 units routed to this backend.
    pub units: f64,
    /// Summed measured batch seconds (busy time).
    pub busy_seconds: f64,
    /// Final measured rate (units/second) after the last batch.
    pub rate: f64,
    /// busy_seconds / total router wall time.
    pub utilization: f64,
}

/// Router + cache telemetry for one [`route_pairs`] run, threaded into
/// `ExecutionReport`/`ServiceReport`.
#[derive(Debug, Clone, Default)]
pub struct RouterReport {
    /// One entry per backend, in the order they were passed.
    pub lanes: Vec<LaneReport>,
    /// Cache counters for this run (all-zero when no cache was supplied).
    pub cache: CacheStats,
}

impl RouterReport {
    /// Pairs served straight from the cache.
    pub fn cached_pairs(&self) -> u64 {
        self.cache.hits
    }

    /// Fold another run's telemetry into this one: lanes match by name
    /// (counters add, the newer run's measured rate/utilization win),
    /// cache counters add. The serve daemon aggregates per-ticket router
    /// telemetry into service totals this way.
    pub fn merge(&mut self, other: &RouterReport) {
        for lane in &other.lanes {
            match self.lanes.iter_mut().find(|l| l.name == lane.name) {
                Some(mine) => {
                    mine.batches += lane.batches;
                    mine.pairs += lane.pairs;
                    mine.units += lane.units;
                    mine.busy_seconds += lane.busy_seconds;
                    mine.rate = lane.rate;
                    mine.utilization = lane.utilization;
                }
                None => self.lanes.push(lane.clone()),
            }
        }
        self.cache.merge(&other.cache);
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        let mut s = String::from("router:");
        for lane in &self.lanes {
            s.push_str(&format!(
                " {}={} pairs ({} batches, {:.0} u/s, util {:.0}%)",
                lane.name,
                lane.pairs,
                lane.batches,
                lane.rate,
                lane.utilization * 100.0
            ));
        }
        s.push_str(&format!(
            "; cache {}/{} hits ({} evicted)",
            self.cache.hits, self.cache.lookups, self.cache.evictions
        ));
        s
    }
}

/// Everything one routed run produced.
#[derive(Debug)]
pub struct RouterOutcome {
    /// Per-pair results in input order (cache hits included).
    pub results: Vec<JobResult>,
    /// Measured host wall seconds for the whole run.
    pub seconds: f64,
    /// Router + cache telemetry.
    pub report: RouterReport,
    /// Merged PiM execution reports, when any batch ran on PiM.
    pub pim_report: Option<ExecutionReport>,
    /// Merged fault-recovery counters from PiM batches.
    pub fault: FaultReport,
}

/// Live per-lane state shared between the driver (reads, adds queue) and
/// the workers (subtract queue, refresh rate).
struct LaneState {
    queued_units: f64,
    rate: f64,
}

enum Done {
    Batch {
        lane: usize,
        indices: Vec<usize>,
        batch: Box<BackendBatch>,
    },
    Failed(SimError),
}

/// Route `pairs` across `backends`, serving repeats from `cache` when one
/// is supplied. Results come back in input order and are bit-identical to
/// running any single backend over the same pairs.
pub fn route_pairs(
    backends: &mut [&mut dyn Backend],
    cfg: &RouterConfig,
    pairs: &[(DnaSeq, DnaSeq)],
    mut cache: Option<&mut ResultCache>,
) -> Result<RouterOutcome, SimError> {
    assert!(!backends.is_empty(), "router needs at least one backend");
    let batch_size = cfg.batch_size.max(1);
    let t0 = Instant::now();
    let cache_base = cache.as_ref().map(|c| c.stats()).unwrap_or_default();

    // Cache pre-pass on the driver thread: hits fill their slots, misses
    // form the worklist, within-run duplicates are deferred.
    let cached = crate::cache::serve_hits(
        cache.as_deref_mut(),
        pairs,
        &cfg.scheme,
        cfg.band,
        cfg.score_only,
    );
    let mut slots = cached.slots;
    let work = cached.work;

    let lanes = Mutex::new(
        backends
            .iter()
            .map(|b| LaneState {
                queued_units: 0.0,
                rate: b.units_per_second().max(1.0),
            })
            .collect::<Vec<_>>(),
    );
    let mut lane_reports: Vec<LaneReport> = backends
        .iter()
        .map(|b| LaneReport {
            name: b.name().to_string(),
            ..LaneReport::default()
        })
        .collect();

    let mut pim_report: Option<ExecutionReport> = None;
    let mut fault = FaultReport::default();
    let mut first_error: Option<SimError> = None;
    let mut computed: Vec<(Vec<usize>, Vec<JobResult>)> = Vec::new();

    std::thread::scope(|scope| {
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        // Depth-1 job channels: a backend can hold one running batch plus
        // one queued batch, no more — the bound is what turns a bad rate
        // seed into a small detour instead of a starved run.
        let mut job_txs = Vec::new();
        for (lane_id, backend) in backends.iter_mut().enumerate() {
            let (tx, rx) = mpsc::sync_channel::<(Vec<usize>, Vec<(DnaSeq, DnaSeq)>)>(1);
            job_txs.push(tx);
            let done_tx = done_tx.clone();
            let lanes = &lanes;
            scope.spawn(move || {
                while let Ok((indices, batch_pairs)) = rx.recv() {
                    let units = batch_units(&batch_pairs, cfg.band);
                    let msg = match backend.run_batch(&batch_pairs) {
                        Ok(batch) => Done::Batch {
                            lane: lane_id,
                            indices,
                            batch: Box::new(batch),
                        },
                        Err(e) => Done::Failed(e),
                    };
                    {
                        let mut st = lanes.lock().expect("lane state");
                        st[lane_id].queued_units = (st[lane_id].queued_units - units).max(0.0);
                        st[lane_id].rate = backend.units_per_second().max(1.0);
                    }
                    if done_tx.send(msg).is_err() {
                        break;
                    }
                }
            });
        }
        drop(done_tx);

        let mut in_flight = 0usize;
        let mut drain = |done: Done,
                         lane_reports: &mut Vec<LaneReport>,
                         computed: &mut Vec<(Vec<usize>, Vec<JobResult>)>| {
            match done {
                Done::Batch {
                    lane,
                    indices,
                    batch,
                } => {
                    let lr = &mut lane_reports[lane];
                    lr.batches += 1;
                    lr.pairs += indices.len() as u64;
                    lr.busy_seconds += batch.seconds;
                    if let Some(rep) = batch.report {
                        match pim_report.as_mut() {
                            Some(acc) => acc.merge(&rep),
                            None => pim_report = Some(rep),
                        }
                    }
                    if let Some(f) = batch.fault {
                        fault.merge(&f);
                    }
                    computed.push((indices, batch.results));
                }
                Done::Failed(e) => {
                    if first_error.is_none() {
                        first_error = Some(e);
                    }
                }
            }
        };

        for chunk in work.chunks(batch_size) {
            let indices: Vec<usize> = chunk.to_vec();
            let batch_pairs: Vec<(DnaSeq, DnaSeq)> =
                indices.iter().map(|&i| pairs[i].clone()).collect();
            let units = batch_units(&batch_pairs, cfg.band);
            let mut job = Some((indices, batch_pairs));
            while let Some(j) = job.take() {
                // Cheapest predicted completion first, under current queue
                // depth and measured rates.
                let order: Vec<usize> = {
                    let st = lanes.lock().expect("lane state");
                    let mut order: Vec<usize> = (0..st.len()).collect();
                    order.sort_by(|&x, &y| {
                        let ex = (st[x].queued_units + units) / st[x].rate;
                        let ey = (st[y].queued_units + units) / st[y].rate;
                        ex.total_cmp(&ey)
                    });
                    order
                };
                let mut pending = Some(j);
                for &lane_id in &order {
                    // Charge the queue before offering so a worker that
                    // finishes instantly never decrements below zero.
                    lanes.lock().expect("lane state")[lane_id].queued_units += units;
                    match job_txs[lane_id].try_send(pending.take().expect("job pending")) {
                        Ok(()) => {
                            lane_reports[lane_id].units += units;
                            in_flight += 1;
                            break;
                        }
                        Err(mpsc::TrySendError::Full(back))
                        | Err(mpsc::TrySendError::Disconnected(back)) => {
                            let mut st = lanes.lock().expect("lane state");
                            st[lane_id].queued_units = (st[lane_id].queued_units - units).max(0.0);
                            pending = Some(back);
                        }
                    }
                }
                if pending.is_none() {
                    break;
                }
                // Every lane is busy with its queued batch: reap one
                // completion (or wait briefly) and retry the offer.
                job = pending;
                match done_rx.recv_timeout(std::time::Duration::from_millis(1)) {
                    Ok(done) => {
                        in_flight -= 1;
                        drain(done, &mut lane_reports, &mut computed);
                    }
                    Err(mpsc::RecvTimeoutError::Timeout) => {}
                    Err(mpsc::RecvTimeoutError::Disconnected) => break,
                }
            }
        }
        drop(job_txs);
        while in_flight > 0 {
            match done_rx.recv() {
                Ok(done) => {
                    in_flight -= 1;
                    drain(done, &mut lane_reports, &mut computed);
                }
                Err(_) => break,
            }
        }
    });

    if let Some(e) = first_error {
        return Err(e);
    }

    // Post-join cache pass: audited inserts, then the deferred duplicates.
    for (indices, results) in &computed {
        for (&i, res) in indices.iter().zip(results) {
            slots[i] = Some(res.clone());
        }
    }
    let resolved = crate::cache::resolve(
        cache.as_deref_mut(),
        pairs,
        &cfg.scheme,
        cfg.band,
        cfg.score_only,
        slots,
        &cached.keys,
        &work,
        &cached.aliases,
    );

    let seconds = t0.elapsed().as_secs_f64();
    for (lane_id, lane) in lane_reports.iter_mut().enumerate() {
        lane.rate = backends[lane_id].units_per_second();
        lane.utilization = if seconds > 0.0 {
            (lane.busy_seconds / seconds).min(1.0)
        } else {
            0.0
        };
    }
    let mut cache_stats = cache.as_ref().map(|c| c.stats()).unwrap_or_default();
    // Report only this run's deltas (the daemon's cache persists across
    // tickets; its lifetime totals live in ServiceReport).
    cache_stats.lookups -= cache_base.lookups;
    cache_stats.hits -= cache_base.hits;
    cache_stats.misses -= cache_base.misses;
    cache_stats.inserts -= cache_base.inserts;
    cache_stats.evictions -= cache_base.evictions;
    cache_stats.rejected_inserts -= cache_base.rejected_inserts;

    let report = RouterReport {
        lanes: lane_reports,
        cache: cache_stats,
    };
    // Thread the telemetry into the PiM execution report too, so callers
    // that only look at `ExecutionReport` still see the router counters.
    if let Some(rep) = pim_report.as_mut() {
        rep.router = Some(report.clone());
    }
    Ok(RouterOutcome {
        results: resolved,
        seconds,
        report,
        pim_report,
        fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::{CpuPoolBackend, SimPimBackend};
    use crate::dispatch::DispatchConfig;
    use crate::recovery::RecoveryConfig;
    use dpu_kernel::layout::JobStatus;
    use dpu_kernel::{KernelParams, NwKernel};
    use pim_sim::{PimServer, ServerConfig};

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn pairs(n: usize) -> Vec<(DnaSeq, DnaSeq)> {
        (0..n)
            .map(|k| {
                let a = "ACGTGGTCAT".repeat(4 + k % 5);
                let mut b = a.clone();
                b.insert_str(3 + k % 7, "TG");
                (seq(&a), seq(&b))
            })
            .collect()
    }

    fn small_server() -> PimServer {
        PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        })
    }

    fn dcfg() -> DispatchConfig {
        let params = KernelParams {
            band: 32,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        DispatchConfig::new(NwKernel::paper_default(), params)
    }

    #[test]
    fn routed_results_cover_every_pair_in_order() {
        let ps = pairs(30);
        let mut server = small_server();
        let mut pim = SimPimBackend::new(&mut server, dcfg(), RecoveryConfig::default());
        let mut cpu = CpuPoolBackend::new(ScoringScheme::default(), 32, false, 2);
        let mut backends: Vec<&mut dyn Backend> = vec![&mut pim, &mut cpu];
        let rcfg = RouterConfig {
            batch_size: 4,
            ..RouterConfig::new(32, ScoringScheme::default(), false)
        };
        let out = route_pairs(&mut backends, &rcfg, &ps, None).unwrap();
        assert_eq!(out.results.len(), ps.len());
        let reference = CpuPoolBackend::new(ScoringScheme::default(), 32, false, 1)
            .run_batch(&ps)
            .unwrap();
        for (i, (got, want)) in out.results.iter().zip(&reference.results).enumerate() {
            assert_eq!(got, want, "pair {i}");
        }
        let total: u64 = out.report.lanes.iter().map(|l| l.pairs).sum();
        assert_eq!(total, ps.len() as u64);
        assert!(out.seconds > 0.0);
    }

    #[test]
    fn cache_serves_repeats_and_counts_conserve() {
        let base = pairs(6);
        // 3x duplication of the same 6 pairs.
        let ps: Vec<_> = base.iter().cycle().take(18).cloned().collect();
        let mut cpu = CpuPoolBackend::new(ScoringScheme::default(), 32, false, 2);
        let mut backends: Vec<&mut dyn Backend> = vec![&mut cpu];
        let rcfg = RouterConfig {
            batch_size: 6,
            ..RouterConfig::new(32, ScoringScheme::default(), false)
        };
        let mut cache = ResultCache::new(256);
        let out = route_pairs(&mut backends, &rcfg, &ps, Some(&mut cache)).unwrap();
        let s = out.report.cache;
        assert_eq!(s.lookups, 18);
        assert!(s.conserved(), "hits {} misses {}", s.hits, s.misses);
        assert!(s.hits >= 6, "repeat traffic must hit: {s:?}");
        // Cached results are bit-identical to fresh computation.
        let fresh = CpuPoolBackend::new(ScoringScheme::default(), 32, false, 1)
            .run_batch(&ps)
            .unwrap();
        assert_eq!(out.results, fresh.results);
        for r in &out.results {
            assert_eq!(r.status, JobStatus::Ok);
        }
    }

    #[test]
    fn single_backend_router_degenerates_gracefully() {
        let ps = pairs(5);
        let mut server = small_server();
        let mut pim = SimPimBackend::new(&mut server, dcfg(), RecoveryConfig::default());
        let mut backends: Vec<&mut dyn Backend> = vec![&mut pim];
        let rcfg = RouterConfig::new(32, ScoringScheme::default(), false);
        let out = route_pairs(&mut backends, &rcfg, &ps, None).unwrap();
        assert_eq!(out.results.len(), 5);
        assert_eq!(out.report.lanes.len(), 1);
        assert_eq!(out.report.lanes[0].pairs, 5);
        assert!(out.pim_report.is_some());
    }

    #[test]
    fn empty_input_is_fine() {
        let mut cpu = CpuPoolBackend::new(ScoringScheme::default(), 32, false, 1);
        let mut backends: Vec<&mut dyn Backend> = vec![&mut cpu];
        let rcfg = RouterConfig::new(32, ScoringScheme::default(), false);
        let out = route_pairs(&mut backends, &rcfg, &[], None).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.report.lanes[0].batches, 0);
    }
}
