//! Load balancing (§4.1.2).
//!
//! The rank barrier makes the slowest DPU of each rank the rank's finish
//! line, so the host minimizes the max-min gap with the classic LPT
//! (Longest Processing Time) greedy: sort items by decreasing workload and
//! repeatedly give the largest remaining item to the least-loaded bin. LPT
//! is a 4/3-approximation to makespan; the paper calls it "a simple and
//! well known heuristic ... fast to execute and a good approximation".
//!
//! Workload estimation follows eq. 6 by default: `workload(m, n) =
//! (m + n) × w`. When a kernel's symbolic WCET bound is available
//! ([`pim_sim::isa::WcetBound`]), [`CostModel::Static`] bins by proven
//! kernel cost instead — the bound evaluated at the job's cell estimate —
//! so LPT stays meaningful for kernels whose per-cell cost is not uniform.

use nw_core::seq::PackedSeq;
use pim_sim::isa::{KernelParams, WcetBound};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// eq. 6 — the paper's workload estimate for one alignment.
pub fn workload(m: usize, n: usize, band: usize) -> u64 {
    ((m + n) as u64) * band as u64
}

/// eq.-6 workloads for a slice of packed pairs — the single source both
/// round grouping ([`crate::dispatch::group_jobs`]) and intra-rank LPT
/// ([`crate::dispatch::plan_rank`]) use, so "heavy" means the same thing at
/// every planning level.
pub fn pair_workloads(pairs: &[(PackedSeq, PackedSeq)], band: usize) -> Vec<u64> {
    pairs
        .iter()
        .map(|(a, b)| workload(a.len(), b.len(), band))
        .collect()
}

/// How the host prices one alignment for LPT binning.
#[derive(Debug, Clone, Default)]
pub enum CostModel {
    /// eq. 6: `(m + n) × w` — cost proportional to banded cell count,
    /// assuming every cell costs the same.
    #[default]
    Analytic,
    /// A statically proven kernel bound: the symbolic WCET expression with
    /// its input registers bound to the job's eq.-6 cell estimate. Falls
    /// back to [`CostModel::Analytic`] if the bound is not finite, so an
    /// unbounded kernel degrades to eq. 6 instead of breaking planning.
    Static(WcetBound),
}

impl CostModel {
    /// Price one alignment of lengths `m`/`n` at band width `band`.
    pub fn workload(&self, m: usize, n: usize, band: usize) -> u64 {
        match self {
            CostModel::Analytic => workload(m, n, band),
            CostModel::Static(bound) => {
                let cells = workload(m, n, band);
                let priced = bound.expr().and_then(|expr| {
                    let mut params = KernelParams::new();
                    for r in expr.inputs() {
                        params = params.set(r, cells);
                    }
                    bound.eval(&params)
                });
                priced.unwrap_or_else(|| workload(m, n, band))
            }
        }
    }

    /// Workloads for a slice of packed pairs under this model (the
    /// [`CostModel::Analytic`] case reproduces [`pair_workloads`]).
    pub fn pair_workloads(&self, pairs: &[(PackedSeq, PackedSeq)], band: usize) -> Vec<u64> {
        pairs
            .iter()
            .map(|(a, b)| self.workload(a.len(), b.len(), band))
            .collect()
    }
}

/// LPT assignment of `workloads` into `bins`. Returns, per bin, the item
/// indices assigned to it (deterministic: ties broken by bin index).
pub fn lpt_assign(workloads: &[u64], bins: usize) -> Vec<Vec<usize>> {
    assert!(bins > 0, "need at least one bin");
    let mut order: Vec<usize> = (0..workloads.len()).collect();
    order.sort_by_key(|&i| (Reverse(workloads[i]), i));
    let mut heap: BinaryHeap<Reverse<(u64, usize)>> =
        (0..bins).map(|b| Reverse((0u64, b))).collect();
    let mut assignment = vec![Vec::new(); bins];
    for i in order {
        let Reverse((load, bin)) = heap.pop().expect("heap never empty");
        assignment[bin].push(i);
        heap.push(Reverse((load + workloads[i], bin)));
    }
    assignment
}

/// Naive round-robin assignment (the ablation baseline).
pub fn round_robin_assign(n_items: usize, bins: usize) -> Vec<Vec<usize>> {
    assert!(bins > 0, "need at least one bin");
    let mut assignment = vec![Vec::new(); bins];
    for i in 0..n_items {
        assignment[i % bins].push(i);
    }
    assignment
}

/// Per-bin total workloads for an assignment.
pub fn bin_loads(assignment: &[Vec<usize>], workloads: &[u64]) -> Vec<u64> {
    assignment
        .iter()
        .map(|items| items.iter().map(|&i| workloads[i]).sum())
        .collect()
}

/// `(max - min) / max` over bin loads — the balance gap the rank barrier
/// exposes (0 = perfect).
pub fn imbalance(loads: &[u64]) -> f64 {
    let max = loads.iter().copied().max().unwrap_or(0);
    let min = loads.iter().copied().min().unwrap_or(0);
    if max == 0 {
        0.0
    } else {
        (max - min) as f64 / max as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_eq6() {
        assert_eq!(workload(1000, 1010, 128), 2010 * 128);
        assert_eq!(workload(0, 0, 128), 0);
    }

    #[test]
    fn lpt_covers_all_items_exactly_once() {
        let w: Vec<u64> = (0..100).map(|i| (i * 37 % 91) + 1).collect();
        let asg = lpt_assign(&w, 7);
        let mut seen = vec![false; w.len()];
        for bin in &asg {
            for &i in bin {
                assert!(!seen[i], "item {i} assigned twice");
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_loads() {
        // Heavy items land on the same bin under round-robin (indices
        // congruent mod 8), which LPT avoids by construction.
        let w: Vec<u64> = (0..64)
            .map(|i| if i % 8 == 0 { 1000 } else { 50 + i })
            .collect();
        let lpt = bin_loads(&lpt_assign(&w, 8), &w);
        let rr = bin_loads(&round_robin_assign(w.len(), 8), &w);
        assert!(
            imbalance(&lpt) < imbalance(&rr),
            "LPT {} !< RR {}",
            imbalance(&lpt),
            imbalance(&rr)
        );
        assert!(imbalance(&lpt) < 0.15, "LPT imbalance {}", imbalance(&lpt));
    }

    #[test]
    fn lpt_is_optimal_for_equal_items() {
        let w = vec![10u64; 32];
        let loads = bin_loads(&lpt_assign(&w, 8), &w);
        assert!(loads.iter().all(|&l| l == 40));
        assert_eq!(imbalance(&loads), 0.0);
    }

    #[test]
    fn lpt_within_four_thirds_of_lower_bound() {
        // Classic LPT guarantee: makespan <= 4/3 OPT. Check against the
        // trivial lower bound max(mean, max_item) on random-ish loads.
        let w: Vec<u64> = (1..200u64).map(|i| (i * 7919) % 500 + 1).collect();
        for bins in [3usize, 8, 16] {
            let loads = bin_loads(&lpt_assign(&w, bins), &w);
            let makespan = *loads.iter().max().unwrap();
            let total: u64 = w.iter().sum();
            let lower = (total as f64 / bins as f64).max(*w.iter().max().unwrap() as f64);
            assert!(
                (makespan as f64) <= lower * 4.0 / 3.0 + 1.0,
                "bins {bins}: makespan {makespan} vs lower {lower}"
            );
        }
    }

    #[test]
    fn fewer_items_than_bins() {
        let w = vec![5u64, 7];
        let asg = lpt_assign(&w, 8);
        assert_eq!(asg.iter().filter(|b| !b.is_empty()).count(), 2);
        let loads = bin_loads(&asg, &w);
        assert_eq!(loads.iter().sum::<u64>(), 12);
    }

    #[test]
    fn deterministic_assignment() {
        let w: Vec<u64> = (0..50).map(|i| (i * 31) % 17 + 1).collect();
        assert_eq!(lpt_assign(&w, 5), lpt_assign(&w, 5));
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0, 0]), 0.0);
        assert_eq!(imbalance(&[10, 10]), 0.0);
        assert!((imbalance(&[5, 10]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        lpt_assign(&[1], 0);
    }

    #[test]
    fn analytic_cost_model_matches_eq6() {
        let model = CostModel::default();
        assert_eq!(model.workload(1000, 1010, 128), workload(1000, 1010, 128));
    }

    #[test]
    fn static_cost_model_prices_by_the_bound() {
        use pim_sim::isa::Expr;
        // A kernel bound of `10 + 3·r1` instructions over r1 cells.
        let bound = WcetBound::Finite(Expr::add(
            Expr::Const(10),
            Expr::mul(Expr::Const(3), Expr::Input(1)),
        ));
        let model = CostModel::Static(bound);
        let cells = workload(100, 100, 32); // 200 × 32 = 6400 cells
        assert_eq!(model.workload(100, 100, 32), 10 + 3 * cells);
        // Relative ordering survives, so LPT bins identically shaped jobs
        // the same way under either model.
        assert!(model.workload(200, 200, 32) > model.workload(100, 100, 32));
    }

    #[test]
    fn unbounded_static_model_falls_back_to_eq6() {
        let model = CostModel::Static(WcetBound::Unbounded("no countdown".into()));
        assert_eq!(model.workload(500, 500, 64), workload(500, 500, 64));
    }
}
