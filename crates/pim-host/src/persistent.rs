//! Persistent, non-draining dispatch: the engine the serve daemon runs on.
//!
//! The batch engines ([`crate::pipeline`], [`crate::recovery`]) own the
//! server for exactly one job list: spawn workers, drain, join, return.
//! A daemon cannot work that way — requests arrive continuously and the
//! rank workers must stay hot between them. This module keeps the same
//! per-rank worker threads and bounded FIFOs alive for the whole service
//! lifetime and exposes a handle ([`EngineCtl`]) the daemon drives:
//!
//! ```text
//!   daemon loop                         persistent engine
//!   ───────────                         ─────────────────
//!   submit(jobs)      ──ticket──▶   per-ticket state (results,
//!   pump(wait)        ◀─TicketDone──  attempts, retry pool)
//!   cancel(ticket)                      │
//!                                       ▼ per-rank FIFOs (depth d)
//!                                    rank workers (pipeline::worker_loop)
//! ```
//!
//! The full recovery ladder rides along per ticket: per-DPU faults and
//! audit rejections requeue the lost jobs, repeated faults quarantine the
//! DPU ([`HealthTracker`] state persists across requests — flaky hardware
//! stays quarantined for the daemon's lifetime), dead ranks fail over, and
//! jobs out of PiM attempts finish on the bit-identical CPU fallback. A
//! cancelled ticket (admission deadline missed) abandons its unfinished
//! jobs with explicit [`JobStatus::Cancelled`] slots and
//! [`FaultReport::interrupted_jobs`] accounting — nothing is silently
//! dropped.
//!
//! Scoped-thread shape: workers borrow the ranks mutably, so the engine
//! cannot be a long-lived struct the caller stores. Instead
//! [`with_persistent_engine`] opens the scope, hands the caller an
//! [`EngineCtl`], and tears the workers down when the closure returns —
//! the daemon's accept/drive loop lives inside the closure.

use crate::dispatch::{decode_raw_exec_audited, AuditFn, RankExec};
use crate::pipeline::{worker_loop, BatchDone, BufferPool, WorkItem};
use crate::recovery::{
    audit_ok, cpu_result, note_exec_faults, plan_rank_subset, FaultReport, HealthTracker,
    RecoveryConfig,
};
use cpu_baseline::driver::run_batch;
use dpu_kernel::layout::{JobResult, JobStatus, KernelParams};
use dpu_kernel::NwKernel;
use nw_core::adaptive::AdaptiveAligner;
use nw_core::cigar::Cigar;
use nw_core::seq::{DnaSeq, PackedSeq};
use pim_sim::PimServer;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One submitted request's jobs, fully resolved.
#[derive(Debug)]
pub struct TicketDone {
    /// The id [`EngineCtl::submit`] returned.
    pub ticket: u64,
    /// One result per submitted pair, input order. Jobs a cancellation
    /// abandoned carry [`JobStatus::Cancelled`].
    pub results: Vec<JobResult>,
    /// Everything the recovery ladder did for this ticket.
    pub fault: FaultReport,
    /// True when [`EngineCtl::cancel`] reaped the ticket before it
    /// finished (some slots are `Cancelled`).
    pub cancelled: bool,
}

/// Engine-lifetime counters (across all tickets).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineStats {
    /// Batches dispatched to rank workers.
    pub batches: usize,
    /// Tickets fully resolved.
    pub tickets_done: usize,
    /// Jobs resolved (PiM, CPU fallback, or cancelled slots).
    pub jobs_done: usize,
}

/// `(dpu index, job indices planned onto it)` for one dispatched batch.
type PlannedJobs = Vec<(usize, Vec<usize>)>;

struct TicketState {
    jobs: Vec<(PackedSeq, PackedSeq)>,
    results: Vec<Option<JobResult>>,
    /// Result slots still empty.
    remaining: usize,
    attempts: Vec<usize>,
    /// Job indices waiting to be planned (first pass or requeued retries).
    pending: Vec<usize>,
    in_flight_batches: usize,
    fault: FaultReport,
    cancelled: bool,
    queued: bool,
}

/// Handle over the live engine: submit work, pump completions, cancel
/// expired tickets. Single-threaded by design — the daemon's driver loop
/// owns it; reader threads talk to the driver over channels, not to the
/// engine.
pub struct EngineCtl {
    params: KernelParams,
    pools: usize,
    mram: usize,
    dpus_per_rank: usize,
    host_bw: f64,
    rcfg: RecoveryConfig,
    depth: usize,
    inboxes: Vec<SyncSender<WorkItem>>,
    done_rx: Receiver<BatchDone>,
    tokens: Vec<Arc<AtomicBool>>,
    enabled: Vec<Vec<bool>>,
    health: HealthTracker,
    pool: BufferPool,
    in_flight: Vec<usize>,
    total_in_flight: usize,
    next_seq: u64,
    next_ticket: u64,
    tickets: HashMap<u64, TicketState>,
    /// Tickets with pending (unplanned) jobs, oldest first.
    queue: VecDeque<u64>,
    /// `seq -> (ticket, per-DPU planned job indices)` for in-flight batches.
    meta: HashMap<u64, (u64, PlannedJobs)>,
    /// Last time a batch completed; drives the stall deadline.
    last_progress: Instant,
    stall_cancelled: bool,
    workers_gone: bool,
    stats: EngineStats,
}

impl EngineCtl {
    /// Submit one request's pairs; returns its ticket id. Jobs start
    /// flowing on the next [`EngineCtl::pump`].
    pub fn submit(&mut self, jobs: Vec<(PackedSeq, PackedSeq)>) -> u64 {
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let n = jobs.len();
        self.tickets.insert(
            ticket,
            TicketState {
                jobs,
                results: (0..n).map(|_| None).collect(),
                remaining: n,
                attempts: vec![0; n],
                pending: (0..n).collect(),
                in_flight_batches: 0,
                fault: FaultReport::default(),
                cancelled: false,
                queued: true,
            },
        );
        // Even an empty ticket goes through the queue: feed's stale-pop
        // path is what resolves it into a TicketDone.
        self.queue.push_back(ticket);
        ticket
    }

    /// Abandon a ticket's unfinished jobs (the daemon's deadline reaper).
    /// Unplanned jobs resolve to `Cancelled` immediately; in-flight batches
    /// finish on their own and their late results are discarded. The
    /// ticket's `TicketDone` comes back from `pump` like any other —
    /// cancellation changes its contents, not its delivery path.
    pub fn cancel(&mut self, ticket: u64) {
        let Some(st) = self.tickets.get_mut(&ticket) else {
            return;
        };
        if st.cancelled {
            return;
        }
        st.cancelled = true;
        // Drop the unplanned work; the empty-pending queue entry becomes
        // stale and feed's stale-pop (or the last in-flight batch's absorb)
        // completes the ticket, filling abandoned slots with `Cancelled`.
        st.pending.clear();
    }

    /// Set every rank's cancel token: hung launches break out of their
    /// waits and come back as watchdog failures (which requeue and ride
    /// the recovery ladder). The drain path uses this to guarantee
    /// forward progress when a launch wedges with the watchdog off.
    pub fn cancel_ranks(&mut self) {
        for t in &self.tokens {
            t.store(true, Ordering::Relaxed);
        }
    }

    /// Batches currently on rank FIFOs (queued or executing).
    pub fn in_flight(&self) -> usize {
        self.total_in_flight
    }

    /// Tickets submitted but not yet resolved.
    pub fn open_tickets(&self) -> usize {
        self.tickets.len()
    }

    /// True when nothing is in flight and no ticket has unplanned work.
    pub fn idle(&self) -> bool {
        self.total_in_flight == 0 && self.tickets.is_empty()
    }

    /// True when every rank worker has exited (engine unusable; only
    /// happens after rank-fatal errors killed all workers).
    pub fn workers_gone(&self) -> bool {
        self.workers_gone
    }

    /// Engine-lifetime counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Drive the engine: plan and dispatch pending work, then wait up to
    /// `wait` for completions. Returns every ticket that fully resolved
    /// during the call (possibly none on a quiet timeout). This is the
    /// daemon's heartbeat — call it in a loop, interleaved with admission.
    pub fn pump(&mut self, wait: Duration) -> Vec<TicketDone> {
        let mut completed = Vec::new();
        self.feed(&mut completed);
        let deadline = Instant::now() + wait;
        loop {
            self.check_stall();
            let now = Instant::now();
            if now >= deadline || self.workers_gone {
                break;
            }
            let step = (deadline - now).min(Duration::from_millis(25));
            match self.done_rx.recv_timeout(step) {
                Ok(batch) => {
                    self.absorb(batch, &mut completed);
                    // Drain whatever else already finished, then refill
                    // the freed FIFO slots before returning to the caller.
                    while let Ok(batch) = self.done_rx.try_recv() {
                        self.absorb(batch, &mut completed);
                    }
                    self.feed(&mut completed);
                    break;
                }
                Err(RecvTimeoutError::Timeout) => continue,
                Err(RecvTimeoutError::Disconnected) => {
                    self.workers_gone = true;
                    break;
                }
            }
        }
        completed
    }

    /// The stall deadline ([`RecoveryConfig::deadline`]): when work is in
    /// flight and nothing has completed for the policy's budget, cancel
    /// every rank once — hung launches come back as watchdog failures and
    /// requeue. Fresh completions re-arm the trigger.
    fn check_stall(&mut self) {
        if self.total_in_flight == 0 || self.stall_cancelled {
            return;
        }
        let Some(budget) = self.rcfg.deadline.timeout() else {
            return;
        };
        if self.last_progress.elapsed() >= budget {
            self.cancel_ranks();
            self.stall_cancelled = true;
        }
    }

    fn usable_slots(&self, r: usize) -> Vec<usize> {
        if self.health.is_dead(r) {
            return Vec::new();
        }
        (0..self.dpus_per_rank)
            .filter(|&d| self.enabled[r][d] && !self.health.is_quarantined(r, d))
            .collect()
    }

    /// Top up every rank's FIFO from the ticket queue (oldest ticket
    /// first, spread over the usable ranks). Jobs out of PiM attempts are
    /// resolved on the CPU right here.
    fn feed(&mut self, completed: &mut Vec<TicketDone>) {
        let n_ranks = self.inboxes.len();
        loop {
            // Front ticket with work, after dropping stale queue entries
            // (resolved tickets, cancelled tickets, empty submissions — the
            // pop is also where those complete).
            let ticket = loop {
                match self.queue.front().copied() {
                    None => return,
                    Some(t) => {
                        let stale = match self.tickets.get(&t) {
                            None => true,
                            Some(st) => st.pending.is_empty(),
                        };
                        if stale {
                            if let Some(st) = self.tickets.get_mut(&t) {
                                st.queued = false;
                            }
                            self.queue.pop_front();
                            self.maybe_complete(t, completed);
                            continue;
                        }
                        break t;
                    }
                }
            };
            // Jobs out of PiM attempts go to the CPU now; they never
            // occupy FIFO room.
            self.cpu_exhausted(ticket);
            let st = self.tickets.get_mut(&ticket).expect("front ticket exists");
            if st.pending.is_empty() {
                st.queued = false;
                self.queue.pop_front();
                self.maybe_complete(ticket, completed);
                continue;
            }
            let usable: Vec<(usize, Vec<usize>)> = (0..n_ranks)
                .filter(|&r| self.in_flight[r] < self.depth)
                .map(|r| (r, self.usable_slots(r)))
                .filter(|(_, slots)| !slots.is_empty())
                .collect();
            if usable.is_empty() {
                // Either every FIFO is full (come back after a completion)
                // or no DPU is usable at all (CPU takes everything).
                let any_alive = (0..n_ranks).any(|r| !self.usable_slots(r).is_empty());
                if any_alive {
                    return;
                }
                let st = self.tickets.get_mut(&ticket).expect("front ticket exists");
                let ids = std::mem::take(&mut st.pending);
                self.cpu_align(ticket, &ids);
                continue;
            }
            // Spread this ticket's pending jobs over the ranks with room.
            let st = self.tickets.get_mut(&ticket).expect("front ticket exists");
            let chunk = st.pending.len().div_ceil(usable.len());
            for (r, slots) in usable {
                let st = self.tickets.get_mut(&ticket).expect("ticket still open");
                if st.pending.is_empty() {
                    break;
                }
                let take = chunk.min(st.pending.len());
                let ids: Vec<usize> = st.pending.split_off(st.pending.len() - take);
                for &i in &ids {
                    st.attempts[i] += 1;
                    if st.attempts[i] > 1 {
                        st.fault.retried_jobs += 1;
                    }
                }
                let plan = match plan_rank_subset(
                    &st.jobs,
                    &ids,
                    &slots,
                    self.dpus_per_rank,
                    self.params,
                    self.pools,
                    self.mram,
                    &mut self.pool,
                ) {
                    Ok(p) => p,
                    Err(_) => {
                        // Planning is pure host-side work; an error here is
                        // a per-job problem (e.g. a pair that cannot fit in
                        // MRAM). Resolve the chunk on the CPU rather than
                        // poisoning the engine.
                        self.cpu_align(ticket, &ids);
                        continue;
                    }
                };
                let planned: Vec<(usize, Vec<usize>)> = plan
                    .dpus
                    .iter()
                    .enumerate()
                    .filter_map(|(d, p)| p.as_ref().map(|p| (d, p.job_ids.clone())))
                    .collect();
                let seq = self.next_seq;
                self.next_seq += 1;
                self.meta.insert(seq, (ticket, planned));
                let st = self.tickets.get_mut(&ticket).expect("ticket still open");
                st.in_flight_batches += 1;
                self.in_flight[r] += 1;
                self.total_in_flight += 1;
                self.stats.batches += 1;
                if self.total_in_flight == 1 {
                    // First batch after an idle stretch re-arms the stall
                    // deadline from now, not from the last busy period.
                    self.last_progress = Instant::now();
                    self.stall_cancelled = false;
                }
                if self.inboxes[r]
                    .send(WorkItem {
                        seq,
                        plan,
                        watchdog: None,
                    })
                    .is_err()
                {
                    // Worker exited (rank-fatal error earlier). Treat like
                    // a failed batch: requeue and mark the rank dead.
                    self.in_flight[r] -= 1;
                    self.total_in_flight -= 1;
                    let (_, planned) = self.meta.remove(&seq).expect("just inserted");
                    let st = self.tickets.get_mut(&ticket).expect("ticket still open");
                    st.in_flight_batches -= 1;
                    st.fault.rank_failures += 1;
                    if !st.cancelled {
                        for (_, ids) in &planned {
                            st.pending.extend(ids.iter().copied());
                        }
                    }
                    if self.health.mark_dead(r) {
                        let st = self.tickets.get_mut(&ticket).expect("ticket still open");
                        st.fault.dead_ranks.push(r);
                    }
                }
            }
        }
    }

    /// Pull jobs past [`RecoveryConfig::max_attempts`] out of a ticket's
    /// pending list and align them on the CPU.
    fn cpu_exhausted(&mut self, ticket: u64) {
        let max_attempts = self.rcfg.max_attempts;
        let Some(st) = self.tickets.get_mut(&ticket) else {
            return;
        };
        let (retryable, exhausted): (Vec<usize>, Vec<usize>) = std::mem::take(&mut st.pending)
            .into_iter()
            .partition(|&i| st.attempts[i] < max_attempts);
        st.pending = retryable;
        if !exhausted.is_empty() {
            self.cpu_align(ticket, &exhausted);
        }
    }

    /// Resolve `ids` of a ticket with the kernel-identical CPU aligner
    /// (same results a healthy DPU would produce).
    fn cpu_align(&mut self, ticket: u64, ids: &[usize]) {
        let params = self.params;
        let threads = self.rcfg.cpu_threads.max(1);
        let Some(st) = self.tickets.get_mut(&ticket) else {
            return;
        };
        if ids.is_empty() {
            return;
        }
        st.fault.cpu_fallbacks += ids.len();
        let aligner = AdaptiveAligner::new(params.scheme, params.band);
        let pairs: Vec<(DnaSeq, DnaSeq)> = ids
            .iter()
            .map(|&i| (st.jobs[i].0.unpack(), st.jobs[i].1.unpack()))
            .collect();
        let resolved: Vec<JobResult> = if params.score_only {
            let (results, _) = run_batch(threads, &pairs, |a, b| aligner.score(a, b));
            results
                .into_iter()
                .map(|r| {
                    cpu_result(r, |score| JobResult {
                        status: JobStatus::Ok,
                        score,
                        cigar: Cigar::new(),
                    })
                })
                .collect()
        } else {
            let (results, _) = run_batch(threads, &pairs, |a, b| aligner.align(a, b));
            results
                .into_iter()
                .map(|r| {
                    cpu_result(r, |aln| JobResult {
                        status: JobStatus::Ok,
                        score: aln.score,
                        cigar: aln.cigar,
                    })
                })
                .collect()
        };
        for (&i, jr) in ids.iter().zip(resolved) {
            if st.results[i].is_none() {
                st.remaining -= 1;
            }
            st.results[i] = Some(jr);
        }
    }

    /// Fold one completed batch back into its ticket.
    fn absorb(&mut self, batch: BatchDone, completed: &mut Vec<TicketDone>) {
        let r = batch.rank;
        self.in_flight[r] -= 1;
        self.total_in_flight -= 1;
        self.last_progress = Instant::now();
        self.stall_cancelled = false;
        self.pool.put(batch.spent);
        let Some((ticket, planned)) = self.meta.remove(&batch.seq) else {
            return;
        };
        let audit_on = self.rcfg.audit;
        let host_bw = self.host_bw;
        let scheme = self.params.scheme;
        let dpus_per_rank = self.dpus_per_rank;
        let st = self.tickets.get_mut(&ticket).expect("in-flight ticket");
        st.in_flight_batches -= 1;
        match batch.outcome {
            Err(_) => {
                // Rank-fatal: worker panics and launch-layer errors alike.
                // A daemon cannot abort on them — record the failure, mark
                // the rank dead, requeue the batch's jobs for the
                // survivors (or the CPU).
                st.fault.rank_failures += 1;
                if !st.cancelled {
                    for (_, ids) in &planned {
                        st.pending.extend(ids.iter().copied());
                    }
                    if !st.queued {
                        st.queued = true;
                        self.queue.push_back(ticket);
                    }
                }
                if self.health.mark_dead(r) {
                    let st = self.tickets.get_mut(&ticket).expect("in-flight ticket");
                    st.fault.dead_ranks.push(r);
                }
            }
            Ok(raw) => {
                let mut exec: RankExec = {
                    let jobs = &st.jobs;
                    let audit_fn = |i: usize, jr: &JobResult| audit_ok(&jobs[i], jr, &scheme);
                    let audit: Option<AuditFn> = if audit_on { Some(&audit_fn) } else { None };
                    decode_raw_exec_audited(raw, host_bw, audit)
                };
                st.fault.silent_corruptions += exec.silent_corruptions as usize;
                st.fault.audit_checked += exec.audit_checked as usize;
                st.fault.audit_failures += exec.audit_failures as usize;
                if exec.cancelled {
                    st.fault.deadline_cancellations += 1;
                }
                let mut requeue: Vec<usize> = Vec::new();
                note_exec_faults(
                    &mut exec,
                    r,
                    dpus_per_rank,
                    &planned,
                    &mut self.health,
                    &mut st.fault,
                    &mut requeue,
                );
                if st.cancelled {
                    // Late batch of a reaped ticket: drop its results and
                    // requeues — completion fills the still-empty slots
                    // with `Cancelled` and counts each exactly once.
                    drop(requeue);
                } else {
                    for (i, jr) in exec.results {
                        if st.results[i].is_none() {
                            st.remaining -= 1;
                        }
                        st.results[i] = Some(jr);
                    }
                    if !requeue.is_empty() {
                        st.pending.extend(requeue);
                        if !st.queued {
                            st.queued = true;
                            self.queue.push_back(ticket);
                        }
                    }
                }
            }
        }
        self.maybe_complete(ticket, completed);
    }

    /// Emit the ticket if every slot resolved and nothing is in flight.
    fn maybe_complete(&mut self, ticket: u64, completed: &mut Vec<TicketDone>) {
        let Some(st) = self.tickets.get(&ticket) else {
            return;
        };
        if st.in_flight_batches > 0 || !st.pending.is_empty() {
            return;
        }
        if st.remaining > 0 && !st.cancelled {
            return;
        }
        let mut st = self.tickets.remove(&ticket).expect("checked above");
        let missing = st.results.iter().filter(|s| s.is_none()).count();
        st.fault.interrupted_jobs += missing;
        let results: Vec<JobResult> = st
            .results
            .drain(..)
            .map(|slot| slot.unwrap_or_else(cancelled_result))
            .collect();
        self.stats.tickets_done += 1;
        self.stats.jobs_done += results.len();
        completed.push(TicketDone {
            ticket,
            results,
            fault: st.fault,
            cancelled: st.cancelled,
        });
    }
}

fn cancelled_result() -> JobResult {
    JobResult {
        status: JobStatus::Cancelled,
        score: 0,
        cigar: Cigar::new(),
    }
}

/// Spawn persistent rank workers over `server`'s ranks, hand `f` the
/// [`EngineCtl`] to drive them, and tear the workers down when `f`
/// returns. The closure is the daemon's whole lifetime: accept loop,
/// admission, drain — everything happens inside it.
///
/// The watchdog budget, fault plan, and rank/DPU geometry come from the
/// server's configuration; retry/quarantine/audit policy and the stall
/// deadline come from `rcfg`.
pub fn with_persistent_engine<R>(
    server: &mut PimServer,
    kernel: &NwKernel,
    params: KernelParams,
    rcfg: &RecoveryConfig,
    fifo_depth: usize,
    sim_threads: usize,
    f: impl FnOnce(&mut EngineCtl) -> R,
) -> R {
    assert!(rcfg.max_attempts >= 1, "max_attempts must be >= 1");
    let n_ranks = server.rank_count();
    let dpus_per_rank = server.cfg().dpus_per_rank;
    let mram = server.cfg().dpu.mram_size;
    let host_bw = server.cfg().host_bandwidth;
    let freq = server.cfg().dpu.freq_hz;
    let pools = kernel.pool_cfg.pools;
    let depth = fifo_depth.max(1);
    let pool_threads = crate::dispatch::rank_pool(sim_threads, n_ranks);

    let enabled: Vec<Vec<bool>> = (0..n_ranks)
        .map(|r| {
            let rank = server.rank(r).expect("rank index in range");
            (0..dpus_per_rank).map(|d| rank.dpu_enabled(d)).collect()
        })
        .collect();

    let ranks = server.ranks_mut();
    let tokens: Vec<_> = ranks.iter().map(|rank| rank.cancel_token()).collect();
    let (done_tx, done_rx) = channel::<BatchDone>();
    std::thread::scope(|scope| {
        let mut inboxes = Vec::with_capacity(n_ranks);
        for (r, rank) in ranks.iter_mut().enumerate() {
            let (tx, rx) = sync_channel::<WorkItem>(depth);
            let done = done_tx.clone();
            scope.spawn(move || worker_loop(r, rank, kernel, freq, pool_threads, rx, done));
            inboxes.push(tx);
        }
        drop(done_tx);

        let mut ctl = EngineCtl {
            params,
            pools,
            mram,
            dpus_per_rank,
            host_bw,
            rcfg: rcfg.clone(),
            depth,
            inboxes,
            done_rx,
            tokens,
            enabled,
            health: HealthTracker::new(n_ranks, dpus_per_rank, rcfg.quarantine_after),
            pool: BufferPool::default(),
            in_flight: vec![0; n_ranks],
            total_in_flight: 0,
            next_seq: 0,
            next_ticket: 0,
            tickets: HashMap::new(),
            queue: VecDeque::new(),
            meta: HashMap::new(),
            last_progress: Instant::now(),
            stall_cancelled: false,
            workers_gone: false,
            stats: EngineStats::default(),
        };
        let result = f(&mut ctl);
        // Shutdown: break any still-hung launches, close the FIFOs so the
        // workers drain to Disconnected and exit, and swallow whatever they
        // were still sending — the scope join collects the threads.
        ctl.cancel_ranks();
        drop(ctl.inboxes);
        for _ in ctl.done_rx.iter() {}
        result
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deadline::DeadlinePolicy;
    use dpu_kernel::{KernelVariant, PoolConfig};
    use nw_core::ScoringScheme;
    use pim_sim::{FaultPlan, ServerConfig};

    fn params() -> KernelParams {
        KernelParams {
            band: 16,
            scheme: ScoringScheme::default(),
            score_only: false,
        }
    }

    fn kernel() -> NwKernel {
        NwKernel::new(
            PoolConfig {
                pools: 2,
                tasklets: 4,
            },
            KernelVariant::Asm,
        )
    }

    fn server_with(fault: FaultPlan, ranks: usize, dpus: usize, watchdog: u64) -> PimServer {
        let mut cfg = ServerConfig::with_ranks(ranks);
        cfg.dpus_per_rank = dpus;
        cfg.fault = fault;
        cfg.dpu.watchdog_cycles = watchdog;
        PimServer::new(cfg)
    }

    fn packed(n: usize, salt: usize) -> Vec<(PackedSeq, PackedSeq)> {
        (0..n)
            .map(|k| {
                let a = "ACGTGGTCAT".repeat(3 + (k + salt) % 3);
                let mut b = a.clone();
                b.insert_str(3 + (k + salt) % 5, "TG");
                (
                    DnaSeq::from_ascii(a.as_bytes()).unwrap().pack(),
                    DnaSeq::from_ascii(b.as_bytes()).unwrap().pack(),
                )
            })
            .collect()
    }

    fn reference(jobs: &[(PackedSeq, PackedSeq)]) -> Vec<JobResult> {
        let p = params();
        let aligner = AdaptiveAligner::new(p.scheme, p.band);
        jobs.iter()
            .map(|(a, b)| {
                let aln = aligner.align(&a.unpack(), &b.unpack()).unwrap();
                JobResult {
                    status: JobStatus::Ok,
                    score: aln.score,
                    cigar: aln.cigar,
                }
            })
            .collect()
    }

    fn drive_until(
        ctl: &mut EngineCtl,
        mut until: impl FnMut(&EngineCtl) -> bool,
    ) -> Vec<TicketDone> {
        let mut all = Vec::new();
        for _ in 0..2000 {
            all.extend(ctl.pump(Duration::from_millis(20)));
            if until(ctl) {
                return all;
            }
        }
        panic!("engine did not settle");
    }

    #[test]
    fn tickets_resolve_across_many_submissions() {
        let kernel = kernel();
        let mut server = server_with(FaultPlan::default(), 2, 3, 0);
        with_persistent_engine(
            &mut server,
            &kernel,
            params(),
            &RecoveryConfig::default(),
            2,
            0,
            |ctl| {
                let mut expected = HashMap::new();
                for wave in 0..3 {
                    let jobs = packed(5 + wave, wave);
                    let want = reference(&jobs);
                    let t = ctl.submit(jobs);
                    expected.insert(t, want);
                }
                let done = drive_until(ctl, |c| c.idle());
                assert_eq!(done.len(), 3);
                for td in done {
                    assert!(!td.cancelled);
                    assert!(td.fault.is_clean(), "{}", td.fault.summary());
                    assert_eq!(td.results, expected[&td.ticket]);
                }
                assert_eq!(ctl.stats().tickets_done, 3);
                assert_eq!(ctl.stats().jobs_done, 5 + 6 + 7);
            },
        );
    }

    #[test]
    fn empty_ticket_resolves_on_next_pump() {
        let kernel = kernel();
        let mut server = server_with(FaultPlan::default(), 1, 2, 0);
        with_persistent_engine(
            &mut server,
            &kernel,
            params(),
            &RecoveryConfig::default(),
            1,
            0,
            |ctl| {
                let t = ctl.submit(Vec::new());
                let done = drive_until(ctl, |c| c.idle());
                assert_eq!(done.len(), 1);
                assert_eq!(done[0].ticket, t);
                assert!(done[0].results.is_empty());
            },
        );
    }

    #[test]
    fn faults_retry_and_fall_back_without_stopping_the_engine() {
        let kernel = kernel();
        let fault = FaultPlan {
            seed: 7,
            dpu_fault_rate: 1.0,
            ..Default::default()
        };
        let mut server = server_with(fault, 1, 2, 0);
        let rcfg = RecoveryConfig {
            max_attempts: 2,
            quarantine_after: 2,
            cpu_threads: 2,
            ..Default::default()
        };
        with_persistent_engine(&mut server, &kernel, params(), &rcfg, 2, 0, |ctl| {
            let jobs = packed(6, 0);
            let want = reference(&jobs);
            let t = ctl.submit(jobs);
            let done = drive_until(ctl, |c| c.idle());
            assert_eq!(done.len(), 1);
            let td = &done[0];
            assert_eq!(td.ticket, t);
            assert_eq!(td.results, want, "{}", td.fault.summary());
            assert!(td.fault.cpu_fallbacks > 0, "{}", td.fault.summary());
            assert!(td.fault.dpu_faults > 0);
        });
    }

    #[test]
    fn quarantine_persists_across_tickets() {
        let kernel = kernel();
        let fault = FaultPlan {
            seed: 3,
            dpu_fault_rate: 1.0,
            ..Default::default()
        };
        let mut server = server_with(fault, 1, 2, 0);
        let rcfg = RecoveryConfig {
            max_attempts: 3,
            quarantine_after: 1,
            cpu_threads: 1,
            ..Default::default()
        };
        with_persistent_engine(&mut server, &kernel, params(), &rcfg, 1, 0, |ctl| {
            let first = ctl.submit(packed(4, 0));
            let done = drive_until(ctl, |c| c.idle());
            let td = done.iter().find(|d| d.ticket == first).unwrap();
            assert!(
                !td.fault.quarantined.is_empty(),
                "always-faulting DPUs must quarantine: {}",
                td.fault.summary()
            );
            // Second ticket: every DPU is already quarantined, so the CPU
            // takes it directly — no new faults, no new quarantines.
            let jobs = packed(4, 1);
            let want = reference(&jobs);
            let second = ctl.submit(jobs);
            let done = drive_until(ctl, |c| c.idle());
            let td = done.iter().find(|d| d.ticket == second).unwrap();
            assert_eq!(td.results, want);
            assert_eq!(td.fault.dpu_faults, 0, "{}", td.fault.summary());
            assert!(td.fault.quarantined.is_empty());
            assert_eq!(td.fault.cpu_fallbacks, 4);
        });
    }

    #[test]
    fn cancel_resolves_unstarted_jobs_as_cancelled() {
        let kernel = kernel();
        let mut server = server_with(FaultPlan::default(), 1, 2, 0);
        with_persistent_engine(
            &mut server,
            &kernel,
            params(),
            &RecoveryConfig::default(),
            1,
            0,
            |ctl| {
                // Cancel before any pump: nothing is in flight, so every
                // slot resolves as Cancelled immediately.
                let t = ctl.submit(packed(5, 0));
                ctl.cancel(t);
                let done = drive_until(ctl, |c| c.idle());
                assert_eq!(done.len(), 1);
                let td = &done[0];
                assert_eq!(td.ticket, t);
                assert!(td.cancelled);
                assert_eq!(td.fault.interrupted_jobs, 5, "{}", td.fault.summary());
                assert!(td.results.iter().all(|r| r.status == JobStatus::Cancelled));
            },
        );
    }

    #[test]
    fn audit_catches_silent_corruption_in_steady_state() {
        let kernel = kernel();
        let fault = FaultPlan {
            seed: 5,
            silent_corrupt_rate: 0.5,
            ..Default::default()
        };
        let mut server = server_with(fault, 2, 3, 0);
        let rcfg = RecoveryConfig {
            max_attempts: 12,
            quarantine_after: 100,
            audit: true,
            ..Default::default()
        };
        with_persistent_engine(&mut server, &kernel, params(), &rcfg, 2, 0, |ctl| {
            let mut fault_total = FaultReport::default();
            let mut all_ok = true;
            for wave in 0..3 {
                let jobs = packed(6, wave);
                let want = reference(&jobs);
                ctl.submit(jobs);
                for td in drive_until(ctl, |c| c.idle()) {
                    all_ok &= td.results == want;
                    fault_total.merge(&td.fault);
                }
            }
            assert!(all_ok, "audited results must match the reference");
            assert!(
                fault_total.silent_corruptions > 0,
                "rate 0.5 must corrupt something: {}",
                fault_total.summary()
            );
            assert!(
                fault_total.audit_failures > 0,
                "the audit must catch the mutated CIGARs: {}",
                fault_total.summary()
            );
        });
    }

    #[test]
    fn hung_launches_are_reaped_by_the_stall_deadline() {
        let kernel = kernel();
        let fault = FaultPlan {
            seed: 3,
            hang_rate: 1.0,
            ..Default::default()
        };
        // Watchdog off: only the stall deadline can reap the hang.
        let mut server = server_with(fault, 1, 2, 0);
        let rcfg = RecoveryConfig {
            max_attempts: 2,
            quarantine_after: 1,
            cpu_threads: 1,
            deadline: DeadlinePolicy::after_seconds(0.1),
            ..Default::default()
        };
        with_persistent_engine(&mut server, &kernel, params(), &rcfg, 2, 0, |ctl| {
            let jobs = packed(4, 0);
            let want = reference(&jobs);
            ctl.submit(jobs);
            let done = drive_until(ctl, |c| c.idle());
            assert_eq!(done.len(), 1);
            let td = &done[0];
            assert_eq!(td.results, want, "{}", td.fault.summary());
            assert!(
                td.fault.deadline_cancellations > 0,
                "{}",
                td.fault.summary()
            );
            assert_eq!(td.fault.cpu_fallbacks, 4, "{}", td.fault.summary());
        });
    }
}
