//! Batch planning, the rank FIFO, and launch execution (§4.1).
//!
//! The host's main loop — "dispatch batches of pairs of sequences to the
//! DPUs, launch, wait, collect" — becomes:
//!
//! 1. **Plan**: jobs are grouped into `rounds × ranks` batches; within a
//!    batch the LPT heuristic spreads jobs over the rank's 64 DPUs; each
//!    DPU gets a serialized MRAM image.
//! 2. **Execute**: per round, every rank runs in its own OS thread (ranks
//!    are independent once loaded — the SDK's rank-parallel transfer
//!    threads). Simulated time is tracked per rank: transfer-in + rank
//!    barrier + collect, accumulated round after round (the FIFO of
//!    §4.1.2).
//! 3. **Collect**: results come back tagged with the caller's job ids.

use crate::balance::{lpt_assign, pair_workloads};
use crate::deadline::DeadlinePolicy;
use crate::pipeline::{BufferPool, PipelineMetrics};
use crate::recovery::FaultReport;
use dpu_kernel::layout::{
    result_checksum, JobBatch, JobBatchBuilder, JobResult, KernelParams, RawResult,
    OUT_HEADER_BYTES,
};
use dpu_kernel::NwKernel;
use nw_core::seq::PackedSeq;
use pim_sim::rank::Rank;
use pim_sim::stats::AggregateStats;
use pim_sim::{PimServer, SimError};
use std::time::Instant;

/// Host-side check applied to one decoded result: `audit(job_id, result)`
/// is true when the result survives. Shared by the strict and recovering
/// drivers; see [`crate::recovery::audit_ok`] for the canonical check.
pub type AuditFn<'a> = &'a (dyn Fn(usize, &JobResult) -> bool + Sync);

/// Which dispatch engine executes the planned rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// The historical lockstep loop: every rank joins a hard barrier at
    /// the end of each round before the next may launch.
    Lockstep,
    /// Persistent per-rank workers fed through bounded FIFO channels (see
    /// [`crate::pipeline`]): each rank advances to its next batch the
    /// moment it finishes, planning and decoding overlap execution.
    Pipelined {
        /// Bounded FIFO depth per rank (batches queued ahead; >= 1).
        fifo_depth: usize,
    },
}

impl Default for Engine {
    fn default() -> Self {
        Engine::Pipelined { fifo_depth: 2 }
    }
}

/// Host configuration.
#[derive(Debug, Clone)]
pub struct DispatchConfig {
    /// The kernel to load on the DPUs.
    pub kernel: NwKernel,
    /// Launch parameters (band, scheme, score-only).
    pub params: KernelParams,
    /// Rounds: how many batches each rank processes.
    pub rounds: usize,
    /// Host-side 2-bit encode throughput, bytes of ASCII per second
    /// (measured ~2 GB/s per core on commodity hardware; the cost is
    /// "minimal", §4.1.1).
    pub encode_rate: f64,
    /// Dispatch engine (pipelined by default; both engines produce
    /// bit-identical results and simulated times).
    pub engine: Engine,
    /// Simulator thread budget shared by the per-rank workers and the
    /// intra-rank DPU pool (`0` = available parallelism). Each of the `R`
    /// concurrently-executing ranks gets `max(1, budget / R)` threads for
    /// its DPUs — results are bit-identical at any setting (see
    /// [`pim_sim::rank::Rank::launch_threads`]).
    pub sim_threads: usize,
    /// Audit every returned alignment on the host: `Cigar::validate`
    /// against the original sequences plus score recomputation. Catches
    /// payload corruption the wire checksum cannot (the checksum only
    /// protects the readback path, not the payload's truth). Counts are
    /// surfaced in the execution report's fault section.
    pub audit: bool,
}

impl DispatchConfig {
    /// Paper-like defaults for a kernel + params.
    pub fn new(kernel: NwKernel, params: KernelParams) -> Self {
        Self {
            kernel,
            params,
            rounds: 2,
            encode_rate: 2.0e9,
            engine: Engine::default(),
            sim_threads: 0,
            audit: false,
        }
    }
}

/// Resolve a requested simulator thread budget: `0` means "all available
/// cores", anything else is taken literally.
pub fn resolve_sim_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Intra-rank pool size: the resolved budget split over the ranks that
/// execute concurrently (each rank always gets at least one thread — its
/// own worker).
pub(crate) fn rank_pool(sim_threads: usize, ranks: usize) -> usize {
    (resolve_sim_threads(sim_threads) / ranks.max(1)).max(1)
}

/// A prepared per-DPU batch plus the mapping from builder order back to
/// caller job ids.
#[derive(Debug, Clone)]
pub struct DpuPlan {
    /// Caller ids, in the order jobs were added to the builder.
    pub job_ids: Vec<usize>,
    /// The built batch.
    pub batch: JobBatch,
}

/// Plans for one rank launch (one entry per DPU; `None` = idle DPU).
#[derive(Debug, Default, Clone)]
pub struct RankPlan {
    /// Per-DPU plans.
    pub dpus: Vec<Option<DpuPlan>>,
    /// Launch parameters, recorded at plan time so idle-DPU filler images
    /// can be built even when the plan is sparse.
    pub params: Option<KernelParams>,
}

impl RankPlan {
    /// Launch parameters for this plan: the recorded ones, falling back to
    /// any populated DPU's batch.
    pub fn params(&self) -> Option<KernelParams> {
        self.params
            .or_else(|| self.dpus.iter().flatten().map(|p| p.batch.params).next())
    }
}

/// Accumulated outcome of executing all rounds.
#[derive(Debug, Default)]
pub struct DispatchOutcome {
    /// `(caller id, result)` for every job.
    pub results: Vec<(usize, JobResult)>,
    /// Per-rank accumulated busy seconds (transfer + execute + collect).
    pub rank_seconds: Vec<f64>,
    /// Total modeled transfer seconds (both directions, all ranks).
    pub transfer_seconds: f64,
    /// Bytes host -> MRAM.
    pub bytes_in: u64,
    /// Bytes MRAM -> host.
    pub bytes_out: u64,
    /// Max accumulated DPU barrier seconds over ranks.
    pub dpu_seconds: f64,
    /// Merged DPU statistics.
    pub stats: AggregateStats,
    /// Mean intra-rank imbalance across launches.
    pub mean_rank_imbalance: f64,
    /// Total eq.-6 workload.
    pub workload: u64,
    /// Fault/recovery accounting (all zeros outside the recovery path).
    pub fault: FaultReport,
    /// Pipeline metrics (`None` when the lockstep engine ran).
    pub pipeline: Option<PipelineMetrics>,
}

impl DispatchOutcome {
    /// Fold one rank's round execution into the accumulated outcome.
    pub(crate) fn absorb(
        &mut self,
        exec: RankExec,
        dpu_busy: &mut [f64],
        imbalances: &mut Vec<f64>,
    ) {
        self.results.extend(exec.results);
        self.rank_seconds[exec.rank] += exec.barrier_seconds + exec.xfer_seconds;
        dpu_busy[exec.rank] += exec.barrier_seconds;
        self.transfer_seconds += exec.xfer_seconds;
        self.bytes_in += exec.bytes_in;
        self.bytes_out += exec.bytes_out;
        self.workload += exec.workload;
        self.fault.silent_corruptions += exec.silent_corruptions as usize;
        self.fault.audit_checked += exec.audit_checked as usize;
        self.fault.audit_failures += exec.audit_failures as usize;
        if exec.cancelled {
            self.fault.deadline_cancellations += 1;
        }
        if exec.stats.dpus > 0 || exec.stats.watchdog_expired > 0 {
            if exec.stats.dpus > 0 {
                imbalances.push(exec.imbalance);
            }
            merge_aggregate(&mut self.stats, &exec.stats);
        }
    }

    /// Compute the derived fields once all rounds are absorbed.
    pub(crate) fn finalize(&mut self, dpu_busy: &[f64], imbalances: &[f64]) {
        self.dpu_seconds = dpu_busy.iter().cloned().fold(0.0, f64::max);
        self.mean_rank_imbalance = if imbalances.is_empty() {
            0.0
        } else {
            imbalances.iter().sum::<f64>() / imbalances.len() as f64
        };
    }
}

/// Build a rank plan: LPT the given jobs over `dpus` DPUs.
///
/// `jobs[i]` are packed pairs; `ids[i]` the caller's job ids.
pub fn plan_rank(
    jobs: &[(PackedSeq, PackedSeq)],
    ids: &[usize],
    dpus: usize,
    params: KernelParams,
    pools: usize,
    mram_size: usize,
) -> Result<RankPlan, SimError> {
    plan_rank_into(
        jobs,
        ids,
        dpus,
        params,
        pools,
        mram_size,
        &mut BufferPool::default(),
    )
}

/// [`plan_rank`] drawing MRAM image allocations from a [`BufferPool`] — the
/// streaming planner of the pipelined engine recycles the previous rounds'
/// spent images instead of allocating fresh ones per batch.
#[allow(clippy::too_many_arguments)]
pub fn plan_rank_into(
    jobs: &[(PackedSeq, PackedSeq)],
    ids: &[usize],
    dpus: usize,
    params: KernelParams,
    pools: usize,
    mram_size: usize,
    pool: &mut BufferPool,
) -> Result<RankPlan, SimError> {
    assert_eq!(jobs.len(), ids.len());
    let workloads = pair_workloads(jobs, params.band);
    let assignment = lpt_assign(&workloads, dpus);
    let mut plans = Vec::with_capacity(dpus);
    for bin in assignment {
        if bin.is_empty() {
            plans.push(None);
            continue;
        }
        let mut builder = JobBatchBuilder::new(params, pools);
        let mut job_ids = Vec::with_capacity(bin.len());
        for &i in &bin {
            builder.add_pair(jobs[i].0.clone(), jobs[i].1.clone());
            job_ids.push(ids[i]);
        }
        plans.push(Some(DpuPlan {
            job_ids,
            batch: builder.build_with(mram_size, pool.take())?,
        }));
    }
    Ok(RankPlan {
        dpus: plans,
        params: Some(params),
    })
}

/// One DPU's failure during a tolerant round: which jobs were lost, why,
/// and how many DPU cycles the failed attempt burned.
#[derive(Debug, Clone)]
pub struct DpuFailure {
    /// Rank of the failed DPU.
    pub rank: usize,
    /// DPU index within the rank.
    pub dpu: usize,
    /// Caller ids of the jobs that produced no usable result.
    pub job_ids: Vec<usize>,
    /// What went wrong.
    pub error: SimError,
    /// Cycles the DPU spent before the failure was detected (0 when it
    /// never ran).
    pub wasted_cycles: u64,
}

/// One rank's execution record for one round.
#[derive(Debug, Default)]
pub struct RankExec {
    /// Which rank.
    pub rank: usize,
    /// `(caller id, result)` for every job that completed and verified.
    pub results: Vec<(usize, JobResult)>,
    /// Per-DPU failures (empty on a clean round).
    pub failures: Vec<DpuFailure>,
    /// Simulated rank barrier time this round.
    pub barrier_seconds: f64,
    /// Simulated transfer time this round (both directions).
    pub xfer_seconds: f64,
    /// Bytes host -> MRAM.
    pub bytes_in: u64,
    /// Bytes MRAM -> host.
    pub bytes_out: u64,
    /// Aggregated DPU statistics.
    pub stats: AggregateStats,
    /// Intra-rank imbalance of this launch.
    pub imbalance: f64,
    /// Eq.-6 workload dispatched to this rank.
    pub workload: u64,
    /// Silent result corruptions applied to this rank's readback (fault
    /// injection; payload mutated, checksum recomputed — only the host
    /// audit can catch these).
    pub silent_corruptions: u64,
    /// True when the host's deadline watcher cancelled this launch.
    pub cancelled: bool,
    /// Results put through the host audit this round.
    pub audit_checked: u64,
    /// Results the audit rejected (requeued as failures).
    pub audit_failures: u64,
}

/// One DPU's undecoded readback: raw result records pulled off MRAM on the
/// rank worker thread, decoded later on the driver thread so CIGAR/checksum
/// work overlaps the next launch.
#[derive(Debug)]
pub(crate) struct RawDpuOut {
    /// DPU index within the rank.
    pub(crate) dpu: usize,
    /// Caller ids, in batch order.
    pub(crate) job_ids: Vec<usize>,
    /// One raw record per job.
    pub(crate) raw: Vec<RawResult>,
    /// DPU cycles this launch — charged as wasted if decode fails.
    pub(crate) cycles: u64,
}

/// One rank's execution record before decode: everything [`RankExec`] holds
/// except decoded results, out-bytes, and transfer time (those depend on
/// decode success, which happens on the driver thread).
#[derive(Debug, Default)]
pub(crate) struct RawRankExec {
    pub(crate) rank: usize,
    pub(crate) outs: Vec<RawDpuOut>,
    pub(crate) failures: Vec<DpuFailure>,
    pub(crate) barrier_seconds: f64,
    pub(crate) bytes_in: u64,
    pub(crate) stats: AggregateStats,
    pub(crate) imbalance: f64,
    pub(crate) workload: u64,
    pub(crate) silent_corruptions: u64,
    pub(crate) cancelled: bool,
}

/// One rank's round: transfer in, launch, raw collect. Always
/// fault-*recording* — launch or raw-readback problems on individual DPUs
/// land in `failures` instead of aborting the rank; whole-rank errors (dead
/// rank, kernel bug) still return `Err`.
///
/// `filler_cache` persists the idle-DPU filler image across batches (it
/// depends only on the params); `spent` receives the plan's MRAM image
/// buffers after upload so the planner can recycle them. `threads` is the
/// intra-rank pool size for this launch ([`Rank::launch_threads`]).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_rank_raw(
    rank: &mut Rank,
    kernel: &NwKernel,
    r: usize,
    mut plan: RankPlan,
    freq: f64,
    threads: usize,
    filler_cache: &mut Option<JobBatch>,
    spent: &mut Vec<Vec<u8>>,
) -> Result<RawRankExec, SimError> {
    let mut exec = RawRankExec {
        rank: r,
        ..Default::default()
    };
    let mut skip = vec![false; plan.dpus.len()];
    let mut active = false;
    for (d, dpu_plan) in plan.dpus.iter_mut().enumerate() {
        if let Some(p) = dpu_plan {
            if !rank.dpu_enabled(d) {
                skip[d] = true;
                exec.failures.push(DpuFailure {
                    rank: r,
                    dpu: d,
                    job_ids: std::mem::take(&mut p.job_ids),
                    error: SimError::DpuFaulted { rank: r, dpu: d },
                    wasted_cycles: 0,
                });
                spent.push(std::mem::take(&mut p.batch.image));
                continue;
            }
            rank.dpu_mut(d)?.mram.host_write(0, &p.batch.image)?;
            // transfer_bytes reads the image length — count before reclaim.
            exec.bytes_in += p.batch.transfer_bytes();
            exec.workload += p.batch.workload;
            spent.push(std::mem::take(&mut p.batch.image));
            active = true;
        }
    }
    if !active {
        return Ok(exec);
    }
    // Idle DPUs of an active rank still get a valid (empty) image: the
    // launch is rank-granular (§2.1), so every DPU boots the kernel. One
    // image serves them all — the empty batch depends only on the params —
    // and is cached across batches of the same run.
    let params = plan.params().expect("active plan has params");
    for (d, dpu_plan) in plan.dpus.iter().enumerate() {
        if dpu_plan.is_some() || !rank.dpu_enabled(d) {
            continue;
        }
        if filler_cache.as_ref().is_none_or(|f| f.params != params) {
            *filler_cache = Some(JobBatchBuilder::new(params, 1).build(rank.dpu(d)?.mram.size())?);
        }
        let batch = filler_cache.as_ref().expect("just built");
        rank.dpu_mut(d)?.mram.host_write(0, &batch.image)?;
        exec.bytes_in += batch.transfer_bytes();
    }
    let run = rank.launch_threads(kernel, threads)?;
    for &d in &run.faulted {
        skip[d] = true;
        if let Some(p) = &mut plan.dpus[d] {
            exec.failures.push(DpuFailure {
                rank: r,
                dpu: d,
                job_ids: std::mem::take(&mut p.job_ids),
                error: SimError::DpuFaulted { rank: r, dpu: d },
                wasted_cycles: 0,
            });
        }
    }
    // A kernel error on one DPU no longer aborts the rank (see
    // [`pim_sim::rank::RankRun::errors`]): record it as that DPU's failure
    // — the other DPUs' results and stats survive the round.
    for (d, e) in run.errors {
        skip[d] = true;
        let job_ids = plan.dpus[d]
            .as_mut()
            .map(|p| std::mem::take(&mut p.job_ids))
            .unwrap_or_default();
        exec.failures.push(DpuFailure {
            rank: r,
            dpu: d,
            job_ids,
            error: e,
            wasted_cycles: rank.dpu(d).map(|dpu| dpu.stats.cycles).unwrap_or(0),
        });
    }
    exec.cancelled = run.cancelled;
    // Injected silent corruption: mutate one CIGAR run of one result record
    // and recompute the wire checksum, exactly as a DPU that *computed*
    // wrong data would have written it. `Mram::patch` leaves the independent
    // readback bit-flip fault model (armed corruption) undisturbed. Only
    // the host-side audit can catch these.
    for &(d, seed) in &run.silent_corrupt {
        if skip[d] {
            continue;
        }
        let Some(p) = &plan.dpus[d] else { continue };
        if p.batch.out_offsets.is_empty() {
            continue;
        }
        let (off, _) = p.batch.out_offsets[seed as usize % p.batch.out_offsets.len()];
        let mram = &mut rank.dpu_mut(d)?.mram;
        let head = mram.read_raw(off, OUT_HEADER_BYTES)?;
        let word = |i: usize| u32::from_le_bytes(head[i..i + 4].try_into().unwrap());
        let (status, score, runs) = (word(4), word(8), word(12) as usize);
        if runs == 0 {
            // Failed or score-only record: no CIGAR payload to corrupt.
            continue;
        }
        let mut words: Vec<u32> = mram
            .read_raw(off + OUT_HEADER_BYTES, runs * 4)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let victim = (seed >> 8) as usize % runs;
        // Flip the op's low bit: `=`<->`X`, `I`<->`D`. Still a structurally
        // valid CIGAR — decode succeeds, only validation against the
        // sequences (or score recomputation) can tell it is wrong.
        words[victim] ^= 1;
        mram.patch(
            off + OUT_HEADER_BYTES + 4 * victim,
            &words[victim].to_le_bytes(),
        )?;
        mram.patch(
            off + 0x10,
            &result_checksum(status, score, &words).to_le_bytes(),
        )?;
        exec.silent_corruptions += 1;
    }
    for (d, dpu_plan) in plan.dpus.iter_mut().enumerate() {
        let Some(p) = dpu_plan else { continue };
        if skip[d] {
            continue;
        }
        let dpu = rank.dpu(d)?;
        match p.batch.read_raw_results(&dpu.mram) {
            Ok(raw) => exec.outs.push(RawDpuOut {
                dpu: d,
                job_ids: std::mem::take(&mut p.job_ids),
                raw,
                cycles: dpu.stats.cycles,
            }),
            Err(e) => exec.failures.push(DpuFailure {
                rank: r,
                dpu: d,
                job_ids: std::mem::take(&mut p.job_ids),
                error: e,
                wasted_cycles: dpu.stats.cycles,
            }),
        }
    }
    exec.barrier_seconds = run.barrier_cycles as f64 / freq;
    exec.imbalance = run.stats.imbalance();
    exec.stats = run.stats;
    Ok(exec)
}

/// Decode a raw rank execution into a [`RankExec`] (driver-thread half).
///
/// A decode failure on any job of a DPU fails the whole DPU — its jobs are
/// retried together and none of its bytes count as collected, matching the
/// lockstep path's all-or-nothing `read_results`.
pub(crate) fn decode_raw_exec(raw: RawRankExec, host_bw: f64) -> RankExec {
    decode_raw_exec_audited(raw, host_bw, None)
}

/// [`decode_raw_exec`] with an optional host-side result audit. Jobs the
/// audit rejects become a [`DpuFailure`] of their DPU (error
/// [`SimError::ResultCorrupt`] with an `audit:` detail) so they ride the
/// same recovery ladder as launch faults — retry, quarantine, CPU fallback
/// — while the DPU's surviving jobs are kept.
pub(crate) fn decode_raw_exec_audited(
    raw: RawRankExec,
    host_bw: f64,
    audit: Option<AuditFn>,
) -> RankExec {
    let mut exec = RankExec {
        rank: raw.rank,
        failures: raw.failures,
        barrier_seconds: raw.barrier_seconds,
        bytes_in: raw.bytes_in,
        stats: raw.stats,
        imbalance: raw.imbalance,
        workload: raw.workload,
        silent_corruptions: raw.silent_corruptions,
        cancelled: raw.cancelled,
        ..Default::default()
    };
    for out in raw.outs {
        let mut decoded = Vec::with_capacity(out.raw.len());
        let mut bytes = 0u64;
        let mut err = None;
        for rr in &out.raw {
            match rr.decode() {
                Ok(jr) => {
                    bytes += rr.byte_len();
                    decoded.push(jr);
                }
                Err(e) => {
                    err = Some(e);
                    break;
                }
            }
        }
        match err {
            None => {
                exec.bytes_out += bytes;
                let Some(check) = audit else {
                    exec.results.extend(out.job_ids.into_iter().zip(decoded));
                    continue;
                };
                let mut rejected: Vec<usize> = Vec::new();
                let mut bad_offset = 0usize;
                for (j, (&id, jr)) in out.job_ids.iter().zip(&decoded).enumerate() {
                    exec.audit_checked += 1;
                    if !check(id, jr) {
                        exec.audit_failures += 1;
                        bad_offset = out.raw[j].offset;
                        rejected.push(j);
                    }
                }
                if rejected.is_empty() {
                    exec.results.extend(out.job_ids.into_iter().zip(decoded));
                } else {
                    let mut bad_ids = Vec::with_capacity(rejected.len());
                    for (j, (id, jr)) in out.job_ids.into_iter().zip(decoded).enumerate() {
                        if rejected.contains(&j) {
                            bad_ids.push(id);
                        } else {
                            exec.results.push((id, jr));
                        }
                    }
                    exec.failures.push(DpuFailure {
                        rank: raw.rank,
                        dpu: out.dpu,
                        job_ids: bad_ids,
                        error: SimError::ResultCorrupt {
                            offset: bad_offset,
                            detail: "audit: CIGAR disagrees with its sequences or score",
                        },
                        wasted_cycles: out.cycles,
                    });
                }
            }
            Some(e) => exec.failures.push(DpuFailure {
                rank: raw.rank,
                dpu: out.dpu,
                job_ids: out.job_ids,
                error: e,
                wasted_cycles: out.cycles,
            }),
        }
    }
    exec.xfer_seconds = (exec.bytes_in + exec.bytes_out) as f64 / host_bw;
    exec
}

/// One rank's round, raw-collect and decode fused (the lockstep path).
#[allow(clippy::too_many_arguments)]
fn exec_rank(
    rank: &mut Rank,
    kernel: &NwKernel,
    r: usize,
    plan: RankPlan,
    host_bw: f64,
    freq: f64,
    threads: usize,
    audit: Option<AuditFn>,
) -> Result<RankExec, SimError> {
    let mut filler = None;
    let mut spent = Vec::new();
    let raw = exec_rank_raw(
        rank,
        kernel,
        r,
        plan,
        freq,
        threads,
        &mut filler,
        &mut spent,
    )?;
    Ok(decode_raw_exec_audited(raw, host_bw, audit))
}

pub(crate) fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("rank worker panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("rank worker panicked: {s}")
    } else {
        "rank worker panicked".into()
    }
}

/// Run one round — one plan per rank — on per-rank OS threads.
///
/// `tolerant = false` (the strict path of [`execute_rounds`]) converts any
/// per-DPU failure into that rank's `Err`; `tolerant = true` (the recovery
/// path) returns them in [`RankExec::failures`] so the caller can retry.
/// A panicking rank worker is caught and surfaced as
/// [`SimError::RankFailed`] either way — a stuck rank must not take the
/// whole host down.
///
/// `sim_threads` is the total simulator thread budget (`0` = available
/// parallelism), divided evenly over the ranks for their intra-rank pools.
///
/// An enabled `deadline` arms a wall-clock watchdog over the whole round:
/// if any rank worker is still running that long after launch, every
/// still-running rank's cancel token is set ([`Rank::cancel_token`]) —
/// injected hangs and straggler holds break out of their waits, the launch
/// returns with [`pim_sim::SimError::WatchdogExpired`] failures for the
/// hung DPUs, and the driver still joins every worker (no wedge, no
/// detached threads). `audit` is applied to every decoded result (see
/// [`decode_raw_exec_audited`]).
pub fn run_round(
    server: &mut PimServer,
    kernel: &NwKernel,
    round: Vec<RankPlan>,
    tolerant: bool,
    sim_threads: usize,
    deadline: DeadlinePolicy,
    audit: Option<AuditFn>,
) -> Vec<Result<RankExec, SimError>> {
    let n_ranks = server.rank_count();
    assert_eq!(round.len(), n_ranks, "one plan per rank per round");
    let host_bw = server.cfg().host_bandwidth;
    let freq = server.cfg().dpu.freq_hz;
    let pool = rank_pool(sim_threads, n_ranks);
    let ranks = server.ranks_mut();
    let tokens: Vec<_> = ranks.iter().map(|rank| rank.cancel_token()).collect();
    let outcomes: Vec<Result<RankExec, SimError>> = std::thread::scope(|scope| {
        let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();
        let mut handles = Vec::with_capacity(n_ranks);
        for (r, (rank, plan)) in ranks.iter_mut().zip(round).enumerate() {
            let done = done_tx.clone();
            handles.push(scope.spawn(move || {
                let exec = exec_rank(rank, kernel, r, plan, host_bw, freq, pool, audit);
                let _ = done.send(r);
                exec
            }));
        }
        drop(done_tx);
        // Watcher: poll for completions so both the wall-clock deadline and
        // a host interrupt (Ctrl-C) can cancel in-flight launches. Finished
        // ranks ignore the token (it is cleared at the next launch's
        // entry); hung ones break out of their waits.
        let poll = std::time::Duration::from_millis(25);
        let hard = deadline.timeout().map(|budget| Instant::now() + budget);
        let mut live = n_ranks;
        while live > 0 {
            let wait = match hard {
                Some(d) => d.saturating_duration_since(Instant::now()).min(poll),
                None => poll,
            };
            match done_rx.recv_timeout(wait) {
                Ok(_) => live -= 1,
                Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                    let overdue = hard.is_some_and(|d| Instant::now() >= d);
                    if overdue || crate::interrupt::requested() {
                        for t in &tokens {
                            t.store(true, std::sync::atomic::Ordering::Relaxed);
                        }
                        break;
                    }
                }
                Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
        handles
            .into_iter()
            .enumerate()
            .map(|(r, h)| {
                h.join().unwrap_or_else(|payload| {
                    Err(SimError::RankFailed {
                        rank: r,
                        reason: panic_reason(payload),
                    })
                })
            })
            .collect()
    });
    if tolerant {
        return outcomes;
    }
    outcomes
        .into_iter()
        .map(|oc| {
            oc.and_then(|exec| match exec.failures.first() {
                Some(f) => Err(f.error.clone()),
                None => Ok(exec),
            })
        })
        .collect()
}

/// Execute rounds of rank plans. `rounds[k][r]` is rank `r`'s batch in
/// round `k`. Ranks run on real threads; the simulated clock per rank is
/// the sum of its rounds' transfer + barrier + collect times.
///
/// This is the strict path: the first fault anywhere aborts with its typed
/// error. [`crate::recovery::execute_jobs_recovering`] is the tolerant
/// counterpart.
pub fn execute_rounds(
    server: &mut PimServer,
    kernel: &NwKernel,
    rounds: Vec<Vec<RankPlan>>,
    sim_threads: usize,
) -> Result<DispatchOutcome, SimError> {
    let (out, err) = execute_rounds_partial(server, kernel, rounds, sim_threads);
    match err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

/// [`execute_rounds`], but the partial outcome survives an error: every
/// rank execution that completed cleanly — including the healthy ranks of
/// the failing round — is absorbed before the first error is reported.
/// Callers that only care about success keep using [`execute_rounds`]; the
/// partial form exists so a mid-flight fault doesn't throw away the stats
/// and results of work that already finished.
pub fn execute_rounds_partial(
    server: &mut PimServer,
    kernel: &NwKernel,
    rounds: Vec<Vec<RankPlan>>,
    sim_threads: usize,
) -> (DispatchOutcome, Option<SimError>) {
    let n_ranks = server.rank_count();
    let mut out = DispatchOutcome {
        rank_seconds: vec![0.0; n_ranks],
        ..Default::default()
    };
    let mut dpu_busy = vec![0.0f64; n_ranks];
    let mut imbalances: Vec<f64> = Vec::new();
    let mut first_err = None;
    'rounds: for round in rounds {
        if crate::interrupt::requested() {
            first_err = Some(SimError::Interrupted);
            break 'rounds;
        }
        for oc in run_round(
            server,
            kernel,
            round,
            false,
            sim_threads,
            DeadlinePolicy::off(),
            None,
        ) {
            match oc {
                Ok(exec) => out.absorb(exec, &mut dpu_busy, &mut imbalances),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if crate::interrupt::requested() {
            // An interrupt mid-round cancels launches through the rank
            // tokens; report the interrupt itself, not the watchdog noise
            // the cancellation produced.
            first_err = Some(SimError::Interrupted);
            break 'rounds;
        }
        if first_err.is_some() {
            break 'rounds;
        }
    }
    out.finalize(&dpu_busy, &imbalances);
    (out, first_err)
}

fn merge_aggregate(dst: &mut AggregateStats, src: &AggregateStats) {
    dst.watchdog_expired += src.watchdog_expired;
    dst.runaway_cycles += src.runaway_cycles;
    if src.dpus == 0 {
        // Every DPU of this launch was reaped: there are no successful-DPU
        // extremes to fold in, only the runaway accounting above.
        return;
    }
    dst.total.merge(&src.total);
    if dst.dpus == 0 {
        dst.min_cycles = src.min_cycles;
        dst.max_cycles = src.max_cycles;
    } else {
        dst.min_cycles = dst.min_cycles.min(src.min_cycles);
        dst.max_cycles = dst.max_cycles.max(src.max_cycles);
    }
    dst.dpus += src.dpus;
}

/// Group job indices into `groups` balanced batches: sort by workload
/// descending, deal in serpentine (boustrophedon) order so every batch
/// gets a comparable mix — what "distributed equally in N batches" needs.
///
/// "Balanced" means balanced in *eq.-6 workload units* — the same
/// `(m + n) × w` cell-count model [`crate::balance::workload`] that
/// [`plan_rank`]'s LPT uses within a rank — **not** in job counts. The
/// serpentine deal pairs each lap's heaviest jobs with the previous lap's
/// lightest, so on skewed inputs (a few giant pairs among many short ones)
/// the per-group workload totals stay close even when the per-group job
/// counts differ. Callers pass workloads from
/// [`crate::balance::pair_workloads`] so grouping and intra-rank LPT agree
/// end-to-end on what "heavy" means.
pub fn group_jobs(workloads: &[u64], groups: usize) -> Vec<Vec<usize>> {
    assert!(groups > 0);
    let mut order: Vec<usize> = (0..workloads.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(workloads[i]));
    let mut out = vec![Vec::new(); groups];
    for (pos, idx) in order.into_iter().enumerate() {
        let lap = pos / groups;
        let slot = pos % groups;
        let g = if lap.is_multiple_of(2) {
            slot
        } else {
            groups - 1 - slot
        };
        out[g].push(idx);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_kernel::{KernelVariant, PoolConfig};
    use nw_core::seq::DnaSeq;
    use nw_core::ScoringScheme;
    use pim_sim::ServerConfig;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn params() -> KernelParams {
        KernelParams {
            band: 16,
            scheme: ScoringScheme::default(),
            score_only: false,
        }
    }

    fn small_server(ranks: usize, dpus: usize) -> PimServer {
        let mut cfg = ServerConfig::with_ranks(ranks);
        cfg.dpus_per_rank = dpus;
        PimServer::new(cfg)
    }

    fn packed_pairs(n: usize) -> Vec<(PackedSeq, PackedSeq)> {
        (0..n)
            .map(|k| {
                let a = seq(&"ACGTGGTCAT".repeat(4 + k % 3));
                let mut btext = "ACGTGGTCAT".repeat(4 + k % 3);
                btext.insert_str(7, "AC");
                (a.pack(), seq(&btext).pack())
            })
            .collect()
    }

    #[test]
    fn plan_rank_covers_all_jobs() {
        let jobs = packed_pairs(11);
        let ids: Vec<usize> = (100..111).collect();
        let plan = plan_rank(&jobs, &ids, 4, params(), 6, 64 << 20).unwrap();
        let mut seen: Vec<usize> = plan
            .dpus
            .iter()
            .flatten()
            .flat_map(|p| p.job_ids.iter().copied())
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, ids);
    }

    #[test]
    fn execute_rounds_returns_every_result() {
        let mut server = small_server(2, 3);
        let kernel = NwKernel::new(
            PoolConfig {
                pools: 2,
                tasklets: 4,
            },
            KernelVariant::Asm,
        );
        let jobs = packed_pairs(14);
        let ids: Vec<usize> = (0..14).collect();
        // Split jobs between the two ranks over two rounds.
        let mut rounds = Vec::new();
        for round in 0..2 {
            let mut plans = Vec::new();
            for rank in 0..2 {
                let lo = (round * 2 + rank) * 14 / 4;
                let hi = (round * 2 + rank + 1) * 14 / 4;
                plans.push(
                    plan_rank(&jobs[lo..hi], &ids[lo..hi], 3, params(), 2, 64 << 20).unwrap(),
                );
            }
            rounds.push(plans);
        }
        let out = execute_rounds(&mut server, &kernel, rounds, 0).unwrap();
        assert_eq!(out.results.len(), 14);
        let mut ids_seen: Vec<usize> = out.results.iter().map(|(i, _)| *i).collect();
        ids_seen.sort_unstable();
        assert_eq!(ids_seen, ids);
        assert!(out.dpu_seconds > 0.0);
        assert!(out.transfer_seconds > 0.0);
        assert!(out.bytes_in > 0);
        assert_eq!(out.rank_seconds.len(), 2);
        assert!(out.stats.dpus > 0);
    }

    #[test]
    fn group_jobs_balances_counts() {
        let w: Vec<u64> = (0..10).map(|i| i * 10).collect();
        let groups = group_jobs(&w, 3);
        let sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 10);
        assert!(sizes.iter().all(|&s| (3..=4).contains(&s)));
        // Heaviest jobs spread across groups, not clumped in one.
        let loads: Vec<u64> = groups
            .iter()
            .map(|g| g.iter().map(|&i| w[i]).sum())
            .collect();
        let max = *loads.iter().max().unwrap();
        let min = *loads.iter().min().unwrap();
        assert!(max - min <= 30, "loads {loads:?}");
    }

    #[test]
    fn partial_execution_keeps_clean_ranks_work() {
        use pim_sim::fault::FaultPlan;
        let mut cfg = ServerConfig::with_ranks(2);
        cfg.dpus_per_rank = 2;
        // Every DPU of rank 1 is boot-disabled: its batch must fail the
        // strict round, but rank 0's finished work should survive.
        cfg.fault = FaultPlan {
            disabled_dpus: vec![(1, 0), (1, 1)],
            ..Default::default()
        };
        let mut server = PimServer::new(cfg);
        let kernel = NwKernel::new(
            PoolConfig {
                pools: 1,
                tasklets: 4,
            },
            KernelVariant::Asm,
        );
        let jobs = packed_pairs(8);
        let ids: Vec<usize> = (0..8).collect();
        let round = vec![
            plan_rank(&jobs[..4], &ids[..4], 2, params(), 1, 64 << 20).unwrap(),
            plan_rank(&jobs[4..], &ids[4..], 2, params(), 1, 64 << 20).unwrap(),
        ];
        let (out, err) = execute_rounds_partial(&mut server, &kernel, vec![round], 0);
        assert!(matches!(err, Some(SimError::DpuFaulted { rank: 1, .. })));
        assert_eq!(out.results.len(), 4, "rank 0's results are kept");
        assert!(out.stats.dpus > 0, "rank 0's stats are kept");
        assert!(out.rank_seconds[0] > 0.0);
        assert_eq!(out.rank_seconds[1], 0.0);
    }

    #[test]
    fn empty_round_is_ok() {
        let mut server = small_server(1, 2);
        let kernel = NwKernel::new(
            PoolConfig {
                pools: 1,
                tasklets: 4,
            },
            KernelVariant::Asm,
        );
        let plan = RankPlan {
            dpus: vec![None, None],
            params: Some(params()),
        };
        let out = execute_rounds(&mut server, &kernel, vec![vec![plan]], 0).unwrap();
        assert!(out.results.is_empty());
        assert_eq!(out.dpu_seconds, 0.0);
    }
}
