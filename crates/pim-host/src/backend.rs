//! Peer alignment backends behind one [`Backend`] trait.
//!
//! The paper's §5.6 observes that the host cores sit idle while DPUs run.
//! PR 9 promotes the CPU path from an error-fallback/static-split sidecar
//! to a *first-class peer*: [`SimPimBackend`] wraps the PiM server behind
//! fault-tolerant dispatch (all interpreter tiers), [`CpuPoolBackend`]
//! wraps the kernel-identical [`AdaptiveAligner`] on a work-stealing
//! thread pool, and both speak the same batch interface and self-report
//! measured throughput in eq.-6 workload units per second.
//!
//! Throughput is an EWMA over completed batches — a *feedback loop*, not
//! a hand-fed estimate. The first PiM batch is not blind either: the seed
//! rate comes from the PR 6 WCET bounds (simulated cycles per job)
//! converted to host seconds with the memoized interpreter timing probe
//! ([`dpu_kernel::isa_loops::host_instr_rate`]), so the router has a
//! defensible prior before any batch completes.
//!
//! Both backends honor the bit-identity contract: for in-band pairs the
//! CPU pool's adaptive aligner produces exactly the score and CIGAR the
//! DPU kernels produce, which is what makes dynamic routing (and result
//! caching) invisible to callers.

use crate::dispatch::DispatchConfig;
use crate::recovery::{align_pairs_recovering, FaultReport, RecoveryConfig};
use crate::report::ExecutionReport;
use dpu_kernel::cost::wcet_job_cycles;
use dpu_kernel::isa_loops::host_instr_rate;
use dpu_kernel::layout::{JobResult, JobStatus};
use nw_core::cigar::Cigar;
use nw_core::error::AlignError;
use nw_core::seq::DnaSeq;
use nw_core::{AdaptiveAligner, ScoringScheme};
use pim_sim::{PimServer, SimError};
use std::time::Instant;

/// Exponentially weighted moving average of measured throughput.
///
/// Seeded from a model (WCET for PiM, a micro-probe for the CPU) and then
/// updated from every completed batch; the weight favors recent samples
/// because a one-shot run only sees a handful of batches.
#[derive(Debug, Clone, Copy)]
pub struct ThroughputEwma {
    rate: f64,
    samples: u64,
}

/// Weight of the newest sample. High on purpose: the seed is a prior, and
/// a few real batches should dominate it quickly.
const EWMA_ALPHA: f64 = 0.4;

impl ThroughputEwma {
    /// Start from a modeled rate (units/second, clamped positive).
    pub fn seeded(rate: f64) -> Self {
        ThroughputEwma {
            rate: rate.max(1.0),
            samples: 0,
        }
    }

    /// Fold in one completed batch.
    pub fn observe(&mut self, units: f64, seconds: f64) {
        if units <= 0.0 || seconds <= 1e-12 {
            return;
        }
        let sample = units / seconds;
        // First real measurement replaces the model seed outright.
        self.rate = if self.samples == 0 {
            sample
        } else {
            (1.0 - EWMA_ALPHA) * self.rate + EWMA_ALPHA * sample
        };
        self.samples += 1;
    }

    /// Current estimate in units/second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Batches observed so far (0 = still running on the seed).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Everything one batch execution produced.
#[derive(Debug)]
pub struct BackendBatch {
    /// Per-pair results, in the batch's input order.
    pub results: Vec<JobResult>,
    /// Measured host wall seconds for the batch (what the router's
    /// cost model predicts and the EWMA consumes).
    pub seconds: f64,
    /// The PiM execution report, when the backend produces one.
    pub report: Option<ExecutionReport>,
    /// Fault-recovery counters, when the backend tracks them.
    pub fault: Option<FaultReport>,
}

/// A first-class alignment backend: runs batches, reports its measured
/// throughput so the router can price the next batch.
pub trait Backend: Send {
    /// Stable short name ("pim", "cpu") used in reports and bench JSON.
    fn name(&self) -> &'static str;
    /// Current measured throughput estimate in eq.-6 units per second.
    fn units_per_second(&self) -> f64;
    /// Align a batch; updates the throughput estimate as a side effect.
    fn run_batch(&mut self, pairs: &[(DnaSeq, DnaSeq)]) -> Result<BackendBatch, SimError>;
}

/// Total eq.-6 workload of a pair list at a band width.
pub fn batch_units(pairs: &[(DnaSeq, DnaSeq)], band: usize) -> f64 {
    pairs
        .iter()
        .map(|(a, b)| crate::balance::workload(a.len(), b.len(), band) as f64)
        .sum()
}

/// Representative job length for the WCET-based seed: long enough that
/// per-job overheads are amortized, short enough to be in every workload's
/// range.
const SEED_JOB_LEN: usize = 384;

/// Seed PiM throughput (eq.-6 units per *host* second) from the WCET
/// bounds: a representative job costs `wcet_job_cycles` simulated cycles;
/// the interpreter timing probe says how many simulated instructions the
/// host retires per second; rank workers run in parallel. The estimate is
/// deliberately rough — it only has to be the right order of magnitude
/// until the first batch's measurement replaces it.
pub fn seed_pim_rate(cfg: &DispatchConfig, parallel_dpus: usize) -> f64 {
    let band = cfg.params.band;
    let score_only = cfg.params.score_only;
    let units = crate::balance::workload(SEED_JOB_LEN, SEED_JOB_LEN, band) as f64;
    let cycles = wcet_job_cycles(SEED_JOB_LEN, SEED_JOB_LEN, band, score_only) as f64;
    let host_rate = host_instr_rate(cfg.kernel.variant, !score_only, cfg.kernel.interp_mode);
    (units / cycles.max(1.0)) * host_rate * parallel_dpus.max(1) as f64
}

/// The PiM server as a backend: fault-tolerant dispatch (lockstep or
/// pipelined per the [`DispatchConfig`]) over the full recovery ladder, so
/// injected faults degrade throughput instead of failing batches.
pub struct SimPimBackend<'a> {
    server: &'a mut PimServer,
    cfg: DispatchConfig,
    rcfg: RecoveryConfig,
    ewma: ThroughputEwma,
}

impl<'a> SimPimBackend<'a> {
    /// Wrap `server`; the throughput seed comes from the WCET bounds and
    /// the server's DPU count.
    pub fn new(server: &'a mut PimServer, cfg: DispatchConfig, rcfg: RecoveryConfig) -> Self {
        let dpus = server.cfg().ranks * server.cfg().dpus_per_rank;
        let ewma = ThroughputEwma::seeded(seed_pim_rate(&cfg, dpus));
        SimPimBackend {
            server,
            cfg,
            rcfg,
            ewma,
        }
    }

    /// The dispatch configuration this backend runs.
    pub fn dispatch_config(&self) -> &DispatchConfig {
        &self.cfg
    }
}

impl Backend for SimPimBackend<'_> {
    fn name(&self) -> &'static str {
        "pim"
    }

    fn units_per_second(&self) -> f64 {
        self.ewma.rate()
    }

    fn run_batch(&mut self, pairs: &[(DnaSeq, DnaSeq)]) -> Result<BackendBatch, SimError> {
        if pairs.is_empty() {
            return Ok(BackendBatch {
                results: Vec::new(),
                seconds: 0.0,
                report: None,
                fault: None,
            });
        }
        let t = Instant::now();
        let (report, results) = align_pairs_recovering(self.server, &self.cfg, &self.rcfg, pairs)?;
        let seconds = t.elapsed().as_secs_f64();
        self.ewma
            .observe(batch_units(pairs, self.cfg.params.band), seconds);
        Ok(BackendBatch {
            results,
            seconds,
            fault: Some(report.fault.clone()),
            report: Some(report),
        })
    }
}

/// The host cores as a backend: the kernel-identical adaptive aligner on
/// the work-stealing pool, producing bit-identical results to the DPU path
/// for every in-band pair.
pub struct CpuPoolBackend {
    aligner: AdaptiveAligner,
    threads: usize,
    band: usize,
    score_only: bool,
    ewma: ThroughputEwma,
}

impl CpuPoolBackend {
    /// A pool of `threads` workers aligning with band `band`. The
    /// throughput seed comes from a one-pair micro-probe (microseconds).
    pub fn new(scheme: ScoringScheme, band: usize, score_only: bool, threads: usize) -> Self {
        let threads = threads.max(1);
        let aligner = AdaptiveAligner::new(scheme, band);
        let ewma = ThroughputEwma::seeded(cpu_probe_rate(&aligner, band) * threads as f64);
        CpuPoolBackend {
            aligner,
            threads,
            band,
            score_only,
            ewma,
        }
    }

    /// Map one CPU alignment outcome onto the kernel's result layout,
    /// mirroring the DPU contract: out-of-band/failed pairs surface as
    /// `OutOfBand`, score-only mode strips the CIGAR.
    fn to_job_result(&self, res: Result<nw_core::Alignment, AlignError>) -> JobResult {
        match res {
            Ok(aln) => JobResult {
                status: JobStatus::Ok,
                score: aln.score,
                cigar: if self.score_only {
                    Cigar::new()
                } else {
                    aln.cigar
                },
            },
            Err(_) => JobResult {
                status: JobStatus::OutOfBand,
                score: 0,
                cigar: Cigar::new(),
            },
        }
    }
}

/// Single-thread units/second of the adaptive aligner, measured once per
/// pool on a representative synthetic pair.
fn cpu_probe_rate(aligner: &AdaptiveAligner, band: usize) -> f64 {
    let text: String = "ACGTGGTCATTACGGA".repeat(SEED_JOB_LEN / 16);
    let a = DnaSeq::from_ascii(text.as_bytes()).expect("probe seq");
    let mut btext = text.clone();
    btext.replace_range(8..9, "T");
    let b = DnaSeq::from_ascii(btext.as_bytes()).expect("probe seq");
    let units = crate::balance::workload(a.len(), b.len(), band) as f64;
    let t = Instant::now();
    let mut reps = 0u32;
    while reps < 4 || t.elapsed().as_micros() < 200 {
        std::hint::black_box(aligner.align(&a, &b)).ok();
        reps += 1;
    }
    let per = t.elapsed().as_secs_f64() / f64::from(reps);
    units / per.max(1e-9)
}

impl Backend for CpuPoolBackend {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn units_per_second(&self) -> f64 {
        self.ewma.rate()
    }

    fn run_batch(&mut self, pairs: &[(DnaSeq, DnaSeq)]) -> Result<BackendBatch, SimError> {
        if pairs.is_empty() {
            return Ok(BackendBatch {
                results: Vec::new(),
                seconds: 0.0,
                report: None,
                fault: None,
            });
        }
        let (raw, elapsed) =
            cpu_baseline::driver::run_batch(self.threads, pairs, |a, b| self.aligner.align(a, b));
        let seconds = elapsed.as_secs_f64();
        let results = raw.into_iter().map(|r| self.to_job_result(r)).collect();
        self.ewma.observe(batch_units(pairs, self.band), seconds);
        Ok(BackendBatch {
            results,
            seconds,
            report: None,
            fault: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_kernel::{KernelParams, NwKernel};
    use pim_sim::ServerConfig;

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn pairs(n: usize) -> Vec<(DnaSeq, DnaSeq)> {
        (0..n)
            .map(|k| {
                let a = "ACGTGGTCAT".repeat(4 + k % 4);
                let mut b = a.clone();
                b.insert_str(4 + k % 6, "TT");
                (seq(&a), seq(&b))
            })
            .collect()
    }

    fn dispatch_config() -> DispatchConfig {
        let params = KernelParams {
            band: 32,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        DispatchConfig::new(NwKernel::paper_default(), params)
    }

    #[test]
    fn ewma_replaces_seed_then_blends() {
        let mut e = ThroughputEwma::seeded(1000.0);
        assert_eq!(e.rate(), 1000.0);
        e.observe(100.0, 1.0);
        assert_eq!(e.rate(), 100.0, "first sample replaces the seed");
        e.observe(200.0, 1.0);
        assert!(e.rate() > 100.0 && e.rate() < 200.0, "blend: {}", e.rate());
        // Degenerate samples are ignored.
        e.observe(0.0, 1.0);
        e.observe(10.0, 0.0);
        assert_eq!(e.samples(), 2);
    }

    #[test]
    fn both_backends_agree_bit_identically() {
        let ps = pairs(12);
        let cfg = dispatch_config();
        let mut server = PimServer::new({
            let mut c = ServerConfig::with_ranks(1);
            c.dpus_per_rank = 2;
            c
        });
        let mut pim = SimPimBackend::new(&mut server, cfg, RecoveryConfig::default());
        let pim_out = pim.run_batch(&ps).unwrap();
        let mut cpu = CpuPoolBackend::new(ScoringScheme::default(), 32, false, 2);
        let cpu_out = cpu.run_batch(&ps).unwrap();
        assert_eq!(pim_out.results.len(), cpu_out.results.len());
        for (i, (p, c)) in pim_out.results.iter().zip(&cpu_out.results).enumerate() {
            assert_eq!(p, c, "pair {i} diverged between backends");
        }
        // Both measured a real batch, so the EWMA left its seed.
        assert!(pim.units_per_second() > 0.0);
        assert!(cpu.units_per_second() > 0.0);
    }

    #[test]
    fn wcet_seed_is_finite_and_positive() {
        let cfg = dispatch_config();
        let rate = seed_pim_rate(&cfg, 8);
        assert!(rate.is_finite() && rate > 0.0, "seed rate {rate}");
        // More DPUs, more throughput.
        assert!(seed_pim_rate(&cfg, 16) > rate);
    }

    #[test]
    fn score_only_cpu_results_strip_cigars() {
        let ps = pairs(4);
        let mut cpu = CpuPoolBackend::new(ScoringScheme::default(), 32, true, 1);
        let out = cpu.run_batch(&ps).unwrap();
        for r in &out.results {
            assert_eq!(r.status, JobStatus::Ok);
            assert!(r.cigar.runs().is_empty());
        }
    }
}
