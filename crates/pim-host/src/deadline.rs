//! One deadline vocabulary for every layer.
//!
//! Before this module existed the host had two wall-clock deadline knobs
//! with identical semantics but different names and homes:
//! `RecoveryConfig::rank_deadline_seconds` (the recovery drivers) and
//! `PipelineOptions::deadline_seconds` (the strict pipelined engine). A
//! service layer sitting on top of both had to keep them in sync by hand.
//! [`DeadlinePolicy`] replaces both fields: construct it once, pass it
//! everywhere a stall should eventually be cancelled.
//!
//! The policy answers one question — *how long may rank execution make no
//! progress before the host cancels it?* — and deliberately stays a policy,
//! not a timer: callers combine it with their own `Instant`s (the lockstep
//! driver uses an absolute deadline per round, the pipelined drivers use a
//! no-completion quiet period, the service daemon derives per-request
//! deadlines from it).

use std::time::Duration;

/// Wall-clock stall budget for rank execution. `off()` (the default) never
/// cancels; `after_seconds(s)` cancels a launch once no progress has been
/// observed for `s` seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePolicy {
    seconds: f64,
}

impl DeadlinePolicy {
    /// No deadline: a hung launch is left to the cycle-budget watchdog (or
    /// spins forever if that is off too).
    pub const fn off() -> Self {
        Self { seconds: 0.0 }
    }

    /// Cancel after `seconds` of no progress. Values `<= 0` (and NaN) mean
    /// "off", matching the old `0 disables` convention of both knobs this
    /// type replaced.
    pub fn after_seconds(seconds: f64) -> Self {
        if seconds.is_finite() && seconds > 0.0 {
            Self { seconds }
        } else {
            Self::off()
        }
    }

    /// Is a deadline armed at all?
    pub fn is_enabled(&self) -> bool {
        self.seconds > 0.0
    }

    /// The stall budget in seconds (0.0 when off).
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// The stall budget as a [`Duration`], `None` when off — the shape
    /// `recv_timeout`-style waits want.
    pub fn timeout(&self) -> Option<Duration> {
        self.is_enabled()
            .then(|| Duration::from_secs_f64(self.seconds))
    }

    /// The tighter of two policies (an "off" side never tightens).
    pub fn min(self, other: DeadlinePolicy) -> DeadlinePolicy {
        match (self.is_enabled(), other.is_enabled()) {
            (true, true) => Self::after_seconds(self.seconds.min(other.seconds)),
            (true, false) => self,
            (false, _) => other,
        }
    }
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        Self::off()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_disabled_and_zero() {
        let off = DeadlinePolicy::off();
        assert!(!off.is_enabled());
        assert_eq!(off.seconds(), 0.0);
        assert_eq!(off.timeout(), None);
        assert_eq!(DeadlinePolicy::default(), off);
    }

    #[test]
    fn nonpositive_and_nan_mean_off() {
        assert!(!DeadlinePolicy::after_seconds(0.0).is_enabled());
        assert!(!DeadlinePolicy::after_seconds(-1.0).is_enabled());
        assert!(!DeadlinePolicy::after_seconds(f64::NAN).is_enabled());
        assert!(!DeadlinePolicy::after_seconds(f64::INFINITY).is_enabled());
    }

    #[test]
    fn enabled_round_trips() {
        let d = DeadlinePolicy::after_seconds(1.5);
        assert!(d.is_enabled());
        assert_eq!(d.seconds(), 1.5);
        assert_eq!(d.timeout(), Some(Duration::from_millis(1500)));
    }

    #[test]
    fn min_takes_the_tighter_armed_side() {
        let a = DeadlinePolicy::after_seconds(2.0);
        let b = DeadlinePolicy::after_seconds(5.0);
        assert_eq!(a.min(b), a);
        assert_eq!(b.min(a), a);
        assert_eq!(DeadlinePolicy::off().min(a), a);
        assert_eq!(a.min(DeadlinePolicy::off()), a);
        assert_eq!(
            DeadlinePolicy::off().min(DeadlinePolicy::off()),
            DeadlinePolicy::off()
        );
    }
}
