//! Crash-safe persistence for the content-addressed result cache.
//!
//! Layout on disk is two files in one state directory:
//!
//! - `cache.wal` — an append-only write-ahead log. Every audited insert
//!   appends one self-contained record *after* the in-memory insert
//!   succeeds, so the log can only ever under-approximate the cache.
//! - `cache.snap` — a snapshot written by compaction: the latest record
//!   per key, filtered to keys still resident in the cache, written to a
//!   temp file and atomically renamed. After a snapshot the WAL is
//!   truncated back to its header.
//!
//! Both files share the same framing: a 12-byte header (magic,
//! format-version byte, [`WAL_SCHEMA_VERSION`]) followed by records of
//! `[len: u32 LE][payload][fnv1a32(payload): u32 LE]` — the same FNV-1a
//! checksum convention the DPU result blocks use
//! (`dpu_kernel::layout::result_checksum`).
//!
//! **Recovery invariants.** A torn tail (partial final record — the
//! classic mid-append crash) is truncated away; a record whose checksum
//! does not match is skipped; a length field too large to be real ends the
//! scan there. None of these refuse startup. A *future format version*
//! does refuse startup — silently misparsing a newer format is corruption
//! by another name, while a flipped bit is just lost work. Records carry
//! the packed sequences, scoring scheme, band, and mode — never the
//! `JobKey` — so recovery recomputes every key and re-admits each entry
//! through [`crate::cache::ResultCache::insert_audited`]; a
//! corrupted-on-disk result that survives the checksum can still never be
//! served.

use dpu_kernel::layout::{JobResult, JobStatus};
use nw_core::cigar::{Cigar, CigarOp};
use nw_core::seq::PackedSeq;
use nw_core::{job_key, JobKey, ScoringScheme};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Schema version stamped into WAL/snapshot/journal headers. Bump on any
/// incompatible record-shape change so an old binary refuses (or a future
/// one migrates) instead of silently misparsing.
pub const WAL_SCHEMA_VERSION: u32 = 1;

/// Format-version byte in the header; the coarse "can this binary read
/// this file at all" gate in front of the schema version.
pub const FORMAT_VERSION: u8 = 1;

/// Header: 6 magic bytes + format-version byte + reserved byte +
/// schema-version u32 LE.
pub const HEADER_LEN: usize = 12;

const MAGIC_WAL: &[u8; 6] = b"UNWWAL";
const MAGIC_SNAP: &[u8; 6] = b"UNWSNP";

/// Largest plausible record payload. A length field above this is treated
/// as framing corruption (scan ends), not as a record to allocate.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// FNV-1a over `bytes` — the workspace's one checksum, matching the DPU
/// result-block convention from PR 2.
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Why a header was not accepted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeaderCheck {
    /// Header present and readable by this binary.
    Ok,
    /// File shorter than a header or wrong magic: treat as empty/foreign
    /// and start fresh.
    Corrupt,
    /// Format or schema version newer than this binary understands:
    /// refuse-or-migrate, never guess.
    FutureVersion {
        /// Format-version byte found in the file.
        format: u8,
        /// Schema version found in the file.
        schema: u32,
    },
}

/// Serialize a header for `magic` into `out` (shared with the service
/// crate's request journal, which brings its own magic).
pub fn put_header(out: &mut Vec<u8>, magic: &[u8; 6]) {
    out.extend_from_slice(magic);
    out.push(FORMAT_VERSION);
    out.push(0); // reserved
    out.extend_from_slice(&WAL_SCHEMA_VERSION.to_le_bytes());
}

/// Validate the header of `bytes` against `magic`.
pub fn check_header(bytes: &[u8], magic: &[u8; 6]) -> HeaderCheck {
    if bytes.len() < HEADER_LEN || &bytes[..6] != magic {
        return HeaderCheck::Corrupt;
    }
    let format = bytes[6];
    let schema = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if format > FORMAT_VERSION || schema > WAL_SCHEMA_VERSION {
        return HeaderCheck::FutureVersion { format, schema };
    }
    HeaderCheck::Ok
}

/// Frame `payload` as one record (`len | payload | checksum`) into `out`.
pub fn put_record(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv1a32(payload).to_le_bytes());
}

/// What a tolerant scan of a record stream found.
#[derive(Debug, Default)]
pub struct ScanOutcome {
    /// Checksum-valid payloads, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// Records skipped for a checksum mismatch (framing still trusted).
    pub corrupt_skipped: usize,
    /// Bytes discarded at the tail (partial record or implausible length).
    pub torn_tail_bytes: usize,
}

/// Scan `bytes[start..]` as framed records, tolerating torn tails and
/// flipped bits per the recovery invariants above.
pub fn scan_records(bytes: &[u8], start: usize) -> ScanOutcome {
    let mut out = ScanOutcome::default();
    let mut i = start.min(bytes.len());
    while i < bytes.len() {
        if bytes.len() - i < 8 {
            out.torn_tail_bytes = bytes.len() - i;
            break;
        }
        let len = u32::from_le_bytes(bytes[i..i + 4].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            // A corrupt length field: record boundaries are lost from here.
            out.torn_tail_bytes = bytes.len() - i;
            break;
        }
        let len = len as usize;
        if i + 4 + len + 4 > bytes.len() {
            out.torn_tail_bytes = bytes.len() - i;
            break;
        }
        let payload = &bytes[i + 4..i + 4 + len];
        let sum = u32::from_le_bytes(bytes[i + 4 + len..i + 8 + len].try_into().unwrap());
        if fnv1a32(payload) == sum {
            out.payloads.push(payload.to_vec());
        } else {
            out.corrupt_skipped += 1;
        }
        i += 8 + len;
    }
    out
}

/// Little-endian byte cursor for record payloads; every getter returns
/// `None` past the end so decode failures degrade to "skip this record".
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Cursor over `bytes` starting at offset 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        ByteReader { bytes, pos: 0 }
    }

    /// Next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let s = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(s)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    /// Next u32 LE.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|s| u32::from_le_bytes(s.try_into().unwrap()))
    }

    /// Next u64 LE.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
    }

    /// Next i32 LE.
    pub fn i32(&mut self) -> Option<i32> {
        self.take(4)
            .map(|s| i32::from_le_bytes(s.try_into().unwrap()))
    }

    /// True when every byte has been consumed — decoders require this so
    /// a trailing-garbage payload is rejected, not half-read.
    pub fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

/// Append a packed sequence as `base_len: u32 | packed bytes`.
pub fn put_seq(out: &mut Vec<u8>, s: &PackedSeq) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Read a packed sequence written by [`put_seq`].
pub fn get_seq(r: &mut ByteReader<'_>) -> Option<PackedSeq> {
    let len = r.u32()? as usize;
    let bytes = r.take(len.div_ceil(4))?;
    PackedSeq::from_raw(bytes.to_vec(), len)
}

/// One persisted cache entry. Self-addressing: it stores everything the
/// key covers (sequences, scheme, band, mode) and never the key itself,
/// so recovery recomputes the key and can't be lied to about the binding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheRecord {
    /// Packed sequence A.
    pub a: PackedSeq,
    /// Packed sequence B.
    pub b: PackedSeq,
    /// Scoring scheme the result was computed under.
    pub scheme: ScoringScheme,
    /// Band width.
    pub band: usize,
    /// Score-only mode flag.
    pub score_only: bool,
    /// The audited result (always status `Ok` when written by the cache).
    pub result: JobResult,
}

impl CacheRecord {
    /// The job key this record answers.
    pub fn key(&self) -> JobKey {
        job_key(&self.a, &self.b, &self.scheme, self.band, self.score_only)
    }

    /// Serialize to a record payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + self.a.byte_len() + self.b.byte_len());
        put_seq(&mut out, &self.a);
        put_seq(&mut out, &self.b);
        for v in [
            self.scheme.match_score,
            self.scheme.mismatch_penalty,
            self.scheme.gap_open,
            self.scheme.gap_extend,
        ] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&(self.band as u32).to_le_bytes());
        out.push(u8::from(self.score_only));
        out.extend_from_slice(&self.result.score.to_le_bytes());
        let runs = self.result.cigar.runs();
        out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
        for &(count, op) in runs {
            out.extend_from_slice(&count.to_le_bytes());
            out.push(match op {
                CigarOp::Match => 0,
                CigarOp::Mismatch => 1,
                CigarOp::Insertion => 2,
                CigarOp::Deletion => 3,
            });
        }
        out
    }

    /// Parse a payload written by [`encode`](Self::encode); `None` on any
    /// structural mismatch (recovery skips the record).
    pub fn decode(payload: &[u8]) -> Option<CacheRecord> {
        let mut r = ByteReader::new(payload);
        let a = get_seq(&mut r)?;
        let b = get_seq(&mut r)?;
        let scheme = ScoringScheme {
            match_score: r.i32()?,
            mismatch_penalty: r.i32()?,
            gap_open: r.i32()?,
            gap_extend: r.i32()?,
        };
        let band = r.u32()? as usize;
        let score_only = match r.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let score = r.i32()?;
        let run_count = r.u32()? as usize;
        let mut cigar = Cigar::new();
        for _ in 0..run_count {
            let count = r.u32()?;
            let op = match r.u8()? {
                0 => CigarOp::Match,
                1 => CigarOp::Mismatch,
                2 => CigarOp::Insertion,
                3 => CigarOp::Deletion,
                _ => return None,
            };
            cigar.push_run(count, op);
        }
        if !r.done() {
            return None;
        }
        Some(CacheRecord {
            a,
            b,
            scheme,
            band,
            score_only,
            result: JobResult {
                status: JobStatus::Ok,
                score,
                cigar,
            },
        })
    }
}

/// Tuning for a [`CacheStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Compact (snapshot + WAL truncate) after this many appends.
    pub compact_every: usize,
    /// `fsync` after every append/compaction. SIGKILL safety needs only
    /// the write (the page cache survives the process); host-crash
    /// durability needs the sync. Off by default.
    pub sync_data: bool,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            compact_every: 1024,
            sync_data: false,
        }
    }
}

/// Lifetime counters for one [`CacheStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct PersistStats {
    /// Records appended to the WAL.
    pub appended: u64,
    /// Compactions performed (snapshot rewrite + WAL truncate).
    pub compactions: u64,
    /// Records written into the last snapshot.
    pub snapshot_records: u64,
    /// I/O errors swallowed; persistence degrades, serving never stops.
    pub io_errors: u64,
}

/// What recovery found on disk.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheRecovery {
    /// Entries re-admitted through the audit gate.
    pub recovered: usize,
    /// Decoded entries the audit gate refused (corrupt-on-disk results).
    pub rejected: usize,
    /// Records skipped: checksum mismatch or undecodable payload.
    pub corrupt_skipped: usize,
    /// Bytes truncated off torn tails, both files.
    pub torn_tail_bytes: usize,
    /// Files whose header was missing/foreign and were started fresh.
    pub header_resets: usize,
}

/// The persistence backend a [`crate::cache::ResultCache`] can attach:
/// WAL appends on insert, periodic compaction into a snapshot, tolerant
/// recovery on open.
#[derive(Debug)]
pub struct CacheStore {
    wal_path: PathBuf,
    snap_path: PathBuf,
    wal: Option<File>,
    opts: StoreOptions,
    appends_since_compact: usize,
    stats: PersistStats,
}

impl CacheStore {
    /// Open (creating if needed) the store under `dir` as `cache.wal` +
    /// `cache.snap`. Errors only on unusable directories or a
    /// future-format file — corruption never errors.
    pub fn open(dir: &Path, opts: StoreOptions) -> io::Result<CacheStore> {
        std::fs::create_dir_all(dir)?;
        let wal_path = dir.join("cache.wal");
        let snap_path = dir.join("cache.snap");
        // A stale temp snapshot is a crash mid-compaction before the
        // rename; the real snapshot is still intact, so just drop it.
        let _ = std::fs::remove_file(snap_path.with_extension("snap.tmp"));
        for (path, magic) in [(&wal_path, MAGIC_WAL), (&snap_path, MAGIC_SNAP)] {
            if let Ok(bytes) = std::fs::read(path) {
                if let HeaderCheck::FutureVersion { format, schema } = check_header(&bytes, magic) {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "{}: format v{format} schema v{schema} is newer than this \
                             binary (v{FORMAT_VERSION}/v{WAL_SCHEMA_VERSION}); refusing \
                             to guess — migrate or remove the file",
                            path.display()
                        ),
                    ));
                }
            }
        }
        let mut store = CacheStore {
            wal_path,
            snap_path,
            wal: None,
            opts: StoreOptions {
                compact_every: opts.compact_every.max(1),
                ..opts
            },
            appends_since_compact: 0,
            stats: PersistStats::default(),
        };
        store.wal = store.open_wal_for_append().ok();
        if store.wal.is_none() {
            store.stats.io_errors += 1;
        }
        Ok(store)
    }

    /// Path of the write-ahead log.
    pub fn wal_path(&self) -> &Path {
        &self.wal_path
    }

    /// Path of the snapshot.
    pub fn snap_path(&self) -> &Path {
        &self.snap_path
    }

    /// Counters so far.
    pub fn stats(&self) -> PersistStats {
        self.stats
    }

    fn open_wal_for_append(&self) -> io::Result<File> {
        let needs_header = match std::fs::read(&self.wal_path) {
            Ok(bytes) => check_header(&bytes, MAGIC_WAL) == HeaderCheck::Corrupt,
            Err(_) => true,
        };
        if needs_header {
            let mut buf = Vec::with_capacity(HEADER_LEN);
            put_header(&mut buf, MAGIC_WAL);
            let mut f = File::create(&self.wal_path)?;
            f.write_all(&buf)?;
        }
        OpenOptions::new().append(true).open(&self.wal_path)
    }

    /// Read and tolerantly decode one file (snapshot or WAL) into
    /// records, accumulating recovery counters.
    fn load_file(&self, path: &Path, magic: &[u8; 6], rec: &mut CacheRecovery) -> Vec<CacheRecord> {
        let Ok(bytes) = std::fs::read(path) else {
            return Vec::new();
        };
        if check_header(&bytes, magic) != HeaderCheck::Ok {
            if !bytes.is_empty() {
                rec.header_resets += 1;
            }
            return Vec::new();
        }
        let scan = scan_records(&bytes, HEADER_LEN);
        rec.corrupt_skipped += scan.corrupt_skipped;
        rec.torn_tail_bytes += scan.torn_tail_bytes;
        scan.payloads
            .iter()
            .filter_map(|p| match CacheRecord::decode(p) {
                Some(r) => Some(r),
                None => {
                    rec.corrupt_skipped += 1;
                    None
                }
            })
            .collect()
    }

    /// All decodable records on disk, snapshot first then WAL (so a WAL
    /// record for the same key shadows the snapshot's).
    pub fn load_records(&self, rec: &mut CacheRecovery) -> Vec<CacheRecord> {
        let mut out = self.load_file(&self.snap_path, MAGIC_SNAP, rec);
        out.extend(self.load_file(&self.wal_path, MAGIC_WAL, rec));
        out
    }

    /// Append one record to the WAL. Infallible by design: an I/O error
    /// is counted and persistence degrades, but serving never stops.
    pub fn append(&mut self, record: &CacheRecord) {
        let mut buf = Vec::new();
        put_record(&mut buf, &record.encode());
        let Some(f) = self.wal.as_mut() else {
            self.stats.io_errors += 1;
            return;
        };
        let ok = f.write_all(&buf).and_then(|()| {
            if self.opts.sync_data {
                f.sync_data()
            } else {
                Ok(())
            }
        });
        match ok {
            Ok(()) => {
                self.stats.appended += 1;
                self.appends_since_compact += 1;
            }
            Err(_) => self.stats.io_errors += 1,
        }
    }

    /// True once enough appends have accumulated to warrant compaction.
    pub fn should_compact(&self) -> bool {
        self.appends_since_compact >= self.opts.compact_every
    }

    /// Compact: re-read snapshot + WAL from disk, keep the latest record
    /// per key filtered to `resident` keys, write a new snapshot via temp
    /// file + atomic rename, truncate the WAL to its header.
    pub fn compact(&mut self, resident: &dyn Fn(&JobKey) -> bool) {
        let mut scratch = CacheRecovery::default();
        let mut latest: HashMap<JobKey, CacheRecord> = HashMap::new();
        let mut order: Vec<JobKey> = Vec::new();
        for r in self.load_records(&mut scratch) {
            let key = r.key();
            if !resident(&key) {
                continue;
            }
            if latest.insert(key, r).is_none() {
                order.push(key);
            }
        }
        let mut buf = Vec::new();
        put_header(&mut buf, MAGIC_SNAP);
        for key in &order {
            put_record(&mut buf, &latest[key].encode());
        }
        let tmp = self.snap_path.with_extension("snap.tmp");
        let wrote = std::fs::write(&tmp, &buf)
            .and_then(|()| {
                if self.opts.sync_data {
                    File::open(&tmp).and_then(|f| f.sync_data())
                } else {
                    Ok(())
                }
            })
            .and_then(|()| std::fs::rename(&tmp, &self.snap_path));
        if wrote.is_err() {
            self.stats.io_errors += 1;
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        // Snapshot is durable; restart the WAL from scratch.
        let mut hdr = Vec::with_capacity(HEADER_LEN);
        put_header(&mut hdr, MAGIC_WAL);
        let restarted = File::create(&self.wal_path)
            .and_then(|mut f| f.write_all(&hdr).map(|()| f))
            .and_then(|f| {
                if self.opts.sync_data {
                    f.sync_data().map(|()| f)
                } else {
                    Ok(f)
                }
            });
        match restarted {
            Ok(_) => {
                self.wal = self.open_wal_for_append().ok();
                if self.wal.is_none() {
                    self.stats.io_errors += 1;
                }
            }
            Err(_) => self.stats.io_errors += 1,
        }
        self.stats.compactions += 1;
        self.stats.snapshot_records = order.len() as u64;
        self.appends_since_compact = 0;
    }
}

/// Read a whole file; empty on any error (shared by the service journal).
pub fn read_file_bytes(path: &Path) -> Vec<u8> {
    let mut buf = Vec::new();
    if let Ok(mut f) = File::open(path) {
        let _ = f.read_to_end(&mut buf);
    }
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ResultCache;
    use nw_core::seq::DnaSeq;
    use nw_core::AdaptiveAligner;

    fn record(k: usize) -> CacheRecord {
        let a = DnaSeq::from_ascii("ACGTGGTCAT".repeat(3 + k % 4).as_bytes()).unwrap();
        let mut b_text = a.to_ascii();
        b_text.insert(1 + k % 7, b'G');
        let b = DnaSeq::from_ascii(&b_text).unwrap();
        let scheme = ScoringScheme::default();
        let band = 32 + 16 * (k % 3);
        let aln = AdaptiveAligner::new(scheme, band).align(&a, &b).unwrap();
        CacheRecord {
            a: a.pack(),
            b: b.pack(),
            scheme,
            band,
            score_only: false,
            result: JobResult {
                status: JobStatus::Ok,
                score: aln.score,
                cigar: aln.cigar,
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "upmem-nw-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn record_round_trips() {
        for k in 0..6 {
            let r = record(k);
            let decoded = CacheRecord::decode(&r.encode()).expect("decodes");
            assert_eq!(decoded, r);
            assert_eq!(decoded.key(), r.key());
        }
        // Trailing garbage is rejected, not half-read.
        let mut payload = record(0).encode();
        payload.push(0xAB);
        assert!(CacheRecord::decode(&payload).is_none());
    }

    #[test]
    fn scan_tolerates_torn_tail_and_flipped_bit() {
        let mut buf = Vec::new();
        for k in 0..4 {
            put_record(&mut buf, &record(k).encode());
        }
        let clean = scan_records(&buf, 0);
        assert_eq!(clean.payloads.len(), 4);
        assert_eq!((clean.corrupt_skipped, clean.torn_tail_bytes), (0, 0));

        // Torn tail: drop the last 3 bytes (mid-append crash).
        let torn = scan_records(&buf[..buf.len() - 3], 0);
        assert_eq!(torn.payloads.len(), 3);
        assert!(torn.torn_tail_bytes > 0);

        // Flipped bit inside record 1's payload: skipped, rest recovered.
        let mut flipped = buf.clone();
        let r0 = 8 + record(0).encode().len();
        flipped[r0 + 6] ^= 0x10;
        let scan = scan_records(&flipped, 0);
        assert_eq!(scan.payloads.len(), 3);
        assert_eq!(scan.corrupt_skipped, 1);

        // Implausible length field ends the scan without allocating.
        let mut bad_len = buf.clone();
        bad_len[r0..r0 + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let scan = scan_records(&bad_len, 0);
        assert_eq!(scan.payloads.len(), 1);
        assert!(scan.torn_tail_bytes > 0);
    }

    #[test]
    fn store_persists_and_recovers_through_the_audit_gate() {
        let dir = tmp_dir("roundtrip");
        let recs: Vec<CacheRecord> = (0..5).map(record).collect();
        {
            let mut store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
            for r in &recs {
                store.append(r);
            }
            assert_eq!(store.stats().appended, 5);
        } // dropped without compaction: recovery reads the raw WAL
        let store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
        let (mut cache, recovery) = ResultCache::with_store(64, store);
        assert_eq!(recovery.recovered, 5);
        assert_eq!(recovery.rejected, 0);
        for r in &recs {
            assert_eq!(cache.lookup(&r.key()), Some(r.result.clone()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_on_disk_result_is_never_served() {
        let dir = tmp_dir("corrupt-result");
        let mut store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
        // A record whose framing checksum is valid but whose *content*
        // lies about the score: only the audit gate can catch it.
        let mut lying = record(0);
        lying.result.score += 2;
        store.append(&lying);
        store.append(&record(1));
        drop(store);
        let store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
        let (mut cache, recovery) = ResultCache::with_store(64, store);
        assert_eq!(recovery.recovered, 1);
        assert_eq!(recovery.rejected, 1);
        assert!(cache.lookup(&lying.key()).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_tail_and_flipped_bits_recover_the_rest() {
        let dir = tmp_dir("torn");
        let mut store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
        for k in 0..4 {
            store.append(&record(k));
        }
        let wal_path = store.wal_path().to_path_buf();
        drop(store);
        // Crash mid-append: truncate 5 bytes off the tail, then flip a
        // bit in the middle of what remains.
        let mut bytes = std::fs::read(&wal_path).unwrap();
        bytes.truncate(bytes.len() - 5);
        let mid = HEADER_LEN + (bytes.len() - HEADER_LEN) / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&wal_path, &bytes).unwrap();
        let store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
        let (cache, recovery) = ResultCache::with_store(64, store);
        assert!(recovery.recovered >= 2, "recovered {}", recovery.recovered);
        assert!(recovery.corrupt_skipped >= 1 || recovery.rejected >= 1);
        assert!(cache.len() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_version_refuses_instead_of_guessing() {
        let dir = tmp_dir("future");
        drop(CacheStore::open(&dir, StoreOptions::default()).unwrap());
        let wal = dir.join("cache.wal");
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[6] = FORMAT_VERSION + 1;
        std::fs::write(&wal, &bytes).unwrap();
        let err = CacheStore::open(&dir, StoreOptions::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A foreign/corrupt header, by contrast, starts fresh.
        std::fs::write(&wal, b"not a wal at all").unwrap();
        let store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
        let mut rec = CacheRecovery::default();
        assert!(store.load_records(&mut rec).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_keeps_resident_keys_and_truncates_the_wal() {
        let dir = tmp_dir("compact");
        let opts = StoreOptions {
            compact_every: 2,
            sync_data: false,
        };
        let store = CacheStore::open(&dir, opts).unwrap();
        let (mut cache, _) = ResultCache::with_store(64, store);
        let recs: Vec<CacheRecord> = (0..5).map(record).collect();
        for r in &recs {
            let pair = (r.a.clone(), r.b.clone());
            assert!(cache.insert_audited(
                r.key(),
                &pair,
                &r.result,
                &r.scheme,
                r.band,
                r.score_only
            ));
        }
        let stats = cache.persist_stats().unwrap();
        assert!(stats.compactions >= 1, "compact_every=2 must have fired");
        // WAL shrank back to (near) its header after the last compaction.
        let wal_len = std::fs::metadata(dir.join("cache.wal")).unwrap().len();
        assert!(wal_len < 1024, "wal not truncated: {wal_len} bytes");
        drop(cache);
        // Everything still recovers from the snapshot.
        let store = CacheStore::open(&dir, StoreOptions::default()).unwrap();
        let (mut cache, recovery) = ResultCache::with_store(64, store);
        assert_eq!(recovery.recovered, 5);
        for r in &recs {
            assert_eq!(cache.lookup(&r.key()), Some(r.result.clone()));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
