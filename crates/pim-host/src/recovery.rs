//! Fault-tolerant dispatch: retry, quarantine, CPU fallback.
//!
//! The strict path ([`crate::dispatch::execute_rounds`]) aborts on the
//! first fault — correct for a healthy server, useless on one where DPUs
//! are masked out, launches fault, or readback flips bits (see
//! [`pim_sim::fault`]). This module completes every job anyway:
//!
//! 1. **Detect** — per-DPU failures surface as typed errors: launch faults
//!    as [`SimError::DpuFaulted`], readback corruption as
//!    [`SimError::ResultCorrupt`] (magic + checksum on every result
//!    block), dead ranks and panicked rank workers as
//!    [`SimError::RankFailed`].
//! 2. **Retry** — failed jobs are re-planned with the same LPT balancer
//!    onto the healthy DPUs and re-launched, up to
//!    [`RecoveryConfig::max_attempts`] total attempts per job. A dead
//!    rank's jobs fail over to the surviving ranks.
//! 3. **Quarantine** — a [`HealthTracker`] counts consecutive faults per
//!    DPU; after [`RecoveryConfig::quarantine_after`] in a row the DPU is
//!    taken out of the planning set (flaky hardware, not bad luck).
//! 4. **Fall back** — jobs that exhaust their attempts (or have no DPU
//!    left to run on) are aligned on the CPU with
//!    [`nw_core::adaptive::AdaptiveAligner`] — the same algorithm the DPU
//!    kernel runs, so fallback scores are bit-identical to DPU scores —
//!    driven by the work-stealing batch runner of
//!    [`cpu_baseline::driver::run_batch`].
//!
//! Every recovery action is accounted in a [`FaultReport`] so tests (and
//! the `chaos` CLI subcommand) can assert that nothing was lost.

use crate::balance::lpt_assign;
use crate::deadline::DeadlinePolicy;
use crate::dispatch::{
    decode_raw_exec_audited, group_jobs, run_round, AuditFn, DispatchConfig, DispatchOutcome,
    DpuPlan, Engine, RankExec, RankPlan,
};
use crate::encode::Encoder;
use crate::pipeline::{recv_done, worker_loop, BatchDone, BufferPool, PipelineMetrics, WorkItem};
use crate::report::ExecutionReport;
use cpu_baseline::driver::run_batch;
use dpu_kernel::layout::{JobBatchBuilder, JobResult, JobStatus, KernelParams};
use dpu_kernel::NwKernel;
use nw_core::adaptive::AdaptiveAligner;
use nw_core::cigar::Cigar;
use nw_core::error::AlignError;
use nw_core::seq::{DnaSeq, PackedSeq};
use nw_core::ScoringScheme;
use pim_sim::{PimServer, SimError};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{channel, sync_channel};
use std::time::Instant;

/// Recovery policy knobs.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Total attempts per job on the PiM side before CPU fallback (>= 1).
    pub max_attempts: usize,
    /// Consecutive faults after which a DPU is quarantined (>= 1).
    pub quarantine_after: usize,
    /// Worker threads for the CPU fallback batch.
    pub cpu_threads: usize,
    /// Wall-clock deadline on rank execution: when a launch is overdue,
    /// the driver sets the rank's cancel token — hung DPUs come back as
    /// [`SimError::WatchdogExpired`] failures and their jobs requeue
    /// instead of wedging the host.
    pub deadline: DeadlinePolicy,
    /// Audit every returned alignment ([`audit_ok`]): CIGAR validated
    /// against the original sequences and the score recomputed. Failures
    /// ride the same ladder as launch faults — retry, quarantine, CPU
    /// fallback. This is the only defense against *silent* corruption
    /// (payload mutated with the checksum recomputed).
    pub audit: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            quarantine_after: 2,
            cpu_threads: 4,
            deadline: DeadlinePolicy::off(),
            audit: false,
        }
    }
}

/// Accounting of everything the recovery layer did. All-zero (see
/// [`FaultReport::is_clean`]) when the run hit no faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultReport {
    /// Per-DPU launch faults / disabled-DPU hits observed.
    pub dpu_faults: usize,
    /// Whole-rank launch failures observed.
    pub rank_failures: usize,
    /// Result blocks rejected by the magic/checksum integrity check.
    pub corrupt_results: usize,
    /// Job re-dispatches (a job retried twice counts twice).
    pub retried_jobs: usize,
    /// `(rank, dpu)` pairs quarantined after repeated faults.
    pub quarantined: Vec<(usize, usize)>,
    /// Ranks declared dead after a launch failure.
    pub dead_ranks: Vec<usize>,
    /// Jobs completed by the CPU fallback aligner.
    pub cpu_fallbacks: usize,
    /// DPU cycles burned by attempts whose results were discarded.
    pub wasted_cycles: u64,
    /// DPU launches reaped by the cycle-budget watchdog (injected
    /// livelocks / runaway kernels).
    pub watchdog_expired: usize,
    /// Silent result corruptions *applied* by fault injection (payload
    /// mutated, checksum recomputed). Every one of these must be caught by
    /// the audit — `silent_corruptions > 0` with `audit_failures == 0` and
    /// auditing enabled means a wrong result was delivered.
    pub silent_corruptions: usize,
    /// Results put through the host audit (informational; a fully audited
    /// clean run is still "clean").
    pub audit_checked: usize,
    /// Results the audit rejected and requeued.
    pub audit_failures: usize,
    /// Times the watchdog budget was doubled after expirations (the
    /// escalation ladder's first rung).
    pub budget_escalations: usize,
    /// Launches cancelled by the host's wall-clock deadline.
    pub deadline_cancellations: usize,
    /// Jobs abandoned because the host was interrupted (Ctrl-C / drain):
    /// never completed on PiM or CPU; their result slots carry
    /// [`JobStatus::Cancelled`]. Explicit accounting — an interrupted run
    /// reports exactly which work it did not do.
    pub interrupted_jobs: usize,
}

impl FaultReport {
    /// True when no fault was observed and no recovery action taken.
    /// `audit_checked` is informational — auditing a clean run does not
    /// dirty it.
    pub fn is_clean(&self) -> bool {
        Self {
            audit_checked: 0,
            ..self.clone()
        } == Self::default()
    }

    /// Fold another report's accounting into this one. Counter fields add;
    /// the quarantine and dead-rank lists concatenate (the same `(rank,
    /// dpu)` can appear once per constituent run — callers merging reports
    /// from *one* shared server see each quarantine decision once because
    /// the tracker only reports the transition). Used by the serve daemon
    /// to aggregate per-request reports into service-level totals without
    /// losing any fault accounting.
    pub fn merge(&mut self, other: &FaultReport) {
        self.dpu_faults += other.dpu_faults;
        self.rank_failures += other.rank_failures;
        self.corrupt_results += other.corrupt_results;
        self.retried_jobs += other.retried_jobs;
        self.quarantined.extend(other.quarantined.iter().copied());
        self.dead_ranks.extend(other.dead_ranks.iter().copied());
        self.cpu_fallbacks += other.cpu_fallbacks;
        self.wasted_cycles += other.wasted_cycles;
        self.watchdog_expired += other.watchdog_expired;
        self.silent_corruptions += other.silent_corruptions;
        self.audit_checked += other.audit_checked;
        self.audit_failures += other.audit_failures;
        self.budget_escalations += other.budget_escalations;
        self.deadline_cancellations += other.deadline_cancellations;
        self.interrupted_jobs += other.interrupted_jobs;
    }

    /// One-line summary for logs.
    pub fn summary(&self) -> String {
        format!(
            "faults: {} dpu, {} rank, {} corrupt, {} watchdog, {} silent; {} retries, {} quarantined, {} dead ranks, {} cpu fallbacks, {} wasted cycles, {}/{} audits failed, {} budget escalations, {} deadline cancels, {} interrupted",
            self.dpu_faults,
            self.rank_failures,
            self.corrupt_results,
            self.watchdog_expired,
            self.silent_corruptions,
            self.retried_jobs,
            self.quarantined.len(),
            self.dead_ranks.len(),
            self.cpu_fallbacks,
            self.wasted_cycles,
            self.audit_failures,
            self.audit_checked,
            self.budget_escalations,
            self.deadline_cancellations,
            self.interrupted_jobs,
        )
    }
}

/// Per-DPU health bookkeeping: consecutive-fault counters, quarantine
/// flags, dead-rank flags.
#[derive(Debug)]
pub struct HealthTracker {
    threshold: usize,
    consecutive: Vec<Vec<usize>>,
    quarantined: Vec<Vec<bool>>,
    dead: Vec<bool>,
}

impl HealthTracker {
    /// Track `ranks` x `dpus` DPUs; quarantine after `threshold`
    /// consecutive faults.
    pub fn new(ranks: usize, dpus: usize, threshold: usize) -> Self {
        assert!(threshold >= 1, "quarantine threshold must be >= 1");
        Self {
            threshold,
            consecutive: vec![vec![0; dpus]; ranks],
            quarantined: vec![vec![false; dpus]; ranks],
            dead: vec![false; ranks],
        }
    }

    /// Record a fault; returns true when this fault newly quarantines the
    /// DPU.
    pub fn record_fault(&mut self, rank: usize, dpu: usize) -> bool {
        self.consecutive[rank][dpu] += 1;
        if self.consecutive[rank][dpu] >= self.threshold && !self.quarantined[rank][dpu] {
            self.quarantined[rank][dpu] = true;
            return true;
        }
        false
    }

    /// Record a clean round for a DPU (resets its consecutive counter; a
    /// quarantined DPU stays quarantined).
    pub fn record_success(&mut self, rank: usize, dpu: usize) {
        self.consecutive[rank][dpu] = 0;
    }

    /// Is the DPU quarantined?
    pub fn is_quarantined(&self, rank: usize, dpu: usize) -> bool {
        self.quarantined[rank][dpu]
    }

    /// Declare a rank dead; returns true when it was alive before.
    pub fn mark_dead(&mut self, rank: usize) -> bool {
        !std::mem::replace(&mut self.dead[rank], true)
    }

    /// Is the rank dead?
    pub fn is_dead(&self, rank: usize) -> bool {
        self.dead[rank]
    }
}

/// LPT a job subset over an explicit list of usable DPU slots of one rank,
/// drawing MRAM image allocations from `pool`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn plan_rank_subset(
    jobs: &[(PackedSeq, PackedSeq)],
    ids: &[usize],
    slots: &[usize],
    dpus_per_rank: usize,
    params: KernelParams,
    pools: usize,
    mram_size: usize,
    pool: &mut BufferPool,
) -> Result<RankPlan, SimError> {
    let mut dpus: Vec<Option<DpuPlan>> = (0..dpus_per_rank).map(|_| None).collect();
    if !ids.is_empty() && !slots.is_empty() {
        let workloads: Vec<u64> = ids
            .iter()
            .map(|&i| crate::balance::workload(jobs[i].0.len(), jobs[i].1.len(), params.band))
            .collect();
        for (bin, &slot) in lpt_assign(&workloads, slots.len()).iter().zip(slots) {
            if bin.is_empty() {
                continue;
            }
            let mut builder = JobBatchBuilder::new(params, pools);
            let mut job_ids = Vec::with_capacity(bin.len());
            for &k in bin {
                let i = ids[k];
                builder.add_pair(jobs[i].0.clone(), jobs[i].1.clone());
                job_ids.push(i);
            }
            dpus[slot] = Some(DpuPlan {
                job_ids,
                batch: builder.build_with(mram_size, pool.take())?,
            });
        }
    }
    Ok(RankPlan {
        dpus,
        params: Some(params),
    })
}

/// Strip a tolerant execution's failures into the fault report: classify
/// each failure, charge wasted cycles, update quarantine state, and requeue
/// the lost job ids. Cleanly-finished planned DPUs get their consecutive-
/// fault counters reset. Shared by the lockstep and pipelined recovery
/// drivers so both apply identical health policy.
pub(crate) fn note_exec_faults(
    exec: &mut RankExec,
    r: usize,
    dpus_per_rank: usize,
    planned: &[(usize, Vec<usize>)],
    health: &mut HealthTracker,
    report: &mut FaultReport,
    requeue: &mut Vec<usize>,
) {
    let failures = std::mem::take(&mut exec.failures);
    let mut failed_dpus = vec![false; dpus_per_rank];
    for f in failures {
        failed_dpus[f.dpu] = true;
        match f.error {
            SimError::DpuFaulted { .. } => report.dpu_faults += 1,
            SimError::WatchdogExpired { .. } => report.watchdog_expired += 1,
            // Audit rejections are counted through the per-exec audit
            // counters (see `DispatchOutcome::absorb`), not as wire
            // corruption — the checksum passed, the payload lied.
            SimError::ResultCorrupt { detail, .. } if detail.starts_with("audit") => {}
            _ => report.corrupt_results += 1,
        }
        report.wasted_cycles += f.wasted_cycles;
        if health.record_fault(r, f.dpu) {
            report.quarantined.push((r, f.dpu));
        }
        requeue.extend(f.job_ids);
    }
    for &(d, _) in planned {
        if !failed_dpus[d] {
            health.record_success(r, d);
        }
    }
}

/// Host-side result audit: a returned alignment must be internally
/// consistent with the sequences it claims to align — the CIGAR must
/// consume exactly both sequences with every `=`/`X` column agreeing with
/// the bases, and rescoring the CIGAR must reproduce the reported score.
/// This catches *silent* corruption: the wire checksum only protects the
/// readback path, so a payload mutated before the checksum was computed
/// (or with the checksum recomputed) sails through integrity checks and
/// only fails here. Failed or score-only results carry no auditable CIGAR
/// and pass vacuously.
pub fn audit_ok(pair: &(PackedSeq, PackedSeq), res: &JobResult, scheme: &ScoringScheme) -> bool {
    if res.status != JobStatus::Ok || res.cigar.runs().is_empty() {
        return true;
    }
    res.cigar
        .validate(&pair.0.unpack(), &pair.1.unpack())
        .is_ok()
        && res.cigar.score(scheme) == res.score
}

/// Align `fallback` jobs on the CPU with the kernel-identical adaptive
/// aligner and push their results into `out`. Shared tail of both recovery
/// drivers.
fn cpu_fallback_tail(
    out: &mut DispatchOutcome,
    report: &mut FaultReport,
    fallback: &[usize],
    jobs: &[(PackedSeq, PackedSeq)],
    params: KernelParams,
    rcfg: &RecoveryConfig,
) {
    if fallback.is_empty() {
        return;
    }
    report.cpu_fallbacks = fallback.len();
    let aligner = AdaptiveAligner::new(params.scheme, params.band);
    let pairs: Vec<(DnaSeq, DnaSeq)> = fallback
        .iter()
        .map(|&i| (jobs[i].0.unpack(), jobs[i].1.unpack()))
        .collect();
    let threads = rcfg.cpu_threads.max(1);
    if params.score_only {
        let (results, _) = run_batch(threads, &pairs, |a, b| aligner.score(a, b));
        for (&i, r) in fallback.iter().zip(results) {
            out.results.push((
                i,
                cpu_result(r, |score| JobResult {
                    status: JobStatus::Ok,
                    score,
                    cigar: Cigar::new(),
                }),
            ));
        }
    } else {
        let (results, _) = run_batch(threads, &pairs, |a, b| aligner.align(a, b));
        for (&i, r) in fallback.iter().zip(results) {
            out.results.push((
                i,
                cpu_result(r, |aln| JobResult {
                    status: JobStatus::Ok,
                    score: aln.score,
                    cigar: aln.cigar,
                }),
            ));
        }
    }
}

pub(crate) fn cpu_result<T>(
    r: Result<T, AlignError>,
    to_job: impl Fn(T) -> JobResult,
) -> JobResult {
    match r {
        Ok(v) => to_job(v),
        // The kernel reports an unreachable end cell as OutOfBand; the CPU
        // fallback must look the same to the caller.
        Err(_) => JobResult {
            status: JobStatus::OutOfBand,
            score: 0,
            cigar: Cigar::new(),
        },
    }
}

/// RAII guard over the server's watchdog budget: snapshots the configured
/// per-launch cycle budget on construction and, if any escalation touched
/// it, restores the original on drop — so every exit path (success,
/// rank-fatal error, early `return Err`) hands the server back unchanged.
/// Derefs to [`PimServer`] so drivers can shadow their `server` binding.
struct WatchdogGuard<'a> {
    server: &'a mut PimServer,
    original: u64,
    dirty: bool,
}

impl<'a> WatchdogGuard<'a> {
    fn new(server: &'a mut PimServer) -> Self {
        let original = server.cfg().dpu.watchdog_cycles;
        Self {
            server,
            original,
            dirty: false,
        }
    }

    /// Push an escalated budget to every rank now (lockstep driver).
    fn apply(&mut self, budget: u64) {
        self.dirty = true;
        self.server.set_watchdog_cycles(budget);
    }

    /// Record that an escalated budget reached the DPUs out of band (the
    /// pipelined driver ships it per [`WorkItem`]), so drop still restores.
    fn mark_applied(&mut self) {
        self.dirty = true;
    }
}

impl std::ops::Deref for WatchdogGuard<'_> {
    type Target = PimServer;
    fn deref(&self) -> &PimServer {
        self.server
    }
}

impl std::ops::DerefMut for WatchdogGuard<'_> {
    fn deref_mut(&mut self) -> &mut PimServer {
        self.server
    }
}

impl Drop for WatchdogGuard<'_> {
    fn drop(&mut self) {
        if self.dirty {
            self.server.set_watchdog_cycles(self.original);
        }
    }
}

/// Rung 1 of the escalation ladder, shared by both drivers: a pass that
/// retires new watchdog expirations retries with a doubled cycle budget (a
/// slow-but-honest kernel gets a second chance before quarantine and CPU
/// fallback, the shared health policy's rungs 2 and 3). At most
/// `max_attempts` doublings per dispatch, and never when the watchdog is
/// off (budget 0).
struct EscalationLadder {
    budget: u64,
    last_watchdog: usize,
}

impl EscalationLadder {
    fn new(budget: u64) -> Self {
        Self {
            budget,
            last_watchdog: 0,
        }
    }

    /// Decide after a pass: returns the doubled budget (and bumps
    /// `report.budget_escalations`) when the ladder fires, `None` otherwise.
    fn maybe_escalate(&mut self, report: &mut FaultReport, cap: usize) -> Option<u64> {
        let fire = self.budget > 0
            && report.watchdog_expired > self.last_watchdog
            && report.budget_escalations < cap;
        self.last_watchdog = report.watchdog_expired;
        if !fire {
            return None;
        }
        self.budget = self.budget.saturating_mul(2);
        report.budget_escalations += 1;
        Some(self.budget)
    }
}

/// Execute `jobs` to completion on a possibly faulty server.
///
/// Returns a [`DispatchOutcome`] whose `results` contain **every** job id
/// exactly once and whose `fault` field accounts for every retry,
/// quarantine and fallback. With an empty fault plan this takes the same
/// plan-and-launch path as [`crate::dispatch::execute_rounds`] and the
/// report comes back clean.
#[allow(clippy::too_many_arguments)]
pub fn execute_jobs_recovering(
    server: &mut PimServer,
    kernel: &NwKernel,
    params: KernelParams,
    pools: usize,
    rounds: usize,
    rcfg: &RecoveryConfig,
    sim_threads: usize,
    jobs: &[(PackedSeq, PackedSeq)],
) -> Result<DispatchOutcome, SimError> {
    assert!(rcfg.max_attempts >= 1, "max_attempts must be >= 1");
    let n_ranks = server.rank_count();
    let dpus_per_rank = server.cfg().dpus_per_rank;
    let mram = server.cfg().dpu.mram_size;

    let mut out = DispatchOutcome {
        rank_seconds: vec![0.0; n_ranks],
        ..Default::default()
    };
    let mut report = FaultReport::default();
    let mut dpu_busy = vec![0.0f64; n_ranks];
    let mut imbalances: Vec<f64> = Vec::new();
    let mut health = HealthTracker::new(n_ranks, dpus_per_rank, rcfg.quarantine_after);
    let mut attempts = vec![0usize; jobs.len()];
    let mut pending: Vec<usize> = (0..jobs.len()).collect();
    let mut fallback: Vec<usize> = Vec::new();
    let mut interrupted: Vec<usize> = Vec::new();
    let mut first_pass = true;

    // The guard restores the configured budget on every exit path (the
    // pre-guard code leaked an escalated budget on rank-fatal early
    // returns); the ladder decides when a pass escalates.
    let mut server = WatchdogGuard::new(server);
    let mut ladder = EscalationLadder::new(server.cfg().dpu.watchdog_cycles);
    let audit_fn = |i: usize, jr: &JobResult| audit_ok(&jobs[i], jr, &params.scheme);
    let audit: Option<AuditFn> = if rcfg.audit { Some(&audit_fn) } else { None };

    while !pending.is_empty() {
        // A host interrupt stops dispatch here: whatever has not completed
        // is abandoned with explicit accounting, not retried and not
        // CPU-aligned — the point is to exit promptly with partial results.
        if crate::interrupt::requested() {
            interrupted.append(&mut pending);
            break;
        }
        // Jobs out of PiM attempts go to the CPU.
        let (retryable, exhausted): (Vec<usize>, Vec<usize>) = pending
            .into_iter()
            .partition(|&i| attempts[i] < rcfg.max_attempts);
        fallback.extend(exhausted);
        pending = retryable;
        if pending.is_empty() {
            break;
        }

        // The usable slot set: enabled, not quarantined, rank not dead.
        let mut usable: Vec<Vec<usize>> = vec![Vec::new(); n_ranks];
        for (r, slots) in usable.iter_mut().enumerate() {
            if health.is_dead(r) {
                continue;
            }
            let rank = server.rank(r)?;
            slots.extend(
                (0..dpus_per_rank).filter(|&d| rank.dpu_enabled(d) && !health.is_quarantined(r, d)),
            );
        }
        let alive: Vec<usize> = (0..n_ranks).filter(|&r| !usable[r].is_empty()).collect();
        if alive.is_empty() {
            // Nowhere left to run: everything still pending goes to the CPU.
            fallback.append(&mut pending);
            break;
        }

        for &i in &pending {
            attempts[i] += 1;
            if attempts[i] > 1 {
                report.retried_jobs += 1;
            }
        }

        // Plan this pass: the first pass honors the caller's FIFO depth,
        // retries run a single round (few jobs, no point queueing).
        let rounds_n = if first_pass { rounds.max(1) } else { 1 };
        let workloads: Vec<u64> = pending
            .iter()
            .map(|&i| crate::balance::workload(jobs[i].0.len(), jobs[i].1.len(), params.band))
            .collect();
        let groups = group_jobs(&workloads, rounds_n * alive.len());
        let mut requeue: Vec<usize> = Vec::new();
        for k in 0..rounds_n {
            let mut round_plans: Vec<RankPlan> = Vec::with_capacity(n_ranks);
            let mut planned: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); n_ranks];
            for r in 0..n_ranks {
                let plan = match alive.iter().position(|&a| a == r) {
                    Some(ri) => {
                        let ids: Vec<usize> = groups[k * alive.len() + ri]
                            .iter()
                            .map(|&g| pending[g])
                            .collect();
                        plan_rank_subset(
                            jobs,
                            &ids,
                            &usable[r],
                            dpus_per_rank,
                            params,
                            pools,
                            mram,
                            &mut BufferPool::default(),
                        )?
                    }
                    None => RankPlan {
                        dpus: (0..dpus_per_rank).map(|_| None).collect(),
                        params: Some(params),
                    },
                };
                planned[r] = plan
                    .dpus
                    .iter()
                    .enumerate()
                    .filter_map(|(d, p)| p.as_ref().map(|p| (d, p.job_ids.clone())))
                    .collect();
                round_plans.push(plan);
            }
            for (r, oc) in run_round(
                &mut server,
                kernel,
                round_plans,
                true,
                sim_threads,
                rcfg.deadline,
                audit,
            )
            .into_iter()
            .enumerate()
            {
                match oc {
                    Err(SimError::RankFailed { .. }) => {
                        report.rank_failures += 1;
                        if health.mark_dead(r) {
                            report.dead_ranks.push(r);
                        }
                        for (_, ids) in &planned[r] {
                            requeue.extend(ids.iter().copied());
                        }
                    }
                    // Anything else rank-fatal is a host/kernel bug, not an
                    // injected fault — surface it.
                    Err(e) => return Err(e),
                    Ok(mut exec) => {
                        note_exec_faults(
                            &mut exec,
                            r,
                            dpus_per_rank,
                            &planned[r],
                            &mut health,
                            &mut report,
                            &mut requeue,
                        );
                        out.absorb(exec, &mut dpu_busy, &mut imbalances);
                    }
                }
            }
            if crate::interrupt::requested() {
                // Mid-pass interrupt: the remaining rounds never launch, so
                // requeue their jobs explicitly; the while-loop entry then
                // routes everything unfinished to the interrupted list.
                for g in &groups[(k + 1) * alive.len()..] {
                    requeue.extend(g.iter().map(|&gi| pending[gi]));
                }
                break;
            }
        }
        if let Some(budget) = ladder.maybe_escalate(&mut report, rcfg.max_attempts) {
            server.apply(budget);
        }
        pending = requeue;
        first_pass = false;
    }
    drop(server);

    if crate::interrupt::requested() {
        // Exhausted jobs would normally get the CPU; on interrupt they are
        // abandoned with the rest.
        interrupted.append(&mut fallback);
    }
    report.interrupted_jobs = interrupted.len();

    // CPU fallback: the adaptive aligner is the same DP the kernel runs, so
    // scores and CIGARs are identical to what a healthy DPU would produce.
    cpu_fallback_tail(&mut out, &mut report, &fallback, jobs, params, rcfg);

    out.finalize(&dpu_busy, &imbalances);
    merge_absorbed_fault_counters(&mut report, &out.fault);
    out.fault = report;
    Ok(out)
}

/// Fold the per-exec counters `DispatchOutcome::absorb` accumulated
/// (silent corruptions applied, audit counts, deadline cancellations) into
/// the recovery report that replaces `out.fault`.
fn merge_absorbed_fault_counters(report: &mut FaultReport, absorbed: &FaultReport) {
    report.silent_corruptions += absorbed.silent_corruptions;
    report.audit_checked += absorbed.audit_checked;
    report.audit_failures += absorbed.audit_failures;
    report.deadline_cancellations += absorbed.deadline_cancellations;
}

/// [`execute_jobs_recovering`] on the pipelined engine: retries ride the
/// same live FIFOs as first-pass batches instead of waiting for a global
/// round barrier.
///
/// The initial workload distribution is identical to the lockstep driver's
/// (same [`group_jobs`] grouping over the same alive ranks), so a fault-free
/// run launches exactly the same batches. Under faults the *schedule*
/// differs — retries are enqueued the moment their failure is decoded, onto
/// whichever usable rank has FIFO room — so per-launch fault draws (keyed by
/// launch counters) can diverge from the lockstep driver; results are still
/// complete and correct, and the health policy (retry caps, quarantine,
/// dead-rank failover, CPU fallback) is byte-for-byte the same code.
///
/// Shutdown on a poisoned rank: the driver stops feeding it, drains its
/// backlog into the retry pool, and lets already-queued batches fail at
/// launch (each failure requeues its jobs). A non-fault error (host/kernel
/// bug) stops planning, drains all in-flight batches, and surfaces the
/// error.
#[allow(clippy::too_many_arguments)]
pub fn execute_jobs_recovering_pipelined(
    server: &mut PimServer,
    kernel: &NwKernel,
    params: KernelParams,
    pools: usize,
    rounds: usize,
    rcfg: &RecoveryConfig,
    fifo_depth: usize,
    sim_threads: usize,
    jobs: &[(PackedSeq, PackedSeq)],
) -> Result<DispatchOutcome, SimError> {
    assert!(rcfg.max_attempts >= 1, "max_attempts must be >= 1");
    let n_ranks = server.rank_count();
    let dpus_per_rank = server.cfg().dpus_per_rank;
    let mram = server.cfg().dpu.mram_size;
    let host_bw = server.cfg().host_bandwidth;
    let freq = server.cfg().dpu.freq_hz;
    let depth = fifo_depth.max(1);
    let pool_threads = crate::dispatch::rank_pool(sim_threads, n_ranks);

    let mut out = DispatchOutcome {
        rank_seconds: vec![0.0; n_ranks],
        ..Default::default()
    };
    let mut report = FaultReport::default();
    let mut dpu_busy = vec![0.0f64; n_ranks];
    let mut imbalances: Vec<f64> = Vec::new();
    let mut health = HealthTracker::new(n_ranks, dpus_per_rank, rcfg.quarantine_after);
    let mut attempts = vec![0usize; jobs.len()];
    let mut fallback: Vec<usize> = Vec::new();
    let mut pool = BufferPool::default();
    let mut metrics = PipelineMetrics {
        fifo_depth: depth,
        rank_stall_seconds: vec![0.0; n_ranks],
        rank_busy_seconds: vec![0.0; n_ranks],
        max_fifo_occupancy: vec![0; n_ranks],
        ..Default::default()
    };
    let wall_start = Instant::now();

    // Boot-time DPU availability is static; quarantine and death are driver
    // state. Snapshot it before the workers take the ranks.
    let enabled: Vec<Vec<bool>> = (0..n_ranks)
        .map(|r| {
            let rank = server.rank(r).expect("rank index in range");
            (0..dpus_per_rank).map(|d| rank.dpu_enabled(d)).collect()
        })
        .collect();
    let usable_slots = |r: usize, health: &HealthTracker| -> Vec<usize> {
        if health.is_dead(r) {
            return Vec::new();
        }
        (0..dpus_per_rank)
            .filter(|&d| enabled[r][d] && !health.is_quarantined(r, d))
            .collect()
    };

    // Initial distribution: identical grouping to the lockstep driver.
    let alive: Vec<usize> = (0..n_ranks)
        .filter(|&r| !usable_slots(r, &health).is_empty())
        .collect();
    let mut backlog: Vec<VecDeque<Vec<usize>>> = vec![VecDeque::new(); n_ranks];
    let mut retry_pool: Vec<usize> = Vec::new();
    if alive.is_empty() {
        fallback.extend(0..jobs.len());
    } else {
        let rounds_n = rounds.max(1);
        let workloads: Vec<u64> = jobs
            .iter()
            .map(|(a, b)| crate::balance::workload(a.len(), b.len(), params.band))
            .collect();
        let groups = group_jobs(&workloads, rounds_n * alive.len());
        for k in 0..rounds_n {
            for (ri, &r) in alive.iter().enumerate() {
                let ids = &groups[k * alive.len() + ri];
                if !ids.is_empty() {
                    backlog[r].push_back(ids.clone());
                }
            }
        }
    }

    let mut fatal: Option<SimError> = None;
    let mut interrupted = false;
    let mut interrupted_ids: Vec<usize> = Vec::new();
    // Escalation ladder (see the lockstep driver): retries after a watchdog
    // expiry carry a doubled cycle budget down the FIFO via
    // `WorkItem::watchdog`; the guard restores the configured budget on
    // every exit path, including the fatal-error return below.
    let mut guard = WatchdogGuard::new(server);
    let mut ladder = EscalationLadder::new(guard.cfg().dpu.watchdog_cycles);
    let mut escalated: Option<u64> = None;
    let audit_fn = |i: usize, jr: &JobResult| audit_ok(&jobs[i], jr, &params.scheme);
    let audit: Option<AuditFn> = if rcfg.audit { Some(&audit_fn) } else { None };
    {
        let ranks = guard.ranks_mut();
        let tokens: Vec<_> = ranks.iter().map(|rank| rank.cancel_token()).collect();
        let (done_tx, done_rx) = channel::<BatchDone>();
        std::thread::scope(|scope| {
            let mut inboxes = Vec::with_capacity(n_ranks);
            for (r, rank) in ranks.iter_mut().enumerate() {
                let (tx, rx) = sync_channel::<WorkItem>(depth);
                let done = done_tx.clone();
                scope.spawn(move || worker_loop(r, rank, kernel, freq, pool_threads, rx, done));
                inboxes.push(tx);
            }
            drop(done_tx);

            let mut in_flight = vec![0usize; n_ranks];
            let mut total_in_flight = 0usize;
            let mut planned: HashMap<u64, Vec<(usize, Vec<usize>)>> = HashMap::new();
            let mut next_seq = 0u64;

            'drive: loop {
                if !interrupted && crate::interrupt::requested() {
                    // Host interrupt: stop feeding, cancel in-flight
                    // launches, drain, and abandon the backlog with
                    // explicit accounting.
                    interrupted = true;
                    for t in &tokens {
                        t.store(true, std::sync::atomic::Ordering::Relaxed);
                    }
                }
                if fatal.is_none() && !interrupted {
                    // Feed phase: top up every usable rank's FIFO. A rank
                    // with no usable DPU left gives its backlog to the
                    // retry pool for the survivors.
                    for r in 0..n_ranks {
                        let slots = usable_slots(r, &health);
                        if slots.is_empty() {
                            while let Some(ids) = backlog[r].pop_front() {
                                retry_pool.extend(ids);
                            }
                            continue;
                        }
                        while in_flight[r] < depth {
                            let ids: Vec<usize> = match backlog[r].pop_front() {
                                Some(ids) => ids,
                                None => {
                                    if retry_pool.is_empty() {
                                        break;
                                    }
                                    // Jobs out of PiM attempts go to the CPU.
                                    let (retryable, exhausted): (Vec<usize>, Vec<usize>) =
                                        std::mem::take(&mut retry_pool)
                                            .into_iter()
                                            .partition(|&i| attempts[i] < rcfg.max_attempts);
                                    fallback.extend(exhausted);
                                    if retryable.is_empty() {
                                        break;
                                    }
                                    let n_usable = (0..n_ranks)
                                        .filter(|&x| !usable_slots(x, &health).is_empty())
                                        .count()
                                        .max(1);
                                    let chunk = retryable.len().div_ceil(n_usable);
                                    let mut rest = retryable;
                                    let take = rest.split_off(rest.len() - chunk.min(rest.len()));
                                    retry_pool = rest;
                                    take
                                }
                            };
                            for &i in &ids {
                                attempts[i] += 1;
                                if attempts[i] > 1 {
                                    report.retried_jobs += 1;
                                }
                            }
                            let plan_start = Instant::now();
                            let plan = plan_rank_subset(
                                jobs,
                                &ids,
                                &slots,
                                dpus_per_rank,
                                params,
                                pools,
                                mram,
                                &mut pool,
                            );
                            let dt = plan_start.elapsed().as_secs_f64();
                            metrics.plan_seconds += dt;
                            if total_in_flight > 0 {
                                metrics.plan_overlap_seconds += dt;
                            }
                            let plan = match plan {
                                Ok(p) => p,
                                Err(e) => {
                                    fatal = Some(e);
                                    break 'drive;
                                }
                            };
                            let seq = next_seq;
                            next_seq += 1;
                            planned.insert(
                                seq,
                                plan.dpus
                                    .iter()
                                    .enumerate()
                                    .filter_map(|(d, p)| p.as_ref().map(|p| (d, p.job_ids.clone())))
                                    .collect(),
                            );
                            in_flight[r] += 1;
                            total_in_flight += 1;
                            metrics.max_fifo_occupancy[r] =
                                metrics.max_fifo_occupancy[r].max(in_flight[r]);
                            metrics.batches += 1;
                            inboxes[r]
                                .send(WorkItem {
                                    seq,
                                    plan,
                                    watchdog: escalated,
                                })
                                .expect("worker alive while its inbox is held");
                        }
                    }
                }
                if total_in_flight == 0 {
                    if fatal.is_some() {
                        break;
                    }
                    if interrupted {
                        // Everything that never completed is abandoned, not
                        // retried and not CPU-aligned.
                        for b in backlog.iter_mut() {
                            while let Some(ids) = b.pop_front() {
                                interrupted_ids.extend(ids);
                            }
                        }
                        interrupted_ids.append(&mut retry_pool);
                        break;
                    }
                    let work_left = retry_pool.iter().any(|&i| attempts[i] < rcfg.max_attempts)
                        || backlog.iter().any(|b| !b.is_empty());
                    if !work_left {
                        // Whatever is left in the pool is out of attempts.
                        fallback.append(&mut retry_pool);
                        break;
                    }
                    // Work remains but the feed phase could not place it:
                    // no rank has a usable DPU left. CPU takes the rest.
                    for b in backlog.iter_mut() {
                        while let Some(ids) = b.pop_front() {
                            fallback.extend(ids);
                        }
                    }
                    fallback.append(&mut retry_pool);
                    break;
                }
                let Some(done) = recv_done(&done_rx, rcfg.deadline, &tokens) else {
                    fatal = Some(SimError::RankFailed {
                        rank: 0,
                        reason: "all rank workers exited with work in flight".into(),
                    });
                    break;
                };
                let r = done.rank;
                in_flight[r] -= 1;
                total_in_flight -= 1;
                metrics.rank_stall_seconds[r] += done.wait_seconds;
                metrics.rank_busy_seconds[r] += done.busy_seconds;
                pool.put(done.spent);
                let batch_planned = planned.remove(&done.seq).unwrap_or_default();
                match done.outcome {
                    Err(SimError::RankFailed { .. }) => {
                        report.rank_failures += 1;
                        if health.mark_dead(r) {
                            report.dead_ranks.push(r);
                        }
                        for (_, ids) in &batch_planned {
                            retry_pool.extend(ids.iter().copied());
                        }
                        // Already-queued batches on this rank will fail the
                        // same way and requeue themselves; stop feeding it.
                        while let Some(ids) = backlog[r].pop_front() {
                            retry_pool.extend(ids);
                        }
                    }
                    // Anything else rank-fatal is a host/kernel bug, not an
                    // injected fault — surface it after draining.
                    Err(e) => {
                        if fatal.is_none() {
                            fatal = Some(e);
                        }
                    }
                    Ok(raw) => {
                        let decode_start = Instant::now();
                        let mut exec = decode_raw_exec_audited(raw, host_bw, audit);
                        metrics.decode_seconds += decode_start.elapsed().as_secs_f64();
                        note_exec_faults(
                            &mut exec,
                            r,
                            dpus_per_rank,
                            &batch_planned,
                            &mut health,
                            &mut report,
                            &mut retry_pool,
                        );
                        out.absorb(exec, &mut dpu_busy, &mut imbalances);
                        if let Some(budget) = ladder.maybe_escalate(&mut report, rcfg.max_attempts)
                        {
                            escalated = Some(budget);
                        }
                    }
                }
            }
            drop(inboxes);
            // Drain any in-flight completions so the workers can exit and
            // their simulated time is not lost on a fatal error path.
            for done in done_rx.iter() {
                pool.put(done.spent);
                if let Ok(raw) = done.outcome {
                    let mut exec = decode_raw_exec_audited(raw, host_bw, None);
                    exec.failures.clear();
                    out.absorb(exec, &mut dpu_busy, &mut imbalances);
                }
            }
        });
    }
    if escalated.is_some() {
        // Workers applied the escalated budget per launch; the guard's drop
        // rewrites the server config back to the caller's setting.
        guard.mark_applied();
    }
    drop(guard);
    if let Some(e) = fatal {
        return Err(e);
    }

    if interrupted {
        // Exhausted jobs would normally get the CPU; on interrupt they are
        // abandoned with the rest.
        interrupted_ids.append(&mut fallback);
    }
    report.interrupted_jobs = interrupted_ids.len();

    cpu_fallback_tail(&mut out, &mut report, &fallback, jobs, params, rcfg);

    out.finalize(&dpu_busy, &imbalances);
    metrics.host_wall_seconds = wall_start.elapsed().as_secs_f64();
    let (reused, allocated) = pool.counters();
    metrics.buffers_reused = reused;
    metrics.buffers_allocated = allocated;
    out.pipeline = Some(metrics);
    merge_absorbed_fault_counters(&mut report, &out.fault);
    out.fault = report;
    Ok(out)
}

/// Fault-tolerant counterpart of [`crate::modes::align_pairs`]: encode,
/// dispatch with recovery, and return per-pair results in input order plus
/// a report whose `fault` field shows what the recovery layer did.
pub fn align_pairs_recovering(
    server: &mut PimServer,
    cfg: &DispatchConfig,
    rcfg: &RecoveryConfig,
    pairs: &[(DnaSeq, DnaSeq)],
) -> Result<(ExecutionReport, Vec<JobResult>), SimError> {
    let mut encoder = Encoder::new(0xDA7A);
    let packed: Vec<(PackedSeq, PackedSeq)> = pairs
        .iter()
        .map(|(a, b)| (encoder.encode_seq(a), encoder.encode_seq(b)))
        .collect();
    let encode_seconds = encoder.stats().ascii_bytes as f64 / cfg.encode_rate;
    let mut outcome = match cfg.engine {
        Engine::Lockstep => execute_jobs_recovering(
            server,
            &cfg.kernel,
            cfg.params,
            cfg.kernel.pool_cfg.pools,
            cfg.rounds,
            rcfg,
            cfg.sim_threads,
            &packed,
        )?,
        Engine::Pipelined { fifo_depth } => execute_jobs_recovering_pipelined(
            server,
            &cfg.kernel,
            cfg.params,
            cfg.kernel.pool_cfg.pools,
            cfg.rounds,
            rcfg,
            fifo_depth,
            cfg.sim_threads,
            &packed,
        )?,
    };
    let tagged = std::mem::take(&mut outcome.results);
    let results = if outcome.fault.interrupted_jobs > 0 {
        // An interrupted run legitimately leaves jobs unfinished; their
        // slots carry an explicit Cancelled status.
        crate::modes::scatter_partial(tagged, pairs.len())
    } else {
        crate::modes::scatter(tagged, pairs.len())
    };
    let report = crate::modes::make_report("pairs-recovering", encode_seconds, &results, outcome);
    Ok((report, results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpu_kernel::{KernelVariant, NwKernel, PoolConfig};
    use nw_core::ScoringScheme;
    use pim_sim::{FaultPlan, ServerConfig};

    fn seq(text: &str) -> DnaSeq {
        DnaSeq::from_ascii(text.as_bytes()).unwrap()
    }

    fn pairs(n: usize) -> Vec<(DnaSeq, DnaSeq)> {
        (0..n)
            .map(|k| {
                let a = "ACGTGGTCAT".repeat(4 + k % 3);
                let mut b = a.clone();
                b.insert_str(3 + k % 5, "TG");
                (seq(&a), seq(&b))
            })
            .collect()
    }

    fn config() -> DispatchConfig {
        let kernel = NwKernel::new(
            PoolConfig {
                pools: 2,
                tasklets: 4,
            },
            KernelVariant::Asm,
        );
        let params = KernelParams {
            band: 16,
            scheme: ScoringScheme::default(),
            score_only: false,
        };
        DispatchConfig::new(kernel, params)
    }

    fn server_with(fault: FaultPlan, ranks: usize, dpus: usize) -> PimServer {
        let mut cfg = ServerConfig::with_ranks(ranks);
        cfg.dpus_per_rank = dpus;
        cfg.fault = fault;
        PimServer::new(cfg)
    }

    fn reference(cfg: &DispatchConfig, ps: &[(DnaSeq, DnaSeq)]) -> Vec<JobResult> {
        let aligner = AdaptiveAligner::new(cfg.params.scheme, cfg.params.band);
        ps.iter()
            .map(|(a, b)| match aligner.align(a, b) {
                Ok(aln) => JobResult {
                    status: JobStatus::Ok,
                    score: aln.score,
                    cigar: aln.cigar,
                },
                Err(_) => JobResult {
                    status: JobStatus::OutOfBand,
                    score: 0,
                    cigar: Cigar::new(),
                },
            })
            .collect()
    }

    #[test]
    fn clean_server_produces_clean_report() {
        let ps = pairs(12);
        let cfg = config();
        let mut server = server_with(FaultPlan::default(), 2, 3);
        let (report, results) =
            align_pairs_recovering(&mut server, &cfg, &Default::default(), &ps).unwrap();
        assert!(report.fault.is_clean(), "{}", report.fault.summary());
        assert_eq!(results, reference(&cfg, &ps));
    }

    #[test]
    fn disabled_dpus_fail_over_to_healthy_ones() {
        let ps = pairs(10);
        let cfg = config();
        let fault = FaultPlan {
            disabled_dpus: vec![(0, 0), (1, 2)],
            ..Default::default()
        };
        let mut server = server_with(fault, 2, 3);
        let (report, results) =
            align_pairs_recovering(&mut server, &cfg, &Default::default(), &ps).unwrap();
        assert_eq!(results, reference(&cfg, &ps));
        // Disabled DPUs never get planned jobs (the planner sees them), so
        // the run is clean — no retries were needed.
        assert!(report.fault.is_clean(), "{}", report.fault.summary());
    }

    #[test]
    fn dead_rank_jobs_fail_over() {
        let ps = pairs(10);
        let cfg = config();
        let fault = FaultPlan {
            dead_ranks: vec![0],
            ..Default::default()
        };
        let mut server = server_with(fault, 2, 3);
        let (report, results) =
            align_pairs_recovering(&mut server, &cfg, &Default::default(), &ps).unwrap();
        assert_eq!(results, reference(&cfg, &ps));
        assert_eq!(report.fault.dead_ranks, vec![0]);
        assert!(report.fault.rank_failures >= 1);
        assert!(report.fault.retried_jobs > 0);
        assert_eq!(report.fault.cpu_fallbacks, 0);
    }

    #[test]
    fn total_fault_rate_falls_back_to_cpu() {
        let ps = pairs(6);
        let cfg = config();
        let fault = FaultPlan {
            seed: 1,
            dpu_fault_rate: 1.0,
            ..Default::default()
        };
        let mut server = server_with(fault, 1, 2);
        let rcfg = RecoveryConfig {
            max_attempts: 2,
            quarantine_after: 2,
            cpu_threads: 2,
            ..Default::default()
        };
        let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &ps).unwrap();
        assert_eq!(results, reference(&cfg, &ps));
        assert_eq!(report.fault.cpu_fallbacks, 6);
        assert!(report.fault.dpu_faults > 0);
        assert!(!report.fault.quarantined.is_empty());
    }

    #[test]
    fn corruption_is_detected_and_retried() {
        let ps = pairs(8);
        let cfg = config();
        let fault = FaultPlan {
            seed: 9,
            corrupt_rate: 0.4,
            ..Default::default()
        };
        let mut server = server_with(fault, 2, 3);
        let rcfg = RecoveryConfig {
            max_attempts: 10,
            quarantine_after: 100, // never quarantine: force retry-to-success
            cpu_threads: 1,
            ..Default::default()
        };
        let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &ps).unwrap();
        assert_eq!(results, reference(&cfg, &ps));
        assert!(
            report.fault.corrupt_results > 0,
            "rate 0.4 over 6 DPUs must corrupt something: {}",
            report.fault.summary()
        );
        assert!(report.fault.wasted_cycles > 0, "corrupt DPUs did run");
        assert_eq!(report.fault.cpu_fallbacks, 0);
    }

    #[test]
    fn health_tracker_quarantines_after_threshold() {
        let mut h = HealthTracker::new(2, 2, 2);
        assert!(!h.record_fault(0, 1));
        assert!(!h.is_quarantined(0, 1));
        assert!(h.record_fault(0, 1), "second consecutive fault quarantines");
        assert!(h.is_quarantined(0, 1));
        assert!(!h.record_fault(0, 1), "already quarantined");
        // Success resets the counter on another DPU.
        assert!(!h.record_fault(1, 0));
        h.record_success(1, 0);
        assert!(!h.record_fault(1, 0));
        assert!(!h.is_quarantined(1, 0));
        // Dead ranks.
        assert!(h.mark_dead(1));
        assert!(!h.mark_dead(1));
        assert!(h.is_dead(1) && !h.is_dead(0));
    }

    #[test]
    fn empty_job_list_is_fine() {
        let cfg = config();
        let mut server = server_with(FaultPlan::default(), 1, 2);
        let (report, results) =
            align_pairs_recovering(&mut server, &cfg, &Default::default(), &[]).unwrap();
        assert!(results.is_empty());
        assert!(report.fault.is_clean());
    }

    fn server_with_watchdog(
        fault: FaultPlan,
        ranks: usize,
        dpus: usize,
        watchdog: u64,
    ) -> PimServer {
        let mut cfg = ServerConfig::with_ranks(ranks);
        cfg.dpus_per_rank = dpus;
        cfg.fault = fault;
        cfg.dpu.watchdog_cycles = watchdog;
        PimServer::new(cfg)
    }

    #[test]
    fn hangs_are_reaped_retried_and_the_budget_escalates() {
        let ps = pairs(10);
        let cfg = config();
        let fault = FaultPlan {
            seed: 11,
            hang_rate: 0.3,
            ..Default::default()
        };
        let mut server = server_with_watchdog(fault, 2, 3, 2_000_000);
        let rcfg = RecoveryConfig {
            max_attempts: 10,
            quarantine_after: 100,
            ..Default::default()
        };
        let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &ps).unwrap();
        assert_eq!(results, reference(&cfg, &ps));
        assert!(
            report.fault.watchdog_expired > 0,
            "rate 0.3 over 6 DPUs must hang something: {}",
            report.fault.summary()
        );
        assert!(
            report.fault.budget_escalations > 0,
            "watchdog expiries must double the budget: {}",
            report.fault.summary()
        );
        assert!(report.fault.retried_jobs > 0);
        assert_eq!(
            server.cfg().dpu.watchdog_cycles,
            2_000_000,
            "escalated budget must be restored after the run"
        );
    }

    #[test]
    fn audit_detects_silent_corruption_and_retries() {
        let ps = pairs(8);
        let cfg = config();
        let fault = FaultPlan {
            seed: 5,
            silent_corrupt_rate: 0.5,
            ..Default::default()
        };
        let mut server = server_with(fault, 2, 3);
        let rcfg = RecoveryConfig {
            max_attempts: 12,
            quarantine_after: 100,
            audit: true,
            ..Default::default()
        };
        let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &ps).unwrap();
        assert_eq!(results, reference(&cfg, &ps));
        assert!(
            report.fault.silent_corruptions > 0,
            "rate 0.5 over 6 DPUs must corrupt something: {}",
            report.fault.summary()
        );
        assert!(
            report.fault.audit_failures > 0,
            "the audit must catch the mutated CIGARs: {}",
            report.fault.summary()
        );
        assert_eq!(
            report.fault.corrupt_results, 0,
            "silent corruption recomputes the checksum, so the integrity \
             check must not fire"
        );
        assert!(report.fault.audit_checked >= results.len());
    }

    #[test]
    fn silent_corruption_escapes_without_the_audit() {
        // Negative control for the test above: with auditing off the
        // checksum still passes, nothing retries, and wrong results are
        // delivered — proving the audit stage is load-bearing.
        let ps = pairs(8);
        let cfg = config();
        let fault = FaultPlan {
            seed: 5,
            silent_corrupt_rate: 0.5,
            ..Default::default()
        };
        let mut server = server_with(fault, 2, 3);
        let rcfg = RecoveryConfig::default();
        let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &ps).unwrap();
        assert!(report.fault.silent_corruptions > 0);
        assert_eq!(report.fault.audit_checked, 0);
        assert_ne!(
            results,
            reference(&cfg, &ps),
            "unaudited silent corruption must reach the caller"
        );
    }

    #[test]
    fn deadline_cancels_unwatched_hangs_without_wedging() {
        // Watchdog disabled: an injected hang spins on the host clock and
        // only the wall-clock deadline can reap it. Every launch hangs, so
        // both DPUs quarantine and the jobs finish on the CPU.
        let ps = pairs(4);
        let mut cfg = config();
        let fault = FaultPlan {
            seed: 3,
            hang_rate: 1.0,
            ..Default::default()
        };
        let rcfg = RecoveryConfig {
            max_attempts: 2,
            quarantine_after: 1,
            cpu_threads: 1,
            deadline: DeadlinePolicy::after_seconds(0.1),
            ..Default::default()
        };
        for engine in [Engine::Lockstep, Engine::Pipelined { fifo_depth: 2 }] {
            cfg.engine = engine;
            let mut server = server_with(fault.clone(), 1, 2);
            let (report, results) = align_pairs_recovering(&mut server, &cfg, &rcfg, &ps).unwrap();
            assert_eq!(results, reference(&cfg, &ps));
            assert!(
                report.fault.deadline_cancellations > 0,
                "{engine:?}: {}",
                report.fault.summary()
            );
            assert!(report.fault.watchdog_expired > 0, "{engine:?}");
            assert_eq!(report.fault.cpu_fallbacks, ps.len(), "{engine:?}");
        }
    }
}
